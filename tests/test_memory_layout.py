"""Tests for repro.memory.layout — byte-layout schemas."""

import pytest

from repro.analysis import (
    ArrayType,
    BOOLEAN,
    CHAR,
    ClassType,
    DOUBLE,
    Field,
    INT,
    LONG,
    SizeType,
)
from repro.errors import MemoryLayoutError
from repro.memory import (
    FixedArraySchema,
    PrimitiveSlot,
    RecordSchema,
    VarArraySchema,
    build_schema,
)
from repro.memory.layout import reorder_fields_fixed_first


class TestPrimitiveSlot:
    @pytest.mark.parametrize("prim,value", [
        (DOUBLE, 3.25), (INT, -7), (LONG, 2**40), (BOOLEAN, True),
        (CHAR, ord("x")),
    ])
    def test_roundtrip(self, prim, value):
        slot = PrimitiveSlot(prim)
        assert slot.unpack(slot.pack(value)) == value

    def test_sizes_match_jvm(self):
        assert PrimitiveSlot(DOUBLE).fixed_size == 8
        assert PrimitiveSlot(INT).fixed_size == 4
        assert PrimitiveSlot(CHAR).fixed_size == 2


class TestRecordSchema:
    def make_point(self):
        return RecordSchema("Point", [
            ("x", PrimitiveSlot(DOUBLE)),
            ("y", PrimitiveSlot(DOUBLE)),
            ("id", PrimitiveSlot(INT)),
        ])

    def test_fixed_size_is_sum(self):
        assert self.make_point().fixed_size == 20

    def test_static_offsets(self):
        schema = self.make_point()
        assert schema.field_offsets == (0, 8, 16)

    def test_roundtrip(self):
        schema = self.make_point()
        value = (1.5, -2.5, 42)
        assert schema.unpack(schema.pack(value)) == value

    def test_wrong_arity_rejected(self):
        with pytest.raises(MemoryLayoutError):
            self.make_point().pack((1.0, 2.0))

    def test_empty_record_rejected(self):
        with pytest.raises(MemoryLayoutError):
            RecordSchema("Empty", [])

    def test_duplicate_fields_rejected(self):
        with pytest.raises(MemoryLayoutError):
            RecordSchema("Dup", [("x", PrimitiveSlot(INT)),
                                 ("x", PrimitiveSlot(INT))])

    def test_variable_record(self):
        schema = RecordSchema("S", [
            ("chars", VarArraySchema(PrimitiveSlot(CHAR))),
            ("count", PrimitiveSlot(INT)),
        ])
        assert schema.fixed_size is None
        value = ((104, 105), 7)
        packed = schema.pack(value)
        assert schema.unpack(packed) == value
        # offset of count is dynamic (after the var array).
        assert schema.field_offsets == (0, None)
        assert schema.field_offset(packed, 0, 1) == 4 + 2 * 2


class TestArraySchemas:
    def test_fixed_array_roundtrip(self):
        schema = FixedArraySchema(PrimitiveSlot(DOUBLE), 4)
        assert schema.fixed_size == 32
        value = (1.0, 2.0, 3.0, 4.0)
        assert schema.unpack(schema.pack(value)) == value

    def test_fixed_array_length_mismatch(self):
        schema = FixedArraySchema(PrimitiveSlot(DOUBLE), 4)
        with pytest.raises(MemoryLayoutError):
            schema.pack((1.0,))

    def test_var_array_roundtrip(self):
        schema = VarArraySchema(PrimitiveSlot(LONG))
        for value in [(), (5,), tuple(range(100))]:
            assert schema.unpack(schema.pack(value)) == value

    def test_var_array_size_of(self):
        schema = VarArraySchema(PrimitiveSlot(LONG))
        assert schema.size_of((1, 2, 3)) == 4 + 24

    def test_var_array_needs_fixed_elements(self):
        with pytest.raises(MemoryLayoutError):
            VarArraySchema(VarArraySchema(PrimitiveSlot(INT)))

    def test_nested_record_elements(self):
        point = RecordSchema("P", [("x", PrimitiveSlot(INT))])
        schema = VarArraySchema(point)
        value = ((1,), (2,), (3,))
        assert schema.unpack(schema.pack(value)) == value


class TestBuildSchema:
    def test_vst_is_rejected(self):
        holder = ClassType("H", [
            Field("buf", ArrayType(DOUBLE), final=False)])
        with pytest.raises(MemoryLayoutError):
            build_schema(holder, SizeType.VARIABLE)

    def test_recursive_type_is_rejected(self):
        node = ClassType("Node", [Field("v", INT)])
        node.add_field(Field("next", node))
        with pytest.raises(MemoryLayoutError):
            build_schema(node, SizeType.RUNTIME_FIXED)

    def test_polymorphic_field_is_rejected(self):
        a = ClassType("A", [Field("x", INT)])
        b = ClassType("B", [Field("y", DOUBLE)])
        holder = ClassType("H", [Field("v", a, type_set=(a, b), final=True)])
        with pytest.raises(MemoryLayoutError):
            build_schema(holder, SizeType.RUNTIME_FIXED)

    def test_sfst_with_fixed_length_hint(self):
        arr = ArrayType(DOUBLE)
        holder = ClassType("H", [Field("data", arr, final=True),
                                 Field("n", INT)])
        schema = build_schema(holder, SizeType.STATIC_FIXED,
                              fixed_lengths={id(arr): 3})
        assert schema.fixed_size == 3 * 8 + 4

    def test_rfst_without_hint_gets_length_prefix(self):
        arr = ArrayType(DOUBLE)
        holder = ClassType("H", [Field("data", arr, final=True)])
        schema = build_schema(holder, SizeType.RUNTIME_FIXED)
        assert schema.fixed_size is None
        value = ((1.0, 2.0),)
        assert schema.size_of(value) == 4 + 16


class TestFieldReordering:
    def test_fixed_fields_move_first(self):
        schema = RecordSchema("S", [
            ("chars", VarArraySchema(PrimitiveSlot(CHAR))),
            ("count", PrimitiveSlot(INT)),
        ])
        reordered = reorder_fields_fixed_first(schema)
        assert [n for n, _ in reordered.fields] == ["count", "chars"]
        # count now has a static offset.
        assert reordered.field_offsets[0] == 0


class TestColumnLayouts:
    def test_fixed_column_roundtrip(self):
        from repro.memory.layout import FixedColumnLayout
        layout = FixedColumnLayout("i")
        values = [3, -7, 2**30, 0]
        run = layout.emit(values)
        assert len(run) == len(values) * layout.item_size
        view = layout.view(bytearray(run), 0, len(run))
        assert list(view) == values
        view.release()

    @pytest.mark.parametrize("code,values", [
        ("q", [2**40, -2**40, 0]),
        ("d", [1.5, -0.25, 1e9]),
    ])
    def test_fixed_column_codes(self, code, values):
        from repro.memory.layout import FixedColumnLayout
        layout = FixedColumnLayout(code)
        run = layout.emit(values)
        assert list(layout.view(bytearray(run), 0, len(run))) == values

    def test_fixed_view_rejects_misaligned_length(self):
        from repro.memory.layout import FixedColumnLayout
        layout = FixedColumnLayout("i")
        with pytest.raises(MemoryLayoutError):
            layout.view(bytearray(7), 0, 7)

    def test_string_column_roundtrip(self):
        from repro.memory.layout import StringColumnLayout
        layout = StringColumnLayout()
        values = ["", "spark", "déca", "x" * 100]
        offsets_run, blob_run = layout.emit(values)
        view = layout.view(bytearray(offsets_run), 0, len(offsets_run),
                           bytearray(blob_run), 0, len(blob_run))
        assert view.count == len(values)
        assert list(view) == values
        assert [view.get(i) for i in range(len(values))] == values

    def test_string_prefix_is_clamped(self):
        from repro.memory.layout import StringColumnLayout
        layout = StringColumnLayout()
        offsets_run, blob_run = layout.emit(["ab", "wxyz"])
        view = layout.view(bytearray(offsets_run), 0, len(offsets_run),
                           bytearray(blob_run), 0, len(blob_run))
        assert view.get_prefix(0, 10) == "ab"
        assert view.get_prefix(1, 2) == "wx"

    def test_string_view_release_is_idempotent(self):
        from repro.memory.layout import StringColumnLayout
        layout = StringColumnLayout()
        offsets_run, blob_run = layout.emit(["a"])
        view = layout.view(bytearray(offsets_run), 0, len(offsets_run),
                           bytearray(blob_run), 0, len(blob_run))
        view.release()
        view.release()


class TestColumnarPlan:
    def test_primitive_fields_plan_fixed(self):
        from repro.memory.layout import FixedColumnLayout, columnar_plan
        udt = ClassType("P", [Field("a", INT, final=True),
                              Field("b", DOUBLE, final=True)])
        schema = build_schema(udt, SizeType.STATIC_FIXED)
        plan = columnar_plan(schema)
        assert [name for name, _ in plan] == ["a", "b"]
        assert [type(c) for _, c in plan] == [FixedColumnLayout] * 2

    def test_char_array_plans_string(self):
        from repro.memory.layout import StringColumnLayout, columnar_plan
        udt = ClassType("S", [Field("s", ArrayType(CHAR), final=True)])
        schema = build_schema(udt, SizeType.RUNTIME_FIXED)
        ((name, layout),) = columnar_plan(schema)
        assert name == "s"
        assert isinstance(layout, StringColumnLayout)

    def test_double_array_has_no_column_layout(self):
        from repro.memory.layout import columnar_plan
        udt = ClassType("V", [Field("v", ArrayType(DOUBLE), final=True)])
        schema = build_schema(udt, SizeType.RUNTIME_FIXED)
        with pytest.raises(MemoryLayoutError):
            columnar_plan(schema)
