"""Property-based tests: provenance safety of the mmap extent store.

Random interleavings of the tier's lifecycle verbs — swap-out (alloc),
view export, release, drop (free + poison + coalesce), swap-in and the
file growth each large alloc can force — must uphold two invariants:

* a live borrow never sits over a poisoned byte range: every path that
  frees an extent releases its exported views first (the protocol the
  DECA301 rule enforces statically), and the ledger records zero
  violations for the whole run;
* poison never leaks into promoted bytes: whatever holes an extent is
  packed into, swap-in / views always return exactly the bytes swapped
  out, never the 0xDB fill of a previous tenant.
"""

from hypothesis import given, settings, strategies as st

from repro.memory.provenance import POISON_BYTE, ProvenanceLedger
from repro.memory.tier import PageStoreTier

#: One random step: (verb, group index, size seed).
STEP = st.tuples(
    st.sampled_from(["out", "views", "release", "drop", "in", "grow"]),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=1, max_value=16),
)


def payload_for(index: int, size_seed: int) -> bytes:
    # Never the poison byte, so a poison leak is always detectable.
    fill = (index * 31 + size_seed) % 0xDA + 1
    return bytes([fill]) * (size_seed * 97)


class TierMachine:
    """Applies one random script to a fresh tier, checking invariants."""

    def __init__(self, tmp_path) -> None:
        self.ledger = ProvenanceLedger()
        self.tier = PageStoreTier(str(tmp_path / "prop.bin"),
                                  ledger=self.ledger)
        self.contents: dict[str, bytes] = {}
        self.held: dict[str, list] = {}
        self.grow_serial = 0

    def step(self, verb: str, index: int, size_seed: int) -> None:
        name = f"g{index}"
        if verb == "out" and name not in self.contents:
            payload = payload_for(index, size_seed)
            self.tier.swap_out(name, [payload])
            self.contents[name] = payload
        elif verb == "views" and name in self.contents:
            self.held.setdefault(name, []).extend(self.tier.views(name))
        elif verb == "release":
            for view in self.held.pop(name, []):
                view.release()
        elif verb == "drop" and name in self.contents:
            # The lifetime protocol: exported views die before the
            # extent does.  (Violations of this ordering are the
            # seeded-bug fixtures' job, not this test's.)
            for view in self.held.pop(name, []):
                view.release()
            self.tier.drop(name)
            del self.contents[name]
        elif verb == "in" and name in self.contents:
            views = self.tier.swap_in(name)
            got = b"".join(bytes(v) for v in views)
            assert got == self.contents[name]
            self.held.setdefault(name, []).extend(views)
        elif verb == "grow":
            # An allocation large enough to force at least one remap.
            grow_name = f"grow{self.grow_serial}"
            self.grow_serial += 1
            self.tier.swap_out(grow_name,
                               [b"\x5b" * (self.tier.file_bytes + 4096)])
            self.tier.drop(grow_name)
        self.check_invariants()

    def check_invariants(self) -> None:
        # No violation of any slug, ever — the protocol above is safe.
        assert self.ledger.summary()["violations"] == 0
        # A live borrow never overlaps a poisoned (freed) range: every
        # held view belongs to a live extent, and its bytes are intact.
        for name, views in self.held.items():
            assert name in self.contents
            assert self.ledger.live_borrows("extent", name) >= 0
            got = b"".join(bytes(v) for v in views)
            expected = self.contents[name]
            assert len(got) % len(expected) == 0
            assert got == expected * (len(got) // len(expected))

    def finish(self) -> None:
        for views in self.held.values():
            for view in views:
                view.release()
        self.held.clear()
        # Everything released: the end-of-run ledger check is clean.
        assert self.ledger.check_finish()["violations"] == 0
        self.tier.close()


@settings(max_examples=40, deadline=None)
@given(script=st.lists(STEP, min_size=1, max_size=40))
def test_random_interleavings_never_alias_poison(tmp_path_factory,
                                                 script):
    machine = TierMachine(tmp_path_factory.mktemp("tier-prop"))
    try:
        for verb, index, size_seed in script:
            machine.step(verb, index, size_seed)
    finally:
        machine.finish()


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(st.integers(min_value=1, max_value=64),
                      min_size=2, max_size=12),
       churn=st.integers(min_value=0, max_value=3))
def test_poison_never_leaks_into_promoted_bytes(tmp_path_factory, sizes,
                                                churn):
    """Drop/reuse churn: every re-promotion returns pristine bytes."""
    ledger = ProvenanceLedger()
    tier = PageStoreTier(
        str(tmp_path_factory.mktemp("tier-poison") / "t.bin"),
        ledger=ledger)
    try:
        for round_no, size in enumerate(sizes):
            victim = f"v{round_no}"
            tier.swap_out(victim, [b"\x11" * (size * 64)])
            tier.drop(victim)    # poisons the hole
            for c in range(churn):
                tier.swap_out(f"c{round_no}-{c}", [b"\x22" * 32])
            tenant = f"t{round_no}"
            payload = payload_for(round_no, size)
            tier.swap_out(tenant, [payload])
            got = b"".join(bytes(v) for v in tier.swap_in(tenant))
            assert POISON_BYTE not in got
            assert got == payload
        assert ledger.summary()["violations"] == 0
    finally:
        tier.close()
