"""Integration tests: the benchmark applications end-to-end, all modes.

Every application must produce *identical results* under Spark, SparkSer
and Deca — the transformation is transparent to the program (§1) — and the
results must match an independent plain-Python implementation.
"""

import math
from collections import Counter

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.data import (
    clustered_points,
    labeled_points,
    power_law_graph,
    random_words,
    rankings_table,
    uservisits_table,
)
from repro.apps.wordcount import run_wordcount
from repro.apps.logistic_regression import run_logistic_regression
from repro.apps.kmeans import run_kmeans
from repro.apps.pagerank import run_pagerank
from repro.apps.connected_components import run_connected_components
from repro.apps.sql_queries import (
    run_query1,
    run_query1_sparksql,
    run_query2,
    run_query2_sparksql,
)


def cfg(mode, heap_mb=32):
    return DecaConfig(mode=mode, heap_bytes=heap_mb * MB,
                      num_executors=2, tasks_per_executor=2)


MODES = list(ExecutionMode)


class TestWordCount:
    words = random_words(3000, 200)

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_counts_match_counter(self, mode):
        run = run_wordcount(self.words, cfg(mode), num_partitions=4)
        assert run.result == Counter(self.words)

    def test_modes_agree(self):
        results = [run_wordcount(self.words, cfg(m), 4).result
                   for m in MODES]
        assert results[0] == results[1] == results[2]


class TestLogisticRegression:
    points = labeled_points(1500, dimensions=8)

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_learns_a_separating_direction(self, mode):
        run = run_logistic_regression(self.points, cfg(mode),
                                      iterations=6, num_partitions=4)
        weights = run.result
        correct = 0
        for label, features in self.points:
            margin = sum(w * x for w, x in zip(weights, features))
            predicted = 1.0 if margin > 0 else 0.0
            correct += predicted == label
        assert correct / len(self.points) > 0.9

    def test_modes_produce_identical_weights(self):
        weights = [run_logistic_regression(self.points, cfg(m),
                                           iterations=3,
                                           num_partitions=4).result
                   for m in MODES]
        for a, b in zip(weights[0], weights[1]):
            assert math.isclose(a, b, rel_tol=1e-9)
        for a, b in zip(weights[0], weights[2]):
            assert math.isclose(a, b, rel_tol=1e-9)

    def test_cached_bytes_reported(self):
        run = run_logistic_regression(self.points, cfg(ExecutionMode.DECA),
                                      iterations=2, num_partitions=4)
        assert run.cached_bytes > 0


class TestKMeans:
    points = clustered_points(800, dimensions=6, clusters=4)

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_centers_converge_near_clusters(self, mode):
        run = run_kmeans(self.points, k=4, config=cfg(mode),
                         iterations=6, num_partitions=4)
        centers = run.result
        assert len(centers) == 4
        # Every point should be within a few units of some center.
        for point in self.points[:100]:
            best = min(
                math.dist(point, center) for center in centers)
            assert best < 6.0

    def test_modes_agree(self):
        results = [run_kmeans(self.points, 4, cfg(m), iterations=3,
                              num_partitions=4).result for m in MODES]
        for c0, c1 in zip(results[0], results[1]):
            assert all(math.isclose(a, b, rel_tol=1e-9)
                       for a, b in zip(c0, c1))


class TestPageRank:
    edges = power_law_graph(300, 2400)

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_ranks_sum_is_sane(self, mode):
        run = run_pagerank(self.edges, cfg(mode), iterations=5,
                           num_partitions=4)
        ranks = run.result
        assert all(rank > 0 for rank in ranks.values())
        # Damping 0.85: total rank stays near the vertex count.
        total = sum(ranks.values())
        assert 0.4 * 300 < total < 1.6 * 300

    def test_hub_outranks_average(self):
        run = run_pagerank(self.edges, cfg(ExecutionMode.SPARK),
                           iterations=5, num_partitions=4)
        ranks = run.result
        in_degree = Counter(dst for _, dst in self.edges)
        hub = in_degree.most_common(1)[0][0]
        mean = sum(ranks.values()) / len(ranks)
        assert ranks[hub] > 3 * mean

    def test_modes_agree(self):
        results = [run_pagerank(self.edges, cfg(m), iterations=3,
                                num_partitions=4).result for m in MODES]
        for vertex, rank in results[0].items():
            assert math.isclose(rank, results[1][vertex], rel_tol=1e-9)
            assert math.isclose(rank, results[2][vertex], rel_tol=1e-9)


class TestConnectedComponents:
    def test_finds_true_components(self):
        # Two disjoint cliques plus a bridge-free singleton chain.
        edges = []
        for base in (0, 100):
            for i in range(base, base + 10):
                for j in range(i + 1, base + 10):
                    edges.append((i, j))
        run = run_connected_components(
            edges, cfg(ExecutionMode.SPARK), iterations=6,
            num_partitions=4)
        labels = run.result
        first = {labels[v] for v in range(0, 10)}
        second = {labels[v] for v in range(100, 110)}
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_chain_collapses_to_minimum(self, mode):
        edges = [(i, i + 1) for i in range(30)]
        run = run_connected_components(edges, cfg(mode), iterations=40,
                                       num_partitions=4)
        assert set(run.result.values()) == {0}


class TestSqlQueries:
    rankings = rankings_table(800)
    visits = uservisits_table(1000)

    def expected_q1(self):
        return sorted((r[0], r[1]) for r in self.rankings if r[1] > 100)

    def expected_q2(self):
        sums: dict[str, float] = {}
        for row in self.visits:
            sums[row[0][:5]] = sums.get(row[0][:5], 0.0) + row[3]
        return sorted(sums.items())

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_query1_rdd(self, mode):
        run = run_query1(self.rankings, cfg(mode), num_partitions=4)
        assert sorted(run.result) == self.expected_q1()

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_query2_rdd(self, mode):
        run = run_query2(self.visits, cfg(mode), num_partitions=4)
        expected = self.expected_q2()
        assert len(run.result) == len(expected)
        for (key, total), (ekey, etotal) in zip(run.result, expected):
            assert key == ekey
            assert math.isclose(total, etotal, rel_tol=1e-9)

    def test_sparksql_agrees_with_rdd(self):
        q1 = run_query1_sparksql(self.rankings)
        assert sorted(q1.rows) == self.expected_q1()
        q2 = run_query2_sparksql(self.visits)
        expected = self.expected_q2()
        for (key, total), (ekey, etotal) in zip(q2.rows, expected):
            assert key == ekey
            assert math.isclose(total, etotal, rel_tol=1e-9)
