"""Tests for :mod:`repro.obs`: spans, exporters, byte-determinism.

The trace workload (``run_trace_point``) is a WordCount sized so one run
exercises every traced code path: cache swap-outs, shuffle spills, GC
pauses, remote fetches, and two jobs' worth of job/stage/task spans.
"""

import json

import pytest

from repro.bench.harness import run_trace_point
from repro.config import MB, DecaConfig, FaultConfig, ExecutionMode
from repro.jvm.heap import SimHeap
from repro.jvm.objects import Lifetime
from repro.obs import (
    DRIVER_PID,
    TraceEvent,
    Tracer,
    chrome_trace,
    utilization_summary,
    write_chrome_trace,
)
from repro.simtime import SimClock
from repro.spark.profiler import HeapProfiler


def trace_wordcount(faults=None):
    row = run_trace_point(ExecutionMode.SPARK, faults=faults)
    return row.extra["run"].ctx.tracer


@pytest.fixture(scope="module")
def tracer():
    """One traced run, shared by the read-only assertions below."""
    return trace_wordcount()


class TestTracerUnit:
    def test_emit_preserves_order(self):
        tracer = Tracer()
        tracer.instant("a", "cat", ts_ms=1.0)
        tracer.complete("b", "cat", ts_ms=2.0, dur_ms=3.0)
        assert [e.name for e in tracer.events] == ["a", "b"]
        assert len(tracer) == 2

    def test_helpers_set_phase_and_args(self):
        tracer = Tracer()
        tracer.complete("span", "task", ts_ms=1.0, dur_ms=2.0,
                        pid=3, tid=1, foo=7)
        tracer.instant("point", "cache", ts_ms=5.0, bar="x")
        span, point = tracer.events
        assert span.phase == "X" and span.args == {"foo": 7}
        assert span.end_ms == pytest.approx(3.0)
        assert point.phase == "i" and point.args == {"bar": "x"}

    def test_listeners_see_events_even_when_not_recording(self):
        tracer = Tracer(recording=False)
        seen = []
        tracer.add_listener(seen.append)
        tracer.instant("a", "cat", ts_ms=0.0)
        assert [e.name for e in seen] == ["a"]
        assert tracer.events == []

    def test_by_category_and_end_ms(self):
        tracer = Tracer()
        tracer.complete("a", "task", ts_ms=0.0, dur_ms=10.0)
        tracer.instant("b", "gc", ts_ms=4.0)
        assert [e.name for e in tracer.by_category("gc")] == ["b"]
        assert tracer.end_ms == pytest.approx(10.0)
        tracer.clear()
        assert len(tracer) == 0 and tracer.end_ms == 0.0


class TestTraceContents:
    def test_job_spans_on_driver(self, tracer):
        jobs = tracer.by_category("job")
        assert len(jobs) == 2  # count() then collect()
        assert all(e.pid == DRIVER_PID and e.phase == "X" and e.dur_ms > 0
                   for e in jobs)

    def test_stage_spans_cover_both_jobs(self, tracer):
        stages = tracer.by_category("stage")
        assert len(stages) >= 3  # result, shuffle-map, result
        assert all(e.pid == DRIVER_PID and e.dur_ms > 0 for e in stages)

    def test_task_spans_carry_attempt_metadata(self, tracer):
        tasks = tracer.by_category("task")
        assert len(tasks) >= 8
        for event in tasks:
            assert event.pid != DRIVER_PID
            assert event.args["status"] == "success"
            assert event.args["gc_pause_ms"] >= 0.0
            assert {"stage_id", "task_id", "attempt"} <= event.args.keys()

    def test_gc_events_tag_executor_and_occupancy(self, tracer):
        gcs = tracer.by_category("gc")
        assert gcs, "the trace workload must trigger at least one GC"
        for event in gcs:
            assert event.args["executor_id"] == event.pid - 1
            assert event.args["heap_used_bytes"] >= 0
            assert event.args["pause_ms"] >= 0.0

    def test_spill_and_swap_events_present(self, tracer):
        spills = [e for e in tracer.events if e.name == "shuffle:spill"]
        swaps = [e for e in tracer.events if e.name == "cache:swap-out"]
        assert spills and all(e.args["spilled_bytes"] > 0 for e in spills)
        assert swaps and all(e.args["released_bytes"] > 0 for e in swaps)

    def test_fetch_and_io_events_present(self, tracer):
        fetches = [e for e in tracer.events if e.name == "shuffle:fetch"]
        assert fetches
        assert any(e.args["remote"] for e in fetches)
        assert tracer.by_category("io.disk")
        assert tracer.by_category("io.net")

    def test_events_stay_inside_traced_wall_time(self, tracer):
        wall = tracer.end_ms
        assert all(0.0 <= e.ts_ms and e.end_ms <= wall + 1e-9
                   for e in tracer.events)


class TestChromeExport:
    def test_document_structure(self, tracer):
        doc = chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) > len(tracer.events)  # + metadata

    def test_process_names_for_driver_and_executors(self, tracer):
        doc = chrome_trace(tracer)
        names = {row["pid"]: row["args"]["name"]
                 for row in doc["traceEvents"] if row["ph"] == "M"}
        assert names[DRIVER_PID] == "driver"
        assert names[1] == "executor-0"
        assert names[2] == "executor-1"

    def test_timestamps_are_microseconds(self, tracer):
        doc = chrome_trace(tracer)
        job = next(row for row in doc["traceEvents"]
                   if row.get("cat") == "job")
        source = tracer.by_category("job")[0]
        assert job["ts"] == pytest.approx(source.ts_ms * 1000.0)
        assert job["dur"] == pytest.approx(source.dur_ms * 1000.0)

    def test_phase_specific_fields(self, tracer):
        doc = chrome_trace(tracer)
        for row in doc["traceEvents"]:
            assert row["ph"] in ("X", "i", "M")
            if row["ph"] == "X":
                assert row["dur"] >= 0
            if row["ph"] == "i":
                assert row["s"] == "t"

    def test_write_chrome_trace_round_trips(self, tracer, tmp_path):
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path, encoding="utf-8") as handle:
            assert json.load(handle) == chrome_trace(tracer)


class TestDeterminism:
    def test_same_seed_runs_export_identical_bytes(self, tracer):
        second = trace_wordcount()
        first_bytes = json.dumps(chrome_trace(tracer), indent=2,
                                 sort_keys=True)
        second_bytes = json.dumps(chrome_trace(second), indent=2,
                                  sort_keys=True)
        assert first_bytes == second_bytes


class TestFaultTracing:
    def test_aborted_attempts_appear_as_task_spans(self):
        faults = FaultConfig(seed=17, task_kill_prob=0.08)
        tracer = trace_wordcount(faults=faults)
        statuses = {e.args["status"] for e in tracer.by_category("task")}
        assert "success" in statuses
        aborted = statuses - {"success"}
        assert aborted, "the seeded fault run must abort at least one attempt"


class TestUtilizationSummary:
    def test_lists_every_executor_with_breakdown(self, tracer):
        text = utilization_summary(tracer, title="util")
        assert text.startswith("util\n")
        assert "executor-0" in text and "executor-1" in text
        assert "gc(ms)" in text and "network(ms)" in text

    def test_empty_tracer_renders_header_only(self):
        text = utilization_summary(Tracer())
        assert "executor-" not in text


class TestProfilerConsumesGcStream:
    def make_heap(self):
        clock = SimClock()
        return SimHeap(DecaConfig(heap_bytes=4 * MB), clock), clock

    def test_sample_pause_matches_heap_stats(self):
        heap, clock = self.make_heap()
        profiler = HeapProfiler(heap, clock, period_ms=10.0)
        group = heap.new_group("g", Lifetime.TEMPORARY)
        for _ in range(8):
            heap.allocate(group, 2000, 1 * MB)
        assert heap.stats.pause_ms > 0, "allocations must have triggered GC"
        profiler.force_sample()
        assert profiler.samples[-1].gc_pause_ms == \
            pytest.approx(heap.stats.pause_ms)

    def test_pre_attach_pauses_still_counted(self):
        heap, clock = self.make_heap()
        group = heap.new_group("g", Lifetime.TEMPORARY)
        for _ in range(8):
            heap.allocate(group, 2000, 1 * MB)
        before_attach = heap.stats.pause_ms
        assert before_attach > 0
        profiler = HeapProfiler(heap, clock, period_ms=10.0)
        profiler.force_sample()
        assert profiler.samples[-1].gc_pause_ms == \
            pytest.approx(before_attach)

    def test_gc_listener_sees_events(self):
        heap, _ = self.make_heap()
        seen = []
        heap.add_gc_listener(seen.append)
        group = heap.new_group("g", Lifetime.TEMPORARY)
        for _ in range(8):
            heap.allocate(group, 2000, 1 * MB)
        assert seen
        assert all(isinstance(e.pause_ms, float) for e in seen)


class TestTraceEventBasics:
    def test_default_event_is_driver_scoped(self):
        event = TraceEvent(name="n", category="c", phase="i", ts_ms=1.0)
        assert event.pid == DRIVER_PID
        assert event.end_ms == pytest.approx(1.0)
