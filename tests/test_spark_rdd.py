"""Tests for the RDD API — semantics checked against plain Python."""

from collections import Counter

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.errors import ExecutionError
from repro.spark import DecaContext


def make_ctx(mode=ExecutionMode.SPARK, **overrides):
    defaults = dict(mode=mode, heap_bytes=32 * MB, num_executors=2,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestBasicTransformations:
    def test_map_collect(self):
        ctx = make_ctx()
        out = ctx.parallelize(range(100), 4).map(lambda x: x * 2).collect()
        assert sorted(out) == [x * 2 for x in range(100)]

    def test_filter(self):
        ctx = make_ctx()
        out = ctx.parallelize(range(50), 4).filter(
            lambda x: x % 3 == 0).collect()
        assert sorted(out) == [x for x in range(50) if x % 3 == 0]

    def test_flat_map(self):
        ctx = make_ctx()
        out = ctx.parallelize(["a b", "c d e"], 2).flat_map(
            str.split).collect()
        assert sorted(out) == ["a", "b", "c", "d", "e"]

    def test_map_partitions(self):
        ctx = make_ctx()
        out = ctx.parallelize(range(10), 2).map_partitions(
            lambda it: [sum(it)]).collect()
        assert sum(out) == sum(range(10))

    def test_chained_transformations(self):
        ctx = make_ctx()
        out = ctx.parallelize(range(20), 4) \
            .map(lambda x: x + 1) \
            .filter(lambda x: x % 2 == 0) \
            .map(lambda x: x * 10) \
            .collect()
        assert sorted(out) == [x * 10 for x in range(1, 21) if x % 2 == 0]

    def test_union(self):
        ctx = make_ctx()
        a = ctx.parallelize([1, 2], 1)
        b = ctx.parallelize([3, 4], 1)
        assert sorted(a.union(b).collect()) == [1, 2, 3, 4]

    def test_key_by_and_map_values(self):
        ctx = make_ctx()
        out = ctx.parallelize(["aa", "b"], 2).key_by(len).map_values(
            str.upper).collect()
        assert sorted(out) == [(1, "B"), (2, "AA")]


class TestActions:
    def test_count(self):
        ctx = make_ctx()
        assert ctx.parallelize(range(123), 5).count() == 123

    def test_reduce(self):
        ctx = make_ctx()
        assert ctx.parallelize(range(1, 11), 3).reduce(
            lambda a, b: a + b) == 55

    def test_reduce_empty_raises(self):
        ctx = make_ctx()
        with pytest.raises(ExecutionError):
            ctx.parallelize([], 2).reduce(lambda a, b: a + b)

    def test_take(self):
        ctx = make_ctx()
        assert len(ctx.parallelize(range(100), 4).take(7)) == 7

    def test_foreach(self):
        ctx = make_ctx()
        seen = []
        ctx.parallelize(range(5), 2).foreach(seen.append)
        assert sorted(seen) == [0, 1, 2, 3, 4]


class TestKeyBasedOperators:
    def test_reduce_by_key_matches_counter(self):
        ctx = make_ctx()
        words = ["a", "b", "a", "c", "b", "a"] * 10
        pairs = ctx.parallelize(words, 4).map(lambda w: (w, 1))
        out = dict(pairs.reduce_by_key(lambda a, b: a + b, 4).collect())
        assert out == Counter(words)

    def test_group_by_key(self):
        ctx = make_ctx()
        data = [(1, "a"), (2, "b"), (1, "c"), (2, "d"), (1, "e")]
        out = {k: sorted(v) for k, v in
               ctx.parallelize(data, 3).group_by_key(2).collect()}
        assert out == {1: ["a", "c", "e"], 2: ["b", "d"]}

    def test_sort_by_key_locally_sorted(self):
        ctx = make_ctx()
        data = [(5, "e"), (1, "a"), (3, "c"), (2, "b"), (4, "d")]
        out = ctx.parallelize(data, 2).sort_by_key(1).collect()
        assert out == sorted(data)

    def test_join(self):
        ctx = make_ctx()
        left = ctx.parallelize([(1, "a"), (2, "b"), (3, "c")], 2)
        right = ctx.parallelize([(1, "x"), (3, "y"), (4, "z")], 2)
        out = sorted(left.join(right, 2).collect())
        assert out == [(1, ("a", "x")), (3, ("c", "y"))]

    def test_join_with_duplicates_is_cartesian_per_key(self):
        ctx = make_ctx()
        left = ctx.parallelize([(1, "a"), (1, "b")], 1)
        right = ctx.parallelize([(1, "x"), (1, "y")], 1)
        out = sorted(left.join(right, 2).collect())
        assert len(out) == 4

    def test_aggregate_by_key(self):
        ctx = make_ctx()
        data = [("a", 2), ("a", 3), ("b", 5)]
        out = dict(ctx.parallelize(data, 2).aggregate_by_key(
            0, lambda z, v: z + v, lambda a, b: a + b, 2).collect())
        assert out == {"a": 5, "b": 5}

    def test_distinct(self):
        ctx = make_ctx()
        out = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct(2).collect()
        assert sorted(out) == [1, 2, 3]

    def test_results_identical_across_modes(self):
        words = ["x", "y", "z", "x", "y", "x"] * 5
        results = []
        for mode in ExecutionMode:
            ctx = make_ctx(mode)
            pairs = ctx.parallelize(words, 3).map(lambda w: (w, 1))
            results.append(
                dict(pairs.reduce_by_key(lambda a, b: a + b, 2).collect()))
        assert results[0] == results[1] == results[2]


class TestCaching:
    def test_cache_returns_same_records(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(50), 4).map(lambda x: x * 3).cache()
        first = sorted(rdd.collect())
        second = sorted(rdd.collect())
        assert first == second == [x * 3 for x in range(50)]

    def test_cache_blocks_exist_after_first_use(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(40), 4).map(lambda x: x).cache()
        rdd.collect()
        total_blocks = sum(len(e.cache.blocks) for e in ctx.executors)
        assert total_blocks == 4

    def test_unpersist_releases_blocks(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(40), 4).map(lambda x: x).cache()
        rdd.collect()
        rdd.unpersist()
        assert all(not e.cache.blocks for e in ctx.executors)

    def test_second_pass_is_cheaper(self):
        """Caching avoids recomputation: the second job charges less."""
        ctx = make_ctx()
        rdd = ctx.parallelize(range(2000), 4).map(lambda x: x + 1).cache()
        rdd.count()
        first_wall = ctx.wall_ms
        rdd.count()
        second_wall = ctx.wall_ms - first_wall
        assert second_wall < first_wall

    def test_zero_partitions_rejected(self):
        ctx = make_ctx()
        with pytest.raises(ExecutionError):
            ctx.parallelize([1], 0)


class TestMultiStageJobs:
    def test_two_shuffles_in_one_job(self):
        ctx = make_ctx()
        data = [("a", 1), ("b", 2), ("a", 3)]
        rdd = ctx.parallelize(data, 2) \
            .reduce_by_key(lambda a, b: a + b, 2) \
            .map(lambda kv: (kv[1] % 2, kv[0])) \
            .group_by_key(2)
        out = {k: sorted(v) for k, v in rdd.collect()}
        assert out == {0: ["a", "b"]}

    def test_shuffle_reuse_across_jobs(self):
        """A second action over the same shuffle reuses the map outputs."""
        ctx = make_ctx()
        counts = ctx.parallelize(["a", "b", "a"], 2) \
            .map(lambda w: (w, 1)).reduce_by_key(lambda a, b: a + b, 2)
        assert counts.count() == 2
        stages_first = sum(len(j.stages) for j in ctx._jobs)
        assert dict(counts.collect()) == {"a": 2, "b": 1}
        stages_second = sum(len(j.stages) for j in ctx._jobs) - stages_first
        assert stages_second == 1  # only the result stage re-ran

    def test_job_metrics_recorded(self):
        ctx = make_ctx()
        ctx.parallelize(range(10), 2).map(lambda x: x).collect()
        run = ctx.finish()
        assert len(run.jobs) == 1
        assert run.jobs[0].stages
        assert run.wall_ms > 0


class TestGlobalSort:
    def test_sort_by_key_is_globally_ordered(self):
        """Range partitioning: concatenated partitions form a total
        order (Spark's RangePartitioner behaviour)."""
        import random
        rng = random.Random(9)
        ctx = make_ctx()
        data = [(rng.randrange(100_000), i) for i in range(2000)]
        out = ctx.parallelize(data, 6).sort_by_key(4).collect()
        keys = [k for k, _ in out]
        assert keys == sorted(k for k, _ in data)

    def test_sort_by_key_strings(self):
        ctx = make_ctx()
        data = [(w, 1) for w in ["pear", "apple", "fig", "banana",
                                 "cherry", "date"]]
        out = ctx.parallelize(data, 3).sort_by_key(2).collect()
        assert [k for k, _ in out] == sorted(k for k, _ in data)

    def test_sort_single_partition_input(self):
        ctx = make_ctx()
        out = ctx.parallelize([(3, "c"), (1, "a"), (2, "b")], 1) \
            .sort_by_key(3).collect()
        assert out == [(1, "a"), (2, "b"), (3, "c")]

    def test_sort_with_duplicate_keys(self):
        ctx = make_ctx()
        data = [(1, "x"), (2, "y"), (1, "z"), (2, "w")] * 5
        out = ctx.parallelize(data, 4).sort_by_key(3).collect()
        keys = [k for k, _ in out]
        assert keys == sorted(keys)
        assert len(out) == len(data)
