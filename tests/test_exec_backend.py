"""The pluggable execution backend (``repro.exec``).

Cross-backend equivalence is the contract: the mp backend forks real
workers and moves decomposed data through shared-memory Deca pages, yet
every job must produce exactly the sim backend's results — including
under injected faults — while pickling ~no record bytes on decomposed
paths (docs/execution_backends.md).
"""

import pytest

from repro.config import ConfigError, DecaConfig, ExecutionMode, \
    FaultConfig, ScriptedFault
from repro.errors import ExecutionError, StageAbortError
from repro.exec import BackendStats, SimBackend, create_backend
from repro.exec.shm import shm_available
from repro.spark import DecaContext

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory")


def make_ctx(backend="mp", mode=ExecutionMode.DECA, **overrides):
    defaults = dict(mode=mode, execution_backend=backend,
                    num_executors=2, tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


def wordcount(ctx, records=2000, keys=40, partitions=4):
    data = [(i % keys, 1) for i in range(records)]
    counts = ctx.parallelize(data, partitions, name="eb.pairs") \
                .reduce_by_key(lambda a, b: a + b, partitions,
                               name="eb.counts")
    return sorted(counts.collect())


class TestBackendSelection:
    def test_default_is_sim(self):
        ctx = make_ctx(backend="sim")
        assert isinstance(ctx.backend, SimBackend)
        assert ctx.backend.stats.backend == "sim"
        ctx.finish()

    def test_mp_selected_by_config(self):
        ctx = make_ctx()
        assert ctx.backend.name == "mp"
        assert ctx.backend.stats.backend == "mp"
        ctx.finish()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            DecaConfig(execution_backend="threads")

    def test_sim_backend_declines_every_stage(self):
        stats = BackendStats(backend="sim")
        backend = SimBackend.__new__(SimBackend)
        backend.stats = stats
        assert backend.run_map_stage(None, None, None, None, 0.0) is False
        assert backend.run_result_stage(
            None, None, None, None, None, 0.0) is None


class TestEquivalence:
    @pytest.mark.parametrize("mode", [ExecutionMode.DECA,
                                      ExecutionMode.SPARK,
                                      ExecutionMode.SPARK_SER])
    def test_wordcount_matches_sim(self, mode):
        sim_ctx = make_ctx(backend="sim", mode=mode)
        sim = wordcount(sim_ctx)
        sim_ctx.finish()
        mp_ctx = make_ctx(mode=mode)
        mp = wordcount(mp_ctx)
        mp_ctx.finish()
        assert mp == sim

    def test_iterative_job_matches_sim(self):
        """Multiple jobs over one cached RDD (PageRank's shape)."""

        def run(backend):
            ctx = make_ctx(backend=backend)
            base = ctx.parallelize([(i % 10, i) for i in range(500)], 4,
                                   name="it.base") \
                      .reduce_by_key(lambda a, b: a + b, 4,
                                     name="it.sums").cache()
            totals = [base.map(lambda kv: kv[1]).reduce(lambda a, b: a + b)
                      for _ in range(3)]
            metrics = ctx.finish()
            return totals, metrics

        sim, _ = run("sim")
        mp, metrics = run("mp")
        assert mp == sim
        assert metrics.backend["mp_stages"] >= 4

    def test_result_stage_rows_keep_partition_order(self):
        ctx = make_ctx()
        got = ctx.parallelize(list(range(100)), 5, name="ord.nums") \
                 .map(lambda x: x * 2).collect()
        ctx.finish()
        assert got == [x * 2 for x in range(100)]


class TestBackendStats:
    def test_decomposed_shuffle_pickles_no_records(self):
        """The WordCount app attaches its UDT model, so the whole map
        output crosses process boundaries as shared pages, not pickle."""
        from repro.apps.wordcount import run_wordcount
        words = [f"w{i % 40}" for i in range(2000)]
        run = run_wordcount(
            words,
            DecaConfig(mode=ExecutionMode.DECA, execution_backend="mp",
                       num_executors=2, tasks_per_executor=2),
            num_partitions=4)
        stats = run.metrics.backend
        assert stats["backend"] == "mp"
        assert stats["bytes_pickled_records"] == 0
        assert stats["bytes_shared"] > 0
        assert stats["segments_created"] > 0
        assert stats["mp_tasks"] >= 8
        assert stats["segments_live"] == 0   # finish() released everything

    def test_udt_less_shuffle_counts_pickled_bytes(self):
        """A pipeline with no UDT model cannot decompose; its map output
        is pickled and the backend owns up to every byte."""
        ctx = make_ctx()
        wordcount(ctx)
        metrics = ctx.finish()
        stats = metrics.backend
        assert stats["bytes_pickled_records"] > 0
        assert stats["segments_created"] == 0
        assert stats["segments_live"] == 0

    def test_single_worker_pool_still_correct(self):
        sim_ctx = make_ctx(backend="sim")
        sim = wordcount(sim_ctx)
        sim_ctx.finish()
        ctx = make_ctx(mp_workers=1)
        assert ctx.backend.num_workers == 1
        assert wordcount(ctx) == sim
        ctx.finish()


class TestCacheLifecycle:
    def test_deca_cache_lives_in_shared_segments(self):
        """A cached decomposed RDD is one shm segment per split; the
        second job reads the same physical pages."""
        from repro.apps.wordcount import wordcount_udt_info
        ctx = make_ctx()
        words = [f"w{i % 30}" for i in range(1200)]
        pairs = ctx.text_file(words, 4, name="cl.input") \
                   .map(lambda w: (w, 1), name="cl.pairs") \
                   .with_udt(wordcount_udt_info()).cache()
        counts = pairs.reduce_by_key(lambda a, b: a + b, 4,
                                     name="cl.counts")
        first = sorted(counts.collect())
        assert sorted(counts.collect()) == first
        backend = ctx.backend
        kinds = {entry.kind for entry in backend.cache_blocks.values()}
        assert kinds == {"shm"}
        live_before = len(backend.registry)
        pairs.unpersist()
        assert not backend.cache_blocks
        assert len(backend.registry) < live_before
        ctx.finish()

    def test_udt_less_cache_matches_sim_values(self):
        """OBJECTS-strategy cache blocks round-trip through pickle but
        must still reproduce the sim answer exactly."""

        def run(backend):
            ctx = make_ctx(backend=backend)
            cached = ctx.parallelize([(i % 8, 1) for i in range(800)], 4,
                                     name="cl2.pairs") \
                        .reduce_by_key(lambda a, b: a + b, 4,
                                       name="cl2.counts").cache()
            out = [sorted(cached.collect()) for _ in range(2)]
            ctx.finish()
            return out

        assert run("mp") == run("sim")


class TestColdDemotion:
    """Cold tier x mp backend: demoted blocks must never resolve as shm."""

    def test_resolvable_predicate(self):
        from repro.exec.mp import CacheEntry
        from repro.exec.worker import _resolvable
        assert not _resolvable(None)
        entry = CacheEntry(kind="records", count=1, records=[1])
        assert _resolvable(entry)
        entry.cold = True
        assert not _resolvable(entry)

    def test_cold_entry_refuses_hot_reads(self):
        from repro.exec.mp import CacheEntry
        entry = CacheEntry(kind="records", count=1, records=[1], cold=True)
        with pytest.raises(RuntimeError):
            list(entry.read())

    def test_demoted_blocks_recompute_and_rehydrate(self):
        """After demote_block the worker recomputes from lineage and the
        backend table swaps the cold entry for the fresh hot block."""
        from repro.apps.wordcount import wordcount_udt_info
        ctx = make_ctx()
        words = [f"w{i % 20}" for i in range(800)]
        pairs = ctx.text_file(words, 4, name="cd.input") \
                   .map(lambda w: (w, 1), name="cd.pairs") \
                   .with_udt(wordcount_udt_info()).cache()
        first = sorted(pairs.collect())
        backend = ctx.backend
        keys = list(backend.cache_blocks)
        assert keys
        for key in keys:
            backend.demote_block(key)
            backend.demote_block(key)   # idempotent: counted once
        assert backend.stats.extra["blocks_demoted"] == len(keys)
        assert all(e.cold for e in backend.cache_blocks.values())
        assert sorted(pairs.collect()) == first
        assert all(not e.cold for e in backend.cache_blocks.values())
        ctx.finish()


class TestFaultsUnderMp:
    def test_task_kill_retries_to_same_answer(self):
        sim_ctx = make_ctx(backend="sim")
        clean = wordcount(sim_ctx)
        sim_ctx.finish()
        ctx = make_ctx(faults=FaultConfig(scripted=(
            ScriptedFault("task-kill", stage_id=0, partition=1,
                          after_ops=5),)))
        assert wordcount(ctx) == clean
        metrics = ctx.finish()
        assert metrics.recovery.task_failures == 1
        assert metrics.recovery.task_retries == 1
        statuses = sorted(
            (t.task_id, t.attempt, t.status)
            for t in metrics.jobs[0].stages[0].tasks if t.task_id == 1)
        assert statuses == [(1, 0, "killed"), (1, 1, "success")]

    def test_repeated_kills_abort_the_stage(self):
        faults = FaultConfig(scripted=tuple(
            ScriptedFault("task-kill", stage_id=0, partition=0,
                          attempt=attempt, after_ops=1)
            for attempt in range(4)))
        ctx = make_ctx(faults=faults)
        with pytest.raises(StageAbortError):
            wordcount(ctx)
        ctx.finish()

    def test_worker_exception_raises_execution_error(self):
        ctx = make_ctx()

        def boom(kv):
            raise ValueError("bad record")

        with pytest.raises(ExecutionError):
            ctx.parallelize([(1, 1)] * 8, 2, name="ex.pairs") \
               .map(boom).collect()
        ctx.finish()


class TestCreateBackend:
    def test_create_backend_dispatches_on_config(self):
        ctx = make_ctx(backend="sim")
        assert isinstance(create_backend(ctx), SimBackend)
        ctx.finish()
