"""Tests for per-field fixed-length detection (§3.3's "w.r.t. f").

A single array type can be allocated with a global constant for one field
and data-dependent lengths for another.  The type-level check fails, but
the paper's definition is per-field: a class whose arrays all reach it
through the fixed field still refines to SFST.
"""

from repro.analysis import (
    ArrayType,
    Assign,
    CallGraph,
    ClassType,
    Const,
    DOUBLE,
    Field,
    GlobalClassifier,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    SizeType,
    StoreField,
    SymInput,
)


def mixed_length_scope():
    """One shared Array[double] type: fixed length 4 into ``fixed.data``,
    per-record lengths into ``var.data``."""
    shared_array = ArrayType(DOUBLE)
    fixed_field = Field("data", shared_array, final=True)
    fixed_cls = ClassType("FixedHolder", [fixed_field])
    fixed_ctor = Method(
        "<init>", params=("data",),
        body=(StoreField("this", fixed_field, Local("data")),),
        owner=fixed_cls, is_constructor=True)

    var_field = Field("data", shared_array, final=True)
    var_cls = ClassType("VarHolder", [var_field])
    var_ctor = Method(
        "<init>", params=("data",),
        body=(StoreField("this", var_field, Local("data")),),
        owner=var_cls, is_constructor=True)

    entry = Method(
        name="entry",
        body=(
            Loop((
                NewArray("a", shared_array, Const(4)),
                NewObject("f", fixed_cls, ctor=fixed_ctor,
                          args=(Local("a"),)),
                Assign("n", SymInput("n")),
                NewArray("b", shared_array, Local("n")),
                NewObject("v", var_cls, ctor=var_ctor,
                          args=(Local("b"),)),
            )),
            Return(),
        ))
    callgraph = CallGraph.build(entry,
                                known_types=(fixed_cls, var_cls))
    return (shared_array, fixed_field, fixed_cls, var_field, var_cls,
            callgraph)


class TestPerFieldFixedLength:
    def test_type_level_check_fails(self):
        shared, *_, callgraph = mixed_length_scope()
        classifier = GlobalClassifier(callgraph)
        assert not classifier.is_fixed_length(shared)

    def test_field_level_check_distinguishes(self):
        shared, fixed_field, _, var_field, _, callgraph = \
            mixed_length_scope()
        classifier = GlobalClassifier(callgraph)
        assert classifier.is_fixed_length(shared, field=fixed_field)
        assert not classifier.is_fixed_length(shared, field=var_field)

    def test_fixed_holder_refines_to_sfst(self):
        _, _, fixed_cls, _, _, callgraph = mixed_length_scope()
        classifier = GlobalClassifier(callgraph)
        assert classifier.classify(fixed_cls) is SizeType.STATIC_FIXED

    def test_var_holder_stays_rfst(self):
        _, _, _, _, var_cls, callgraph = mixed_length_scope()
        classifier = GlobalClassifier(callgraph)
        # Per-instance fixed (final field, array built once) but not
        # statically sized.
        assert classifier.classify(var_cls) is SizeType.RUNTIME_FIXED

    def test_field_without_sites_falls_back_to_type(self):
        shared, fixed_field, *_ , callgraph = mixed_length_scope()
        classifier = GlobalClassifier(callgraph)
        orphan = Field("other", shared, final=True)
        # No allocation flows into `orphan`: fall back to the (failing)
        # type-level verdict.
        assert not classifier.is_fixed_length(shared, field=orphan)


class TestUdtPredicates:
    def test_is_primitive_and_is_array(self):
        from repro.analysis import INT
        assert INT.is_primitive
        assert not INT.is_array
        arr = ArrayType(INT)
        assert arr.is_array
        assert not arr.is_primitive
        cls = ClassType("C", [Field("x", INT)])
        assert not cls.is_primitive and not cls.is_array
