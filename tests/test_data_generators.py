"""Tests for the synthetic dataset generators."""

import pytest

from repro.data import (
    GRAPH_PRESETS,
    clustered_points,
    graph_preset,
    labeled_points,
    power_law_graph,
    random_words,
    rankings_table,
    uservisits_table,
)
from repro.errors import DecaError


class TestRandomWords:
    def test_counts_and_cardinality(self):
        words = random_words(5000, 100)
        assert len(words) == 5000
        assert len(set(words)) <= 100
        # With 5000 draws over 100 keys, all keys should appear.
        assert len(set(words)) == 100

    def test_deterministic_per_seed(self):
        assert random_words(100, 10, seed=5) == random_words(100, 10,
                                                             seed=5)
        assert random_words(100, 10, seed=5) != random_words(100, 10,
                                                             seed=6)

    def test_word_lengths_respected(self):
        for word in set(random_words(500, 50, min_len=6, max_len=8)):
            assert 6 <= len(word) <= 8

    def test_stable_vocabulary(self):
        """Every occurrence of a key is the identical string."""
        words = random_words(2000, 10)
        by_prefix = {}
        for word in words:
            by_prefix.setdefault(word, word)
        assert len(by_prefix) <= 10

    def test_invalid_args(self):
        with pytest.raises(DecaError):
            random_words(-1, 10)
        with pytest.raises(DecaError):
            random_words(10, 0)
        with pytest.raises(DecaError):
            random_words(10, 5, min_len=5, max_len=3)


class TestVectors:
    def test_labeled_points_shape(self):
        points = labeled_points(200, dimensions=7)
        assert len(points) == 200
        assert all(label in (0.0, 1.0) for label, _ in points)
        assert all(len(features) == 7 for _, features in points)

    def test_labels_are_separable_on_average(self):
        points = labeled_points(2000, dimensions=4)
        pos = [f[0] for label, f in points if label == 1.0]
        neg = [f[0] for label, f in points if label == 0.0]
        assert sum(pos) / len(pos) > 0.5
        assert sum(neg) / len(neg) < -0.5

    def test_clustered_points_shape(self):
        points = clustered_points(300, dimensions=5, clusters=3)
        assert len(points) == 300
        assert all(len(p) == 5 for p in points)

    def test_invalid_args(self):
        with pytest.raises(DecaError):
            labeled_points(-1)
        with pytest.raises(DecaError):
            clustered_points(10, dimensions=0)


class TestGraphs:
    def test_edge_count(self):
        edges = power_law_graph(100, 500)
        assert len(edges) == 500

    def test_every_vertex_has_out_edge(self):
        edges = power_law_graph(200, 800)
        sources = {src for src, _ in edges}
        assert sources == set(range(200))

    def test_no_self_loops(self):
        assert all(src != dst for src, dst in power_law_graph(100, 400))

    def test_degree_distribution_is_heavy_tailed(self):
        edges = power_law_graph(1000, 10_000)
        in_degree: dict[int, int] = {}
        for _, dst in edges:
            in_degree[dst] = in_degree.get(dst, 0) + 1
        degrees = sorted(in_degree.values(), reverse=True)
        mean = sum(degrees) / len(degrees)
        # The hottest vertex should be far above the mean.
        assert degrees[0] > 5 * mean

    def test_presets_match_table2_ratios(self):
        for name in ("LiveJournal", "WebBase", "HiBench", "Pokec"):
            vertices, edge_count = GRAPH_PRESETS[name]
            edges = graph_preset(name)
            assert len(edges) == edge_count
            assert max(max(s, d) for s, d in edges) < vertices

    def test_unknown_preset(self):
        with pytest.raises(DecaError):
            graph_preset("Twitter")

    def test_invalid_args(self):
        with pytest.raises(DecaError):
            power_law_graph(1, 10)
        with pytest.raises(DecaError):
            power_law_graph(10, 5)


class TestTables:
    def test_rankings_schema_shape(self):
        rows = rankings_table(100)
        assert len(rows) == 100
        for url, rank, duration in rows:
            assert url.startswith("url")
            assert rank >= 0
            assert 1 <= duration <= 60

    def test_rankings_filter_selectivity(self):
        """pageRank > 100 keeps a small but non-empty slice (Query 1)."""
        rows = rankings_table(5000)
        selected = [r for r in rows if r[1] > 100]
        assert 0 < len(selected) < len(rows) * 0.5

    def test_uservisits_prefix_cardinality(self):
        rows = uservisits_table(3000, ip_prefixes=200)
        prefixes = {r[0][:5] for r in rows}
        assert 10 < len(prefixes) <= 200

    def test_uservisits_schema_arity(self):
        (row,) = uservisits_table(1)
        assert len(row) == 9
        assert isinstance(row[3], float)

    def test_determinism(self):
        assert rankings_table(50) == rankings_table(50)
        assert uservisits_table(50) == uservisits_table(50)
