"""The zero-copy borrow checker: DECA301-308 static rules.

Three contracts: the engine's own zero-copy modules are clean (zero
findings), every seeded-bug fixture fires exactly its rule, and the
``engine`` pseudo-app integrates with the lint driver/report pipeline
deterministically.
"""

from pathlib import Path

import pytest

from repro.lint import (
    ENGINE_APP,
    ENGINE_MODULES,
    RULES_BY_ID,
    Severity,
    analyze_source,
    lint_engine,
    run_borrow_rules,
    run_lint,
)
from repro.lint.output import to_sarif

FIXTURE_PATH = (Path(__file__).resolve().parent.parent / "src" / "repro"
                / "lint" / "fixtures" / "borrow_bugs.py")
BORROW_RULES = tuple(f"DECA30{i}" for i in range(1, 9))


def fixture_findings():
    return analyze_source(FIXTURE_PATH.read_text(),
                          "repro.lint.fixtures.borrow_bugs",
                          "lint/fixtures/borrow_bugs.py",
                          target="fixtures")


class TestRuleCatalogue:
    def test_all_borrow_rules_registered(self):
        for rule_id in BORROW_RULES:
            assert rule_id in RULES_BY_ID

    def test_severities(self):
        errors = {"DECA301", "DECA302", "DECA303", "DECA304", "DECA305",
                  "DECA307"}
        for rule_id in BORROW_RULES:
            expected = (Severity.ERROR if rule_id in errors
                        else Severity.WARNING)
            assert RULES_BY_ID[rule_id].severity is expected

    def test_paper_anchors_present(self):
        for rule_id in BORROW_RULES:
            assert RULES_BY_ID[rule_id].paper.startswith("§")


class TestEngineIsClean:
    def test_zero_findings_on_engine_modules(self):
        findings, summary = run_borrow_rules()
        assert findings == ()
        assert summary["modules"] == len(ENGINE_MODULES)
        assert summary["functions"] > 0
        assert summary["borrow_findings"] == 0

    def test_every_engine_module_parses_independently(self):
        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        for module, relpath in ENGINE_MODULES:
            findings = analyze_source((root / relpath).read_text(),
                                      module, relpath)
            assert findings == [], (module, findings)

    def test_deterministic_across_runs(self):
        first, summary1 = run_borrow_rules()
        second, summary2 = run_borrow_rules()
        assert first == second
        assert summary1 == summary2


class TestFixturesFireExactly:
    def test_one_finding_per_rule(self):
        rules = sorted(f.rule_id for f in fixture_findings())
        assert rules == sorted(BORROW_RULES)

    def test_findings_point_into_the_fixture_file(self):
        for finding in fixture_findings():
            assert finding.location.startswith(
                "src/repro/lint/fixtures/borrow_bugs.py:")
            assert finding.target == "fixtures"

    def test_every_finding_has_a_why_chain(self):
        for finding in fixture_findings():
            assert finding.why, finding.rule_id

    def test_subjects_name_the_buggy_functions(self):
        by_rule = {f.rule_id: f for f in fixture_findings()}
        assert by_rule["DECA301"].subject.endswith(
            "bug_use_after_free_extent")
        assert by_rule["DECA302"].subject.endswith(
            "bug_use_after_unlink_segment")
        assert by_rule["DECA303"].subject.endswith("bug_double_free")
        assert by_rule["DECA304"].subject.endswith(
            "bug_view_escapes_adoption")
        assert by_rule["DECA305"].subject.endswith(
            "bug_remap_invalidates_export")
        assert by_rule["DECA306"].subject.endswith("bug_leak_at_finish")
        assert by_rule["DECA307"].subject.endswith("BadCacheEntry.read")
        assert by_rule["DECA308"].subject.endswith(
            "bug_unreleased_drain_copy")

    def test_escape_why_chain_carries_pointsto_ownership(self):
        by_rule = {f.rule_id: f for f in fixture_findings()}
        why = " ".join(by_rule["DECA304"].why)
        assert "ownership" in why
        assert "primary container" in why


class TestEnginePseudoApp:
    def test_engine_only_request(self):
        report = run_lint([ENGINE_APP], shadow=False)
        assert [r.app for r in report.apps] == [ENGINE_APP]
        assert report.apps[0].findings == ()
        assert not report.has_errors

    def test_engine_rides_along_with_all(self):
        report = run_lint([ENGINE_APP], shadow=False)
        result = report.apps[-1]
        assert result.app == ENGINE_APP
        assert "DECA301" in result.title

    def test_lint_engine_summary_shape(self):
        result = lint_engine()
        assert result.summary["shadow"] is False
        assert result.summary["modules"] == len(ENGINE_MODULES)
        assert result.summary["scope_methods"] >= result.summary[
            "functions"]

    def test_unknown_app_still_rejected(self):
        with pytest.raises(KeyError):
            run_lint(["no-such-app"], shadow=False)

    def test_sarif_carries_borrow_rules(self):
        report = run_lint([ENGINE_APP], shadow=False)
        sarif = to_sarif(report)
        rule_ids = {rule["id"]
                    for rule in sarif["runs"][0]["tool"]["driver"]["rules"]}
        for rule_id in BORROW_RULES:
            assert rule_id in rule_ids


class TestPathSensitivity:
    """Targeted micro-sources pinning the checker's precision."""

    def check(self, source: str):
        return analyze_source(source, "scratch", "scratch.py")

    def test_release_before_drop_is_clean(self):
        findings = self.check(
            "def ok(tier):\n"
            "    views = tier.views('g')\n"
            "    for view in views:\n"
            "        view.release()\n"
            "    del views\n"
            "    tier.drop('g')\n")
        assert findings == []

    def test_drop_on_one_branch_only_still_flagged(self):
        findings = self.check(
            "def bad(tier, cond):\n"
            "    views = tier.views('g')\n"
            "    if cond:\n"
            "        tier.drop('g')\n"
            "    return views\n")
        assert [f.rule_id for f in findings] == ["DECA301"]

    def test_realloc_between_frees_is_not_double_free(self):
        findings = self.check(
            "def ok(tier):\n"
            "    tier.drop('g')\n"
            "    tier.swap_out('g', [b'x'])\n"
            "    tier.drop('g')\n")
        assert findings == []

    def test_buffer_guarded_resize_is_safe_remap(self):
        findings = self.check(
            "def grow_mapping(mm):\n"
            "    try:\n"
            "        mm.resize(8192)\n"
            "    except BufferError:\n"
            "        pass\n")
        assert findings == []

    def test_idempotent_close_guard_is_not_a_leak(self):
        findings = self.check(
            "def close(self):\n"
            "    if self._closed:\n"
            "        return\n"
            "    self._closed = True\n"
            "    self._view.release()\n")
        assert findings == []

    def test_cold_guard_dominating_read_is_clean(self):
        findings = self.check(
            "class GoodCacheEntry:\n"
            "    def read(self):\n"
            "        if self.cold:\n"
            "            raise RuntimeError('cold')\n"
            "        return self.blob[:8]\n")
        assert findings == []

    def test_drain_followed_by_shrink_is_clean(self):
        findings = self.check(
            "def swap(group, arena):\n"
            "    for chunk in group.drain():\n"
            "        consume(chunk)\n"
            "    arena.free_group(g)\n")
        assert findings == []
