"""Shared-memory Deca page segment lifecycle (``repro.exec.shm``).

The mp backend's data plane: decomposed containers packed once into
``multiprocessing.shared_memory`` segments, read in place from any
process, owned (refcounted, unlinked) by the driver-side registry —
the cross-process analogue of page-info reference counting (§4.3.3).
"""

import multiprocessing
import os

import pytest

from repro.analysis.udt import LONG
from repro.config import DecaConfig, ExecutionMode, FaultConfig, \
    ScriptedFault
from repro.errors import PageError
from repro.exec.shm import (
    EMPTY_SEGMENT,
    SegmentRef,
    SharedPageSegment,
    ShmSegmentRegistry,
    attach_page_group,
    list_segments,
    pack_records_segment,
    read_segment_records,
    shm_available,
    sweep_segments,
    unlink_segment,
)
from repro.memory.layout import PrimitiveSlot, RecordSchema
from repro.memory.manager import DecaMemoryManager
from repro.spark import DecaContext

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory")

PAIR = RecordSchema("pair", [("k", PrimitiveSlot(LONG)),
                             ("v", PrimitiveSlot(LONG))])

PAIRS = [(i, i * i) for i in range(200)]


def _segment_linked(name: str) -> bool:
    return name in list_segments(prefix=name)


@pytest.fixture
def seg_name(request):
    name = f"repro-mp-test-{os.getpid()}-{request.node.name[:24]}"
    yield name
    unlink_segment(name)


class TestPackAndRead:
    def test_roundtrip_in_place(self, seg_name):
        ref = pack_records_segment(seg_name, PAIR, PAIRS)
        assert ref.count == len(PAIRS)
        assert ref.nbytes == 16 * len(PAIRS)
        assert _segment_linked(seg_name)
        assert list(read_segment_records(ref, PAIR)) == PAIRS

    def test_empty_creates_no_segment(self, seg_name):
        assert pack_records_segment(seg_name, PAIR, []) is EMPTY_SEGMENT
        assert not _segment_linked(seg_name)
        assert list(read_segment_records(EMPTY_SEGMENT, PAIR)) == []

    def test_decode_hook_applies(self, seg_name):
        ref = pack_records_segment(seg_name, PAIR, PAIRS[:5])
        got = list(read_segment_records(ref, PAIR,
                                        decode=lambda kv: kv[0] + kv[1]))
        assert got == [k + v for k, v in PAIRS[:5]]

    def test_overflowing_segment_raises(self, seg_name):
        segment = SharedPageSegment(seg_name, 16, create=True)
        try:
            segment.allocate(16)
            with pytest.raises(PageError):
                segment.allocate(1)
        finally:
            segment.close()


def _child_read(ref: SegmentRef, queue) -> None:
    queue.put(list(read_segment_records(ref, PAIR)))


class TestCrossProcess:
    def test_second_process_reads_in_place(self, seg_name):
        """A forked reader attaches by SegmentRef and decodes the same
        physical pages — no pickle of the records ever happens."""
        ref = pack_records_segment(seg_name, PAIR, PAIRS)
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=_child_read, args=(ref, queue))
        proc.start()
        got = queue.get(timeout=30)
        proc.join(timeout=30)
        assert proc.exitcode == 0
        assert got == PAIRS

    def test_read_survives_owner_release(self, seg_name):
        """POSIX semantics: unlinking (the registry dropping the last
        reference) only removes the name — an already-attached reader
        keeps a valid mapping until it detaches."""
        ref = pack_records_segment(seg_name, PAIR, PAIRS)
        registry = ShmSegmentRegistry()
        registry.register(ref)
        group = attach_page_group(ref)
        info = group.new_page_info()
        registry.release(seg_name)          # last owner: segment unlinked
        assert not _segment_linked(seg_name)
        assert list(group.records(PAIR)) == PAIRS
        info.close()                        # reclaim detaches the mapping


class TestRegistry:
    def test_refcount_drives_unlink(self, seg_name):
        unlinked = []
        registry = ShmSegmentRegistry(
            on_unlink=lambda name, nbytes: unlinked.append((name, nbytes)))
        ref = pack_records_segment(seg_name, PAIR, PAIRS)
        registry.register(ref)
        registry.acquire(seg_name)          # second logical owner
        registry.release(seg_name)
        assert _segment_linked(seg_name)    # one reference still held
        assert unlinked == []
        registry.release(seg_name)
        assert not _segment_linked(seg_name)
        assert unlinked == [(seg_name, ref.nbytes)]
        assert len(registry) == 0

    def test_double_register_rejected(self, seg_name):
        registry = ShmSegmentRegistry()
        ref = pack_records_segment(seg_name, PAIR, PAIRS[:2])
        registry.register(ref)
        with pytest.raises(PageError):
            registry.register(ref)
        registry.release_all()

    def test_release_all_unlinks_everything(self):
        registry = ShmSegmentRegistry()
        names = [f"repro-mp-test-{os.getpid()}-rall{i}" for i in range(3)]
        for name in names:
            registry.register(pack_records_segment(name, PAIR, PAIRS[:3]))
        assert registry.release_all() == 3
        for name in names:
            assert not _segment_linked(name)

    def test_sweep_by_prefix(self):
        """The driver's recovery path after a worker death: deterministic
        names mean orphans are swept without the dead process's help."""
        prefix = f"repro-mp-test-{os.getpid()}-sweep"
        for i in range(2):
            pack_records_segment(f"{prefix}-{i}", PAIR, PAIRS[:2])
        assert sorted(sweep_segments(prefix)) == [f"{prefix}-0",
                                                  f"{prefix}-1"]
        assert list_segments(prefix) == []


class TestManagerIntegration:
    def test_shared_group_packs_into_segment(self, seg_name):
        """A writer-side group allocates its pages straight out of the
        shared mapping; a reader-side manager attaches and scans them."""
        config = DecaConfig(mode=ExecutionMode.DECA)
        writer = DecaMemoryManager(config)
        total = sum(PAIR.size_of(p) for p in PAIRS)
        segment = SharedPageSegment(seg_name, total, create=True)
        group = writer.new_shared_group("w", segment, page_bytes=total)
        for pair in PAIRS:
            group.append_record(PAIR, pair)
        group.reclaim()     # drop the write views before detaching
        segment.close()

        reader = DecaMemoryManager(config)
        ref = SegmentRef(name=seg_name, nbytes=total, count=len(PAIRS))
        attached = reader.attach_shared_group(ref)
        info = attached.new_page_info()
        assert list(attached.records(PAIR)) == PAIRS
        info.close()


class TestWorkerDeathCleanup:
    def test_crashed_worker_leaves_no_segments(self):
        """A worker killed after creating its segments (crash between
        commit and report) must not leak: the driver sweeps the attempt
        prefix, retries, and the run still matches the fault-free one."""
        data = [(i % 20, 1) for i in range(1500)]

        def run(faults=None):
            kwargs = dict(mode=ExecutionMode.DECA, execution_backend="mp",
                          num_executors=2, tasks_per_executor=2)
            if faults is not None:
                kwargs["faults"] = faults
            ctx = DecaContext(DecaConfig(**kwargs))
            counts = ctx.parallelize(data, 4, name="wd.pairs") \
                        .reduce_by_key(lambda a, b: a + b, 4,
                                       name="wd.counts")
            result = sorted(counts.collect())
            metrics = ctx.finish()
            return result, metrics

        clean, _ = run()
        faulty, metrics = run(FaultConfig(scripted=(
            ScriptedFault("executor-crash", stage_id=0, partition=1,
                          after_ops=3),)))
        assert faulty == clean
        stats = metrics.backend
        assert stats["worker_deaths"] == 1
        assert metrics.recovery.executors_lost == 1
        assert metrics.recovery.task_retries >= 1
        # Nothing of either run is left in /dev/shm.
        assert stats["segments_live"] == 0
        assert [name for name in list_segments()
                if "-test-" not in name] == []
