"""Tests for the Deca core: optimizer plans, decomposition decisions,
container lifetimes."""

import pytest

from repro.analysis import SizeType
from repro.analysis.pointsto import ContainerKind
from repro.config import DecaConfig, ExecutionMode, MB
from repro.core import (
    DecompositionKind,
    LifetimeRegistry,
    decide_decomposition,
)
from repro.core.containers import ValueLifetime, lifetime_rule
from repro.core.decompose import ContainerView
from repro.errors import ContainerError
from repro.spark import DecaContext
from repro.spark.cache import StorageStrategy


def deca_ctx(**overrides):
    defaults = dict(mode=ExecutionMode.DECA, heap_bytes=32 * MB,
                    num_executors=2, tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestOptimizerCachePlans:
    def test_sfst_dataset_gets_pages(self):
        from repro.apps.logistic_regression import labeled_point_udt_info
        ctx = deca_ctx()
        rdd = ctx.parallelize([(1.0, (1.0,) * 10)], 1).map(
            lambda r: r, udt_info=labeled_point_udt_info(10))
        plan = ctx.plan_cache(rdd)
        assert plan.strategy is StorageStrategy.DECA_PAGES
        assert plan.schema is not None
        assert plan.schema.fixed_size is not None  # SFST: static layout

    def test_runtime_symbols_resolve_dimension(self):
        from repro.apps.logistic_regression import labeled_point_udt_info
        ctx = deca_ctx()
        info = labeled_point_udt_info(32)
        rdd = ctx.parallelize([(1.0, (1.0,) * 32)], 1).map(
            lambda r: r, udt_info=info)
        plan = ctx.plan_cache(rdd)
        # label(8) + 32 doubles + offset/stride/length ints
        assert plan.schema.fixed_size == 8 + 32 * 8 + 12

    def test_untyped_dataset_stays_objects(self):
        ctx = deca_ctx()
        rdd = ctx.parallelize([1, 2, 3], 1).map(lambda x: x)
        assert ctx.plan_cache(rdd).strategy is StorageStrategy.OBJECTS

    def test_rfst_dataset_gets_variable_layout(self):
        from repro.apps.wordcount import wordcount_udt_info
        ctx = deca_ctx()
        rdd = ctx.parallelize([("a", 1)], 1).map(
            lambda r: r, udt_info=wordcount_udt_info())
        plan = ctx.plan_cache(rdd)
        assert plan.strategy is StorageStrategy.DECA_PAGES
        assert plan.schema.fixed_size is None  # RFST: per-instance size

    def test_plans_are_memoized(self):
        from repro.apps.wordcount import wordcount_udt_info
        ctx = deca_ctx()
        rdd = ctx.parallelize([("a", 1)], 1).map(
            lambda r: r, udt_info=wordcount_udt_info())
        assert ctx.plan_cache(rdd) is ctx.plan_cache(rdd)

    def test_reports_explain_decisions(self):
        from repro.apps.logistic_regression import labeled_point_udt_info
        ctx = deca_ctx()
        rdd = ctx.parallelize([(1.0, (1.0,) * 10)], 1).map(
            lambda r: r, udt_info=labeled_point_udt_info(10))
        ctx.plan_cache(rdd)
        (report,) = ctx._optimizer.reports
        assert report.decomposed
        assert report.local_size_type is SizeType.VARIABLE
        assert report.global_size_type is SizeType.STATIC_FIXED


class TestEscapeVerdictDowngrade:
    """§4.2: records that outlive the consuming UDF must not live in
    pages — the closure analyzer's escape verdict forces object form."""

    def _points(self, ctx):
        from repro.apps.logistic_regression import labeled_point_udt_info
        return ctx.parallelize([(1.0, (1.0,) * 10)], 1).map(
            lambda r: r, udt_info=labeled_point_udt_info(10))

    def test_escaping_consumer_forces_object_form(self):
        ctx = deca_ctx()
        points = self._points(ctx)
        sink = []

        def leak(record):
            sink.append(record)
            return record

        points.map(leak)  # registered consumer lets records escape
        plan = ctx.plan_cache(points)
        assert plan.strategy is StorageStrategy.OBJECTS
        (report,) = ctx._optimizer.reports
        assert not report.decomposed
        assert "escape" in report.reason
        assert "leak" in report.reason

    def test_clean_consumer_still_decomposes(self):
        ctx = deca_ctx()
        points = self._points(ctx)
        points.map(lambda r: (r[0] * 2.0, r[1]))
        plan = ctx.plan_cache(points)
        assert plan.strategy is StorageStrategy.DECA_PAGES

    def test_downgrade_is_memoized_with_the_plan(self):
        ctx = deca_ctx()
        points = self._points(ctx)
        sink = []
        points.map(lambda r: sink.append(r))
        assert ctx.plan_cache(points) is ctx.plan_cache(points)
        assert len(ctx._optimizer.reports) == 1


class TestOptimizerShufflePlans:
    def _wc_dep(self, ctx):
        from repro.apps.wordcount import wordcount_udt_info
        pairs = ctx.parallelize(["a"], 1).map(
            lambda w: (w, 1)).with_udt(wordcount_udt_info())
        counted = pairs.reduce_by_key(lambda a, b: a + b, 1)
        return counted.shuffle_dep

    def test_wc_shuffle_is_decomposed_with_reuse(self):
        ctx = deca_ctx()
        plan = ctx.plan_shuffle(self._wc_dep(ctx))
        assert plan.decomposed
        assert plan.value_segment_reuse  # the Int count is an SFST
        assert plan.pointer_array        # String key is only an RFST

    def test_untyped_shuffle_keeps_objects(self):
        ctx = deca_ctx()
        pairs = ctx.parallelize([("a", 1)], 1).map(lambda r: r)
        dep = pairs.reduce_by_key(lambda a, b: a + b, 1).shuffle_dep
        plan = ctx.plan_shuffle(dep)
        assert not plan.decomposed

    def test_spark_mode_never_decomposes(self):
        ctx = DecaContext(DecaConfig(mode=ExecutionMode.SPARK,
                                     heap_bytes=32 * MB))
        pairs = ctx.parallelize([("a", 1)], 1).map(lambda r: r)
        dep = pairs.reduce_by_key(lambda a, b: a + b, 1).shuffle_dep
        assert not ctx.plan_shuffle(dep).decomposed


class TestDecompositionDecisions:
    def view(self, kind, size_type, propagates=False):
        return ContainerView(kind=kind, size_type=size_type,
                             propagates_modifications=propagates)

    def test_fully_decomposable(self):
        decision = decide_decomposition((
            self.view(ContainerKind.CACHE_BLOCK, SizeType.STATIC_FIXED),
            self.view(ContainerKind.SHUFFLE_BUFFER,
                      SizeType.RUNTIME_FIXED),
        ))
        assert decision.kind is DecompositionKind.FULL

    def test_partial_groupbykey_then_cache(self):
        """Fig. 7(b): VST in the buffer, RFST in the cache."""
        decision = decide_decomposition((
            self.view(ContainerKind.SHUFFLE_BUFFER, SizeType.VARIABLE),
            self.view(ContainerKind.CACHE_BLOCK, SizeType.RUNTIME_FIXED),
        ))
        assert decision.kind is DecompositionKind.PARTIAL
        assert decision.decomposed[0].kind is ContainerKind.CACHE_BLOCK

    def test_propagation_blocks_partial(self):
        decision = decide_decomposition((
            self.view(ContainerKind.SHUFFLE_BUFFER, SizeType.VARIABLE,
                      propagates=True),
            self.view(ContainerKind.CACHE_BLOCK, SizeType.RUNTIME_FIXED),
        ))
        assert decision.kind is DecompositionKind.NONE

    def test_udf_only_objects_stay_intact(self):
        decision = decide_decomposition((
            self.view(ContainerKind.UDF_VARIABLES, SizeType.STATIC_FIXED),
        ))
        assert decision.kind is DecompositionKind.NONE

    def test_vst_everywhere_is_none(self):
        decision = decide_decomposition((
            self.view(ContainerKind.CACHE_BLOCK, SizeType.VARIABLE),
        ))
        assert decision.kind is DecompositionKind.NONE


class TestContainerLifetimes:
    def test_lifetime_rules(self):
        assert lifetime_rule(ContainerKind.UDF_VARIABLES) \
            is ValueLifetime.TASK_END
        assert lifetime_rule(ContainerKind.CACHE_BLOCK) \
            is ValueLifetime.UNPERSIST
        assert lifetime_rule(ContainerKind.SHUFFLE_BUFFER) \
            is ValueLifetime.BUFFER_RELEASE
        assert lifetime_rule(ContainerKind.SHUFFLE_BUFFER,
                             eager_combine=True) \
            is ValueLifetime.EACH_COMBINE

    def test_registry_tracks_open_close(self):
        registry = LifetimeRegistry()
        container = registry.open(ContainerKind.CACHE_BLOCK, "rdd1-b0",
                                  stage_id=0, now_ms=1.0)
        registry.close(container, now_ms=5.0)
        assert container.closed
        registry.assert_all_closed()

    def test_use_after_close_rejected(self):
        registry = LifetimeRegistry()
        container = registry.open(ContainerKind.SHUFFLE_BUFFER, "s0",
                                  stage_id=0, now_ms=0.0)
        registry.close(container, now_ms=1.0)
        with pytest.raises(ContainerError):
            container.check_open()

    def test_leaked_container_detected(self):
        registry = LifetimeRegistry()
        registry.open(ContainerKind.CACHE_BLOCK, "leak", 0, 0.0)
        with pytest.raises(ContainerError):
            registry.assert_all_closed()

    def test_double_open_rejected(self):
        registry = LifetimeRegistry()
        registry.open(ContainerKind.CACHE_BLOCK, "c", 0, 0.0)
        with pytest.raises(ContainerError):
            registry.open(ContainerKind.CACHE_BLOCK, "c", 0, 1.0)

    def test_close_before_open_rejected(self):
        registry = LifetimeRegistry()
        container = registry.open(ContainerKind.CACHE_BLOCK, "c", 0, 5.0)
        with pytest.raises(ContainerError):
            registry.close(container, now_ms=1.0)
