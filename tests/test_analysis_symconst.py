"""Tests for symbolized constant propagation (paper Fig. 4)."""

from repro.analysis import (
    Affine,
    ArrayType,
    Assign,
    BinOp,
    Const,
    INT,
    If,
    Local,
    Loop,
    Method,
    NewArray,
    Return,
    SymInput,
    SymbolicInterpreter,
    TOP,
)
from repro.analysis.ir import ArrayLength


class TestAffineArithmetic:
    def test_constants_fold(self):
        assert Affine.constant(2) + Affine.constant(3) == Affine.constant(5)

    def test_symbol_plus_constant(self):
        a = Affine.symbol("a")
        assert (a + Affine.constant(1)).offset == 1.0
        assert (a + Affine.constant(1)).coeffs == (("a", 1.0),)

    def test_figure4_equivalence(self):
        # b = 2 + a - 1 and c = a + 1 are the same affine value.
        a = Affine.symbol("a")
        b = Affine.constant(2) + a - Affine.constant(1)
        c = a + Affine.constant(1)
        assert b == c

    def test_symbol_cancellation(self):
        a = Affine.symbol("a")
        assert (a - a) == Affine.constant(0)

    def test_scaling(self):
        a = Affine.symbol("a")
        doubled = a.scaled(2)
        assert doubled.coeffs == (("a", 2.0),)

    def test_distinct_symbols_differ(self):
        assert Affine.symbol("a") != Affine.symbol("b")


def run_entry(body, int_array=None):
    interp = SymbolicInterpreter()
    method = Method(name="entry", body=tuple(body))
    facts = interp.run(method)
    return facts


class TestFigure4:
    def test_both_branches_allocate_same_length(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("a", SymInput("input")),
            Assign("b", BinOp("+", BinOp("+", Const(2), Local("a")),
                              Const(-1))),
            Assign("c", BinOp("+", Local("a"), Const(1))),
            If(
                then_body=(NewArray("array", arr, Local("b")),),
                else_body=(NewArray("array", arr, Local("c")),),
            ),
            Return(Local("array")),
        ])
        sites = facts.sites_for_type(arr)
        assert len(sites) == 2
        assert sites[0].length == sites[1].length
        assert isinstance(sites[0].length, Affine)

    def test_different_lengths_are_distinguished(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("a", SymInput("input")),
            If(
                then_body=(NewArray("x", arr, Local("a")),),
                else_body=(NewArray("x", arr,
                                    BinOp("+", Local("a"), Const(1))),),
            ),
        ])
        sites = facts.sites_for_type(arr)
        assert sites[0].length != sites[1].length


class TestLoops:
    def test_loop_invariant_value_stays_precise(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("d", SymInput("D")),
            Loop((NewArray("x", arr, Local("d")),)),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length == Affine.symbol("D")

    def test_value_read_inside_loop_is_unknown(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Loop((
                Assign("n", SymInput("per-record")),
                NewArray("x", arr, Local("n")),
            )),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length is TOP

    def test_variable_mutated_in_loop_widens(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("i", Const(0)),
            Loop((
                Assign("i", BinOp("+", Local("i"), Const(1))),
                NewArray("x", arr, Local("i")),
            )),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length is TOP


class TestBranchJoin:
    def test_disagreeing_assignment_widens(self):
        arr = ArrayType(INT)
        facts = run_entry([
            If(
                then_body=(Assign("n", Const(4)),),
                else_body=(Assign("n", Const(8)),),
            ),
            NewArray("x", arr, Local("n")),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length is TOP

    def test_agreeing_assignment_stays(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("a", SymInput("s")),
            If(
                then_body=(Assign("n", BinOp("+", Local("a"), Const(1))),),
                else_body=(Assign("n", BinOp("-", Local("a"), Const(-1))),),
            ),
            NewArray("x", arr, Local("n")),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length == Affine.symbol("s") + Affine.constant(1)

    def test_one_sided_assignment_widens(self):
        arr = ArrayType(INT)
        facts = run_entry([
            If(then_body=(Assign("n", Const(4)),)),
            NewArray("x", arr, Local("n")),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length is TOP


class TestInterproceduralFlow:
    def test_length_flows_through_call(self):
        arr = ArrayType(INT)
        helper = Method(
            name="alloc", params=("n",),
            body=(
                NewArray("x", arr, Local("n")),
                Return(Local("x")),
            ))
        from repro.analysis.ir import Call
        facts = run_entry([
            Assign("d", SymInput("D")),
            Call("arr1", helper, args=(Local("d"),)),
            Call("arr2", helper, args=(BinOp("+", Local("d"), Const(0)),)),
        ])
        sites = facts.sites_for_type(arr)
        assert len(sites) == 2
        assert sites[0].length == sites[1].length == Affine.symbol("D")

    def test_array_length_expression(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("d", SymInput("D")),
            NewArray("x", arr, Local("d")),
            NewArray("y", arr, ArrayLength("x")),
        ])
        sites = facts.sites_for_type(arr)
        assert sites[0].length == sites[1].length

    def test_multiplication_by_constant(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("d", SymInput("D")),
            NewArray("x", arr, BinOp("*", Const(2), Local("d"))),
            NewArray("y", arr, BinOp("*", Local("d"), Const(2))),
        ])
        sites = facts.sites_for_type(arr)
        assert sites[0].length == sites[1].length

    def test_symbol_times_symbol_is_unknown(self):
        arr = ArrayType(INT)
        facts = run_entry([
            Assign("a", SymInput("a")),
            NewArray("x", arr, BinOp("*", Local("a"), Local("a"))),
        ])
        (site,) = facts.sites_for_type(arr)
        assert site.length is TOP
