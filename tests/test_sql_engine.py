"""Tests for the mini columnar SQL engine (the Table 6 baseline)."""

import pytest

from repro.config import DecaConfig, MB
from repro.core.optimizer import plan_sql_layout
from repro.data import rankings_table, uservisits_table
from repro.errors import SchemaError, SqlError
from repro.sql import (
    Column,
    ColumnType,
    ColumnarTable,
    SqlEngine,
    TableSchema,
    groupby_sum,
    select,
    top_k,
)
from repro.sql.schema import RANKINGS_SCHEMA, USERVISITS_SCHEMA

BLOBS_SCHEMA = TableSchema("blobs", [
    Column("key", ColumnType.INT),
    Column("payload", ColumnType.OPAQUE),
])


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INT),
                              Column("a", ColumnType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_row_validation(self):
        schema = TableSchema("t", [Column("a", ColumnType.INT),
                                   Column("s", ColumnType.STRING)])
        schema.validate_row((1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1,))
        with pytest.raises(SchemaError):
            schema.validate_row(("no", "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1, 2))

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            RANKINGS_SCHEMA.column_index("nope")


class TestColumnarTable:
    def test_roundtrip_rows(self):
        rows = rankings_table(50)
        table = ColumnarTable(RANKINGS_SCHEMA, rows)
        assert table.row_count == 50
        for i in (0, 17, 49):
            assert table.row(i) == rows[i]

    def test_string_prefix_access(self):
        rows = uservisits_table(20)
        table = ColumnarTable(USERVISITS_SCHEMA, rows)
        col = table.column("sourceIP")
        assert col.get_prefix(3, 5) == rows[3][0][:5]

    def test_memory_is_column_not_object_sized(self):
        """A columnar table is far smaller than row objects."""
        from repro.spark.measure import measure_generic
        rows = rankings_table(500)
        table = ColumnarTable(RANKINGS_SCHEMA, rows)
        object_bytes = sum(measure_generic(r).object_bytes for r in rows)
        assert table.memory_bytes < 0.6 * object_bytes

    def test_heap_registration_is_tiny(self):
        cfg = DecaConfig(heap_bytes=64 * MB)
        from repro.simtime import SimClock
        from repro.jvm import SimHeap
        heap = SimHeap(cfg, SimClock())
        table = ColumnarTable(RANKINGS_SCHEMA, rankings_table(1000),
                              heap=heap)
        # One heap object per column run: 1 for each fixed column, 2
        # (offsets + blob) for each string column.
        assert table.run_count == 4
        assert heap.live_objects == table.run_count

    def test_release_frees_heap(self):
        cfg = DecaConfig(heap_bytes=64 * MB)
        from repro.simtime import SimClock
        from repro.jvm import SimHeap
        heap = SimHeap(cfg, SimClock())
        table = ColumnarTable(RANKINGS_SCHEMA, rankings_table(100),
                              heap=heap)
        table.release()
        heap.full_gc()
        assert heap.live_objects == 0

    def test_out_of_range_row(self):
        table = ColumnarTable(RANKINGS_SCHEMA, rankings_table(5))
        with pytest.raises(SchemaError):
            table.row(5)


class TestQueries:
    def make_engine(self, rankings=200, visits=300):
        engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(rankings))
        engine.register_table("uservisits", USERVISITS_SCHEMA,
                              uservisits_table(visits))
        return engine

    def test_query1_matches_python(self):
        engine = self.make_engine()
        rows = rankings_table(200)
        result = engine.run(select(["pageURL", "pageRank"], "rankings",
                                   where=("pageRank", ">", 100)))
        expected = sorted((r[0], r[1]) for r in rows if r[1] > 100)
        assert sorted(result.rows) == expected

    def test_query2_matches_python(self):
        engine = self.make_engine()
        rows = uservisits_table(300)
        result = engine.run(groupby_sum("uservisits", "sourceIP",
                                        "adRevenue", key_prefix=5))
        expected: dict[str, float] = {}
        for r in rows:
            expected[r[0][:5]] = expected.get(r[0][:5], 0.0) + r[3]
        assert len(result.rows) == len(expected)
        for key, total in result.rows:
            assert abs(total - expected[key]) < 1e-6

    def test_projection_without_filter(self):
        engine = self.make_engine(rankings=10)
        result = engine.run(select(["pageURL"], "rankings"))
        assert len(result.rows) == 10

    def test_gc_time_is_negligible(self):
        """Table 6: Spark SQL's GC time is near zero."""
        engine = self.make_engine(visits=2000)
        result = engine.run(groupby_sum("uservisits", "sourceIP",
                                        "adRevenue", key_prefix=5))
        assert result.gc_pause_ms < 0.1 * max(result.wall_ms, 1e-9) + 50

    def test_unknown_table_raises(self):
        engine = self.make_engine()
        with pytest.raises(SqlError):
            engine.run(select(["x"], "nope"))

    def test_double_registration_rejected(self):
        engine = self.make_engine()
        with pytest.raises(SqlError):
            engine.register_table("rankings", RANKINGS_SCHEMA, [])

    def test_bad_operator_rejected(self):
        with pytest.raises(SqlError):
            select(["a"], "t", where=("a", "~", 1))

    def test_substr_on_numeric_rejected(self):
        engine = self.make_engine()
        with pytest.raises(SqlError):
            engine.run(groupby_sum("rankings", "pageRank", "avgDuration",
                                   key_prefix=3))

    def test_uncache_releases(self):
        engine = self.make_engine()
        engine.cache_table("rankings")
        assert engine.cached_bytes > 0
        engine.uncache_table("rankings")
        assert engine.cached_bytes == 0

    def test_top_k_matches_python(self):
        engine = self.make_engine()
        rows = rankings_table(200)
        result = engine.run(top_k(["pageURL", "pageRank"], "rankings",
                                  order_by="pageRank", k=5))
        expected = sorted(((r[0], r[1]) for r in rows),
                          key=lambda t: t[1], reverse=True)[:5]
        assert [r[1] for r in result.rows] == [e[1] for e in expected]


class TestArenaAccounting:
    """Regression: SQL caches used to escape memory accounting.

    The old engine summed a private ``cached_bytes`` counter and never
    told the unified arena anything — cached relations were invisible
    to eviction and to the ``memory:*`` trace stream.
    """

    def make_engine(self):
        engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(200))
        return engine

    def test_cache_charges_unified_arena(self):
        engine = self.make_engine()
        engine.cache_table("rankings")
        assert engine.cached_bytes > 0
        assert engine.arena.storage_used == engine.cached_bytes
        events = [e.name for e in engine.tracer.by_category("memory")]
        assert "memory:acquire" in events

    def test_uncache_discharges_arena(self):
        engine = self.make_engine()
        engine.cache_table("rankings")
        engine.uncache_table("rankings")
        assert engine.arena.storage_used == 0
        events = [e.name for e in engine.tracer.by_category("memory")]
        assert "memory:release" in events


class TestLayoutPlanning:
    def test_fixed_schema_goes_columnar(self):
        plan = plan_sql_layout(RANKINGS_SCHEMA)
        assert plan.layout == "columnar"
        assert plan.table == "rankings"

    def test_opaque_column_falls_back_to_row(self):
        plan = plan_sql_layout(BLOBS_SCHEMA)
        assert plan.layout == "row"
        assert plan.reason

    def test_engine_auto_layouts(self):
        engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(20))
        engine.register_table("blobs", BLOBS_SCHEMA,
                              [(i, bytes([i, i + 1])) for i in range(8)])
        engine.cache_table("rankings")
        engine.cache_table("blobs")
        assert engine.layout_of("rankings") == "columnar"
        assert engine.layout_of("blobs") == "row"

    def test_opaque_relation_roundtrips_rows(self):
        engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
        rows = [(i, bytes([i, 255 - i])) for i in range(10)]
        engine.register_table("blobs", BLOBS_SCHEMA, rows)
        table = engine.cache_table("blobs")
        assert [table.row(i) for i in range(10)] == rows

    def test_forced_row_layout_same_answers(self):
        rows = rankings_table(150)
        query = select(["pageURL", "pageRank"], "rankings",
                       where=("pageRank", ">", 100))
        results = {}
        for layout in ("columnar", "row"):
            engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
            engine.register_table("rankings", RANKINGS_SCHEMA, rows)
            engine.cache_table("rankings", layout=layout)
            assert engine.layout_of("rankings") == layout
            results[layout] = sorted(engine.run(query).rows)
        assert results["columnar"] == results["row"]

    def test_unknown_layout_rejected(self):
        engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(5))
        with pytest.raises(SqlError):
            engine.cache_table("rankings", layout="diagonal")


class TestColdTierSwap:
    def make_engine(self, rows=400):
        cfg = DecaConfig(heap_bytes=64 * MB, cold_tier="mmap",
                         sanitize=True)
        engine = SqlEngine(cfg)
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(rows))
        return engine

    def test_demote_promote_roundtrip(self):
        engine = self.make_engine()
        query = select(["pageURL", "pageRank"], "rankings",
                       where=("pageRank", ">", 100))
        resident = engine.run(query).rows
        moved = engine.demote_table("rankings")
        assert moved > 0
        assert engine.cached_bytes == 0
        # run() promotes the relation back from the tier on demand.
        assert engine.run(query).rows == resident
        # The mmap tier moves raw page bytes: no serializer anywhere.
        assert engine.swap_copy_bytes == 0
        engine.close()
        assert engine.ledger.check_finish()["violations"] == 0

    def test_redemote_of_promoted_pages_moves_nothing(self):
        engine = self.make_engine()
        engine.cache_table("rankings")
        assert engine.demote_table("rankings") > 0
        engine.run(select(["pageRank"], "rankings"))
        # Promoted pages alias the tier extent, so the extent is still
        # valid and a re-demote moves zero bytes.
        assert engine.demote_table("rankings") == 0
        engine.close()
        assert engine.ledger.check_finish()["violations"] == 0

    def test_uncache_drops_extent(self):
        engine = self.make_engine()
        engine.cache_table("rankings")
        engine.demote_table("rankings")
        engine.uncache_table("rankings")
        assert engine.tier_stats["extents_live"] == 0
        engine.close()

    def test_heap_tier_counts_serializer_copies(self):
        cfg = DecaConfig(heap_bytes=64 * MB, cold_tier="heap")
        engine = SqlEngine(cfg)
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(100))
        engine.cache_table("rankings")
        moved = engine.demote_table("rankings")
        assert moved > 0
        assert engine.swap_copy_bytes == moved
        engine.close()
