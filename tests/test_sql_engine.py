"""Tests for the mini columnar SQL engine (the Table 6 baseline)."""

import pytest

from repro.config import DecaConfig, MB
from repro.data import rankings_table, uservisits_table
from repro.errors import SchemaError, SqlError
from repro.sql import (
    Column,
    ColumnType,
    ColumnarTable,
    SqlEngine,
    TableSchema,
    groupby_sum,
    select,
)
from repro.sql.schema import RANKINGS_SCHEMA, USERVISITS_SCHEMA


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", ColumnType.INT),
                              Column("a", ColumnType.INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_row_validation(self):
        schema = TableSchema("t", [Column("a", ColumnType.INT),
                                   Column("s", ColumnType.STRING)])
        schema.validate_row((1, "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1,))
        with pytest.raises(SchemaError):
            schema.validate_row(("no", "x"))
        with pytest.raises(SchemaError):
            schema.validate_row((1, 2))

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            RANKINGS_SCHEMA.column_index("nope")


class TestColumnarTable:
    def test_roundtrip_rows(self):
        rows = rankings_table(50)
        table = ColumnarTable(RANKINGS_SCHEMA, rows)
        assert table.row_count == 50
        for i in (0, 17, 49):
            assert table.row(i) == rows[i]

    def test_string_prefix_access(self):
        rows = uservisits_table(20)
        table = ColumnarTable(USERVISITS_SCHEMA, rows)
        col = table.column("sourceIP")
        assert col.get_prefix(3, 5) == rows[3][0][:5]

    def test_memory_is_column_not_object_sized(self):
        """A columnar table is far smaller than row objects."""
        from repro.spark.measure import measure_generic
        rows = rankings_table(500)
        table = ColumnarTable(RANKINGS_SCHEMA, rows)
        object_bytes = sum(measure_generic(r).object_bytes for r in rows)
        assert table.memory_bytes < 0.6 * object_bytes

    def test_heap_registration_is_tiny(self):
        cfg = DecaConfig(heap_bytes=64 * MB)
        from repro.simtime import SimClock
        from repro.jvm import SimHeap
        heap = SimHeap(cfg, SimClock())
        ColumnarTable(RANKINGS_SCHEMA, rankings_table(1000), heap=heap)
        assert heap.live_objects == 2 * len(RANKINGS_SCHEMA.columns)

    def test_release_frees_heap(self):
        cfg = DecaConfig(heap_bytes=64 * MB)
        from repro.simtime import SimClock
        from repro.jvm import SimHeap
        heap = SimHeap(cfg, SimClock())
        table = ColumnarTable(RANKINGS_SCHEMA, rankings_table(100),
                              heap=heap)
        table.release()
        heap.full_gc()
        assert heap.live_objects == 0

    def test_out_of_range_row(self):
        table = ColumnarTable(RANKINGS_SCHEMA, rankings_table(5))
        with pytest.raises(SchemaError):
            table.row(5)


class TestQueries:
    def make_engine(self, rankings=200, visits=300):
        engine = SqlEngine(DecaConfig(heap_bytes=64 * MB))
        engine.register_table("rankings", RANKINGS_SCHEMA,
                              rankings_table(rankings))
        engine.register_table("uservisits", USERVISITS_SCHEMA,
                              uservisits_table(visits))
        return engine

    def test_query1_matches_python(self):
        engine = self.make_engine()
        rows = rankings_table(200)
        result = engine.run(select(["pageURL", "pageRank"], "rankings",
                                   where=("pageRank", ">", 100)))
        expected = sorted((r[0], r[1]) for r in rows if r[1] > 100)
        assert sorted(result.rows) == expected

    def test_query2_matches_python(self):
        engine = self.make_engine()
        rows = uservisits_table(300)
        result = engine.run(groupby_sum("uservisits", "sourceIP",
                                        "adRevenue", key_prefix=5))
        expected: dict[str, float] = {}
        for r in rows:
            expected[r[0][:5]] = expected.get(r[0][:5], 0.0) + r[3]
        assert len(result.rows) == len(expected)
        for key, total in result.rows:
            assert abs(total - expected[key]) < 1e-6

    def test_projection_without_filter(self):
        engine = self.make_engine(rankings=10)
        result = engine.run(select(["pageURL"], "rankings"))
        assert len(result.rows) == 10

    def test_gc_time_is_negligible(self):
        """Table 6: Spark SQL's GC time is near zero."""
        engine = self.make_engine(visits=2000)
        result = engine.run(groupby_sum("uservisits", "sourceIP",
                                        "adRevenue", key_prefix=5))
        assert result.gc_pause_ms < 0.1 * max(result.wall_ms, 1e-9) + 50

    def test_unknown_table_raises(self):
        engine = self.make_engine()
        with pytest.raises(SqlError):
            engine.run(select(["x"], "nope"))

    def test_double_registration_rejected(self):
        engine = self.make_engine()
        with pytest.raises(SqlError):
            engine.register_table("rankings", RANKINGS_SCHEMA, [])

    def test_bad_operator_rejected(self):
        with pytest.raises(SqlError):
            select(["a"], "t", where=("a", "~", 1))

    def test_substr_on_numeric_rejected(self):
        engine = self.make_engine()
        with pytest.raises(SqlError):
            engine.run(groupby_sum("rankings", "pageRank", "avgDuration",
                                   key_prefix=3))

    def test_uncache_releases(self):
        engine = self.make_engine()
        engine.cache_table("rankings")
        assert engine.cached_bytes > 0
        engine.uncache_table("rankings")
        assert engine.cached_bytes == 0
