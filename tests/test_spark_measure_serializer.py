"""Tests for footprint measurement, the serializer model and the profiler."""

import pytest

from repro.analysis import ArrayType, ClassType, DOUBLE, Field, INT
from repro.config import DecaConfig, MB, SerializerCosts
from repro.errors import MemoryLayoutError
from repro.jvm import SimHeap, Lifetime, sizing
from repro.simtime import SimClock
from repro.spark.measure import (
    RecordFootprint,
    measure_generic,
    measure_typed,
)
from repro.spark.profiler import HeapProfiler
from repro.spark.serializer import SerializerModel


class TestMeasureTyped:
    def labeled_point(self):
        arr = ArrayType(DOUBLE)
        dense = ClassType("DenseVector", [
            Field("data", arr, final=True),
            Field("offset", INT), Field("stride", INT),
            Field("length", INT),
        ])
        return ClassType("LabeledPoint", [
            Field("label", DOUBLE),
            Field("features", dense, final=False),
        ])

    def test_figure2_object_graph(self):
        """Fig. 2: LabeledPoint = 3 objects; data-size = primitives only."""
        lp = self.labeled_point()
        value = (1.0, ((1.0, 2.0, 3.0), 0, 1, 3))
        fp = measure_typed(lp, value)
        assert fp.objects == 3  # LabeledPoint + DenseVector + double[]
        # data: label + 3 doubles + offset/stride/length ints
        assert fp.data_bytes == 8 + 24 + 12
        # object form: 24 (LP) + 32 (DV) + header+3 doubles array
        assert fp.object_bytes == 24 + 32 + sizing.array_bytes(8, 3)

    def test_object_form_dwarfs_data_for_small_vectors(self):
        lp = self.labeled_point()
        fp = measure_typed(lp, (1.0, ((1.0,) * 10, 0, 1, 10)))
        assert fp.object_bytes > 1.4 * fp.data_bytes

    def test_high_dimension_closes_the_gap(self):
        """Fig. 9(d): at 4096 dims headers are negligible."""
        lp = self.labeled_point()
        fp = measure_typed(lp, (1.0, ((1.0,) * 4096, 0, 1, 4096)))
        assert fp.object_bytes < 1.01 * fp.data_bytes

    def test_arity_mismatch_raises(self):
        lp = self.labeled_point()
        with pytest.raises(MemoryLayoutError):
            measure_typed(lp, (1.0,))

    def test_footprint_addition(self):
        a = RecordFootprint(1, 10, 5)
        b = RecordFootprint(2, 20, 10)
        assert a + b == RecordFootprint(3, 30, 15)

    def test_serialized_adds_tag(self):
        fp = RecordFootprint(1, 100, 40)
        assert fp.serialized_bytes == 42


class TestMeasureGeneric:
    def test_numbers_box(self):
        assert measure_generic(1.5).objects == 1
        assert measure_generic(1.5).object_bytes == 24

    def test_string_is_two_objects(self):
        fp = measure_generic("hello")
        assert fp.objects == 2
        assert fp.data_bytes == 10  # UTF-16 code units

    def test_tuple_nests(self):
        fp = measure_generic((1, 2.0))
        assert fp.objects == 3  # tuple + two boxes

    def test_none_is_free(self):
        assert measure_generic(None).objects == 0

    def test_dict_counts_entries(self):
        fp = measure_generic({"a": 1})
        assert fp.objects >= 3


class TestSerializerModel:
    def make(self):
        clock = SimClock()
        return SerializerModel(SerializerCosts(), clock), clock

    def test_deser_costs_more_than_ser(self):
        model, clock = self.make()
        ser = model.kryo_serialize(1000, 50_000)
        deser = model.kryo_deserialize(1000, 50_000)
        assert deser > 5 * ser

    def test_deca_read_is_free(self):
        model, clock = self.make()
        before = clock.now_ms
        model.deca_read(100_000, 5_000_000)
        assert clock.now_ms == before

    def test_parallelism_scales_charges(self):
        costs = SerializerCosts()
        c1, c4 = SimClock(), SimClock()
        serial = SerializerModel(costs, c1, parallelism=1)
        parallel = SerializerModel(costs, c4, parallelism=4)
        serial.kryo_serialize(1000, 0)
        parallel.kryo_serialize(1000, 0)
        assert abs(c1.now_ms - 4 * c4.now_ms) < 1e-9

    def test_totals_accumulate(self):
        model, _ = self.make()
        model.kryo_serialize(10, 100)
        model.kryo_deserialize(10, 100)
        assert model.ser_ms_total > 0
        assert model.deser_ms_total > model.ser_ms_total


class TestHeapProfiler:
    def test_samples_on_period_boundaries(self):
        cfg = DecaConfig(heap_bytes=16 * MB)
        clock = SimClock()
        heap = SimHeap(cfg, clock)
        profiler = HeapProfiler(heap, clock, period_ms=10.0)
        group = heap.new_group("cache", Lifetime.PINNED)
        for _ in range(5):
            heap.allocate(group, 100, 1000)
            clock.advance(25.0)
            profiler.maybe_sample()
        times = [s.time_ms for s in profiler.samples]
        assert times == sorted(times)
        assert len(times) >= 10  # every crossed boundary sampled

    def test_tracked_counter(self):
        cfg = DecaConfig(heap_bytes=16 * MB)
        clock = SimClock()
        heap = SimHeap(cfg, clock)
        population = {"n": 7}
        profiler = HeapProfiler(heap, clock, 10.0,
                                tracked_counter=lambda: population["n"])
        profiler.force_sample()
        assert profiler.samples[-1].tracked_objects == 7

    def test_rejects_bad_period(self):
        cfg = DecaConfig(heap_bytes=16 * MB)
        clock = SimClock()
        with pytest.raises(ValueError):
            HeapProfiler(SimHeap(cfg, clock), clock, 0.0)

    def test_timeline_shape(self):
        cfg = DecaConfig(heap_bytes=16 * MB)
        clock = SimClock()
        heap = SimHeap(cfg, clock)
        profiler = HeapProfiler(heap, clock, 5.0)
        profiler.force_sample()
        (row,) = profiler.timeline()
        assert len(row) == 3
