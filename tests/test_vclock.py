"""Unit tests for the vector-clock race sanitizer (repro.obs.vclock).

One clean/racy pair per DECA40x rule, plus the cross-process protocol:
fork snapshots, per-task note draining, driver-side absorption and the
join edges that make a legal schedule violation-free.
"""

import pytest

from repro.errors import SanitizerError
from repro.obs.tracer import Tracer
from repro.obs.vclock import (
    RACE_SLUGS,
    VClockChecker,
    clock_leq,
    clock_merge,
)


class TestClockAlgebra:
    def test_leq_reflexive_and_componentwise(self):
        assert clock_leq({"a": 1}, {"a": 1})
        assert clock_leq({"a": 1}, {"a": 2, "b": 1})
        assert not clock_leq({"a": 2}, {"a": 1})
        assert not clock_leq({"a": 1, "b": 1}, {"a": 1})

    def test_merge_is_componentwise_max(self):
        into = {"a": 3, "b": 1}
        clock_merge(into, {"a": 1, "c": 2})
        assert into == {"a": 3, "b": 1, "c": 2}

    def test_concurrent_clocks_unordered(self):
        a, b = {"p": 1}, {"q": 1}
        assert not clock_leq(a, b)
        assert not clock_leq(b, a)


class TestSegmentLifecycle:
    def test_sequential_create_attach_reclaim_is_clean(self):
        checker = VClockChecker()
        checker.note_create("segment", "s")
        checker.note_attach("segment", "s")
        checker.note_reclaim("segment", "s")
        assert checker.summary()["violations"] == 0

    def test_concurrent_attach_after_reclaim_fires_401(self):
        checker = VClockChecker()
        checker.note_create("segment", "s")
        checker.fork("attacker")
        checker.note_reclaim("segment", "s")
        checker.note_attach("segment", "s", actor="attacker")
        assert checker.counters["unlink-concurrent-with-attach"] == 1

    def test_rebirth_clears_the_window(self):
        checker = VClockChecker()
        checker.note_create("segment", "s")
        checker.fork("attacker")
        checker.note_reclaim("segment", "s")
        checker.note_create("segment", "s")
        checker.note_attach("segment", "s", actor="attacker")
        # The re-create killed the reclaim record: no stale mapping.
        assert checker.summary()["violations"] == 0

    def test_reclaim_concurrent_with_access_fires(self):
        checker = VClockChecker()
        checker.note_create("extent", "e")
        checker.fork("reader")
        checker.note_access("extent", "e", actor="reader")
        checker.note_reclaim("extent", "e")
        assert checker.counters["demote-promote-race"] == 1


class TestRefcountsAndTransitions:
    def test_locked_refdec_clean_unlocked_fires_402(self):
        checker = VClockChecker()
        checker.note_refdec("s", locked=True)
        assert checker.summary()["violations"] == 0
        checker.note_refdec("s", locked=False)
        assert checker.counters["refcount-outside-lock"] == 1

    def test_ordered_demote_promote_clean(self):
        checker = VClockChecker()
        checker.note_demote("extent", "e")
        checker.note_promote("extent", "e")
        assert checker.summary()["violations"] == 0

    def test_concurrent_transitions_fire_403(self):
        checker = VClockChecker()
        checker.fork("promoter")
        checker.note_demote("extent", "e")
        checker.note_promote("extent", "e", actor="promoter")
        assert checker.counters["demote-promote-race"] == 1


class TestPoolsAndGrants:
    def test_cas_write_with_current_version_clean(self):
        checker = VClockChecker()
        version = checker.pool_read("execution")
        checker.pool_write("execution", based_on=version)
        assert checker.summary()["violations"] == 0

    def test_stale_based_on_fires_404(self):
        checker = VClockChecker()
        version = checker.pool_read("execution")
        checker.pool_write("execution")  # the concurrent transition
        checker.pool_write("execution", based_on=version)
        assert checker.counters["borrow-evict-lost-update"] == 1

    def test_grant_release_grant_clean(self):
        checker = VClockChecker()
        checker.note_grant("t1")
        checker.note_grant_release("t1")
        checker.note_grant("t1")
        assert checker.summary()["violations"] == 0

    def test_double_grant_fires_410(self):
        checker = VClockChecker()
        checker.note_grant("t1")
        checker.note_grant("t1")
        assert checker.counters["double-grant"] == 1


class TestBarriersSweepsSpills:
    def test_consume_without_join_fires_405(self):
        checker = VClockChecker()
        checker.fork("w0")
        checker.note_result_produced("t0", actor="w0")
        checker.note_result_consumed("t0")
        assert checker.counters["wave-barrier-bypass"] == 1

    def test_consume_after_join_clean(self):
        checker = VClockChecker()
        checker.fork("w0")
        checker.note_result_produced("t0", actor="w0")
        checker.join("w0")
        checker.note_result_consumed("t0")
        assert checker.summary()["violations"] == 0

    def test_sweep_of_dead_owner_clean_live_fires_406(self):
        checker = VClockChecker()
        checker.fork("w0")
        checker.exit_actor("w0")
        checker.note_sweep("repro-mp-x-", owner="w0")
        assert checker.summary()["violations"] == 0
        checker.fork("w1")
        checker.note_sweep("repro-mp-x-", owner="w1")
        assert checker.counters["orphan-sweep-live-worker"] == 1

    def test_victim_outside_swap_clean_inside_fires_407(self):
        checker = VClockChecker()
        checker.note_victim("b1")
        checker.swap_begin("b1")
        checker.swap_end("b1")
        assert checker.summary()["violations"] == 0
        checker.swap_begin("b2")
        checker.note_victim("b2")
        assert checker.counters["reentrant-spill-victim"] == 1


class TestReadonlyAndRelay:
    def test_untouched_adoption_clean(self):
        checker = VClockChecker()
        view = bytearray(b"abcd")
        checker.adopt_readonly("segment", "s", view)
        checker.verify_readonly("segment", "s")
        assert checker.summary()["violations"] == 0

    def test_write_through_adoption_fires_408(self):
        checker = VClockChecker()
        view = bytearray(b"abcd")
        checker.adopt_readonly("segment", "s", view)
        view[0] = 0xFF
        checker.verify_readonly("segment", "s")
        assert checker.counters["readonly-page-write"] == 1

    def test_anchored_relay_clean_unanchored_fires_409(self):
        checker = VClockChecker()
        checker.note_relay(105.0, 100.0)
        assert checker.summary()["violations"] == 0
        checker.note_relay(1.0, 100.0)
        assert checker.counters["trace-relay-reorder"] == 1


class TestCrossProcessProtocol:
    def test_fork_snapshot_seeds_the_worker(self):
        driver = VClockChecker()
        snapshot = driver.fork("w0")
        worker = VClockChecker(actor="w0", snapshot=snapshot)
        clock = worker.export_notes()["clock"]
        assert clock_leq(snapshot, clock) or clock == dict(
            snapshot, w0=0)

    def test_absorb_folds_worker_violations_and_counters(self):
        driver = VClockChecker()
        snapshot = driver.fork("w0")
        worker = VClockChecker(actor="w0", snapshot=snapshot)
        worker.note_refdec("s", locked=False)
        driver.absorb(worker.export_notes(drain=True))
        assert driver.counters["refcount-outside-lock"] == 1
        assert driver.summary()["violations"] == 1
        assert driver.counters["refdecs"] == 1

    def test_drain_ships_deltas_never_double_counts(self):
        driver = VClockChecker()
        snapshot = driver.fork("w0")
        worker = VClockChecker(actor="w0", snapshot=snapshot)
        worker.note_access("extent", "e")
        first = worker.export_notes(drain=True)
        second = worker.export_notes(drain=True)
        assert len(first["accesses"]) == 1
        assert second["accesses"] == []
        assert second["violations"] == []
        # The clock survives the drain — it is monotone.
        assert clock_leq(first["clock"], second["clock"])
        driver.absorb(first)
        driver.absorb(second)
        assert driver.counters["accesses"] == 1

    def test_absorb_before_reclaim_is_the_safe_order(self):
        driver = VClockChecker()
        driver.note_create("segment", "s")
        snapshot = driver.fork("w0")
        worker = VClockChecker(actor="w0", snapshot=snapshot)
        worker.note_attach("segment", "s")
        driver.absorb(worker.export_notes(drain=True))
        driver.exit_actor("w0")
        driver.note_reclaim("segment", "s")
        assert driver.summary()["violations"] == 0

    def test_reclaim_before_absorb_fires(self):
        driver = VClockChecker()
        driver.note_create("segment", "s")
        snapshot = driver.fork("w0")
        worker = VClockChecker(actor="w0", snapshot=snapshot)
        worker.note_access("segment", "s")
        driver.note_reclaim("segment", "s")
        driver.absorb(worker.export_notes(drain=True))
        assert driver.counters["unlink-concurrent-with-attach"] == 1


class TestReporting:
    def test_summary_has_every_slug(self):
        summary = VClockChecker().summary()
        for slug in RACE_SLUGS:
            assert summary[slug] == 0
        assert summary["violations"] == 0

    def test_violations_reach_the_tracer(self):
        tracer = Tracer()
        checker = VClockChecker(tracer=tracer)
        checker.note_grant("t")
        checker.note_grant("t")
        names = [event.name for event in tracer.events]
        assert "race:double-grant" in names

    def test_context_raises_sanitizer_error_on_violations(self):
        from repro.config import DecaConfig, ExecutionMode
        from repro.spark.context import DecaContext

        cfg = DecaConfig(mode=ExecutionMode.DECA, sanitize=True)
        ctx = DecaContext(cfg)
        assert ctx.vclock is not None
        ctx.parallelize([1, 2, 3], 2).count()
        # Seed a violation directly: the finish gate must raise.
        ctx.vclock.note_grant("t")
        ctx.vclock.note_grant("t")
        with pytest.raises(SanitizerError):
            ctx.finish()
