"""Regression tests for scripts/check_mp_leaks.py.

The guard must catch all three segment-leak classes — unparseable
name, dead creator, and the live-creator orphan (creator pid alive but
registry entry gone) — while leaving segments a live creator's
manifest still claims alone.  The manifest itself is maintained by
``repro.exec.shm``; the round-trip test pins that contract.
"""

import importlib.util
import json
import os
import tempfile
from multiprocessing import shared_memory
from pathlib import Path

import pytest

from repro.exec import shm as shm_mod
from repro.exec.shm import SegmentRef, ShmSegmentRegistry, manifest_path

SCRIPT = (Path(__file__).resolve().parent.parent / "scripts"
          / "check_mp_leaks.py")


def load_guard():
    spec = importlib.util.spec_from_file_location("check_mp_leaks",
                                                  SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def guard():
    return load_guard()


def shm_available() -> bool:
    return os.path.isdir("/dev/shm")


@pytest.mark.skipif(not shm_available(), reason="no /dev/shm")
def test_segment_leak_classes(guard):
    pid = os.getpid()
    held = []

    def make(name):
        seg = shared_memory.SharedMemory(name=name, create=True,
                                         size=64)
        held.append(seg)
        return seg

    owned = f"repro-mp-{pid}-91-owned"
    orphan = f"repro-mp-{pid}-91-orphan"
    dead = "repro-mp-999999991-91-dead"
    make(owned)
    make(orphan)
    make(dead)
    manifest = manifest_path(pid)
    with open(manifest, "w", encoding="utf-8") as handle:
        json.dump({"pid": pid, "segments": [owned]}, handle)
    try:
        leaks = guard.leaked_segments()
        flat = "\n".join(leaks)
        # Live creator, manifest entry present: in use, not a leak.
        assert owned not in flat
        # Live creator, registry entry gone: the new orphan class.
        assert any(orphan in line and "registry entry gone" in line
                   for line in leaks)
        # Dead creator: flagged as before.
        assert any(dead in line and "dead" in line for line in leaks)
    finally:
        os.unlink(manifest)
        for seg in held:
            seg.close()
            seg.unlink()


@pytest.mark.skipif(not shm_available(), reason="no /dev/shm")
def test_missing_manifest_means_every_segment_is_orphaned(guard):
    pid = os.getpid()
    name = f"repro-mp-{pid}-92-nomanifest"
    seg = shared_memory.SharedMemory(name=name, create=True, size=64)
    assert not os.path.exists(manifest_path(pid))
    try:
        leaks = guard.leaked_segments()
        assert any(name in line and "registry entry gone" in line
                   for line in leaks)
    finally:
        seg.close()
        seg.unlink()


def test_manifest_segments_parser(guard, tmp_path, monkeypatch):
    monkeypatch.setattr(tempfile, "gettempdir", lambda: str(tmp_path))
    monkeypatch.setattr(guard.tempfile, "gettempdir",
                        lambda: str(tmp_path))
    assert guard.manifest_segments(123) is None
    path = tmp_path / "repro-mp-manifest-123.json"
    path.write_text(json.dumps({"pid": 123, "segments": ["a", "b"]}))
    assert guard.manifest_segments(123) == {"a", "b"}
    path.write_text("not json")
    assert guard.manifest_segments(123) is None
    path.write_text(json.dumps({"pid": 123, "segments": "oops"}))
    assert guard.manifest_segments(123) is None


def test_registry_round_trips_the_manifest():
    """register publishes the manifest entry; release retracts it."""
    name = f"repro-mp-{os.getpid()}-93-roundtrip"
    registry = ShmSegmentRegistry()
    registry.register(SegmentRef(name=name, nbytes=64, count=0))
    try:
        path = manifest_path()
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert name in payload["segments"]
        assert payload["pid"] == os.getpid()
    finally:
        registry.release(name)
    # After the final release the entry is gone (and the file too,
    # unless another live registry in this process still owns
    # segments).
    if os.path.exists(manifest_path()):
        with open(manifest_path(), encoding="utf-8") as handle:
            assert name not in json.load(handle)["segments"]
    assert name not in shm_mod._PENDING_UNLINK
