"""Shadow validator tests: observation capture and differential checks."""

from types import SimpleNamespace

import pytest

from repro.analysis import ArrayType, ClassType, Field, LONG, SizeType
from repro.apps.logistic_regression import labeled_point_udt_info
from repro.apps.wordcount import wordcount_udt_info
from repro.core.optimizer import PlanReport
from repro.errors import PageOverflowError
from repro.lint import (
    ArenaEvent,
    PageAppend,
    ShadowRecorder,
    check_arena_accounting,
    check_imprecision,
    check_observations,
    shadow_summary,
)
from repro.memory.layout import build_schema
from repro.memory.page import PageGroup
from repro.memory.sudt import bind_accessor


def _record_schema():
    """``Rec(vid: Long, xs: Array[Long])`` — an RFST with a var array."""
    rec = ClassType("Rec", [
        Field("vid", LONG),
        Field("xs", ArrayType(LONG), final=True),
    ])
    return build_schema(rec, SizeType.RUNTIME_FIXED)


def _sfst_report(udt: str) -> PlanReport:
    return PlanReport(target=f"cache:{udt}", udt=udt,
                      local_size_type=SizeType.VARIABLE,
                      global_size_type=SizeType.STATIC_FIXED,
                      decomposed=True, reason="decomposed")


class TestShadowRecorder:
    def test_captures_page_appends_only_while_active(self):
        schema = _record_schema()
        group = PageGroup("shadow-test", 4096)
        with ShadowRecorder() as recorder:
            group.append_record(schema, (1, (10, 20, 30)))
            group.append_record(schema, (2, (40,)))
        group.append_record(schema, (3, (50, 60)))  # not recorded

        assert len(recorder.appends) == 2
        assert recorder.appends[0].group == "shadow-test"
        assert recorder.appends[0].schema == "Rec"
        assert recorder.appends[0].size == schema.size_of((1, (10, 20, 30)))

    def test_captures_resize_attempts_through_accessors(self):
        schema = _record_schema()
        group = PageGroup("shadow-test", 4096)
        pointer = group.append_record(schema, (1, (10, 20, 30)))
        buf, off = group.read(pointer)
        with ShadowRecorder() as recorder:
            accessor = bind_accessor(schema, buf, off)
            accessor.xs[0] = 99                      # size-preserving
            with pytest.raises(PageOverflowError):
                accessor.xs.replace((1, 2))          # grows: forbidden
        kinds = [m.kind for m in recorder.mutations]
        assert "element-write" in kinds
        assert "array-resize" in kinds
        assert len(recorder.resize_attempts()) == 1

    def test_captures_whole_record_overwrites(self):
        schema = _record_schema()
        group = PageGroup("shadow-test", 4096)
        pointer = group.append_record(schema, (1, (10, 20, 30)))
        buf, off = group.read(pointer)
        with ShadowRecorder() as recorder:
            accessor = bind_accessor(schema, buf, off)
            accessor.write((7, (1, 2, 3)))           # same size: fine
            with pytest.raises(PageOverflowError):
                accessor.write((7, (1, 2, 3, 4)))    # resize: forbidden
        kinds = [m.kind for m in recorder.mutations]
        assert "record-overwrite" in kinds
        assert "record-resize" in kinds


class TestCheckObservations:
    def test_clean_when_sfst_records_share_one_size(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Point", 40)] * 3
        assert check_observations("app", recorder,
                                  (_sfst_report("Point"),)) == []

    def test_flags_sfst_claims_with_varying_sizes(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Point", 40),
                            PageAppend("g", "Point", 48)]
        findings = check_observations("app", recorder,
                                      (_sfst_report("Point"),))
        assert [f.rule_id for f in findings] == ["DECA101"]
        assert "SFST" in findings[0].message

    def test_rfst_claims_may_vary_per_record(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Rec", 40),
                            PageAppend("g", "Rec", 48)]
        report = PlanReport(target="cache:Rec", udt="Rec",
                            local_size_type=SizeType.VARIABLE,
                            global_size_type=SizeType.RUNTIME_FIXED,
                            decomposed=True, reason="decomposed")
        assert check_observations("app", recorder, (report,)) == []

    def test_flags_resize_attempts(self):
        schema = _record_schema()
        group = PageGroup("g", 4096)
        pointer = group.append_record(schema, (1, (10, 20, 30)))
        buf, off = group.read(pointer)
        with ShadowRecorder() as recorder:
            with pytest.raises(PageOverflowError):
                bind_accessor(schema, buf, off).xs.replace(())
        findings = check_observations("app", recorder, ())
        assert [f.rule_id for f in findings] == ["DECA101"]
        assert "array-resize" in findings[0].message


class TestCheckArenaAccounting:
    def test_silent_in_static_mode(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Point", 40)]
        assert check_arena_accounting(
            "app", recorder, (_sfst_report("Point"),)) == []

    def test_clean_when_arena_covers_packed_bytes(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Point", 40)] * 3
        recorder.arena_events = [ArenaEvent("grow", "g", 4096)]
        assert check_arena_accounting(
            "app", recorder, (_sfst_report("Point"),)) == []

    def test_flags_packed_bytes_beyond_arena_ledger(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Point", 40)] * 3
        recorder.arena_events = [ArenaEvent("acquire", "g", 64)]
        findings = check_arena_accounting(
            "app", recorder, (_sfst_report("Point"),))
        assert [f.rule_id for f in findings] == ["DECA101"]
        assert "only ever accounted 64 bytes" in findings[0].message
        assert "STATIC_FIXED" in findings[0].message

    def test_flags_negative_ledger(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Point", 40)]
        recorder.arena_events = [ArenaEvent("grow", "g", 4096),
                                 ArenaEvent("release", "g", 5000)]
        findings = check_arena_accounting("app", recorder, ())
        assert [f.rule_id for f in findings] == ["DECA101"]
        assert "negative" in findings[0].message

    def test_recorded_end_to_end_by_shadow_run(self):
        from repro.lint import LINT_APPS_BY_NAME, lint_app

        result = lint_app(LINT_APPS_BY_NAME["wordcount"], shadow=True)
        # The unified-mode shadow run produced arena traffic and the
        # accounting check stayed clean on the healthy app.
        assert not [f for f in result.findings
                    if f.rule_id == "DECA101"]


class TestCheckImprecision:
    def _fake_ctx(self, info, records):
        rdd = SimpleNamespace(name="x.rows", udt_info=info)
        block = SimpleNamespace(records=records)
        executor = SimpleNamespace(
            cache=SimpleNamespace(blocks={(0, 0): block}))
        return SimpleNamespace(executors=[executor], _rdds={0: rdd})

    def _object_form_report(self, udt: str) -> PlanReport:
        return PlanReport(target="cache:x.rows", udt=udt,
                          local_size_type=SizeType.VARIABLE,
                          global_size_type=SizeType.VARIABLE,
                          decomposed=False, reason="kept in object form")

    def test_notes_constant_sized_object_form_caches(self):
        info = labeled_point_udt_info(4)
        records = [(1.0, (0.1, 0.2, 0.3, 0.4)),
                   (-1.0, (0.5, 0.6, 0.7, 0.8))]
        ctx = self._fake_ctx(info, records)
        findings = check_imprecision(
            "app", ctx, (self._object_form_report("LabeledPoint"),))
        assert [f.rule_id for f in findings] == ["DECA102"]
        assert "object form" in findings[0].message

    def test_silent_when_observed_sizes_really_vary(self):
        info = wordcount_udt_info()
        records = [("short", 1), ("a-much-longer-word", 2)]
        ctx = self._fake_ctx(info, records)
        assert check_imprecision(
            "app", ctx, (self._object_form_report("Tuple2"),)) == []

    def test_silent_for_decomposed_caches(self):
        info = labeled_point_udt_info(4)
        ctx = self._fake_ctx(info, [(1.0, (0.1, 0.2, 0.3, 0.4))] * 3)
        report = PlanReport(target="cache:x.rows", udt="LabeledPoint",
                            local_size_type=SizeType.VARIABLE,
                            global_size_type=SizeType.STATIC_FIXED,
                            decomposed=True, reason="decomposed")
        assert check_imprecision("app", ctx, (report,)) == []


class TestShadowSummary:
    def test_summary_is_integer_only(self):
        recorder = ShadowRecorder()
        recorder.appends = [PageAppend("g", "Rec", 40),
                            PageAppend("g", "Rec", 48)]
        summary = shadow_summary(recorder, (_sfst_report("Rec"),))
        assert summary["page_records"] == 2
        assert summary["schemas"]["Rec"] == {
            "records": 2, "min_bytes": 40, "max_bytes": 48}
        assert summary["sudt_writes"] == 0
        assert summary["resize_attempts"] == 0
        assert summary["plans"][0]["udt"] == "Rec"

        def only_safe_values(value):
            if isinstance(value, dict):
                return all(only_safe_values(v) for v in value.values())
            if isinstance(value, list):
                return all(only_safe_values(v) for v in value)
            return isinstance(value, (int, str, bool, type(None)))

        assert only_safe_values(summary)
