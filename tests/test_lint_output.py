"""Output-layer tests: JSON round-trips, SARIF shape, baseline diffing."""

import json

from repro.lint import (
    AppLintResult,
    Finding,
    LintReport,
    RULES,
    Severity,
    baseline_diff,
    make_finding,
    report_payload,
    render_text,
    serialize,
    sort_findings,
    to_sarif,
)


def _sample_report() -> LintReport:
    findings = sort_findings([
        make_finding("DECA006", "app/shuffle:0:x", "shuffle:0:x",
                     "no declared UDT", why=("[optimizer.plan] no UDT",)),
        make_finding("DECA001", "app/cache:x", "T.f",
                     "mutable field", location="src/repro/apps/udts.py",
                     why=("[algorithm-1.local] verdict",)),
        make_finding("DECA002", "app/cache:x", "T.g",
                     "phase escape"),
    ])
    result = AppLintResult(app="app", title="App", findings=findings,
                           summary={"shadow": False})
    return LintReport(apps=(result,))


class TestFindingRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        for finding in _sample_report().all_findings():
            assert Finding.from_dict(finding.to_dict()) == finding

    def test_round_trip_survives_json(self):
        for finding in _sample_report().all_findings():
            data = json.loads(json.dumps(finding.to_dict()))
            assert Finding.from_dict(data) == finding

    def test_sort_order_is_severity_then_rule(self):
        findings = _sample_report().all_findings()
        assert [f.rule_id for f in findings] \
            == ["DECA002", "DECA001", "DECA006"]


class TestJsonPayload:
    def test_payload_counts_and_findings(self):
        payload = report_payload(_sample_report())
        assert payload["tool"] == "deca-lint"
        assert payload["totals"] == {"error": 1, "warning": 1, "note": 1,
                                     "findings": 3}
        (app,) = payload["apps"]
        assert app["counts"] == {"error": 1, "warning": 1, "note": 1}
        assert app["findings"][0]["rule"] == "DECA002"

    def test_serialization_is_byte_stable(self):
        payload = report_payload(_sample_report())
        text = serialize(payload)
        assert text.endswith("\n")
        assert serialize(json.loads(text)) == text


class TestRenderText:
    def test_text_mentions_rules_and_totals(self):
        text = render_text(_sample_report())
        assert "DECA001" in text
        assert "why: [algorithm-1.local] verdict" in text
        assert "1 error(s), 1 warning(s), 1 note(s)" in text


class TestSarif:
    def test_sarif_structure(self):
        sarif = to_sarif(_sample_report())
        assert sarif["version"] == "2.1.0"
        assert "sarif-2.1.0" in sarif["$schema"]
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "deca-lint"
        assert len(driver["rules"]) == len(RULES)
        assert {r["id"] for r in driver["rules"]} \
            == {rule.rule_id for rule in RULES}

    def test_results_map_severity_to_level(self):
        (run,) = to_sarif(_sample_report())["runs"]
        levels = {res["ruleId"]: res["level"] for res in run["results"]}
        assert levels == {"DECA001": "warning", "DECA002": "error",
                          "DECA006": "note"}

    def test_results_carry_locations_and_why(self):
        (run,) = to_sarif(_sample_report())["runs"]
        deca001 = next(res for res in run["results"]
                       if res["ruleId"] == "DECA001")
        location = deca001["locations"][0]
        assert location["physicalLocation"]["artifactLocation"]["uri"] \
            == "src/repro/apps/udts.py"
        assert location["logicalLocations"][0]["fullyQualifiedName"] \
            == "app/cache:x::T.f"
        assert deca001["properties"]["why"] \
            == ["[algorithm-1.local] verdict"]

    def test_sarif_is_json_serializable(self):
        json.dumps(to_sarif(_sample_report()))


class TestBaselineDiff:
    def test_identical_payloads_have_no_diff(self):
        payload = report_payload(_sample_report())
        assert baseline_diff(payload, payload) == []

    def test_new_findings_are_reported(self):
        payload = report_payload(_sample_report())
        assert len(baseline_diff(payload, {"apps": []})) == 3

    def test_removed_findings_do_not_fail(self):
        payload = report_payload(_sample_report())
        empty = report_payload(LintReport(apps=()))
        assert baseline_diff(empty, payload) == []

    def test_diff_ignores_why_chain_changes(self):
        payload = report_payload(_sample_report())
        mutated = json.loads(serialize(payload))
        for app in mutated["apps"]:
            for finding in app["findings"]:
                finding["why"] = ["something else entirely"]
        assert baseline_diff(mutated, payload) == []

    def test_severity_changes_are_new_findings(self):
        payload = report_payload(_sample_report())
        mutated = json.loads(serialize(payload))
        mutated["apps"][0]["findings"][0]["severity"] = "note"
        assert len(baseline_diff(mutated, payload)) == 1

    def test_cross_app_findings_do_not_collide(self):
        finding = make_finding("DECA006", "t", "s", "m")
        one = LintReport(apps=(AppLintResult(
            app="a", title="A", findings=(finding,), summary={}),))
        other = LintReport(apps=(AppLintResult(
            app="b", title="B", findings=(finding,), summary={}),))
        assert len(baseline_diff(report_payload(one),
                                 report_payload(other))) == 1
