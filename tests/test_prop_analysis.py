"""Property-based tests: the classification algorithms on random UDTs.

Invariants checked on randomly generated (acyclic) type graphs:

* the refinement direction: the global classifier never reports a type as
  *more* variable than the local one (Algorithm 2 only refines downward);
* monotonicity: adding a VST field to a class never makes it less
  variable;
* SFST/RFST verdicts always admit a byte layout, VST verdicts never do;
* recursion is always detected.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import (
    ArrayType,
    CallGraph,
    ClassType,
    DOUBLE,
    Field,
    GlobalClassifier,
    INT,
    LONG,
    Method,
    Return,
    SizeType,
    classify_locally,
)
from repro.analysis.size_type import variability_rank
from repro.errors import MemoryLayoutError
from repro.memory.layout import build_schema

_PRIMS = (INT, LONG, DOUBLE)


@st.composite
def random_udt(draw, depth=0):
    """A random acyclic UDT."""
    if depth >= 3:
        return draw(st.sampled_from(_PRIMS))
    kind = draw(st.sampled_from(
        ["prim", "prim", "array", "class", "class"]))
    if kind == "prim":
        return draw(st.sampled_from(_PRIMS))
    if kind == "array":
        element = draw(random_udt(depth=depth + 1))
        return ArrayType(element)
    field_count = draw(st.integers(1, 3))
    fields = []
    for index in range(field_count):
        ftype = draw(random_udt(depth=depth + 1))
        final = draw(st.booleans())
        fields.append(Field(f"f{index}", ftype, final=final))
    return ClassType(f"C{draw(st.integers(0, 10 ** 6))}", fields)


def empty_scope() -> GlobalClassifier:
    entry = Method(name="entry", body=(Return(),))
    return GlobalClassifier(CallGraph.build(entry))


@given(random_udt())
@settings(max_examples=150)
def test_global_never_coarsens_local(udt):
    local = classify_locally(udt)
    if local is SizeType.RECURSIVELY_DEFINED:
        return
    refined = empty_scope().classify(udt)
    assert variability_rank(refined) <= variability_rank(local)


@given(random_udt())
@settings(max_examples=150)
def test_classification_is_deterministic(udt):
    assert classify_locally(udt) is classify_locally(udt)


@given(random_udt())
@settings(max_examples=150)
def test_adding_vst_field_never_reduces_variability(udt):
    if not isinstance(udt, ClassType):
        return
    before = classify_locally(udt)
    if before is SizeType.RECURSIVELY_DEFINED:
        return
    vst_field = Field("growable", ArrayType(DOUBLE), final=False)
    widened = ClassType(udt.name + "_w", list(udt.fields) + [vst_field])
    after = classify_locally(widened)
    assert variability_rank(after) >= variability_rank(before)
    assert after is SizeType.VARIABLE


@given(random_udt())
@settings(max_examples=150)
def test_decomposable_verdicts_admit_layouts(udt):
    """SFST/RFST ⇒ build_schema succeeds; VST ⇒ it refuses."""
    local = classify_locally(udt)
    if local is SizeType.RECURSIVELY_DEFINED:
        return
    if isinstance(udt, ClassType) and not udt.fields:
        return
    if local.decomposable:
        schema = build_schema(udt, local)
        assert schema is not None
    else:
        try:
            build_schema(udt, local)
        except MemoryLayoutError:
            pass
        else:
            raise AssertionError("VST must not be laid out")


@given(random_udt(), st.integers(0, 2))
@settings(max_examples=100)
def test_recursion_always_detected(udt, hook_index):
    """Closing any class in the graph into a cycle flips the verdict."""
    if not isinstance(udt, ClassType):
        return
    udt.add_field(Field("self_link", udt))
    assert classify_locally(udt) is SizeType.RECURSIVELY_DEFINED


@given(random_udt())
@settings(max_examples=100)
def test_sfst_layouts_have_static_size(udt):
    local = classify_locally(udt)
    if local is not SizeType.STATIC_FIXED:
        return
    if isinstance(udt, ClassType) and not udt.fields:
        return
    schema = build_schema(udt, local)
    assert schema.fixed_size is not None
