"""The runtime alias sanitizer: ledger triggers, engine wiring, and the
zero-copy regression scenarios the DECA30x rules exist for.

Includes the two regression tests this PR hardens the engine against:

* dangling promoted views — CacheStore swap/drop paths must release a
  superseded promotion blob *before* the backing extent is freed (the
  pre-fix behaviour left the view aliasing recycled bytes);
* grow-by-remap — views exported before a tier file growth must stay
  valid and byte-identical after it, including under re-entrant swap
  pressure (interleaved swap-outs forcing repeated remaps).
"""

import pytest

from repro.config import MB, DecaConfig, ExecutionMode
from repro.errors import SanitizerError
from repro.memory.provenance import (
    POISON_BYTE,
    VIOLATION_SLUGS,
    ProvenanceLedger,
)
from repro.memory.tier import PageStoreTier
from repro.spark import DecaContext
from repro.spark.cache import StorageStrategy
from repro.apps.logistic_regression import labeled_point_udt_info


def make_ctx(mode, **overrides):
    defaults = dict(mode=mode, heap_bytes=32 * MB, num_executors=1,
                    tasks_per_executor=2, execution_backend="sim",
                    cold_tier="mmap", sanitize=True)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


def cache_one_rdd(ctx, records=400):
    data = [(1.0, tuple(float(d) for d in range(10)))
            for _ in range(records)]
    rdd = ctx.parallelize(data, 2).map(
        lambda r: r, udt_info=labeled_point_udt_info(10)).cache()
    rdd.count()
    return rdd, data


class TestLedgerTriggers:
    """Each DECA30x violation slug has a direct ledger trigger."""

    def test_free_under_live_borrow_extent(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view)
        ledger.note_free("extent", "g")
        assert ledger.counters["use-after-free-extent"] == 1
        assert view.nbytes == 16  # trigger fired, view untouched

    def test_free_under_live_borrow_segment(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("segment", "s", view=view)
        ledger.note_free("segment", "s")
        assert ledger.counters["use-after-unlink-segment"] == 1

    def test_released_borrow_does_not_trip_free(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view)
        view.release()
        ledger.note_free("extent", "g")
        assert ledger.counters["use-after-free-extent"] == 0

    def test_double_free(self):
        ledger = ProvenanceLedger()
        ledger.note_free("extent", "g")
        ledger.note_free("extent", "g")
        assert ledger.counters["double-free"] == 1

    def test_realloc_resets_double_free(self):
        ledger = ProvenanceLedger()
        ledger.note_free("extent", "g")
        ledger.note_alloc("extent", "g")
        ledger.note_free("extent", "g")
        assert ledger.counters["double-free"] == 0

    def test_unretired_remap_under_live_borrow(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view)
        ledger.note_remap("extent", ["g"], retired=False)
        assert ledger.counters["remap-invalidates-export"] == 1

    def test_retired_remap_is_clean(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view)
        ledger.note_remap("extent", ["g"], retired=True)
        assert ledger.counters["remap-invalidates-export"] == 0

    def test_escaped_adoption_at_finish(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view, transient=False)
        ledger.retain("extent", "g", group="pg")
        ledger.note_reclaim("pg")
        ledger.check_finish()
        assert ledger.counters["view-escapes-adoption"] == 1

    def test_leak_at_finish(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view)
        ledger.check_finish()
        assert ledger.counters["leak-at-finish"] == 1
        view.release()

    def test_released_transient_is_not_a_leak(self):
        ledger = ProvenanceLedger()
        buf = bytearray(16)
        view = memoryview(buf)
        ledger.borrow("extent", "g", view=view)
        view.release()
        ledger.check_finish()
        assert ledger.counters["leak-at-finish"] == 0

    def test_cold_alias_on_use(self):
        ledger = ProvenanceLedger()
        ledger.note_demote("segment", "s")
        assert ledger.check_use("segment", "s") is False
        assert ledger.counters["cross-process-cold-alias"] == 1

    def test_use_after_free_on_use(self):
        ledger = ProvenanceLedger()
        ledger.note_free("extent", "g")
        assert ledger.check_use("extent", "g") is False
        assert ledger.counters["use-after-free-extent"] == 1

    def test_unreleased_drain_copy_at_finish(self):
        ledger = ProvenanceLedger()
        ledger.note_drain_copy("pg", 64)
        ledger.check_finish()
        assert ledger.counters["unreleased-drain-copy"] == 1

    def test_released_drain_is_clean(self):
        ledger = ProvenanceLedger()
        ledger.note_drain_copy("pg", 64)
        ledger.release_drain("pg")
        ledger.check_finish()
        assert ledger.counters["unreleased-drain-copy"] == 0

    def test_summary_counts_total_violations(self):
        ledger = ProvenanceLedger()
        ledger.note_free("extent", "g")
        ledger.note_free("extent", "g")
        assert ledger.summary()["violations"] == 1
        assert set(VIOLATION_SLUGS) <= set(ledger.summary())


class TestContextWiring:
    def test_disabled_means_no_ledgers_anywhere(self):
        ctx = make_ctx(ExecutionMode.DECA, sanitize=False)
        try:
            assert ctx.ledger is None
            assert all(e.ledger is None for e in ctx.executors)
            cache_one_rdd(ctx)
            run = ctx.finish()
        finally:
            pass
        assert "sanitize" not in run.to_dict()
        assert run.sanitize == {}

    @pytest.mark.parametrize("mode", [ExecutionMode.SPARK_SER,
                                      ExecutionMode.DECA],
                             ids=lambda m: m.value)
    def test_clean_swap_churn_finishes_clean(self, mode):
        ctx = make_ctx(mode)
        cache_one_rdd(ctx)
        store = ctx.executors[0].cache
        for key in list(store.blocks):
            store.swap_out(key)
        for key in list(store.blocks):
            store.swap_in(key)
        run = ctx.finish()
        assert run.sanitize.get("violations", 0) == 0
        assert run.sanitize.get("borrows", 0) > 0
        assert "sanitize" in run.to_dict()

    def test_injected_leak_raises_sanitizer_error(self):
        ctx = make_ctx(ExecutionMode.DECA)
        cache_one_rdd(ctx)
        buf = bytearray(32)
        view = memoryview(buf)
        assert ctx.ledger is not None
        ctx.ledger.borrow("extent", "injected", view=view)
        with pytest.raises(SanitizerError) as err:
            ctx.finish()
        assert "leak-at-finish" in str(err.value)
        view.release()


class TestDanglingPromotedViewRegression:
    """Superseded promotion blobs must be detached before extent free.

    Pre-fix, ``_drop_block`` / the serialized re-swap-out left
    ``block.blob`` (a memoryview aliasing the mmap extent) attached
    while the extent's bytes were freed and poisoned — a silent
    use-after-free the sanitizer now turns into a hard failure.
    """

    def promoted_block(self, ctx):
        store = ctx.executors[0].cache
        key = next(iter(store.blocks))
        store.swap_out(key)
        block = store.swap_in(key)
        return store, key, block

    def test_drop_releases_promoted_blob_before_extent_free(self):
        ctx = make_ctx(ExecutionMode.SPARK_SER)
        cache_one_rdd(ctx)
        store, key, block = self.promoted_block(ctx)
        assert block.strategy is StorageStrategy.SERIALIZED
        assert isinstance(block.blob, memoryview)
        blob = block.blob
        store.invalidate_all()
        # The promotion view was explicitly detached: using it now is a
        # loud ValueError, not a silent read of recycled bytes.
        with pytest.raises(ValueError):
            blob.nbytes
        run = ctx.finish()
        assert run.sanitize.get("violations", 0) == 0

    def test_supersede_swap_out_releases_previous_promotion(self):
        ctx = make_ctx(ExecutionMode.SPARK_SER)
        cache_one_rdd(ctx)
        store, key, block = self.promoted_block(ctx)
        blob = block.blob
        assert isinstance(blob, memoryview)
        store.swap_out(key)   # supersede: the promoted copy is retired
        with pytest.raises(ValueError):
            blob.nbytes
        assert block.blob is None
        run = ctx.finish()
        assert run.sanitize.get("violations", 0) == 0

    def test_deca_adopted_pages_survive_drop_cleanly(self):
        ctx = make_ctx(ExecutionMode.DECA)
        rdd, _ = cache_one_rdd(ctx)
        store, key, block = self.promoted_block(ctx)
        store.remove_rdd(rdd.rdd_id)
        run = ctx.finish()
        assert run.sanitize.get("violations", 0) == 0

    def test_reswap_into_reused_extent_serves_fresh_bytes(self):
        ctx = make_ctx(ExecutionMode.SPARK_SER)
        rdd, data = cache_one_rdd(ctx)
        store, key, block = self.promoted_block(ctx)
        # Free the extent, then force the block back out and in again:
        # the returned bytes must be the block's, never a poison fill.
        store.swap_out(key)
        block = store.swap_in(key)
        assert isinstance(block.blob, memoryview)
        assert bytes(block.blob[:4]) != bytes([POISON_BYTE]) * 4
        assert sorted(rdd.collect()) == sorted(data)
        run = ctx.finish()
        assert run.sanitize.get("violations", 0) == 0


class TestGrowByRemapRegression:
    """Exported views survive tier file growth, byte for byte."""

    def test_views_stay_valid_across_grows(self, tmp_path):
        ledger = ProvenanceLedger()
        tier = PageStoreTier(str(tmp_path / "grow.bin"), ledger=ledger)
        payload = bytes(range(256)) * 4
        tier.swap_out("pinned", [payload])
        views = tier.views("pinned")
        held = list(views)
        # Each swap-out doubles past the file size sooner or later; the
        # held views must alias the *retired* mapping, not garbage.
        for round_no in range(6):
            tier.swap_out(f"fill-{round_no}",
                          [b"\x5a" * (1 << (14 + round_no))])
            assert b"".join(bytes(v) for v in held) == payload
        assert ledger.counters["remaps"] > 0
        assert ledger.counters["remap-invalidates-export"] == 0
        assert ledger.summary()["violations"] == 0
        for view in held:
            view.release()
        tier.close()

    def test_grow_under_reentrant_swap_pressure(self, tmp_path):
        """Interleaved drop/swap churn (extent reuse + growth) while
        promoted views from every earlier round stay pinned."""
        ledger = ProvenanceLedger()
        tier = PageStoreTier(str(tmp_path / "churn.bin"), ledger=ledger)
        pinned = {}
        held = {}
        for round_no in range(8):
            name = f"g{round_no}"
            payload = bytes([round_no + 1]) * (1 << (10 + round_no))
            tier.swap_out(name, [payload])
            pinned[name] = payload
            held[name] = tier.views(name)
            # Churn: a transient neighbour comes and goes, punching
            # free-list holes that the next round's grow must respect.
            tier.swap_out(f"tmp{round_no}", [b"\xee" * 2048])
            tier.drop(f"tmp{round_no}")
            for past, payload in pinned.items():
                got = b"".join(bytes(v) for v in held[past])
                assert got == payload, f"{past} corrupted at {round_no}"
        assert ledger.counters["remaps"] > 0
        assert ledger.summary()["violations"] == 0
        for views in held.values():
            for view in views:
                view.release()
        tier.close()

    def test_promoted_bytes_never_poisoned(self, tmp_path):
        ledger = ProvenanceLedger()
        tier = PageStoreTier(str(tmp_path / "poison.bin"), ledger=ledger)
        tier.swap_out("victim", [b"\x11" * 4096])
        for view in tier.views("victim"):
            view.release()
        tier.drop("victim")   # poisons the hole
        tier.swap_out("tenant", [b"\x22" * 4096])  # reuses the hole
        got = b"".join(bytes(v) for v in tier.swap_in("tenant"))
        assert POISON_BYTE not in got
        assert got == b"\x22" * 4096
        assert ledger.summary()["violations"] == 0
        tier.close()
