"""Property-based tests: heap accounting invariants and engine semantics."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.config import DecaConfig, ExecutionMode, MB
from repro.jvm import Lifetime, SimHeap
from repro.simtime import SimClock
from repro.spark import DecaContext


@st.composite
def allocation_script(draw):
    """A random sequence of heap operations."""
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["alloc-temp", "alloc-pinned", "free",
                             "minor", "full"]),
            st.integers(1, 500),      # objects
            st.integers(8, 200_000),  # bytes
        ),
        min_size=1, max_size=40))
    return ops


@given(allocation_script())
@settings(max_examples=80, deadline=None)
def test_heap_accounting_invariants(script):
    cfg = DecaConfig(heap_bytes=32 * MB)
    heap = SimHeap(cfg, SimClock())
    pinned = []
    temp = heap.new_group("temp", Lifetime.TEMPORARY)
    for op, objects, nbytes in script:
        if op == "alloc-temp":
            heap.allocate(temp, objects, nbytes)
        elif op == "alloc-pinned":
            group = heap.new_group(f"pin{len(pinned)}", Lifetime.PINNED)
            heap.allocate(group, objects, nbytes)
            pinned.append(group)
        elif op == "free" and pinned:
            heap.free_group(pinned.pop())
        elif op == "minor":
            heap.minor_gc()
        elif op == "full":
            heap.full_gc()
        # Invariants after every operation:
        assert 0 <= heap.young_live_bytes <= heap.young_used_bytes
        assert 0 <= heap.old_live_bytes <= heap.old_used_bytes
        assert heap.live_objects >= 0
        # Used space never exceeds capacity by more than the transient
        # overflow a collection is about to resolve.
        assert heap.young_used_bytes <= heap.config.heap_bytes
    # Clock is monotone and GC events are ordered.
    starts = [e.start_ms for e in heap.stats.events]
    assert starts == sorted(starts)
    # Freeing everything and collecting empties the heap.
    for group in pinned:
        heap.free_group(group)
    heap.free_group(temp)
    heap.full_gc()
    heap.minor_gc()
    assert heap.live_objects == 0
    assert heap.old_used_bytes == 0


@given(st.lists(st.tuples(st.integers(0, 30), st.integers(-100, 100)),
                min_size=1, max_size=150),
       st.integers(1, 5), st.integers(1, 5),
       st.sampled_from(list(ExecutionMode)))
@settings(max_examples=40, deadline=None)
def test_reduce_by_key_matches_counter(pairs, parts_in, parts_out, mode):
    """Engine shuffle semantics == plain-Python aggregation, all modes."""
    ctx = DecaContext(DecaConfig(mode=mode, heap_bytes=32 * MB,
                                 num_executors=2, tasks_per_executor=2))
    rdd = ctx.parallelize(pairs, parts_in)
    result = dict(rdd.reduce_by_key(lambda a, b: a + b,
                                    parts_out).collect())
    expected: dict[int, int] = {}
    for key, value in pairs:
        expected[key] = expected.get(key, 0) + value
    assert result == expected


@given(st.lists(st.integers(-50, 50), min_size=1, max_size=200),
       st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_cached_collect_is_stable(values, parts):
    """A cached dataset returns identical records on every pass."""
    ctx = DecaContext(DecaConfig(heap_bytes=32 * MB, num_executors=2,
                                 tasks_per_executor=2))
    rdd = ctx.parallelize(values, parts).map(lambda x: x * 3).cache()
    first = sorted(rdd.collect())
    second = sorted(rdd.collect())
    third = sorted(rdd.collect())
    assert first == second == third == sorted(x * 3 for x in values)


@given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)),
                min_size=1, max_size=100))
@settings(max_examples=30, deadline=None)
def test_group_by_key_partitions_all_records(pairs):
    ctx = DecaContext(DecaConfig(heap_bytes=32 * MB, num_executors=2,
                                 tasks_per_executor=2))
    grouped = ctx.parallelize(pairs, 3).group_by_key(3).collect()
    flattened = Counter()
    for key, values in grouped:
        for value in values:
            flattened[(key, value)] += 1
    assert flattened == Counter(pairs)
    keys = [key for key, _ in grouped]
    assert len(keys) == len(set(keys))  # each key appears exactly once
