"""Smoke tests: the shipped examples must keep running end-to-end.

``graph_analytics`` is exercised by the Fig. 10 benchmarks instead — it
runs PageRank at a scale too slow for the unit suite.
"""

import os
import runpy
import sys

EXAMPLES = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "examples")


def run_example(name: str, capsys) -> str:
    path = os.path.join(EXAMPLES, name)
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "--- spark ---" in out
        assert "--- deca ---" in out
        assert "GC pause time" in out

    def test_custom_udt(self, capsys):
        out = run_example("custom_udt.py", capsys)
        assert "local classification : runtime-fixed" in out
        assert "static-fixed" in out
        assert "group reclaimed after last close" in out

    def test_sql_comparison(self, capsys):
        out = run_example("sql_comparison.py", capsys)
        assert "spark-sql" in out
        assert "all three systems agree" in out

    def test_iterative_ml(self, capsys):
        out = run_example("iterative_ml.py", capsys)
        assert "max weight drift between Spark and Deca: 0.00e+00" in out
        assert "DECOMPOSED" in out
