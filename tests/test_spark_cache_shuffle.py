"""Tests for the block cache (eviction/swap) and the shuffle subsystem."""

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.errors import CacheError
from repro.spark import DecaContext
from repro.spark.cache import StorageStrategy


def make_ctx(mode=ExecutionMode.SPARK, heap_mb=32, **overrides):
    defaults = dict(mode=mode, heap_bytes=heap_mb * MB, num_executors=2,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestCacheStorageStrategies:
    def test_spark_mode_caches_objects(self):
        ctx = make_ctx(ExecutionMode.SPARK)
        rdd = ctx.parallelize(range(100), 2).map(lambda x: x).cache()
        rdd.count()
        blocks = [b for e in ctx.executors
                  for b in e.cache.blocks.values()]
        assert blocks
        assert all(b.strategy is StorageStrategy.OBJECTS for b in blocks)
        assert all(b.records is not None for b in blocks)

    def test_sparkser_mode_serializes(self):
        ctx = make_ctx(ExecutionMode.SPARK_SER)
        rdd = ctx.parallelize(range(100), 2).map(lambda x: x).cache()
        rdd.count()
        blocks = [b for e in ctx.executors
                  for b in e.cache.blocks.values()]
        assert all(b.strategy is StorageStrategy.SERIALIZED
                   for b in blocks)

    def test_deca_without_udt_stays_objects(self):
        """Un-analyzable types are left intact (the paper's fallback)."""
        ctx = make_ctx(ExecutionMode.DECA)
        rdd = ctx.parallelize(range(100), 2).map(lambda x: x).cache()
        rdd.count()
        blocks = [b for e in ctx.executors
                  for b in e.cache.blocks.values()]
        assert all(b.strategy is StorageStrategy.OBJECTS for b in blocks)

    def test_deca_with_udt_uses_pages(self):
        from repro.apps.logistic_regression import labeled_point_udt_info
        ctx = make_ctx(ExecutionMode.DECA)
        data = [(1.0, tuple(float(i) for i in range(10)))
                for _ in range(100)]
        rdd = ctx.parallelize(data, 2).map(
            lambda r: r, udt_info=labeled_point_udt_info(10)).cache()
        rdd.count()
        blocks = [b for e in ctx.executors
                  for b in e.cache.blocks.values()]
        assert all(b.strategy is StorageStrategy.DECA_PAGES
                   for b in blocks)
        assert all(b.page_group is not None and b.page_group.page_count
                   for b in blocks)

    def test_deca_pages_are_few_heap_objects(self):
        """The headline mechanism: page count ≪ record count."""
        from repro.apps.logistic_regression import labeled_point_udt_info
        ctx = make_ctx(ExecutionMode.DECA)
        data = [(1.0, tuple(float(i) for i in range(10)))
                for _ in range(5000)]
        rdd = ctx.parallelize(data, 2).map(
            lambda r: r, udt_info=labeled_point_udt_info(10)).cache()
        rdd.count()
        pages = sum(e.memory_manager.page_count for e in ctx.executors)
        assert 0 < pages < 50

    def test_cache_footprint_order(self):
        """Spark objects > serialized ≈ Deca pages (Fig. 9 cache bars)."""
        from repro.apps.logistic_regression import labeled_point_udt_info
        data = [(1.0, tuple(float(i) for i in range(10)))
                for _ in range(2000)]
        sizes = {}
        for mode in ExecutionMode:
            ctx = make_ctx(mode)
            rdd = ctx.parallelize(data, 2).map(
                lambda r: r, udt_info=labeled_point_udt_info(10)).cache()
            rdd.count()
            sizes[mode] = ctx.cached_bytes_of(rdd)
        assert sizes[ExecutionMode.SPARK] > sizes[ExecutionMode.SPARK_SER]
        assert sizes[ExecutionMode.SPARK] > sizes[ExecutionMode.DECA]


class TestCacheEvictionAndSwap:
    def _fill(self, ctx, n=4000):
        rdd = ctx.parallelize(
            [(i, float(i)) for i in range(n)], 8).map(lambda x: x).cache()
        rdd.count()
        return rdd

    def test_blocks_swap_under_budget_pressure(self):
        ctx = make_ctx(heap_mb=2, storage_fraction=0.05,
                       shuffle_fraction=0.1)
        rdd = self._fill(ctx)
        swapped = sum(1 for e in ctx.executors
                      for b in e.cache.blocks.values() if b.on_disk)
        assert swapped > 0

    def test_swapped_blocks_reread_correctly(self):
        ctx = make_ctx(heap_mb=2, storage_fraction=0.05,
                       shuffle_fraction=0.1)
        rdd = self._fill(ctx, 3000)
        out = sorted(rdd.collect())
        assert out == [(i, float(i)) for i in range(3000)]

    def test_swap_charges_disk_time(self):
        ctx = make_ctx(heap_mb=2, storage_fraction=0.05,
                       shuffle_fraction=0.1)
        self._fill(ctx)
        # Under cold_tier="mmap" the same traffic is charged to the
        # (faster) tier clock instead of the disk clock.
        assert any(e.disk_ms_total > 0 or e.tier_ms_total > 0
                   for e in ctx.executors)

    def test_missing_block_raises(self):
        ctx = make_ctx()
        with pytest.raises(CacheError):
            ctx.executors[0].cache.get((999, 0))

    def test_lru_prefers_cold_blocks(self):
        ctx = make_ctx()
        store = ctx.executors[0].cache
        from repro.spark.cache import CachedBlock
        from repro.spark.measure import RecordFootprint

        def block(key):
            return CachedBlock(
                key=key, strategy=StorageStrategy.SERIALIZED,
                records=[1], blob=None, page_group=None, schema=None,
                decode=None, record_count=1, memory_bytes=100,
                disk_bytes=100, footprint=RecordFootprint(1, 100, 50))

        store.put(block((1, 0)))
        store.put(block((2, 0)))
        store.get((1, 0))  # (2, 0) becomes LRU
        assert store._lru_victim() == (2, 0)


class TestShuffleCosts:
    def test_remote_blocks_pay_network(self):
        ctx = make_ctx()
        pairs = ctx.parallelize([(i % 5, 1) for i in range(200)], 4)
        pairs.reduce_by_key(lambda a, b: a + b, 4).collect()
        assert any(e.network_ms_total > 0 for e in ctx.executors)

    def test_spill_when_buffer_exceeds_budget(self):
        ctx = make_ctx(heap_mb=2, storage_fraction=0.1,
                       shuffle_fraction=0.01)
        pairs = ctx.parallelize(
            [(i, "x" * 50) for i in range(3000)], 2)
        pairs.group_by_key(2).count()
        run = ctx.finish()
        assert run.spilled_shuffle_bytes > 0

    def test_deca_shuffle_combine_allocates_less(self):
        """Eager combining: Deca's segment reuse kills the Tuple2 churn."""
        from repro.apps.wordcount import wordcount_udt_info
        counts = {}
        for mode in (ExecutionMode.SPARK, ExecutionMode.DECA):
            ctx = make_ctx(mode)
            info = wordcount_udt_info()
            pairs = ctx.parallelize(
                ["w%d" % (i % 50) for i in range(4000)], 2) \
                .map(lambda w: (w, 1)).with_udt(info)
            pairs.reduce_by_key(lambda a, b: a + b, 2).count()
            run = ctx.finish()
            counts[mode] = sum(
                e.heap.stats.minor_count for e in ctx.executors)
        assert counts[ExecutionMode.DECA] <= counts[ExecutionMode.SPARK]

    def test_shuffle_read_is_deterministic(self):
        ctx = make_ctx()
        data = [(i % 7, i) for i in range(500)]
        out1 = sorted(ctx.parallelize(data, 4).reduce_by_key(
            lambda a, b: a + b, 3).collect())
        ctx2 = make_ctx()
        out2 = sorted(ctx2.parallelize(data, 4).reduce_by_key(
            lambda a, b: a + b, 3).collect())
        assert out1 == out2
