"""Tests for the classification explainer."""

import pytest

from repro.analysis import (
    ArrayType,
    CallGraph,
    ClassType,
    DOUBLE,
    Field,
    INT,
    Phase,
    SizeType,
    explain_classification,
    explain_phases,
    explain_provenance,
    render_provenance,
)
from repro.analysis.phased import PhasedClassifier
from repro.apps.udts import (
    make_graph_model,
    make_labeled_point_model,
    make_wordcount_model,
)


class TestExplainLocal:
    def test_running_example_names_the_culprit_field(self):
        m = make_labeled_point_model()
        text = explain_classification(m.labeled_point)
        assert "local (Algorithm 1): variable" in text
        assert "var features" in text
        assert "non-final field holding RFSTs" in text
        assert "verdict: variable" in text

    def test_recursive_type_shows_the_cycle(self):
        node = ClassType("Node", [Field("v", INT)])
        node.add_field(Field("next", node))
        text = explain_classification(node)
        assert "recursively-defined" in text
        assert "Node -> Node" in text

    def test_array_explanation(self):
        text = explain_classification(ArrayType(DOUBLE))
        assert "element: static-fixed" in text


class TestExplainGlobal:
    def test_refined_verdict_with_fixed_length_evidence(self):
        m = make_labeled_point_model(dimensions=10)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        text = explain_classification(m.labeled_point, cg)
        assert "global (Algorithms 2-4): static-fixed" in text
        assert "fixed-length" in text
        assert "length = 10" in text
        assert "(decomposable)" in text

    def test_wordcount_explains_variable_lengths(self):
        wc = make_wordcount_model()
        cg = CallGraph.build(wc.stage_entry, known_types=(wc.tuple2,))
        text = explain_classification(wc.tuple2, cg)
        assert "runtime-fixed" in text

    def test_adjacency_not_init_only_in_build_stage(self):
        gm = make_graph_model()
        cg = CallGraph.build(gm.build_stage_entry,
                             known_types=(gm.adjacency,))
        text = explain_classification(gm.adjacency, cg)
        assert "NOT init-only" in text
        assert "kept in object form" in text

    def test_assume_init_only_flips_the_verdict(self):
        gm = make_graph_model()
        cg = CallGraph.build(gm.iterate_stage_entry,
                             known_types=(gm.adjacency,))
        text = explain_classification(
            gm.adjacency, cg, assume_init_only=(gm.neighbors_field,))
        assert "verdict: runtime-fixed (decomposable)" in text

    def test_no_callgraph_notes_the_limitation(self):
        m = make_labeled_point_model()
        text = explain_classification(m.labeled_point)
        assert "global refinement unavailable" in text


class TestProvenance:
    def test_provenance_steps_carry_stable_rule_ids(self):
        m = make_labeled_point_model(dimensions=10)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        prov = explain_provenance(m.labeled_point, cg)
        assert prov.verdict is SizeType.STATIC_FIXED
        assert prov.decomposable
        rules = prov.rules_fired()
        assert "algorithm-1.local" in rules
        assert "algorithm-2.global" in rules
        assert "algorithm-3.fixed-length" in rules
        assert "verdict" in rules

    def test_provenance_to_dict_is_machine_readable(self):
        m = make_labeled_point_model(dimensions=10)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        prov = explain_provenance(m.labeled_point, cg)
        data = prov.to_dict()
        assert data["udt"] == "LabeledPoint"
        assert data["verdict"] == "static-fixed"
        assert data["decomposable"] is True
        assert all({"rule", "subject", "verdict"} <= set(step)
                   for step in data["steps"])

    def test_render_provenance_matches_explain_classification(self):
        m = make_labeled_point_model(dimensions=10)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        assert render_provenance(explain_provenance(m.labeled_point, cg)) \
            == explain_classification(m.labeled_point, cg)

    def test_assumption_source_names_the_vouching_phase(self):
        gm = make_graph_model()
        known = (gm.adjacency,)
        phases = (
            Phase("build", CallGraph.build(gm.build_stage_entry,
                                           known_types=known)),
            Phase("iterate", CallGraph.build(gm.iterate_stage_entry,
                                             known_types=known),
                  reads_materialized=True),
        )
        provs = explain_phases(gm.adjacency, phases,
                               materialized_fields=(gm.neighbors_field,))
        assert provs[0].phase == "build"
        assert provs[1].phase == "iterate"
        iterate_text = render_provenance(provs[1])
        assert "vouched for by phase 'build'" in iterate_text

    def test_phase_report_keyerror_lists_known_phases(self):
        gm = make_graph_model()
        phases = (Phase("build", CallGraph.build(
            gm.build_stage_entry, known_types=(gm.adjacency,))),)
        report = PhasedClassifier(phases).classify(gm.adjacency)
        with pytest.raises(KeyError, match="build"):
            report.size_type_in("no-such-phase")
