"""Detailed tests for cache swapping and page-info bookkeeping."""

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.spark import DecaContext
from repro.apps.logistic_regression import labeled_point_udt_info


def ctx_with_cached(mode, records=400, heap_mb=32, **overrides):
    defaults = dict(mode=mode, heap_bytes=heap_mb * MB, num_executors=1,
                    tasks_per_executor=2)
    defaults.update(overrides)
    ctx = DecaContext(DecaConfig(**defaults))
    data = [(1.0, tuple(float(d) for d in range(10)))
            for _ in range(records)]
    rdd = ctx.parallelize(data, 2).map(
        lambda r: r, udt_info=labeled_point_udt_info(10)).cache()
    rdd.count()
    return ctx, rdd, data


class TestSwapRoundtrips:
    @pytest.mark.parametrize("mode", list(ExecutionMode),
                             ids=lambda m: m.value)
    def test_swap_out_then_stream_back(self, mode):
        ctx, rdd, data = ctx_with_cached(mode)
        store = ctx.executors[0].cache
        for key in list(store.blocks):
            store.swap_out(key)
        assert all(b.on_disk for b in store.blocks.values())
        assert sorted(rdd.collect()) == sorted(data)

    @pytest.mark.parametrize("mode", list(ExecutionMode),
                             ids=lambda m: m.value)
    def test_swap_in_restores_memory_residence(self, mode):
        ctx, rdd, data = ctx_with_cached(mode)
        store = ctx.executors[0].cache
        key = next(iter(store.blocks))
        store.swap_out(key)
        block = store.swap_in(key)
        assert not block.on_disk
        assert block.memory_bytes > 0
        assert sorted(rdd.collect()) == sorted(data)

    def test_swap_out_is_idempotent(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.SPARK)
        store = ctx.executors[0].cache
        key = next(iter(store.blocks))
        released = store.swap_out(key)
        assert released > 0
        assert store.swap_out(key) == 0

    def test_swap_frees_heap_space(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.SPARK)
        executor = ctx.executors[0]
        live_before = executor.heap.live_objects
        for key in list(executor.cache.blocks):
            executor.cache.swap_out(key)
        executor.heap.full_gc()
        assert executor.heap.live_objects < live_before

    def test_deca_swap_writes_raw_pages(self):
        """No serialization cost when Deca pages hit the disk (App. C)."""
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA)
        executor = ctx.executors[0]
        ser_before = executor.serializer.ser_ms_total
        for key in list(executor.cache.blocks):
            executor.cache.swap_out(key)
        assert executor.serializer.ser_ms_total == ser_before

    def test_spark_swap_serializes(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.SPARK)
        executor = ctx.executors[0]
        ser_before = executor.serializer.ser_ms_total
        key = next(iter(executor.cache.blocks))
        executor.cache.swap_out(key)
        assert executor.serializer.ser_ms_total > ser_before


class TestPageInfoCursor:
    def test_cursor_resets(self):
        from repro.memory import PageGroup
        group = PageGroup("g", page_bytes=64)
        info = group.new_page_info()
        info.cur_page, info.cur_offset = 3, 40
        info.reset_cursor()
        assert (info.cur_page, info.cur_offset) == (0, 0)
        info.close()

    def test_end_offset_mirrors_group(self):
        from repro.memory import PageGroup
        group = PageGroup("g", page_bytes=64)
        group.append_bytes(b"abc")
        info = group.new_page_info()
        assert info.end_offset == 3
        info.close()


class TestUdtInfoCaching:
    def test_callgraph_built_once(self):
        info = labeled_point_udt_info(10)
        assert info.callgraph() is info.callgraph()

    def test_constant_footprint_cached(self):
        info = labeled_point_udt_info(10)
        record = (1.0, tuple(float(d) for d in range(10)))
        assert info.measure(record) is info.measure(record)

    def test_no_entry_method_means_no_callgraph(self):
        import dataclasses
        info = dataclasses.replace(labeled_point_udt_info(10),
                                   entry_method=None, _callgraph=None)
        assert info.callgraph() is None
