"""Detailed tests for cache swapping and page-info bookkeeping."""

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.jvm.objects import Lifetime
from repro.spark import DecaContext
from repro.spark.cache import CachedBlock, StorageStrategy
from repro.spark.measure import RecordFootprint
from repro.apps.logistic_regression import labeled_point_udt_info


def ctx_with_cached(mode, records=400, heap_mb=32, **overrides):
    defaults = dict(mode=mode, heap_bytes=heap_mb * MB, num_executors=1,
                    tasks_per_executor=2)
    defaults.update(overrides)
    ctx = DecaContext(DecaConfig(**defaults))
    data = [(1.0, tuple(float(d) for d in range(10)))
            for _ in range(records)]
    rdd = ctx.parallelize(data, 2).map(
        lambda r: r, udt_info=labeled_point_udt_info(10)).cache()
    rdd.count()
    return ctx, rdd, data


class TestSwapRoundtrips:
    @pytest.mark.parametrize("mode", list(ExecutionMode),
                             ids=lambda m: m.value)
    def test_swap_out_then_stream_back(self, mode):
        ctx, rdd, data = ctx_with_cached(mode)
        store = ctx.executors[0].cache
        for key in list(store.blocks):
            store.swap_out(key)
        assert all(b.on_disk for b in store.blocks.values())
        assert sorted(rdd.collect()) == sorted(data)

    @pytest.mark.parametrize("mode", list(ExecutionMode),
                             ids=lambda m: m.value)
    def test_swap_in_restores_memory_residence(self, mode):
        ctx, rdd, data = ctx_with_cached(mode)
        store = ctx.executors[0].cache
        key = next(iter(store.blocks))
        store.swap_out(key)
        block = store.swap_in(key)
        assert not block.on_disk
        assert block.memory_bytes > 0
        assert sorted(rdd.collect()) == sorted(data)

    def test_swap_out_is_idempotent(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.SPARK)
        store = ctx.executors[0].cache
        key = next(iter(store.blocks))
        released = store.swap_out(key)
        assert released > 0
        assert store.swap_out(key) == 0

    def test_swap_frees_heap_space(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.SPARK)
        executor = ctx.executors[0]
        live_before = executor.heap.live_objects
        for key in list(executor.cache.blocks):
            executor.cache.swap_out(key)
        executor.heap.full_gc()
        assert executor.heap.live_objects < live_before

    def test_deca_swap_writes_raw_pages(self):
        """No serialization cost when Deca pages hit the disk (App. C)."""
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA)
        executor = ctx.executors[0]
        ser_before = executor.serializer.ser_ms_total
        for key in list(executor.cache.blocks):
            executor.cache.swap_out(key)
        assert executor.serializer.ser_ms_total == ser_before

    def test_spark_swap_serializes(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.SPARK)
        executor = ctx.executors[0]
        ser_before = executor.serializer.ser_ms_total
        key = next(iter(executor.cache.blocks))
        executor.cache.swap_out(key)
        assert executor.serializer.ser_ms_total > ser_before


def bare_store():
    """A real executor's cache store, to be filled with synthetic blocks."""
    ctx = DecaContext(DecaConfig(mode=ExecutionMode.SPARK,
                                 heap_bytes=32 * MB, num_executors=1,
                                 tasks_per_executor=2))
    executor = ctx.executors[0]
    return executor, executor.cache


def object_block(executor, rdd_id, nbytes=10_000):
    """An OBJECTS-strategy block with a known heap footprint."""
    footprint = RecordFootprint(objects=10, object_bytes=nbytes,
                                data_bytes=nbytes // 2)
    group = executor.heap.new_group(f"cache:({rdd_id}, 0)",
                                    Lifetime.PINNED)
    executor.heap.allocate(group, footprint.objects, nbytes)
    return CachedBlock(
        key=(rdd_id, 0), strategy=StorageStrategy.OBJECTS,
        records=[(rdd_id, i) for i in range(10)], blob=None,
        page_group=None, schema=None, decode=None, record_count=10,
        memory_bytes=nbytes, disk_bytes=nbytes // 2, footprint=footprint,
        alloc_group=group)


class TestSwapInLruOrder:
    def test_swapped_in_block_is_not_its_own_eviction_victim(self):
        """Swap-in must touch the block before making room: under its
        stale LRU tick the just-restored block would be re-evicted at
        once (swap-in thrash), leaving the true LRU block resident."""
        executor, store = bare_store()
        store.storage_budget = 15_000
        block_a = object_block(executor, rdd_id=1)
        block_b = object_block(executor, rdd_id=2)
        store.put(block_a)
        store.put(block_b)          # budget fits one: A swaps out
        assert block_a.on_disk and not block_b.on_disk
        restored = store.swap_in(block_a.key)
        assert restored is block_a
        assert not block_a.on_disk, "swap-in thrash: A re-evicted itself"
        assert block_b.on_disk, "B was the LRU block once A was touched"

    def test_swap_in_thrash_does_not_recharge_disk(self):
        executor, store = bare_store()
        store.storage_budget = 15_000
        block_a = object_block(executor, rdd_id=1)
        block_b = object_block(executor, rdd_id=2)
        store.put(block_a)
        store.put(block_b)
        swapped_before = store.swapped_bytes_total
        store.swap_in(block_a.key)
        # Exactly one block (B) moved to disk while restoring A; the
        # pre-fix thrash wrote A straight back out instead.
        assert store.swapped_bytes_total - swapped_before \
            == block_b.disk_bytes
        assert not block_a.on_disk


class TestDropBlockReleasesPayloads:
    def test_drop_clears_parked_disk_payload(self):
        executor, store = bare_store()
        block = object_block(executor, rdd_id=3)
        store.put(block)
        store.swap_out(block.key)
        assert block._disk_payload is not None
        store.remove_rdd(3)
        assert block._disk_payload is None
        assert block.records is None
        assert block.blob is None
        assert block.page_group is None

    def test_invalidate_all_clears_resident_payloads(self):
        executor, store = bare_store()
        block = object_block(executor, rdd_id=4)
        store.put(block)
        store.invalidate_all()
        assert block.records is None
        assert block._disk_payload is None


class TestResidentBytesCounter:
    def test_counter_tracks_put_swap_and_drop(self):
        executor, store = bare_store()
        store.storage_budget = 25_000
        blocks = [object_block(executor, rdd_id=i) for i in range(1, 5)]
        for block in blocks:
            store.put(block)
            assert store.memory_bytes == store.recompute_memory_bytes()
        store.swap_in(blocks[0].key)
        assert store.memory_bytes == store.recompute_memory_bytes()
        store.remove_rdd(2)
        assert store.memory_bytes == store.recompute_memory_bytes()
        store.invalidate_all()
        assert store.memory_bytes == store.recompute_memory_bytes() == 0

    @pytest.mark.parametrize("mode", list(ExecutionMode),
                             ids=lambda m: m.value)
    def test_counter_matches_ground_truth_after_run(self, mode):
        ctx, rdd, _ = ctx_with_cached(mode)
        store = ctx.executors[0].cache
        assert store.memory_bytes == store.recompute_memory_bytes() > 0
        for key in list(store.blocks):
            store.swap_out(key)
        assert store.memory_bytes == store.recompute_memory_bytes() == 0


class TestDecaSwapDoubleBuffering:
    def test_swap_copies_are_charged_and_bounded(self):
        """Heap-tier Deca swap must account its transient page copies
        and stream them page by page: the old path copied the whole
        group into unaccounted ``bytes`` objects before reclaiming it
        (~2x the group's footprint, invisible to the heap model)."""
        from repro.jvm.sizing import array_bytes

        # Pin the heap tier: the drain bound under test IS the heap
        # path (the mmap tier moves bytes without any heap copies).
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA,
                                      cold_tier="heap")
        executor = ctx.executors[0]
        store = executor.cache
        key = next(k for k, b in store.blocks.items()
                   if b.page_group is not None)
        group = store.blocks[key].page_group
        used = group.used_bytes
        page_capacity = max(p.capacity for p in group.pages)
        heap = executor.heap
        baseline = heap.young_used_bytes + heap.old_used_bytes
        peak = [baseline]
        real_allocate = heap.allocate

        def spying_allocate(alloc_group, objects, nbytes):
            real_allocate(alloc_group, objects, nbytes)
            peak[0] = max(peak[0],
                          heap.young_used_bytes + heap.old_used_bytes)

        heap.allocate = spying_allocate
        try:
            store.swap_out(key)
        finally:
            heap.allocate = real_allocate
        # The copies were charged (pre-fix: zero — they never touched
        # the accounting plane)...
        assert executor.serializer.swap_copy_bytes_total == used > 0
        # ...and the double-buffer transient is one page, not the group.
        assert peak[0] <= baseline + array_bytes(1, page_capacity)


class TestReentrantEvictionGuard:
    def test_mid_swap_pressure_cannot_revictimize_the_swapping_block(self):
        """The drain's copy charges can raise heap pressure while the
        block is halfway out; under its stale LRU tick (and still
        ``on_disk=False``) the victim selector used to pick that very
        block and double-drain its reclaimed page group."""
        ctx, rdd, data = ctx_with_cached(ExecutionMode.DECA)
        executor = ctx.executors[0]
        store = executor.cache
        key = next(k for k, b in store.blocks.items()
                   if b.page_group is not None)
        real_note = executor.serializer.note_swap_copy

        def hostile_note(nbytes):
            # Simulate the re-entrant pressure the copy charge raises.
            real_note(nbytes)
            store.release_for_pressure(1)

        executor.serializer.note_swap_copy = hostile_note
        try:
            released = store.swap_out(key)
        finally:
            executor.serializer.note_swap_copy = real_note
        assert released > 0
        assert store.blocks[key].on_disk
        # One drain, one accounting decrement: the resident counter
        # still matches ground truth (the double-drain corrupted it).
        assert store.memory_bytes == store.recompute_memory_bytes()
        assert sorted(rdd.collect()) == sorted(data)

    def test_lru_victim_skips_inflight_keys(self):
        executor, store = bare_store()
        block_a = object_block(executor, rdd_id=1)
        block_b = object_block(executor, rdd_id=2)
        store.put(block_a)
        store.put(block_b)
        store._inflight.add(block_a.key)
        try:
            assert store._lru_victim() == block_b.key
        finally:
            store._inflight.discard(block_a.key)
        assert store._lru_victim() == block_a.key


def serialized_record_block(executor, rdd_id, memory_bytes=9_000):
    """A schema-less SERIALIZED block whose tracked size deliberately
    differs from its footprint's serialized-size estimate."""
    footprint = RecordFootprint(objects=10, object_bytes=12_000,
                                data_bytes=4_000)
    assert footprint.serialized_bytes != memory_bytes
    group = executor.heap.new_group(f"cache:({rdd_id}, 0)",
                                    Lifetime.PINNED)
    executor.heap.allocate(group, 2, memory_bytes)
    return CachedBlock(
        key=(rdd_id, 0), strategy=StorageStrategy.SERIALIZED,
        records=[(rdd_id, i) for i in range(10)], blob=None,
        page_group=None, schema=None, decode=None, record_count=10,
        memory_bytes=memory_bytes, disk_bytes=4_000, footprint=footprint,
        alloc_group=group)


class TestSwapByteSymmetry:
    def test_serialized_record_block_readmits_released_bytes(self):
        """Swap-in must restore what swap-out released: charging the
        footprint's ``serialized_bytes`` estimate instead leaks the
        difference into the resident counter on every round trip."""
        executor, store = bare_store()
        block = serialized_record_block(executor, rdd_id=7)
        store.put(block)
        released = store.swap_out(block.key)
        assert released == 9_000
        restored = store.swap_in(block.key)
        assert restored.memory_bytes == released
        assert store.memory_bytes == store.recompute_memory_bytes()

    def test_objects_block_readmits_released_bytes(self):
        executor, store = bare_store()
        block = object_block(executor, rdd_id=8, nbytes=10_000)
        # Tracked size drifted from the footprint estimate (e.g. the
        # measurement sampled) — symmetry must still hold.
        block.memory_bytes = 11_000
        store.put(block)
        released = store.swap_out(block.key)
        assert released == 11_000
        assert store.swap_in(block.key).memory_bytes == released
        assert store.memory_bytes == store.recompute_memory_bytes()


class TestMmapColdTier:
    @pytest.mark.parametrize("mode", list(ExecutionMode),
                             ids=lambda m: m.value)
    def test_swap_roundtrip_reads_back_identically(self, mode):
        ctx, rdd, data = ctx_with_cached(mode, cold_tier="mmap")
        store = ctx.executors[0].cache
        for key in list(store.blocks):
            store.swap_out(key)
        assert all(b.on_disk for b in store.blocks.values())
        assert sorted(rdd.collect()) == sorted(data)

    def test_deca_swap_moves_bytes_without_heap_copies(self):
        """The tentpole property: under the mmap tier the Deca swap is
        a byte move — no serializer charge, no heap round trip."""
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA,
                                      cold_tier="mmap")
        executor = ctx.executors[0]
        used = sum(b.page_group.used_bytes
                   for b in executor.cache.blocks.values())
        ser_before = executor.serializer.ser_ms_total
        for key in list(executor.cache.blocks):
            executor.cache.swap_out(key)
        assert executor.serializer.swap_copy_bytes_total == 0
        assert executor.serializer.ser_ms_total == ser_before
        assert executor.cold_tier.stats.bytes_moved_out == used > 0

    def test_promotion_aliases_extent_and_reevict_moves_nothing(self):
        ctx, rdd, data = ctx_with_cached(ExecutionMode.DECA,
                                         cold_tier="mmap")
        executor = ctx.executors[0]
        store = executor.cache
        key = next(iter(store.blocks))
        store.swap_out(key)
        tier = executor.cold_tier
        moved = tier.stats.bytes_moved_out
        block = store.swap_in(key)
        assert not block.on_disk
        assert block._tier_resident
        assert tier.has(store._tier_name(block))
        store.swap_out(key)
        # Warm re-eviction: the resident pages aliased the extent, so
        # demoting again moves zero bytes.
        assert tier.stats.bytes_moved_out == moved
        assert sorted(rdd.collect()) == sorted(data)

    def test_drop_releases_extents(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA,
                                      cold_tier="mmap")
        executor = ctx.executors[0]
        store = executor.cache
        for key in list(store.blocks):
            store.swap_out(key)
        tier = executor.cold_tier
        assert tier.stats.extents_live > 0
        store.invalidate_all()
        assert tier.stats.extents_live == 0
        assert tier.live_bytes == 0

    def test_run_metrics_capture_tier_stats(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA,
                                      cold_tier="mmap")
        store = ctx.executors[0].cache
        for key in list(store.blocks):
            store.swap_out(key)
        run = ctx.finish()
        assert run.tier["swap_out_count"] >= 1
        assert run.tier["bytes_moved_out"] > 0
        assert run.tier["tier_ms"] > 0

    def test_heap_mode_has_no_tier(self):
        ctx, rdd, _ = ctx_with_cached(ExecutionMode.DECA,
                                      cold_tier="heap")
        executor = ctx.executors[0]
        for key in list(executor.cache.blocks):
            executor.cache.swap_out(key)
        assert executor.cold_tier is None
        assert ctx.finish().tier == {}


class TestPageInfoCursor:
    def test_cursor_resets(self):
        from repro.memory import PageGroup
        group = PageGroup("g", page_bytes=64)
        info = group.new_page_info()
        info.cur_page, info.cur_offset = 3, 40
        info.reset_cursor()
        assert (info.cur_page, info.cur_offset) == (0, 0)
        info.close()

    def test_end_offset_mirrors_group(self):
        from repro.memory import PageGroup
        group = PageGroup("g", page_bytes=64)
        group.append_bytes(b"abc")
        info = group.new_page_info()
        assert info.end_offset == 3
        info.close()


class TestUdtInfoCaching:
    def test_callgraph_built_once(self):
        info = labeled_point_udt_info(10)
        assert info.callgraph() is info.callgraph()

    def test_constant_footprint_cached(self):
        info = labeled_point_udt_info(10)
        record = (1.0, tuple(float(d) for d in range(10)))
        assert info.measure(record) is info.measure(record)

    def test_no_entry_method_means_no_callgraph(self):
        import dataclasses
        info = dataclasses.replace(labeled_point_udt_info(10),
                                   entry_method=None, _callgraph=None)
        assert info.callgraph() is None
