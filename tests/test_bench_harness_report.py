"""Tests for the benchmark harness scaling and the report formatter."""

import os

from repro.config import ExecutionMode, GcAlgorithm
from repro.bench.harness import (
    FigureRow,
    GRAPH_SCALES,
    WC_SIZES,
    lr_config,
    lr_records_for,
)
from repro.bench.report import (
    format_table,
    rows_as_table,
    speedup,
    write_result,
)


class TestScaling:
    def test_record_counts_grow_with_labels(self):
        counts = [lr_records_for(label) for label in
                  ("40GB", "60GB", "80GB", "100GB", "200GB")]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_80gb_lands_near_ninety_percent_occupancy(self):
        """The load-bearing property: the '80GB' label puts the Spark
        object cache at ~90 % of the old generation."""
        records = lr_records_for("80GB")
        object_bytes = 152  # 10-dim LabeledPoint graph, Fig. 2
        config = lr_config(ExecutionMode.SPARK)
        per_executor = records * object_bytes / config.num_executors
        occupancy = per_executor / config.old_bytes
        assert 0.85 < occupancy < 0.95

    def test_spill_labels_exceed_the_old_generation(self):
        for label in ("100GB", "200GB"):
            records = lr_records_for(label)
            config = lr_config(ExecutionMode.SPARK)
            per_executor = records * 152 / config.num_executors
            assert per_executor > config.old_bytes

    def test_higher_dimensions_mean_fewer_records(self):
        assert lr_records_for("80GB", dimensions=4096) < \
            lr_records_for("80GB", dimensions=10)

    def test_wc_sizes_cover_the_grid(self):
        sizes = {s for s, _ in WC_SIZES}
        keys = {k for _, k in WC_SIZES}
        assert sizes == {"50GB", "100GB", "150GB"}
        assert keys == {"10M", "100M"}

    def test_graph_scales_preserve_order(self):
        lj, wb, hb = (GRAPH_SCALES[k] for k in ("LJ", "WB", "HB"))
        assert lj.edges < wb.edges < hb.edges
        assert lj.vertices < wb.vertices < hb.vertices

    def test_lr_config_overrides(self):
        config = lr_config(ExecutionMode.DECA,
                           gc_algorithm=GcAlgorithm.G1)
        assert config.gc_algorithm is GcAlgorithm.G1
        assert config.mode is ExecutionMode.DECA
        assert config.storage_fraction == 0.9  # the §6.2 default


class TestFigureRow:
    def test_gc_fraction(self):
        row = FigureRow(app="X", label="p", mode="spark", exec_s=2.0,
                        gc_s=0.5)
        assert row.gc_fraction == 0.25

    def test_gc_fraction_zero_exec(self):
        row = FigureRow(app="X", label="p", mode="spark", exec_s=0.0,
                        gc_s=0.0)
        assert row.gc_fraction == 0.0

    def test_speedup(self):
        base = FigureRow(app="X", label="p", mode="spark", exec_s=4.0,
                         gc_s=0)
        fast = FigureRow(app="X", label="p", mode="deca", exec_s=1.0,
                         gc_s=0)
        assert speedup(base, fast) == 4.0


class TestReportFormatting:
    def test_format_table_aligns_columns(self):
        table = format_table("T", ["a", "longheader"],
                             [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:]}) == 1

    def test_small_floats_use_scientific(self):
        table = format_table("T", ["v"], [[0.00037]])
        assert "3.70e-04" in table

    def test_rows_as_table_contains_modes(self):
        rows = [FigureRow(app="LR", label="40GB", mode="spark",
                          exec_s=1.0, gc_s=0.5, cached_mb=2.0)]
        table = rows_as_table("T", rows)
        assert "spark" in table and "50.0%" in table

    def test_write_result_creates_artifact(self, tmp_path, monkeypatch):
        import repro.bench.report as report
        monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
        path = write_result("unit-test", "hello")
        assert os.path.exists(path)
        with open(path) as handle:
            assert handle.read() == "hello\n"
