"""Fault-tolerance tests: injection, retry, lineage recovery, speculation.

The engine must keep Spark's contract — any task attempt, executor or
shuffle fetch may fail, and the job still produces the exact fault-free
answer — while every failure and recovery action lands in the metrics and
on the simulated clocks deterministically.
"""

import json

import pytest

from repro.config import (
    DecaConfig,
    ExecutionMode,
    FaultConfig,
    MB,
    ScriptedFault,
)
from repro.errors import StageAbortError
from repro.spark import DecaContext, FaultInjector


def make_ctx(faults=None, **overrides):
    defaults = dict(mode=ExecutionMode.SPARK, heap_bytes=32 * MB,
                    num_executors=2, tasks_per_executor=2)
    if faults is not None:
        defaults["faults"] = faults
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


def wordcount(ctx, records=2000, keys=50, partitions=4):
    data = [(i % keys, 1) for i in range(records)]
    counts = ctx.parallelize(data, partitions, name="ft.pairs") \
                .reduce_by_key(lambda a, b: a + b, partitions,
                               name="ft.counts")
    return dict(counts.collect())


def expected_counts(records=2000, keys=50):
    expected = {}
    for i in range(records):
        expected[i % keys] = expected.get(i % keys, 0) + 1
    return expected


class TestFaultInjector:
    def test_disabled_by_default(self):
        injector = FaultInjector(FaultConfig())
        assert not injector.enabled
        assert injector.plan_task(0, 0, 0) is None
        assert not injector.corrupt_fetch(0, 0, 0)

    def test_scripted_fault_fires_exactly_once(self):
        injector = FaultInjector(FaultConfig(scripted=(
            ScriptedFault("task-kill", stage_id=1, partition=2,
                          attempt=0),)))
        assert injector.enabled
        assert injector.plan_task(1, 0, 0) is None    # wrong partition
        assert injector.plan_task(0, 2, 0) is None    # wrong stage
        plan = injector.plan_task(1, 2, 0)
        assert plan is not None and plan.kind == "task-kill"
        assert injector.plan_task(1, 2, 0) is None    # already fired
        assert injector.injected_kills == 1

    def test_wildcards_match_any_stage_and_partition(self):
        injector = FaultInjector(FaultConfig(scripted=(
            ScriptedFault("executor-crash", attempt=1, after_ops=7),)))
        assert injector.plan_task(3, 9, 0) is None    # wrong attempt
        plan = injector.plan_task(3, 9, 1)
        assert plan is not None
        assert plan.kind == "executor-crash" and plan.after_ops == 7

    def test_seed_reproduces_probabilistic_draws(self):
        cfg = FaultConfig(seed=5, task_kill_prob=0.3)
        a = FaultInjector(cfg)
        b = FaultInjector(cfg)
        plans_a = [a.plan_task(0, i, 0) for i in range(64)]
        plans_b = [b.plan_task(0, i, 0) for i in range(64)]
        assert plans_a == plans_b
        assert any(plans_a)

    def test_scripted_corruption_matches_block_coordinates(self):
        injector = FaultInjector(FaultConfig(scripted=(
            ScriptedFault("fetch-corrupt", shuffle_id=-1, map_part=2,
                          reduce_part=1),)))
        assert not injector.corrupt_fetch(0, 0, 1)
        assert not injector.corrupt_fetch(0, 2, 0)
        assert injector.corrupt_fetch(0, 2, 1)
        assert not injector.corrupt_fetch(0, 2, 1)   # fired once


class TestTaskRetry:
    def test_killed_task_retries_on_next_executor(self):
        # Stage 0 is the shuffle-map stage; kill its partition 0 once.
        ctx = make_ctx(FaultConfig(scripted=(
            ScriptedFault("task-kill", stage_id=0, partition=0,
                          attempt=0, after_ops=5),)))
        assert wordcount(ctx) == expected_counts()
        run = ctx.finish()
        recovery = run.recovery
        assert recovery.task_failures == 1
        assert recovery.task_retries == 1
        map_stage = run.jobs[0].stages[0]
        attempts = [t for t in map_stage.tasks if t.task_id == 0]
        assert [t.status for t in attempts] == ["killed", "success"]
        assert [t.attempt for t in attempts] == [0, 1]
        # The retry rotated to the other executor.
        assert attempts[0].executor_id != attempts[1].executor_id

    def test_retry_pays_backoff_on_the_simulated_clock(self):
        faults = FaultConfig(
            retry_backoff_ms=40.0, retry_backoff_factor=2.0,
            retry_backoff_max_ms=100.0,
            scripted=(
                ScriptedFault("task-kill", stage_id=0, partition=1,
                              attempt=0),
                ScriptedFault("task-kill", stage_id=0, partition=1,
                              attempt=1),
            ))
        ctx = make_ctx(faults)
        assert wordcount(ctx) == expected_counts()
        recovery = ctx.finish().recovery
        assert recovery.task_failures == 2
        # Backoffs: 40 after the first failure, 80 after the second.
        assert recovery.recovery_ms == pytest.approx(120.0)

    def test_stage_aborts_after_max_task_failures(self):
        ctx = make_ctx(FaultConfig(task_kill_prob=1.0,
                                   max_task_failures=3))
        with pytest.raises(StageAbortError) as info:
            wordcount(ctx)
        assert info.value.failures == 3

    def test_mid_task_kill_leaves_no_leaked_heap_groups(self):
        ctx = make_ctx(FaultConfig(scripted=(
            ScriptedFault("task-kill", stage_id=0, partition=0,
                          attempt=0, after_ops=20),)))
        assert wordcount(ctx) == expected_counts()
        for executor in ctx.executors:
            live = [g.name for g in executor.heap._groups.values()
                    if g.name.startswith("shuffle-buf")]
            assert live == []


class TestExecutorLoss:
    def test_crash_invalidates_cache_and_recomputes_lineage(self):
        # Cache the input, crash an executor in the result stage: its
        # cache blocks and map outputs are gone; lineage regenerates the
        # outputs and the cached partitions recompute on next access.
        ctx = make_ctx(FaultConfig(scripted=(
            ScriptedFault("executor-crash", stage_id=1, partition=0,
                          attempt=0, after_ops=3),)))
        data = [(i % 50, 1) for i in range(2000)]
        pairs = ctx.parallelize(data, 4, name="ft.pairs").cache()
        counts = pairs.reduce_by_key(lambda a, b: a + b, 4,
                                     name="ft.counts")
        first = dict(counts.collect())
        second = dict(counts.collect())   # reuses shuffle + cache
        assert first == expected_counts()
        assert second == expected_counts()
        run = ctx.finish()
        recovery = run.recovery
        assert recovery.executors_lost == 1
        # The crashed executor held two of the four map partitions.
        assert recovery.recomputed_partitions == 2
        assert sum(e.lost_count for e in ctx.executors) == 1
        restart_ms = ctx.config.faults.executor_restart_ms
        assert recovery.recovery_ms > restart_ms
        # The recompute stages are visible in the job's metrics.
        names = [s.name for s in run.jobs[0].stages]
        assert names.count("recompute:shuffle-map:ft.pairs") == 2

    def test_crash_during_map_stage_retries_without_recompute(self):
        ctx = make_ctx(FaultConfig(scripted=(
            ScriptedFault("executor-crash", stage_id=0, partition=0,
                          attempt=0, after_ops=2),)))
        assert wordcount(ctx) == expected_counts()
        recovery = ctx.finish().recovery
        assert recovery.executors_lost == 1
        # Nothing was registered yet, so nothing needed regeneration;
        # the crashed attempt's own retry produced the output.
        assert recovery.recomputed_partitions == 0
        assert recovery.task_retries == 1


class TestFetchFailure:
    def test_corrupt_fetch_regenerates_map_output_and_retries(self):
        ctx = make_ctx(FaultConfig(scripted=(
            ScriptedFault("fetch-corrupt", map_part=2, reduce_part=1),)))
        assert wordcount(ctx) == expected_counts()
        run = ctx.finish()
        recovery = run.recovery
        assert recovery.fetch_failures == 1
        assert recovery.recomputed_partitions == 1
        assert recovery.task_retries == 1
        result_stage = next(s for s in run.jobs[0].stages
                            if s.name.startswith("result:"))
        statuses = [t.status for t in result_stage.tasks
                    if t.task_id == 1]
        assert statuses == ["fetch-failed", "success"]
        # The regeneration ran as its own recompute stage.
        assert any(s.name.startswith("recompute:")
                   for s in run.jobs[0].stages)

    def test_crash_in_later_job_recomputes_reused_shuffle(self):
        # A shuffle produced by job 1 is reused by job 2; an executor
        # crash during job 2 must regenerate the lost job-1 map outputs
        # from lineage even though their stage never ran in job 2.
        ctx = make_ctx(FaultConfig(seed=1, scripted=(
            ScriptedFault("executor-crash", stage_id=3, partition=3,
                          attempt=0),)))
        data = [(i % 50, 1) for i in range(2000)]
        counts = ctx.parallelize(data, 4, name="ft.pairs") \
                    .reduce_by_key(lambda a, b: a + b, 4,
                                   name="ft.counts")
        assert dict(counts.collect()) == expected_counts()
        # Job 2 reuses the shuffle; stage 3 is its result stage.  The
        # crash drops map outputs the eager pass regenerates, then the
        # killed task retries and re-reads them.
        assert dict(counts.collect()) == expected_counts()
        recovery = ctx.finish().recovery
        assert recovery.executors_lost == 1
        assert recovery.recomputed_partitions == 2


class TestSpeculation:
    @staticmethod
    def _skewed_ctx():
        faults = FaultConfig(speculation=True, speculation_multiplier=1.2)
        return make_ctx(faults)

    def test_straggler_duplicate_never_changes_results(self):
        ctx = self._skewed_ctx()
        # One hot key: a single reduce partition receives ~all records,
        # making its result-stage task the straggler.
        data = [("hot" if i % 10 else f"cold{i}", 1)
                for i in range(3000)]
        counts = ctx.parallelize(data, 4, name="sp.pairs") \
                    .group_by_key(4, name="sp.groups") \
                    .map(lambda kv: (kv[0], len(kv[1])),
                         name="sp.counts")
        result = dict(counts.collect())
        assert result["hot"] == 2700
        assert sum(result.values()) == 3000
        run = ctx.finish()
        recovery = run.recovery
        assert recovery.speculative_tasks >= 1
        # Every speculative attempt is recorded next to the original,
        # same task_id, later attempt number.
        spec = [t for s in run.jobs[0].stages for t in s.tasks
                if t.speculative]
        assert spec and all(t.attempt >= 1 for t in spec)
        originals = {t.task_id for s in run.jobs[0].stages
                     for t in s.tasks if not t.speculative}
        assert {t.task_id for t in spec} <= originals

    def test_no_speculation_without_stragglers(self):
        ctx = make_ctx(FaultConfig(speculation=True,
                                   speculation_multiplier=100.0))
        assert wordcount(ctx) == expected_counts()
        assert ctx.finish().recovery.speculative_tasks == 0


class TestDeterminism:
    @staticmethod
    def _run_once():
        faults = FaultConfig(seed=11, task_kill_prob=0.2,
                             fetch_corruption_prob=0.05)
        ctx = make_ctx(faults)
        result = wordcount(ctx)
        return result, ctx.finish()

    def test_same_seed_runs_are_byte_identical(self):
        result_a, run_a = self._run_once()
        result_b, run_b = self._run_once()
        assert result_a == expected_counts()
        assert result_a == result_b
        json_a = json.dumps(run_a.to_dict(), sort_keys=True)
        json_b = json.dumps(run_b.to_dict(), sort_keys=True)
        assert json_a == json_b
        # The seed really injected failures (the comparison is not
        # trivially between two clean runs).
        assert run_a.recovery.task_failures > 0

    def test_spark_package_has_no_wall_clock_or_unseeded_rng(self):
        # Determinism audit: every millisecond comes from a SimClock and
        # every random draw from a seeded random.Random — the engine
        # source must never reach for wall time or the process RNG.
        import pathlib
        import re

        import repro.spark

        package_dir = pathlib.Path(repro.spark.__file__).parent
        forbidden = re.compile(
            r"time\.time|time\.monotonic|time\.perf_counter"
            r"|datetime\.now|random\.(random|randint|randrange|choice"
            r"|shuffle|gauss|seed)\(")
        for path in sorted(package_dir.glob("*.py")):
            source = path.read_text(encoding="utf-8")
            assert not forbidden.search(source), path.name
            if "import random" in source:
                # Only the fault injector owns an RNG, and it must be a
                # seeded instance.
                assert path.name == "faults.py"
                assert "random.Random(config.seed)" in source

    def test_different_seeds_diverge(self):
        faults_a = FaultConfig(seed=11, task_kill_prob=0.2)
        faults_b = FaultConfig(seed=12, task_kill_prob=0.2)
        runs = []
        for faults in (faults_a, faults_b):
            ctx = make_ctx(faults)
            assert wordcount(ctx) == expected_counts()
            runs.append(ctx.finish())
        dict_a, dict_b = runs[0].to_dict(), runs[1].to_dict()
        assert dict_a["recovery"] != dict_b["recovery"] \
            or dict_a["jobs"] != dict_b["jobs"]
