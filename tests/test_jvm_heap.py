"""Tests for repro.jvm.heap — the generational simulated heap."""

import pytest

from repro.config import DecaConfig, GcAlgorithm, MB
from repro.errors import AllocationError, OutOfMemoryError
from repro.jvm import GcKind, Lifetime, SimHeap
from repro.simtime import SimClock


def make_heap(heap_mb=32, **overrides) -> SimHeap:
    cfg = DecaConfig(heap_bytes=heap_mb * MB, **overrides)
    return SimHeap(cfg, SimClock(), "test-heap")


class TestAllocationBasics:
    def test_simple_allocation_lands_in_young(self):
        heap = make_heap()
        group = heap.new_group("g", Lifetime.PINNED)
        heap.allocate(group, 10, 1000)
        assert group.young_objects == 10
        assert heap.young_used_bytes == 1000
        assert heap.old_used_bytes == 0

    def test_zero_allocation_is_noop(self):
        heap = make_heap()
        group = heap.new_group("g", Lifetime.PINNED)
        heap.allocate(group, 0, 0)
        assert heap.live_objects == 0

    def test_rejects_negative_sizes(self):
        heap = make_heap()
        group = heap.new_group("g", Lifetime.PINNED)
        with pytest.raises(AllocationError):
            heap.allocate(group, -1, 10)

    def test_rejects_foreign_group(self):
        heap_a = make_heap()
        heap_b = make_heap()
        group = heap_a.new_group("g", Lifetime.PINNED)
        with pytest.raises(AllocationError):
            heap_b.allocate(group, 1, 10)

    def test_humongous_allocation_goes_to_old(self):
        heap = make_heap()
        group = heap.new_group("pages", Lifetime.PINNED)
        big = heap.young_capacity  # larger than half of young
        heap.allocate(group, 1, big)
        assert group.old_bytes == big
        assert heap.young_used_bytes == 0

    def test_impossible_allocation_raises(self):
        heap = make_heap()
        group = heap.new_group("g", Lifetime.PINNED)
        with pytest.raises(OutOfMemoryError):
            heap.allocate(group, 1, heap.config.heap_bytes + 1)


class TestMinorGc:
    def test_filling_young_triggers_minor_gc(self):
        heap = make_heap()
        temp = heap.new_group("temp", Lifetime.TEMPORARY)
        chunk = heap.young_capacity // 4
        for _ in range(8):
            heap.allocate(temp, 1000, chunk)
        assert heap.stats.minor_count >= 1

    def test_temporaries_mostly_die(self):
        heap = make_heap(temp_survival_rate=0.0)
        temp = heap.new_group("temp", Lifetime.TEMPORARY)
        heap.allocate(temp, 1000, 100_000)
        heap.minor_gc()
        assert temp.live_objects == 0
        assert heap.young_used_bytes == 0

    def test_survivor_fraction_ages_then_dies(self):
        heap = make_heap(temp_survival_rate=0.1)
        temp = heap.new_group("temp", Lifetime.TEMPORARY)
        heap.allocate(temp, 1000, 100_000)
        heap.minor_gc()
        assert temp.young_objects == 100  # 10% survived
        heap.minor_gc()
        assert temp.young_objects == 0  # survivors died at the next cycle

    def test_pinned_objects_promote(self):
        heap = make_heap()
        cache = heap.new_group("cache", Lifetime.PINNED)
        heap.allocate(cache, 500, 50_000)
        heap.minor_gc()
        assert cache.old_objects == 500
        assert cache.young_objects == 0
        assert heap.old_used_bytes == 50_000

    def test_minor_gc_advances_clock(self):
        heap = make_heap()
        before = heap.clock.now_ms
        heap.minor_gc()
        assert heap.clock.now_ms > before

    def test_minor_cost_scales_with_survivors(self):
        light = make_heap()
        heavy = make_heap()
        g_light = light.new_group("c", Lifetime.PINNED)
        g_heavy = heavy.new_group("c", Lifetime.PINNED)
        light.allocate(g_light, 10, 1000)
        heavy.allocate(g_heavy, 100_000, 1_000_000)
        e_light = light.minor_gc()
        e_heavy = heavy.minor_gc()
        assert e_heavy.pause_ms > e_light.pause_ms


class TestFullGc:
    def test_full_gc_traces_all_live_objects(self):
        heap = make_heap()
        cache = heap.new_group("cache", Lifetime.PINNED)
        heap.allocate(cache, 12_345, 1_000_000)
        heap.minor_gc()
        event = heap.full_gc()
        assert event.traced_objects == 12_345

    def test_full_gc_reclaims_freed_groups(self):
        heap = make_heap()
        cache = heap.new_group("cache", Lifetime.PINNED)
        heap.allocate(cache, 100, 1_000_000)
        heap.minor_gc()  # promote
        heap.free_group(cache)
        assert heap.old_used_bytes == 1_000_000  # garbage not yet swept
        heap.full_gc()
        assert heap.old_used_bytes == 0

    def test_old_pressure_triggers_full_gc(self):
        heap = make_heap(heap_mb=8)
        temp = heap.new_group("temp", Lifetime.TEMPORARY)
        cache = heap.new_group("cache", Lifetime.PINNED)
        # Fill the old gen with promoted cache data until past threshold.
        chunk = heap.young_capacity // 3
        with pytest.raises(OutOfMemoryError):
            for _ in range(1000):
                heap.allocate(cache, 100, chunk)
                heap.allocate(temp, 100, chunk // 10)
        assert heap.stats.full_count >= 1

    def test_useless_full_gc_keeps_cached_objects(self):
        """The paper's §2.2 pathology: full GCs that reclaim nothing."""
        heap = make_heap()
        cache = heap.new_group("cache", Lifetime.PINNED)
        heap.allocate(cache, 1000, 100_000)
        heap.minor_gc()
        live_before = heap.live_objects
        event = heap.full_gc()
        assert heap.live_objects == live_before
        assert event.reclaimed_bytes == 0


class TestPressureHandlers:
    def test_handler_is_invoked_on_pressure(self):
        heap = make_heap(heap_mb=8)
        cache = heap.new_group("cache", Lifetime.PINNED)
        calls = []

        def evict(needed: int) -> int:
            calls.append(needed)
            if not cache.freed:
                nbytes = cache.live_bytes
                heap.free_group(cache)
                return nbytes
            return 0

        heap.add_pressure_handler(evict)
        # Fill the old generation with pinned data, then keep allocating.
        heap.allocate(cache, 10, heap.old_capacity - MB)
        other = heap.new_group("more", Lifetime.PINNED)
        heap.allocate(other, 10, 4 * MB)
        assert calls, "pressure handler should have been asked to evict"

    def test_oom_when_handlers_cannot_help(self):
        heap = make_heap(heap_mb=8)
        heap.add_pressure_handler(lambda needed: 0)
        group = heap.new_group("g", Lifetime.PINNED)
        with pytest.raises(OutOfMemoryError):
            heap.allocate(group, 1, heap.old_capacity + MB)


class TestGroupLifecycle:
    def test_free_twice_raises(self):
        heap = make_heap()
        group = heap.new_group("g", Lifetime.PINNED)
        heap.free_group(group)
        with pytest.raises(AllocationError):
            heap.free_group(group)

    def test_allocation_into_freed_group_raises(self):
        heap = make_heap()
        group = heap.new_group("g", Lifetime.PINNED)
        heap.free_group(group)
        with pytest.raises(AllocationError):
            heap.allocate(group, 1, 8)


class TestCollectorComparison:
    def _gc_heavy_run(self, algorithm):
        heap = make_heap(heap_mb=16, gc_algorithm=algorithm)
        cache = heap.new_group("cache", Lifetime.PINNED)
        heap.allocate(cache, 200_000, int(heap.old_capacity * 0.9))
        temp = heap.new_group("temp", Lifetime.TEMPORARY)
        for _ in range(50):
            heap.allocate(temp, 5000, heap.young_capacity // 2)
        return heap

    def test_cms_pauses_less_than_ps(self):
        ps = self._gc_heavy_run(GcAlgorithm.PARALLEL_SCAVENGE)
        cms = self._gc_heavy_run(GcAlgorithm.CMS)
        assert ps.stats.full_count >= 1
        assert cms.stats.full_pause_ms < ps.stats.full_pause_ms

    def test_concurrent_collectors_do_background_work(self):
        g1 = self._gc_heavy_run(GcAlgorithm.G1)
        assert g1.stats.concurrent_ms > 0
        ps = self._gc_heavy_run(GcAlgorithm.PARALLEL_SCAVENGE)
        assert ps.stats.concurrent_ms == 0


class TestGcEvents:
    def test_events_are_ordered_and_typed(self):
        heap = make_heap()
        heap.minor_gc()
        heap.full_gc()
        kinds = [e.kind for e in heap.stats.events]
        assert GcKind.MINOR in kinds and GcKind.FULL in kinds
        starts = [e.start_ms for e in heap.stats.events]
        assert starts == sorted(starts)
