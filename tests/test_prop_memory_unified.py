"""Property-based tests: unified memory arena invariants.

Drives :class:`repro.memory.UnifiedMemoryManager` with random
operation scripts (grants, releases, storage claims, evictions, task
churn) and checks the accounting invariants that the rest of the
engine relies on, plus end-to-end cache-counter consistency for
arbitrary unified-mode workloads.
"""

from hypothesis import given, settings, strategies as st

from repro.config import DecaConfig, ExecutionMode, MB
from repro.memory import UnifiedMemoryManager
from repro.spark import DecaContext


def make_arena(**overrides) -> UnifiedMemoryManager:
    cfg = DecaConfig(heap_bytes=overrides.pop("heap_bytes", 8 * MB),
                     memory_mode="unified", **overrides)
    return UnifiedMemoryManager(cfg)


class ScriptConsumer:
    """A spillable consumer used by the random scripts."""

    def __init__(self, arena: UnifiedMemoryManager, name: str) -> None:
        self.arena = arena
        self.name = name
        self.held = 0

    @property
    def consumer_name(self) -> str:
        return self.name

    def memory_used(self) -> int:
        return self.held

    def spill(self) -> int:
        freed = self.arena.execution_release(self.held, consumer=self)
        self.held = 0
        return freed


@st.composite
def arena_script(draw):
    """A random sequence of arena operations."""
    return draw(st.lists(
        st.tuples(
            st.sampled_from(["exec-acquire", "exec-release",
                             "storage-acquire", "storage-discard",
                             "task-start", "task-finish", "pressure"]),
            st.integers(0, 7),            # actor index (task / entry)
            st.integers(1, 2 * MB),       # bytes
        ),
        min_size=1, max_size=60))


def check_invariants(arena: UnifiedMemoryManager) -> None:
    # Execution plus storage can never exceed the arena.
    assert arena.execution_used + arena.storage_used <= arena.total
    assert arena.execution_used >= 0
    assert arena.storage_used >= 0
    assert arena.free_bytes == (arena.total - arena.execution_used
                                - arena.storage_used)
    # Per-task attribution sums to the execution counter.
    assert sum(arena._task_used.values()) == arena.execution_used
    # Storage entries sum to the storage counter.
    assert sum(e.nbytes for e in arena._entries.values()) \
        == arena.storage_used


@given(arena_script())
@settings(max_examples=100, deadline=None)
def test_arena_accounting_invariants(script):
    """exec+storage <= total and byte conservation hold under any
    operation interleaving."""
    arena = make_arena()
    consumers = {}
    tasks = []
    entry_seq = 0
    for op, actor, nbytes in script:
        if op == "task-start":
            tasks.append(arena.task_started())
        elif op == "task-finish" and tasks:
            key = tasks.pop(actor % len(tasks))
            arena.task_finished(key)
        elif op == "exec-acquire":
            key = tasks[actor % len(tasks)] if tasks else None
            name = f"c{actor}"
            consumer = consumers.setdefault(
                name, ScriptConsumer(arena, name))
            before = arena.task_used(
                key if key is not None else arena.current_task_key())
            cap = arena.max_per_task()
            granted = arena.execution_acquire(nbytes, consumer=consumer,
                                              task_key=key)
            consumer.held += granted
            # The fair-share clamp: a task never exceeds pool/N at the
            # moment of the grant.
            assert before + granted <= max(cap, before)
        elif op == "exec-release":
            name = f"c{actor}"
            consumer = consumers.get(name)
            if consumer is not None and consumer.held:
                freed = arena.execution_release(nbytes, consumer=consumer)
                consumer.held -= freed
                assert consumer.held >= 0
        elif op == "storage-acquire":
            entry_seq += 1
            arena.storage_acquire(f"s{entry_seq}", nbytes,
                                  evict=lambda: None)
        elif op == "storage-discard":
            names = sorted(arena._entries)
            if names:
                arena.storage_discard(names[actor % len(names)])
        elif op == "pressure":
            # Spilled consumers zero their own ledger inside spill().
            assert arena.release_for_pressure(nbytes) >= 0
        check_invariants(arena)
    # Conservation: every granted byte is either still held or was
    # released; same for the storage side.
    stats = arena.stats
    assert stats.granted_bytes \
        == stats.released_bytes + arena.execution_used
    assert stats.storage_acquired_bytes \
        == stats.storage_released_bytes + arena.storage_used
    # Teardown drains to zero (including the implicit slot used by
    # acquires issued outside any registered task).
    for key in list(arena._task_used):
        arena.task_finished(key)
    for name in list(arena._entries):
        arena.storage_discard(name)
    assert arena.execution_used == 0
    assert arena.storage_used == 0
    assert arena.free_bytes == arena.total


@given(st.integers(1, 4), st.lists(st.integers(1, 4 * MB),
                                   min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_fair_share_grant_bounds(task_count, requests):
    """With evictable storage and spillable siblings, every task that
    asks for its fair share receives at least pool/2N and at most
    pool/N."""
    arena = make_arena()
    # Seed the storage side so grants must evict borrowed storage.
    arena.storage_acquire("seed", arena.total // 2, evict=lambda: None)
    keys = [arena.task_started() for _ in range(task_count)]
    consumers = [ScriptConsumer(arena, f"t{i}")
                 for i in range(task_count)]
    for i, nbytes in enumerate(requests):
        idx = i % task_count
        key = keys[idx]
        consumer = consumers[idx]
        used = arena.task_used(key)
        granted = arena.execution_acquire(nbytes, consumer=consumer,
                                          task_key=key)
        consumer.held += granted
        pool = arena.execution_pool_size()
        n = arena.active_tasks
        # Upper bound: never beyond pool/N.
        assert arena.task_used(key) <= pool // n
        # Lower bound: a request of at least the minimum share is
        # granted at least pool/2N (storage above the region floor is
        # evictable and every sibling grant is spillable).
        if used == 0 and nbytes >= pool // (2 * n):
            assert granted >= pool // (2 * n)
    check_invariants(arena)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_borrow_evict_release_conserve_bytes(data):
    """Borrowing and evicting move bytes between sides without
    creating or destroying them."""
    arena = make_arena()
    key = arena.task_started()
    chunk = 64 * 1024
    chunks = data.draw(st.integers(1, arena.total // chunk))
    for i in range(chunks):
        arena.storage_acquire(f"blob{i}", chunk, evict=lambda: None)
    stored = arena.storage_used
    demand = data.draw(st.integers(1, arena.total))
    granted = arena.execution_acquire(demand, task_key=key)
    evicted = stored - arena.storage_used
    # Eviction reclaims only storage borrowed beyond the region floor;
    # entries are indivisible, so the floor may be overshot by at most
    # one entry.
    assert arena.storage_used > min(stored, arena.storage_region) - chunk
    assert evicted == arena.stats.evicted_bytes
    assert arena.execution_used + arena.storage_used <= arena.total
    # Releasing the grant restores the free pool exactly.
    free_before = arena.free_bytes
    assert arena.execution_release(granted, task_key=key) == granted
    assert arena.free_bytes == free_before + granted
    assert arena.stats.granted_bytes \
        == arena.stats.released_bytes + arena.execution_used


@given(st.lists(st.tuples(st.integers(0, 12), st.integers(-40, 40)),
                min_size=1, max_size=80),
       st.integers(1, 4),
       st.sampled_from([ExecutionMode.SPARK, ExecutionMode.SPARK_SER,
                        ExecutionMode.DECA]))
@settings(max_examples=30, deadline=None)
def test_cache_counter_consistent_under_unified_mode(pairs, parts, mode):
    """After arbitrary unified-mode workloads the cache's O(1) resident
    counter equals the O(blocks) ground truth, and the arena's storage
    ledger contains every resident block."""
    ctx = DecaContext(DecaConfig(mode=mode, memory_mode="unified",
                                 heap_bytes=8 * MB, num_executors=2,
                                 tasks_per_executor=2))
    rdd = ctx.parallelize(pairs, parts).cache()
    first = sorted(rdd.collect())
    result = dict(rdd.reduce_by_key(lambda a, b: a + b,
                                    parts).collect())
    second = sorted(rdd.collect())
    assert first == second == sorted(pairs)
    expected: dict[int, int] = {}
    for k, v in pairs:
        expected[k] = expected.get(k, 0) + v
    assert result == expected
    for exe in ctx.executors:
        cache = exe.cache
        assert cache.recompute_memory_bytes() == cache.memory_bytes
        arena = exe.arena
        assert isinstance(arena, UnifiedMemoryManager)
        check_invariants(arena)
        # No task slots leak past the run.
        assert arena._task_stack == []
        assert arena.execution_used == 0
