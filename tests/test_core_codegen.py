"""Tests for the generated page-scan loops (Appendix B / Fig. 12)."""

import pytest

from repro.analysis import CallGraph, DOUBLE, GlobalClassifier, INT
from repro.apps.udts import make_labeled_point_model
from repro.core.codegen import compile_scan, generate_scan_source, \
    scan_flat
from repro.errors import MemoryLayoutError
from repro.memory import PageGroup, build_schema
from repro.memory.layout import (
    FixedArraySchema,
    PrimitiveSlot,
    RecordSchema,
    VarArraySchema,
)


def lr_schema(dims=4):
    m = make_labeled_point_model(dimensions=dims)
    cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
    size_type = GlobalClassifier(cg).classify(m.labeled_point)
    return build_schema(m.labeled_point, size_type,
                        fixed_lengths={id(m.double_array): dims})


class TestGeneration:
    def test_source_is_compilable_python(self):
        source = generate_scan_source(lr_schema())
        compile(source, "<test>", "exec")  # must not raise

    def test_source_mentions_static_offsets(self):
        source = generate_scan_source(lr_schema())
        assert "base + 0" in source     # label at offset 0
        assert "base + 8" in source     # features.data right after
        assert "stride = 52" in source  # 8 + 4*8 + 3*4

    def test_variable_schema_rejected(self):
        schema = RecordSchema("S", [
            ("n", PrimitiveSlot(INT)),
            ("xs", VarArraySchema(PrimitiveSlot(DOUBLE))),
        ])
        with pytest.raises(MemoryLayoutError):
            generate_scan_source(schema)

    def test_compiled_function_carries_source(self):
        fn = compile_scan(lr_schema())
        assert "def scan_records" in fn.__deca_source__
        assert fn.__deca_slots__


class TestScanSemantics:
    def test_flat_scan_matches_appends(self):
        schema = lr_schema(dims=3)
        group = PageGroup("g", page_bytes=256)
        values = [(float(i), ((1.0 * i, 2.0 * i, 3.0 * i), 0, 1, 3))
                  for i in range(20)]
        for value in values:
            group.append_record(schema, value)
        flat = list(scan_flat(group, schema))
        assert len(flat) == 20
        for i, row in enumerate(flat):
            label, data, offset, stride, length = row
            assert label == float(i)
            assert data == (1.0 * i, 2.0 * i, 3.0 * i)
            assert (offset, stride, length) == (0, 1, 3)

    def test_scan_agrees_with_schema_unpack(self):
        schema = RecordSchema("P", [
            ("x", PrimitiveSlot(DOUBLE)),
            ("tags", FixedArraySchema(PrimitiveSlot(INT), 2)),
        ])
        group = PageGroup("g", page_bytes=64)
        group.append_record(schema, (1.5, (7, 8)))
        group.append_record(schema, (-2.5, (9, 10)))
        assert list(scan_flat(group, schema)) == [
            (1.5, (7, 8)), (-2.5, (9, 10))]

    def test_empty_group(self):
        assert list(scan_flat(PageGroup("g", 64), lr_schema())) == []

    def test_scan_spans_pages(self):
        schema = RecordSchema("P", [("x", PrimitiveSlot(DOUBLE))])
        group = PageGroup("g", page_bytes=24)  # 3 records per page
        for i in range(10):
            group.append_record(schema, (float(i),))
        assert [row[0] for row in scan_flat(group, schema)] == \
            [float(i) for i in range(10)]


class TestGradientLoopLikeFig12:
    def test_gradient_over_generated_scan(self):
        """The Fig. 12 pattern: one reused result buffer, byte access."""
        dims = 4
        schema = lr_schema(dims=dims)
        group = PageGroup("points", page_bytes=1024)
        n = 50
        for i in range(n):
            group.append_record(
                schema, (1.0 if i % 2 else -1.0,
                         (tuple(float(i + d) for d in range(dims)),
                          0, 1, dims)))
        scan = compile_scan(schema)
        weights = [0.1] * dims
        result = [0.0] * dims  # the reused buffer of Fig. 12
        for label, data, _, _, _ in scan(group):
            dot = sum(w * x for w, x in zip(weights, data))
            factor = (1.0 / (1.0 + 2.718281828 ** (-label * dot))
                      - 1.0) * label
            for d in range(dims):
                result[d] += data[d] * factor
        assert all(isinstance(v, float) for v in result)
        assert any(v != 0.0 for v in result)
