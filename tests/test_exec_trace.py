"""Worker trace relay under the mp backend (``repro.exec``).

Satellite of the backend PR: worker-side tracer events cross the result
queue with the task output, get re-anchored on the driver's timeline and
re-parented under the same executor trace pids the sim backend uses —
one deterministic, single-file Chrome trace per run, whichever backend
executed it.
"""

import json

import pytest

from repro.config import DecaConfig, ExecutionMode, FaultConfig, \
    ScriptedFault
from repro.exec.shm import shm_available
from repro.obs.export import chrome_trace, write_chrome_trace
from repro.spark import DecaContext

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform has no shared memory")

NUM_EXECUTORS = 2


def run_wc(faults=None, records=1200, keys=25):
    kwargs = dict(mode=ExecutionMode.DECA, execution_backend="mp",
                  num_executors=NUM_EXECUTORS, tasks_per_executor=2)
    if faults is not None:
        kwargs["faults"] = faults
    ctx = DecaContext(DecaConfig(**kwargs))
    data = [(i % keys, 1) for i in range(records)]
    ctx.parallelize(data, 4, name="tr.pairs") \
       .reduce_by_key(lambda a, b: a + b, 4, name="tr.counts") \
       .collect()
    ctx.finish()
    return ctx.tracer


def structural(tracer, categories=("task", "mp")):
    """The order-and-identity skeleton of a trace, timestamps dropped.

    mp wall times are real time, so only the *structure* is reproducible
    across runs — which events, in which order, on which process rows."""
    return [(e.name, e.category, e.phase, e.pid,
             e.args.get("status"), e.args.get("backend"))
            for e in tracer.events if e.category in categories]


class TestWorkerEventRelay:
    def test_task_spans_reach_the_driver_tracer(self):
        tracer = run_wc()
        tasks = tracer.by_category("task")
        # 2 stages x 4 partitions, no retries.
        assert len(tasks) == 8
        assert {e.args["backend"] for e in tasks} == {"mp"}
        assert all(e.args["status"] == "success" for e in tasks)

    def test_events_reparented_to_executor_pids(self):
        """Worker processes have real OS pids, but their spans land on
        the executor rows (pid = executor_id + 1) — indistinguishable
        from a sim trace's layout."""
        tracer = run_wc()
        tasks = tracer.by_category("task")
        assert {e.pid for e in tasks} == \
            set(range(1, NUM_EXECUTORS + 1))
        for event in tasks:
            worker_pid = event.args["worker_pid"]
            assert worker_pid != event.pid   # a real forked process

    def test_events_reanchored_on_stage_start(self):
        """Worker clocks start at zero on fork; relayed spans must sit
        inside the run's timeline, monotonically by stage."""
        tracer = run_wc()
        stages = {}
        for event in tracer.by_category("task"):
            stages.setdefault(event.args["stage_id"], []).append(event)
        assert sorted(stages) == [0, 1]
        stage0_end = max(e.end_ms for e in stages[0])
        assert all(e.ts_ms >= 0 for e in stages[0])
        assert all(e.ts_ms >= stage0_end for e in stages[1])

    def test_mp_stage_markers_present(self):
        tracer = run_wc()
        markers = tracer.by_category("mp")
        assert [e.name for e in markers] == ["mp:stage:0", "mp:stage:1"]
        assert all(e.args["workers"] == NUM_EXECUTORS for e in markers)

    def test_failed_attempts_traced_with_status(self):
        tracer = run_wc(faults=FaultConfig(scripted=(
            ScriptedFault("task-kill", stage_id=0, partition=2,
                          after_ops=4),)))
        spans = [e for e in tracer.by_category("task")
                 if e.args["task_id"] == 2 and e.args["stage_id"] == 0]
        assert [(e.args["attempt"], e.args["status"]) for e in spans] == \
            [(0, "killed"), (1, "success")]


class TestDeterminism:
    def test_two_runs_have_identical_structure(self):
        assert structural(run_wc()) == structural(run_wc())

    def test_retry_structure_is_deterministic(self):
        faults = FaultConfig(scripted=(
            ScriptedFault("task-kill", stage_id=0, partition=1,
                          after_ops=3),))
        assert structural(run_wc(faults=faults)) == \
            structural(run_wc(faults=faults))


class TestSingleFileExport:
    def test_chrome_trace_holds_every_process(self, tmp_path):
        tracer = run_wc()
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events if e.get("cat") == "task"}
        assert pids == set(range(1, NUM_EXECUTORS + 1))
        # One file, driver rows and executor rows together.
        assert chrome_trace(tracer)["traceEvents"]
