"""Property-based tests: byte layouts and SUDT accessors.

The core safety property of the whole system (§3.1): packing records into
byte segments and reading them back must be lossless, for any record shape
the classifier admits, and in-place writes must never disturb neighbours.
"""


from hypothesis import given, settings, strategies as st

from repro.analysis.udt import (
    BOOLEAN,
    CHAR,
    DOUBLE,
    INT,
    LONG,
    SHORT,
)
from repro.memory.layout import (
    FixedArraySchema,
    PrimitiveSlot,
    RecordSchema,
    VarArraySchema,
)
from repro.memory.page import PageGroup
from repro.memory.sudt import synthesize_sudt

_PRIMS = {
    "boolean": (BOOLEAN, st.booleans()),
    "short": (SHORT, st.integers(-2**15, 2**15 - 1)),
    "int": (INT, st.integers(-2**31, 2**31 - 1)),
    "long": (LONG, st.integers(-2**63, 2**63 - 1)),
    "double": (DOUBLE, st.floats(allow_nan=False, width=64)),
    "char": (CHAR, st.integers(0, 2**16 - 1)),
}


@st.composite
def schema_and_value(draw, max_fields=5):
    """A random record schema together with a matching value.

    The first field is always a primitive so the record never has zero
    size (which :class:`RecordSchema` rejects).
    """
    field_count = draw(st.integers(1, max_fields))
    fields = []
    values = []
    for index in range(field_count):
        kind = ("prim" if index == 0 else draw(
            st.sampled_from(["prim", "fixed-array", "var-array"])))
        prim_name = draw(st.sampled_from(sorted(_PRIMS)))
        prim, value_strategy = _PRIMS[prim_name]
        if kind == "prim":
            fields.append((f"f{index}", PrimitiveSlot(prim)))
            values.append(draw(value_strategy))
        elif kind == "fixed-array":
            length = draw(st.integers(0, 6))
            fields.append((f"f{index}",
                           FixedArraySchema(PrimitiveSlot(prim), length)))
            values.append(tuple(draw(value_strategy)
                                for _ in range(length)))
        else:
            length = draw(st.integers(0, 6))
            fields.append((f"f{index}",
                           VarArraySchema(PrimitiveSlot(prim))))
            values.append(tuple(draw(value_strategy)
                                for _ in range(length)))
    return RecordSchema("R", fields), tuple(values)


@given(schema_and_value())
@settings(max_examples=200)
def test_pack_unpack_roundtrip(case):
    schema, value = case
    packed = schema.pack(value)
    assert len(packed) == schema.size_of(value)
    assert schema.unpack(packed) == value


@given(st.lists(schema_and_value(max_fields=3), min_size=1, max_size=1),
       st.integers(2, 40))
@settings(max_examples=50)
def test_page_group_scan_matches_appends(case, count):
    """Appending N records and scanning returns them in order."""
    (schema, value), = case
    group = PageGroup("g", page_bytes=64)
    for _ in range(count):
        group.append_record(schema, value)
    records = list(group.records(schema))
    assert records == [value] * count
    assert group.used_bytes == schema.size_of(value) * count


@given(schema_and_value(), st.data())
@settings(max_examples=100)
def test_accessor_reads_match_unpack(case, data):
    schema, value = case
    buf = bytearray(schema.size_of(value))
    schema.pack_into(buf, 0, value)
    Sudt = synthesize_sudt(schema)
    accessor = Sudt(buf, 0)
    for (name, field_schema), expected in zip(schema.fields, value):
        got = getattr(accessor, name)
        if isinstance(field_schema, PrimitiveSlot):
            assert got == expected
        else:
            assert tuple(got) == tuple(expected)
    assert accessor.data_size() == schema.size_of(value)


@given(schema_and_value())
@settings(max_examples=100)
def test_neighbouring_records_are_isolated(case):
    """Writing through an accessor never disturbs adjacent records."""
    schema, value = case
    size = schema.size_of(value)
    buf = bytearray(3 * size)
    for slot in range(3):
        schema.pack_into(buf, slot * size, value)
    Sudt = synthesize_sudt(schema)
    middle = Sudt(buf, size)
    # Overwrite every primitive field of the middle record with zeros.
    for name, field_schema in schema.fields:
        if isinstance(field_schema, PrimitiveSlot):
            setattr(middle, name, type(getattr(middle, name))(0))
    left, _ = schema.unpack_from(buf, 0)
    right, _ = schema.unpack_from(buf, 2 * size)
    assert left == value
    assert right == value
