"""Tests for phased refinement (§3.4) and container ownership (§4.3)."""

import pytest

from repro.analysis import (
    CallGraph,
    ContainerKind,
    ContainerRef,
    CreationSite,
    Phase,
    PhasedClassifier,
    PointsToBinding,
    SizeType,
    assign_all,
    assign_ownership,
)
from repro.apps.udts import make_graph_model
from repro.errors import AnalysisError


def graph_phases():
    gm = make_graph_model()
    build = Phase(
        name="build",
        callgraph=CallGraph.build(gm.build_stage_entry,
                                  known_types=(gm.adjacency,)))
    iterate = Phase(
        name="iterate",
        callgraph=CallGraph.build(gm.iterate_stage_entry,
                                  known_types=(gm.adjacency,)),
        reads_materialized=True)
    return gm, PhasedClassifier((build, iterate))


class TestPhasedRefinement:
    def test_adjacency_varies_by_phase(self):
        """Fig. 7(b): VST while grouped, RFST once cached."""
        gm, classifier = graph_phases()
        report = classifier.classify(
            gm.adjacency, materialized_fields=(gm.neighbors_field,))
        assert report.size_type_in("build") is SizeType.VARIABLE
        assert report.size_type_in("iterate") is SizeType.RUNTIME_FIXED
        assert report.ever_decomposable

    def test_local_result_is_recorded(self):
        gm, classifier = graph_phases()
        report = classifier.classify(
            gm.adjacency, materialized_fields=(gm.neighbors_field,))
        assert report.local is SizeType.VARIABLE

    def test_sfst_stays_sfst_everywhere(self):
        gm, classifier = graph_phases()
        report = classifier.classify(gm.edge)
        assert all(st is SizeType.STATIC_FIXED
                   for _, st in report.by_phase)

    def test_unknown_phase_raises(self):
        gm, classifier = graph_phases()
        report = classifier.classify(gm.edge)
        with pytest.raises(KeyError):
            report.size_type_in("nonexistent")


def site(name="points", stage=0):
    from repro.analysis import DOUBLE
    return CreationSite(name=name, udt=DOUBLE, stage_id=stage)


def ref(kind, name, stage=0, order=0):
    return ContainerRef(kind=kind, name=name, stage_id=stage,
                        creation_order=order)


class TestOwnershipRules:
    def test_cache_outranks_udf_variables(self):
        binding = PointsToBinding(site())
        binding.bind(ref(ContainerKind.UDF_VARIABLES, "locals"))
        binding.bind(ref(ContainerKind.CACHE_BLOCK, "rdd1", order=1))
        ownership = assign_ownership(binding)
        assert ownership.primary.kind is ContainerKind.CACHE_BLOCK
        assert ownership.secondaries[0].kind is ContainerKind.UDF_VARIABLES

    def test_shuffle_outranks_udf_variables(self):
        binding = PointsToBinding(site())
        binding.bind(ref(ContainerKind.UDF_VARIABLES, "locals"))
        binding.bind(ref(ContainerKind.SHUFFLE_BUFFER, "shuf", order=1))
        assert assign_ownership(binding).primary.kind \
            is ContainerKind.SHUFFLE_BUFFER

    def test_first_created_high_priority_wins(self):
        """§4.3 rule 2: earliest-created container owns the objects."""
        binding = PointsToBinding(site())
        binding.bind(ref(ContainerKind.CACHE_BLOCK, "rdd2", order=5))
        binding.bind(ref(ContainerKind.SHUFFLE_BUFFER, "shuf", order=2))
        ownership = assign_ownership(binding)
        assert ownership.primary.name == "shuf"
        assert [c.name for c in ownership.secondaries] == ["rdd2"]

    def test_single_container_has_no_secondaries(self):
        binding = PointsToBinding(site())
        binding.bind(ref(ContainerKind.CACHE_BLOCK, "rdd"))
        ownership = assign_ownership(binding)
        assert ownership.secondaries == ()
        assert ownership.all_containers == (ownership.primary,)

    def test_unbound_site_is_an_error(self):
        with pytest.raises(AnalysisError):
            assign_ownership(PointsToBinding(site()))

    def test_assign_all_preserves_order(self):
        b1 = PointsToBinding(site("a"))
        b1.bind(ref(ContainerKind.CACHE_BLOCK, "rdd"))
        b2 = PointsToBinding(site("b"))
        b2.bind(ref(ContainerKind.UDF_VARIABLES, "locals"))
        results = assign_all([b1, b2])
        assert [o.site.name for o in results] == ["a", "b"]

    def test_earlier_stage_wins_across_stages(self):
        binding = PointsToBinding(site())
        binding.bind(ref(ContainerKind.CACHE_BLOCK, "late", stage=2,
                         order=0))
        binding.bind(ref(ContainerKind.CACHE_BLOCK, "early", stage=1,
                         order=9))
        assert assign_ownership(binding).primary.name == "early"
