"""Tests for repro.memory.sudt — synthesized accessor classes."""

import pytest

from repro.analysis import CallGraph, GlobalClassifier
from repro.apps.udts import make_labeled_point_model, make_wordcount_model
from repro.errors import PageOverflowError
from repro.memory import PageGroup, build_schema, synthesize_sudt
from repro.memory.layout import (
    PrimitiveSlot,
    RecordSchema,
    VarArraySchema,
)
from repro.analysis import CHAR, INT


def labeled_point_schema(dims=4):
    m = make_labeled_point_model(dimensions=dims)
    cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
    size_type = GlobalClassifier(cg).classify(m.labeled_point)
    return build_schema(m.labeled_point, size_type,
                        fixed_lengths={id(m.double_array): dims})


class TestPrimitiveAccess:
    def test_read_fields(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (1.5, ((1.0, 2.0, 3.0, 4.0), 0, 1, 4)))
        acc = Sudt(buf, 0)
        assert acc.label == 1.5
        assert acc.features.offset == 0
        assert acc.features.stride == 1

    def test_write_fields_in_place(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (1.5, ((0.0,) * 4, 0, 1, 4)))
        acc = Sudt(buf, 0)
        acc.label = -3.0
        assert acc.label == -3.0
        # The change hit the underlying bytes, not a shadow object.
        assert schema.unpack(buf)[0] == -3.0

    def test_accessor_is_flyweight(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(2 * schema.fixed_size)
        schema.pack_into(buf, 0, (1.0, ((0.0,) * 4, 0, 1, 4)))
        schema.pack_into(buf, schema.fixed_size,
                         (2.0, ((0.0,) * 4, 0, 1, 4)))
        acc = Sudt()
        labels = [acc.bind(buf, off).label
                  for off in (0, schema.fixed_size)]
        assert labels == [1.0, 2.0]

    def test_class_is_cached_per_schema(self):
        schema = labeled_point_schema()
        assert synthesize_sudt(schema) is synthesize_sudt(schema)


class TestArrayAccess:
    def test_fixed_array_view(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (0.0, ((1.0, 2.0, 3.0, 4.0), 0, 1, 4)))
        data = Sudt(buf, 0).features.data
        assert len(data) == 4
        assert data[2] == 3.0
        assert list(data) == [1.0, 2.0, 3.0, 4.0]
        data[0] = 9.0
        assert Sudt(buf, 0).features.data[0] == 9.0

    def test_out_of_bounds(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (0.0, ((0.0,) * 4, 0, 1, 4)))
        with pytest.raises(IndexError):
            Sudt(buf, 0).features.data[4]

    def test_var_array_length_is_per_record(self):
        schema = RecordSchema("S", [
            ("chars", VarArraySchema(PrimitiveSlot(CHAR))),
            ("n", PrimitiveSlot(INT)),
        ])
        Sudt = synthesize_sudt(schema)
        group = PageGroup("g", page_bytes=128)
        p1 = group.append_record(schema, ((104, 105), 1))
        p2 = group.append_record(schema, ((104, 105, 106), 2))
        buf, off = group.read(p2)
        acc = Sudt(buf, off)
        assert len(acc.chars) == 3
        assert acc.n == 2
        buf, off = group.read(p1)
        assert len(acc.bind(buf, off).chars) == 2

    def test_resizing_is_forbidden(self):
        schema = RecordSchema("S", [
            ("chars", VarArraySchema(PrimitiveSlot(CHAR))),
        ])
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.size_of(((1, 2),)))
        schema.pack_into(buf, 0, ((1, 2),))
        view = Sudt(buf, 0).chars
        with pytest.raises(PageOverflowError):
            view.replace((1, 2, 3))

    def test_replace_same_length_ok(self):
        schema = RecordSchema("S", [
            ("chars", VarArraySchema(PrimitiveSlot(CHAR))),
        ])
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.size_of(((1, 2),)))
        schema.pack_into(buf, 0, ((1, 2),))
        acc = Sudt(buf, 0)
        acc.chars.replace((7, 8))
        assert acc.chars.to_tuple() == (7, 8)


class TestDataSize:
    def test_fixed_record_data_size(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (0.0, ((0.0,) * 4, 0, 1, 4)))
        assert Sudt(buf, 0).data_size() == schema.fixed_size

    def test_variable_record_data_size(self):
        wc = make_wordcount_model()
        cg = CallGraph.build(wc.stage_entry, known_types=(wc.tuple2,))
        size_type = GlobalClassifier(cg).classify(wc.tuple2)
        schema = build_schema(wc.tuple2, size_type)
        Sudt = synthesize_sudt(schema)
        value = ((tuple(ord(c) for c in "spark"),), 3)
        buf = bytearray(schema.size_of(value))
        schema.pack_into(buf, 0, value)
        # 4 (prefix) + 5*2 (chars) + 4 (count)
        assert Sudt(buf, 0).data_size() == 18

    def test_whole_record_rewrite_same_size(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (0.0, ((0.0,) * 4, 0, 1, 4)))
        acc = Sudt(buf, 0)
        acc.write((5.0, ((9.0, 8.0, 7.0, 6.0), 0, 1, 4)))
        assert acc.label == 5.0
        assert acc.features.data.to_tuple() == (9.0, 8.0, 7.0, 6.0)


class TestTypedArrayView:
    def test_typed_view_casts_primitive_array(self):
        schema = labeled_point_schema()
        Sudt = synthesize_sudt(schema)
        buf = bytearray(schema.fixed_size)
        schema.pack_into(buf, 0, (1.5, ((1.0, 2.0, 3.0, 4.0), 0, 1, 4)))
        view = Sudt(buf, 0).features.data.typed_view()
        assert view.format == "d"
        assert list(view) == [1.0, 2.0, 3.0, 4.0]
        view.release()

    def test_typed_view_matches_to_tuple(self):
        wc = make_wordcount_model()
        cg = CallGraph.build(wc.stage_entry, known_types=(wc.tuple2,))
        size_type = GlobalClassifier(cg).classify(wc.tuple2)
        schema = build_schema(wc.tuple2, size_type)
        Sudt = synthesize_sudt(schema)
        value = ((tuple(ord(c) for c in "page"),), 2)
        buf = bytearray(schema.size_of(value))
        schema.pack_into(buf, 0, value)
        arr = Sudt(buf, 0).word.value
        assert tuple(arr.typed_view()) == arr.to_tuple()
