"""Per-rule tests: each DECA0xx rule has a pre-fail and a post-pass fixture."""

from repro.analysis import ArrayType, ClassType, Field, INT, LONG, SizeType
from repro.analysis.callgraph import CallGraph
from repro.analysis.phased import Phase
from repro.apps.udts import make_graph_model, make_labeled_point_model, \
    make_wordcount_model
from repro.core.optimizer import PlanReport
from repro.lint import LintTarget, Severity, run_plan_rules, \
    run_static_rules
from repro.spark.rdd import UdtInfo


def _target(info: UdtInfo, name: str = "test/cache:t", **kwargs
            ) -> LintTarget:
    return LintTarget(name=name, udt_info=info, container="cache", **kwargs)


def _rules_fired(findings):
    return {f.rule_id for f in findings}


class TestDeca001MutableField:
    def test_fires_when_a_reassigned_field_holds_rfsts(self):
        model = make_labeled_point_model(dimensions=10, fixed_length=False)
        info = UdtInfo(udt=model.labeled_point,
                       entry_method=model.stage_entry)
        findings = run_static_rules(_target(info))
        assert _rules_fired(findings) == {"DECA001"}
        finding = findings[0]
        assert finding.severity is Severity.WARNING
        assert finding.subject == "LabeledPoint.features"
        assert finding.why  # the provenance chain explains the verdict
        assert any("algorithm" in step for step in finding.why)

    def test_clean_on_the_papers_fixed_length_program(self):
        model = make_labeled_point_model(dimensions=10, fixed_length=True)
        info = UdtInfo(udt=model.labeled_point,
                       entry_method=model.stage_entry)
        assert run_static_rules(_target(info)) == []


class TestDeca002PhaseEscape:
    def test_fires_when_the_phase_itself_assigns_an_assumed_field(self):
        model = make_graph_model()
        # The build stage grows the neighbor array (stores outside the
        # constructor) — vouching init-only for it there is unsound.
        info = UdtInfo(udt=model.adjacency,
                       entry_method=model.build_stage_entry,
                       known_types=(model.adjacency,),
                       assume_init_only=(model.neighbors_field,))
        findings = run_static_rules(_target(info))
        assert "DECA002" in _rules_fired(findings)
        escape = next(f for f in findings if f.rule_id == "DECA002")
        assert escape.severity is Severity.ERROR
        assert escape.subject == "AdjacencyList.neighbors"

    def test_clean_when_the_phase_only_reads(self):
        model = make_graph_model()
        info = UdtInfo(udt=model.adjacency,
                       entry_method=model.iterate_stage_entry,
                       known_types=(model.adjacency,),
                       assume_init_only=(model.neighbors_field,))
        assert run_static_rules(_target(info)) == []

    def test_names_the_vouching_phase_when_known(self):
        model = make_graph_model()
        known = (model.adjacency,)
        phases = (
            Phase("build", CallGraph.build(model.build_stage_entry,
                                           known_types=known)),
            # Deliberately broken: the "iterate" phase runs the build
            # entry, so it assigns the field it claims was materialized.
            Phase("iterate", CallGraph.build(model.build_stage_entry,
                                             known_types=known),
                  reads_materialized=True),
        )
        info = UdtInfo(udt=model.adjacency,
                       entry_method=model.build_stage_entry,
                       known_types=known)
        findings = run_static_rules(_target(
            info, phases=phases,
            materialized_fields=(model.neighbors_field,),
            container_phase="iterate"))
        escape = next(f for f in findings if f.rule_id == "DECA002")
        assert "phase 'build'" in escape.message


class TestDeca003RecursiveType:
    def test_fires_on_a_linked_list(self):
        node = ClassType("Node", [Field("value", INT)])
        node.add_field(Field("next", node))
        findings = run_static_rules(_target(UdtInfo(udt=node)))
        assert _rules_fired(findings) == {"DECA003"}
        assert findings[0].severity is Severity.WARNING
        assert "Node -> Node" in findings[0].message

    def test_clean_on_an_acyclic_type(self):
        model = make_wordcount_model()
        info = UdtInfo(udt=model.tuple2, entry_method=model.stage_entry)
        assert run_static_rules(_target(info)) == []


class TestDeca004UnprovenSymbolicLength:
    def test_fires_when_the_dimension_symbol_has_no_runtime_binding(self):
        model = make_labeled_point_model(dimensions=None)
        info = UdtInfo(udt=model.labeled_point,
                       entry_method=model.stage_entry)  # no runtime_symbols
        findings = run_static_rules(_target(info))
        assert _rules_fired(findings) == {"DECA004"}
        finding = findings[0]
        assert finding.severity is Severity.WARNING
        assert finding.subject == "Array[double]"
        assert "D" in finding.message

    def test_clean_once_the_symbol_is_bound(self):
        model = make_labeled_point_model(dimensions=None)
        info = UdtInfo(udt=model.labeled_point,
                       entry_method=model.stage_entry,
                       runtime_symbols={"D": 8, "D2": 8})
        assert run_static_rules(_target(info)) == []


class TestDeca005PlanContradiction:
    def test_fires_when_a_plan_decomposes_a_vst(self):
        report = PlanReport(target="cache:x.rows", udt="LabeledPoint",
                            local_size_type=SizeType.VARIABLE,
                            global_size_type=SizeType.VARIABLE,
                            decomposed=True, reason="forced for the test")
        findings = run_plan_rules("x", (report,), ())
        assert _rules_fired(findings) == {"DECA005"}
        assert findings[0].severity is Severity.ERROR
        assert "variable" in findings[0].message

    def test_fires_when_the_container_phase_disagrees(self):
        model = make_graph_model()
        known = (model.adjacency,)
        phases = (
            Phase("build", CallGraph.build(model.build_stage_entry,
                                           known_types=known)),
            Phase("iterate", CallGraph.build(model.iterate_stage_entry,
                                             known_types=known),
                  reads_materialized=True),
        )
        info = UdtInfo(udt=model.adjacency,
                       entry_method=model.iterate_stage_entry,
                       known_types=known,
                       assume_init_only=(model.neighbors_field,))
        # Deliberately broken: the cache claims to live in the *build*
        # phase, where the neighbor array still grows.
        target = _target(info, name="x/cache:x.adjacency", phases=phases,
                         materialized_fields=(model.neighbors_field,),
                         container_phase="build")
        report = PlanReport(target="cache:x.adjacency",
                            udt="AdjacencyList",
                            local_size_type=SizeType.VARIABLE,
                            global_size_type=SizeType.RUNTIME_FIXED,
                            decomposed=True, reason="decomposed")
        findings = run_plan_rules("x", (report,), (target,))
        assert _rules_fired(findings) == {"DECA005"}
        assert "phase 'build'" in findings[0].message

    def test_clean_when_plan_and_phases_agree(self):
        model = make_graph_model()
        known = (model.adjacency,)
        phases = (
            Phase("build", CallGraph.build(model.build_stage_entry,
                                           known_types=known)),
            Phase("iterate", CallGraph.build(model.iterate_stage_entry,
                                             known_types=known),
                  reads_materialized=True),
        )
        info = UdtInfo(udt=model.adjacency,
                       entry_method=model.iterate_stage_entry,
                       known_types=known,
                       assume_init_only=(model.neighbors_field,))
        target = _target(info, name="x/cache:x.adjacency", phases=phases,
                         materialized_fields=(model.neighbors_field,),
                         container_phase="iterate")
        report = PlanReport(target="cache:x.adjacency",
                            udt="AdjacencyList",
                            local_size_type=SizeType.VARIABLE,
                            global_size_type=SizeType.RUNTIME_FIXED,
                            decomposed=True, reason="decomposed")
        assert run_plan_rules("x", (report,), (target,)) == []


class TestDeca006UnanalyzedContainer:
    def test_notes_containers_without_a_udt(self):
        report = PlanReport(target="shuffle:0:x.edges", udt=None,
                            local_size_type=None, global_size_type=None,
                            decomposed=False, reason="no UDT declared")
        findings = run_plan_rules("x", (report,), ())
        assert _rules_fired(findings) == {"DECA006"}
        assert findings[0].severity is Severity.NOTE

    def test_silent_for_analyzed_object_form_containers(self):
        report = PlanReport(target="cache:x.rows", udt="LabeledPoint",
                            local_size_type=SizeType.VARIABLE,
                            global_size_type=SizeType.VARIABLE,
                            decomposed=False,
                            reason="size-type variable cannot be safely "
                                   "decomposed")
        assert run_plan_rules("x", (report,), ()) == []


class TestDeca007ElementAssumption:
    def test_fires_when_an_element_field_is_assumed_init_only(self):
        array = ArrayType(LONG)
        holder = ClassType("Holder", [Field("xs", array, final=True)])
        info = UdtInfo(udt=holder,
                       assume_init_only=(array.element_field,))
        findings = run_static_rules(_target(info))
        assert _rules_fired(findings) == {"DECA007"}
        finding = findings[0]
        assert finding.severity is Severity.ERROR
        assert finding.subject == "Holder.<element>"

    def test_clean_without_the_element_assumption(self):
        array = ArrayType(LONG)
        holder = ClassType("Holder", [Field("xs", array, final=True)])
        assert run_static_rules(_target(UdtInfo(udt=holder))) == []


class TestBundledTargets:
    def test_every_registered_app_is_statically_clean(self):
        from repro.lint import LINT_APPS

        for app in LINT_APPS:
            for target in app.make_targets():
                assert run_static_rules(target) == [], \
                    f"unexpected findings on {target.name}"
