"""Tests for the §6.6 SQL dialect parser."""

import pytest

from repro.data import rankings_table, uservisits_table
from repro.errors import SqlError
from repro.sql import SqlEngine, parse
from repro.sql.engine import Aggregation, Filter
from repro.sql.schema import RANKINGS_SCHEMA, USERVISITS_SCHEMA


class TestParseScan:
    def test_query1_verbatim(self):
        query = parse("SELECT pageURL, pageRank FROM rankings "
                      "WHERE pageRank > 100;")
        assert query.table == "rankings"
        assert query.projection == ("pageURL", "pageRank")
        assert query.where == Filter("pageRank", ">", 100)
        assert query.aggregation is None

    def test_no_where(self):
        query = parse("SELECT a FROM t")
        assert query.where is None
        assert query.projection == ("a",)

    def test_case_insensitive_keywords(self):
        query = parse("select a from t where a >= 3")
        assert query.where == Filter("a", ">=", 3)

    @pytest.mark.parametrize("op", [">", ">=", "<", "<=", "=", "!="])
    def test_all_operators(self, op):
        query = parse(f"SELECT a FROM t WHERE a {op} 1")
        assert query.where.op == op

    def test_string_literal(self):
        query = parse("SELECT a FROM t WHERE name = 'dk'")
        assert query.where.literal == "dk"

    def test_float_literal(self):
        query = parse("SELECT a FROM t WHERE x > 1.5")
        assert query.where.literal == 1.5

    def test_negative_literal(self):
        query = parse("SELECT a FROM t WHERE x < -3")
        assert query.where.literal == -3


class TestParseAggregate:
    def test_query2_verbatim(self):
        query = parse(
            "SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue)\n"
            "FROM uservisits\n"
            "GROUP BY SUBSTR(sourceIP, 1, 5);")
        assert query.table == "uservisits"
        assert query.aggregation == Aggregation("sourceIP", "adRevenue", 5)

    def test_group_by_whole_column(self):
        query = parse("SELECT countryCode, SUM(adRevenue) "
                      "FROM uservisits GROUP BY countryCode")
        assert query.aggregation == Aggregation("countryCode",
                                                "adRevenue", None)

    def test_key_mismatch_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT destURL, SUM(adRevenue) FROM uservisits "
                  "GROUP BY sourceIP")

    def test_unsupported_aggregate_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, STDDEV(b) FROM t GROUP BY a")

    def test_where_with_group_by_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, SUM(b) FROM t WHERE a > 1 GROUP BY a")

    def test_three_column_aggregate_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, SUM(b), SUM(c) FROM t GROUP BY a")


class TestParseTopK:
    def test_order_by_limit(self):
        query = parse("SELECT pageURL, pageRank FROM rankings "
                      "ORDER BY pageRank DESC LIMIT 10")
        assert query.order_by == "pageRank"
        assert query.descending
        assert query.limit == 10

    def test_order_by_ascending_default(self):
        query = parse("SELECT a FROM t ORDER BY a")
        assert query.order_by == "a"
        assert not query.descending
        assert query.limit is None

    def test_limit_without_order(self):
        query = parse("SELECT a FROM t LIMIT 3")
        assert query.order_by is None
        assert query.limit == 3

    def test_order_by_must_be_projected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t ORDER BY b")

    def test_order_by_with_group_by_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a")


class TestQuotedIdentifiers:
    def test_quoted_projection_and_table(self):
        query = parse('SELECT "pageURL", "pageRank" FROM "rankings" '
                      'WHERE "pageRank" > 100')
        assert query.table == "rankings"
        assert query.projection == ("pageURL", "pageRank")
        assert query.where == Filter("pageRank", ">", 100)

    def test_quoted_group_by_key(self):
        query = parse('SELECT "countryCode", SUM("adRevenue") '
                      'FROM uservisits GROUP BY "countryCode"')
        assert query.aggregation == Aggregation("countryCode",
                                                "adRevenue", None)

    def test_quoted_substr_key(self):
        query = parse('SELECT SUBSTR("sourceIP", 1, 5), SUM(adRevenue) '
                      'FROM uservisits GROUP BY SUBSTR("sourceIP", 1, 5)')
        assert query.aggregation == Aggregation("sourceIP",
                                                "adRevenue", 5)

    def test_unterminated_quote_rejected(self):
        with pytest.raises(SqlError):
            parse('SELECT "pageURL FROM rankings')


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "DELETE FROM t",
        "SELECT FROM t",
        "SELECT a FROM t WHERE a LIKE 'x%'",
        "SELECT a + 1 FROM t",
        "SELECT a FROM t GROUP BY a + 1",
        "",
    ])
    def test_out_of_dialect(self, bad):
        with pytest.raises(SqlError):
            parse(bad)

    def test_surplus_whitespace_tolerated(self):
        query = parse("  SELECT\t a ,\n  b   FROM\n\tt \n"
                      "  WHERE  a  >=  3 ;  ")
        assert query.projection == ("a", "b")
        assert query.where == Filter("a", ">=", 3)

    @pytest.mark.parametrize("bad", [
        "SELECT a FROM t WHERE a >",
        "SELECT a FROM t WHERE > 1",
        "SELECT a FROM t WHERE a ~ 1",
        "SELECT a FROM t WHERE a = 'open",
        "SELECT a FROM t WHERE a = 1.2.3",
        "SELECT a FROM t LIMIT -1",
        "SELECT a FROM t LIMIT many",
    ])
    def test_malformed_clauses_raise_typed_error(self, bad):
        """Malformed predicates surface as SqlError, never ValueError."""
        with pytest.raises(SqlError):
            parse(bad)


class TestEndToEndSql:
    def test_engine_sql_matches_structured_api(self):
        engine = SqlEngine()
        rows = rankings_table(300)
        engine.register_table("rankings", RANKINGS_SCHEMA, rows)
        via_sql = engine.sql("SELECT pageURL, pageRank FROM rankings "
                             "WHERE pageRank > 100;")
        expected = sorted((r[0], r[1]) for r in rows if r[1] > 100)
        assert sorted(via_sql.rows) == expected

    def test_engine_sql_top_k(self):
        engine = SqlEngine()
        rows = rankings_table(300)
        engine.register_table("rankings", RANKINGS_SCHEMA, rows)
        result = engine.sql("SELECT pageURL, pageRank FROM rankings "
                            "ORDER BY pageRank DESC LIMIT 7")
        expected = sorted(((r[0], r[1]) for r in rows),
                          key=lambda t: t[1], reverse=True)[:7]
        assert [r[1] for r in result.rows] == [r[1] for r in expected]

    def test_engine_sql_aggregate(self):
        engine = SqlEngine()
        rows = uservisits_table(400)
        engine.register_table("uservisits", USERVISITS_SCHEMA, rows)
        result = engine.sql(
            "SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue) "
            "FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 5)")
        totals = {}
        for r in rows:
            totals[r[0][:5]] = totals.get(r[0][:5], 0.0) + r[3]
        assert len(result.rows) == len(totals)


class TestExtendedAggregates:
    def make_engine(self):
        engine = SqlEngine()
        engine.register_table("uservisits", USERVISITS_SCHEMA,
                              uservisits_table(300))
        return engine, uservisits_table(300)

    @pytest.mark.parametrize("func", ["SUM", "COUNT", "AVG", "MIN", "MAX"])
    def test_functions_parse(self, func):
        query = parse(f"SELECT countryCode, {func}(adRevenue) "
                      "FROM uservisits GROUP BY countryCode")
        assert query.aggregation.func == func

    def test_count_totals_rows(self):
        engine, rows = self.make_engine()
        result = engine.sql("SELECT countryCode, COUNT(adRevenue) "
                            "FROM uservisits GROUP BY countryCode")
        assert sum(n for _, n in result.rows) == len(rows)

    def test_avg_matches_python(self):
        engine, rows = self.make_engine()
        result = engine.sql("SELECT countryCode, AVG(adRevenue) "
                            "FROM uservisits GROUP BY countryCode")
        groups = {}
        for r in rows:
            groups.setdefault(r[5], []).append(r[3])
        for key, mean in result.rows:
            expected = sum(groups[key]) / len(groups[key])
            assert abs(mean - expected) < 1e-9

    def test_min_max_bound_sum(self):
        engine, _ = self.make_engine()
        low = dict(engine.sql("SELECT countryCode, MIN(adRevenue) "
                              "FROM uservisits GROUP BY countryCode").rows)
        high = dict(engine.sql("SELECT countryCode, MAX(adRevenue) "
                               "FROM uservisits GROUP BY countryCode").rows)
        for key in low:
            assert low[key] <= high[key]

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a, MEDIAN(b) FROM t GROUP BY a")

    def test_aggregation_dataclass_validates_func(self):
        from repro.sql.engine import Aggregation
        with pytest.raises(SqlError):
            Aggregation("k", "v", func="MEDIAN")
