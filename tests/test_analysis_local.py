"""Tests for Algorithm 1 — the local classification analysis."""

import pytest

from repro.analysis import (
    ArrayType,
    ClassType,
    DOUBLE,
    Field,
    INT,
    LONG,
    SizeType,
    classify_locally,
    max_variability,
)
from repro.analysis.udt import type_dependency_cycle
from repro.apps.udts import make_labeled_point_model
from repro.errors import AnalysisError, TypeGraphError


class TestPrimitivesAndSimpleClasses:
    def test_primitive_is_sfst(self):
        assert classify_locally(DOUBLE) is SizeType.STATIC_FIXED

    def test_class_of_primitives_is_sfst(self):
        point = ClassType("Point", [Field("x", DOUBLE), Field("y", DOUBLE)])
        assert classify_locally(point) is SizeType.STATIC_FIXED

    def test_empty_class_is_sfst(self):
        assert classify_locally(ClassType("Marker")) is SizeType.STATIC_FIXED


class TestArrays:
    def test_array_of_primitives_is_rfst(self):
        assert classify_locally(ArrayType(DOUBLE)) is SizeType.RUNTIME_FIXED

    def test_array_of_sfst_classes_is_rfst(self):
        point = ClassType("Point", [Field("x", DOUBLE)])
        assert classify_locally(ArrayType(point)) is SizeType.RUNTIME_FIXED

    def test_array_of_arrays_is_vst(self):
        # Inner arrays are RFSTs held by a (non-final) element field.
        assert classify_locally(ArrayType(ArrayType(INT))) \
            is SizeType.VARIABLE


class TestFieldFinality:
    def test_final_rfst_field_keeps_rfst(self):
        holder = ClassType("Holder", [
            Field("data", ArrayType(DOUBLE), final=True)])
        assert classify_locally(holder) is SizeType.RUNTIME_FIXED

    def test_nonfinal_rfst_field_becomes_vst(self):
        holder = ClassType("Holder", [
            Field("data", ArrayType(DOUBLE), final=False)])
        assert classify_locally(holder) is SizeType.VARIABLE

    def test_nonfinal_sfst_field_stays_sfst(self):
        # Reassigning to an object of the same static size is harmless.
        point = ClassType("Point", [Field("x", DOUBLE)])
        holder = ClassType("Holder", [Field("p", point, final=False)])
        assert classify_locally(holder) is SizeType.STATIC_FIXED


class TestTypeSets:
    def test_field_takes_most_variable_member_of_type_set(self):
        fixed = ClassType("Fixed", [Field("x", DOUBLE)])
        growable = ClassType("Growable", [
            Field("buf", ArrayType(DOUBLE), final=False)])
        holder = ClassType("Holder", [
            Field("v", fixed, type_set=(fixed, growable), final=True)])
        assert classify_locally(holder) is SizeType.VARIABLE

    def test_empty_type_set_is_rejected(self):
        with pytest.raises(TypeGraphError):
            Field("v", DOUBLE, type_set=())


class TestRecursiveTypes:
    def test_self_reference_is_recursively_defined(self):
        node = ClassType("Node", [Field("value", INT)])
        node.add_field(Field("next", node))
        assert classify_locally(node) is SizeType.RECURSIVELY_DEFINED

    def test_mutual_recursion_is_detected(self):
        a = ClassType("A")
        b = ClassType("B", [Field("a", a)])
        a.add_field(Field("b", b))
        assert classify_locally(a) is SizeType.RECURSIVELY_DEFINED
        cycle = type_dependency_cycle(a)
        assert cycle is not None and cycle[0] is cycle[-1]

    def test_recursion_through_array(self):
        node = ClassType("TreeNode", [Field("key", LONG)])
        node.add_field(Field("children", ArrayType(node), final=True))
        assert classify_locally(node) is SizeType.RECURSIVELY_DEFINED

    def test_diamond_sharing_is_not_a_cycle(self):
        shared = ClassType("Shared", [Field("x", INT)])
        left = ClassType("Left", [Field("s", shared)])
        right = ClassType("Right", [Field("s", shared)])
        top = ClassType("Top", [Field("l", left), Field("r", right)])
        assert type_dependency_cycle(top) is None
        assert classify_locally(top) is SizeType.STATIC_FIXED


class TestPaperRunningExample:
    """Fig. 3: LabeledPoint classifies as VST locally."""

    def test_labeled_point_is_vst(self):
        model = make_labeled_point_model()
        assert classify_locally(model.labeled_point) is SizeType.VARIABLE

    def test_dense_vector_is_rfst(self):
        model = make_labeled_point_model()
        assert classify_locally(model.dense_vector) is SizeType.RUNTIME_FIXED

    def test_data_array_is_rfst(self):
        model = make_labeled_point_model()
        assert classify_locally(model.double_array) is SizeType.RUNTIME_FIXED

    def test_final_features_would_still_be_rfst(self):
        """§3.3: even a final features field only reaches RFST locally."""
        model = make_labeled_point_model()
        lp = ClassType("LabeledPoint2", [
            Field("label", DOUBLE),
            Field("features", model.vector, type_set=(model.dense_vector,),
                  final=True),
        ])
        assert classify_locally(lp) is SizeType.RUNTIME_FIXED


class TestVariabilityOrder:
    def test_total_order(self):
        assert max_variability([]) is SizeType.STATIC_FIXED
        assert max_variability(
            [SizeType.STATIC_FIXED, SizeType.RUNTIME_FIXED]
        ) is SizeType.RUNTIME_FIXED
        assert max_variability(
            [SizeType.RUNTIME_FIXED, SizeType.VARIABLE,
             SizeType.STATIC_FIXED]
        ) is SizeType.VARIABLE

    def test_recursively_defined_has_no_rank(self):
        with pytest.raises(AnalysisError):
            max_variability([SizeType.RECURSIVELY_DEFINED])

    def test_decomposability(self):
        assert SizeType.STATIC_FIXED.decomposable
        assert SizeType.RUNTIME_FIXED.decomposable
        assert not SizeType.VARIABLE.decomposable
        assert not SizeType.RECURSIVELY_DEFINED.decomposable
