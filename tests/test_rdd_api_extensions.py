"""Tests for the extended RDD API surface."""

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.errors import ExecutionError
from repro.spark import DecaContext


def make_ctx(**overrides):
    defaults = dict(heap_bytes=32 * MB, num_executors=2,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestKeyValueHelpers:
    def test_keys_values(self):
        ctx = make_ctx()
        pairs = ctx.parallelize([(1, "a"), (2, "b")], 2)
        assert sorted(pairs.keys().collect()) == [1, 2]
        assert sorted(pairs.values().collect()) == ["a", "b"]

    def test_count_by_key(self):
        ctx = make_ctx()
        pairs = ctx.parallelize([("x", 1), ("y", 2), ("x", 3)], 2)
        assert pairs.count_by_key() == {"x": 2, "y": 1}


class TestNumericActions:
    def test_sum(self):
        ctx = make_ctx()
        assert ctx.parallelize(range(101), 4).sum() == 5050

    def test_min_max(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([5, -3, 17, 0], 3)
        assert rdd.max() == 17
        assert rdd.min() == -3

    def test_first(self):
        ctx = make_ctx()
        assert ctx.parallelize([42, 1], 1).first() == 42

    def test_first_empty_raises(self):
        ctx = make_ctx()
        with pytest.raises(ExecutionError):
            ctx.parallelize([], 1).first()


class TestSample:
    def test_fraction_bounds(self):
        ctx = make_ctx()
        with pytest.raises(ExecutionError):
            ctx.parallelize([1], 1).sample(1.5)

    def test_sample_is_deterministic(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(500), 4)
        a = sorted(rdd.sample(0.25, seed=3).collect())
        b = sorted(rdd.sample(0.25, seed=3).collect())
        assert a == b

    def test_sample_size_is_plausible(self):
        ctx = make_ctx()
        out = ctx.parallelize(range(2000), 4).sample(0.5).collect()
        assert 800 < len(out) < 1200

    def test_sample_extremes(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(50), 2)
        assert rdd.sample(0.0).collect() == []
        assert sorted(rdd.sample(1.0).collect()) == list(range(50))


class TestZipWithIndex:
    def test_indices_are_a_permutation(self):
        ctx = make_ctx()
        zipped = ctx.parallelize(list("abcdefg"), 3).zip_with_index() \
            .collect()
        indices = sorted(index for _, index in zipped)
        assert indices == list(range(7))

    def test_indices_follow_partition_order(self):
        ctx = make_ctx()
        zipped = dict(ctx.parallelize([10, 20, 30, 40], 2)
                      .zip_with_index().collect())
        assert zipped[10] < zipped[20]  # within partition 0
        assert zipped[30] < zipped[40]  # within partition 1

    def test_works_under_deca(self):
        ctx = make_ctx(mode=ExecutionMode.DECA)
        zipped = ctx.parallelize([1, 2, 3], 2).zip_with_index().collect()
        assert len(zipped) == 3
