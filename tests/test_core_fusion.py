"""Tests for iterator fusion (paper §5 pre-processing)."""

import pytest

from repro.config import DecaConfig, MB
from repro.core.fusion import FusedMapRDD, fuse, fusible_chain
from repro.spark import DecaContext


def make_ctx(**overrides):
    defaults = dict(heap_bytes=32 * MB, num_executors=2,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestFusionCorrectness:
    def test_map_map_chain(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(50), 4).map(lambda x: x + 1) \
            .map(lambda x: x * 2)
        fused = fuse(rdd)
        assert isinstance(fused, FusedMapRDD)
        assert fused.fused_length == 2
        assert sorted(fused.collect()) == \
            sorted((x + 1) * 2 for x in range(50))

    def test_map_filter_map_chain(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(100), 4) \
            .map(lambda x: x + 1) \
            .filter(lambda x: x % 3 == 0) \
            .map(lambda x: -x)
        fused = fuse(rdd)
        assert fused.fused_length == 3
        expected = sorted(-(x + 1) for x in range(100)
                          if (x + 1) % 3 == 0)
        assert sorted(fused.collect()) == expected

    def test_filter_short_circuits(self):
        ctx = make_ctx()
        seen = []

        def spy(x):
            seen.append(x)
            return x

        rdd = ctx.parallelize(range(10), 1) \
            .filter(lambda x: x < 5) \
            .map(spy)
        fuse(rdd).collect()
        assert sorted(seen) == [0, 1, 2, 3, 4]


class TestFusionBoundaries:
    def test_single_stage_not_fused(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x)
        assert fuse(rdd) is rdd

    def test_flat_map_ends_the_group(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(["a b"], 1).flat_map(str.split) \
            .map(str.upper).map(lambda s: s + "!")
        fused = fuse(rdd)
        assert isinstance(fused, FusedMapRDD)
        assert fused.fused_length == 2  # only the two maps
        assert sorted(fused.collect()) == ["A!", "B!"]

    def test_cache_point_is_a_barrier(self):
        ctx = make_ctx()
        cached = ctx.parallelize(range(10), 2).map(lambda x: x + 1).cache()
        rdd = cached.map(lambda x: x * 2).map(lambda x: x - 1)
        fused = fuse(rdd)
        assert isinstance(fused, FusedMapRDD)
        assert fused.fused_length == 2
        source, chain = fusible_chain(rdd)
        assert source is cached
        # The cached dataset still materializes.
        fused.collect()
        assert any(e.cache.blocks for e in ctx.executors)

    def test_shared_intermediate_not_fused_through(self):
        ctx = make_ctx()
        base = ctx.parallelize(range(10), 2).map(lambda x: x + 1)
        consumer_a = base.map(lambda x: x * 2)
        consumer_b = base.map(lambda x: x * 3)  # base now has 2 children
        fused = fuse(consumer_a)
        assert fused is consumer_a  # chain length 1: nothing fused
        assert sorted(consumer_b.collect()) == \
            sorted((x + 1) * 3 for x in range(10))

    def test_shuffle_is_a_barrier(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([(1, 2)], 1) \
            .reduce_by_key(lambda a, b: a + b, 1) \
            .map(lambda kv: kv[0]).map(lambda k: k + 1)
        fused = fuse(rdd)
        assert fused.fused_length == 2
        assert fused.collect() == [2]


class TestFusionEconomics:
    def test_fused_chain_charges_less(self):
        """One loop and no intermediate temporaries: cheaper than the
        nested-iterator chain."""
        data = list(range(5000))

        def run(fused: bool) -> float:
            ctx = make_ctx()
            rdd = ctx.parallelize(data, 4) \
                .map(lambda x: (x, x)) \
                .map(lambda kv: (kv[0], kv[1] + 1)) \
                .map(lambda kv: kv[1])
            target = fuse(rdd) if fused else rdd
            target.collect()
            return ctx.wall_ms

        assert run(fused=True) < run(fused=False)

    def test_explicit_costs_are_summed(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(10), 1) \
            .map(lambda x: x, record_cost_ms=0.5) \
            .map(lambda x: x, record_cost_ms=0.25)
        fused = fuse(rdd)
        assert fused._record_cost_ms == pytest.approx(0.75)
