"""The mmap cold tier: extents, free-list reuse, crash safety.

Covers :mod:`repro.memory.tier` directly — byte-exact round trips,
zero-copy promotion views, extent conservation under random
swap/promote/drop scripts, and the startup truncation of tier files a
killed run left behind.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PageError
from repro.memory.tier import (
    PageStoreTier,
    TIER_FILE_PREFIX,
    default_tier_path,
)
from repro.obs import Tracer


@pytest.fixture
def tier(tmp_path):
    store = PageStoreTier(str(tmp_path / "tier.bin"))
    yield store
    store.close()


class TestSwapRoundtrip:
    def test_bytes_round_trip_exactly(self, tier):
        chunks = [b"alpha" * 100, b"beta" * 50, b"g"]
        moved = tier.swap_out("g1", chunks)
        assert moved == sum(len(c) for c in chunks)
        views = tier.swap_in("g1")
        assert [bytes(v) for v in views] == chunks

    def test_views_are_zero_copy_aliases(self, tier):
        tier.swap_out("g1", [bytearray(b"xxxx")])
        view = tier.views("g1")[0]
        view[0:2] = b"ab"
        assert bytes(tier.views("g1")[0]) == b"abxx"

    def test_memoryview_chunks_write_without_bytes_objects(self, tier):
        backing = bytearray(b"0123456789")
        tier.swap_out("g1", [memoryview(backing)[2:6]])
        assert bytes(tier.views("g1")[0]) == b"2345"

    def test_duplicate_extent_name_rejected(self, tier):
        tier.swap_out("g1", [b"x"])
        with pytest.raises(PageError):
            tier.swap_out("g1", [b"y"])

    def test_missing_extent_raises(self, tier):
        with pytest.raises(PageError):
            tier.views("nope")

    def test_swap_in_retains_extent(self, tier):
        tier.swap_out("g1", [b"abc"])
        tier.swap_in("g1")
        assert tier.has("g1")
        assert tier.stats.swap_in_count == 1

    def test_drop_is_idempotent(self, tier):
        tier.swap_out("g1", [b"abc"])
        assert tier.drop("g1") == 3
        assert tier.drop("g1") == 0
        assert not tier.has("g1")


class TestExtentAllocation:
    def test_freed_extents_are_reused(self, tier):
        tier.swap_out("g1", [b"a" * 100])
        offset = tier.extent_of("g1").offset
        tier.drop("g1")
        tier.swap_out("g2", [b"b" * 100])
        assert tier.extent_of("g2").offset == offset

    def test_neighbouring_holes_coalesce(self, tier):
        for i in range(3):
            tier.swap_out(f"g{i}", [bytes([i]) * 5000])
        # Free the middle then the first: the two holes must merge so a
        # larger extent fits where the small ones were.
        first = tier.extent_of("g0")
        tier.drop("g1")
        tier.drop("g0")
        tier.swap_out("big", [b"x" * 9000])
        assert tier.extent_of("big").offset == first.offset

    def test_growth_preserves_exported_views(self, tier):
        tier.swap_out("g1", [b"keep" * 100])
        view = tier.swap_in("g1")[0]
        # Force growth past the first mapping.
        tier.swap_out("g2", [b"z" * (2 << 20)])
        assert bytes(view[:4]) == b"keep"
        assert bytes(tier.views("g1")[0][:4]) == b"keep"

    def test_file_bytes_track_growth(self, tier):
        tier.swap_out("g1", [b"x"])
        assert tier.file_bytes == os.path.getsize(tier.path)
        tier.swap_out("g2", [b"y" * (4 << 20)])
        assert tier.file_bytes == os.path.getsize(tier.path)


class TestLifecycle:
    def test_close_unlinks_file(self, tmp_path):
        store = PageStoreTier(str(tmp_path / "t.bin"))
        store.swap_out("g", [b"x"])
        path = store.path
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)

    def test_close_is_idempotent(self, tmp_path):
        store = PageStoreTier(str(tmp_path / "t.bin"))
        store.close()
        store.close()
        with pytest.raises(PageError):
            store.swap_out("g", [b"x"])

    def test_default_path_embeds_pid(self):
        path = default_tier_path("e0")
        name = os.path.basename(path)
        assert name.startswith(f"{TIER_FILE_PREFIX}-{os.getpid()}-")
        assert name.endswith("-e0.bin")

    def test_leftover_file_truncated_on_startup(self, tmp_path):
        """Crash safety: a tier file a killed run left behind holds
        unrecoverable garbage (its extent directory died with the
        process) and must be reclaimed, not mapped."""
        path = tmp_path / "stale.bin"
        path.write_bytes(b"stale-extent-bytes" * 1000)
        store = PageStoreTier(str(path))
        try:
            assert os.path.getsize(path) == 0
            assert store.stats.truncated_bytes == 18_000
            assert store.file_bytes == 0
            store.swap_out("g", [b"fresh"])
            assert bytes(store.views("g")[0]) == b"fresh"
        finally:
            store.close()

    def test_truncation_is_traced(self, tmp_path):
        path = tmp_path / "stale.bin"
        path.write_bytes(b"x" * 100)
        tracer = Tracer()
        store = PageStoreTier(str(path), tracer=tracer)
        try:
            events = [e for e in tracer.events if e.name == "tier:truncate"]
            assert len(events) == 1
            assert events[0].args["reclaimed_bytes"] == 100
        finally:
            store.close()

    def test_spill_accounting(self, tier):
        tier.note_spill(1000)
        tier.note_spill(500)
        assert tier.stats.spill_count == 2
        assert tier.stats.spill_bytes == 1500


# -- extent conservation under random scripts --------------------------------

@st.composite
def tier_script(draw):
    """A random swap_out / swap_in / drop sequence over a few groups."""
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["out", "in", "drop"]),
            st.integers(0, 5),                      # group index
            st.lists(st.integers(1, 60_000),        # chunk sizes
                     min_size=1, max_size=4),
        ),
        min_size=1, max_size=30))
    return ops


@given(tier_script())
@settings(max_examples=60, deadline=None)
def test_extents_conserve_bytes_and_never_overlap(tmp_path_factory, script):
    tier = PageStoreTier(
        str(tmp_path_factory.mktemp("tier") / "prop.bin"))
    try:
        payloads: dict[str, list[bytes]] = {}
        for op, idx, sizes in script:
            name = f"g{idx}"
            if op == "out" and name not in payloads:
                chunks = [bytes([idx + 1]) * n for n in sizes]
                tier.swap_out(name, chunks)
                payloads[name] = chunks
            elif op == "in" and name in payloads:
                views = tier.swap_in(name)
                assert [bytes(v) for v in views] == payloads[name]
            elif op == "drop":
                tier.drop(name)
                payloads.pop(name, None)

            # Conservation: every file byte is either reserved by a
            # live extent or on the free list — never both, never lost.
            assert tier.live_bytes + tier.free_bytes == tier.file_bytes

            # No two extents overlap, and none runs past the file.
            spans = sorted(
                (e.offset, e.offset + e.length)
                for e in (tier.extent_of(n) for n in payloads))
            for (_, end), (start, _) in zip(spans, spans[1:]):
                assert end <= start
            if spans:
                assert spans[-1][1] <= tier.file_bytes

        # Every surviving payload still reads back byte-exact.
        for name, chunks in payloads.items():
            assert [bytes(v) for v in tier.views(name)] == chunks
    finally:
        tier.close()
