"""Unit and integration tests for the unified executor memory arena.

Covers the arena itself (pool borrowing, fair-share clamps, cooperative
spilling, LRU storage eviction), the static shared shuffle pool
regression (concurrent writers spill at the combined threshold), the
cache's fail-fast oversized-block path, and end-to-end unified-mode
correctness of the engine.
"""

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.errors import ConfigError
from repro.memory.unified import (
    StaticMemoryArena,
    UnifiedMemoryManager,
    add_memory_observer,
    create_memory_arena,
    remove_memory_observer,
)
from repro.spark import DecaContext
from repro.spark.cache import CachedBlock, StorageStrategy
from repro.spark.measure import RecordFootprint
from repro.spark.shuffle import MapSideWriter, ShuffleKind


def config(**overrides):
    defaults = dict(heap_bytes=4 * MB, num_executors=1,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaConfig(**defaults)


def unified(**overrides) -> UnifiedMemoryManager:
    return UnifiedMemoryManager(config(**overrides))


class FakeConsumer:
    """A MemoryConsumer that releases its grant when told to spill."""

    def __init__(self, arena, name="fake"):
        self.arena = arena
        self.name = name
        self.held = 0
        self.spill_calls = 0

    @property
    def consumer_name(self):
        return self.name

    def memory_used(self):
        return self.held

    def acquire(self, nbytes, task_key=None):
        got = self.arena.execution_acquire(nbytes, consumer=self,
                                           task_key=task_key)
        self.held += got
        return got

    def spill(self):
        self.spill_calls += 1
        freed = self.arena.execution_release(self.held, consumer=self)
        self.held = 0
        return freed


class TestConfig:
    def test_mode_validation(self):
        with pytest.raises(ConfigError):
            config(memory_mode="fancy")
        with pytest.raises(ConfigError):
            config(memory_fraction=0.0)
        with pytest.raises(ConfigError):
            config(storage_region_fraction=1.5)

    def test_arena_sizing(self):
        cfg = config(memory_fraction=0.75, storage_region_fraction=0.5)
        assert cfg.arena_bytes == int(cfg.heap_bytes * 0.75)
        assert cfg.storage_region_bytes == cfg.arena_bytes // 2

    def test_factory_picks_mode(self):
        assert isinstance(create_memory_arena(config()),
                          StaticMemoryArena)
        assert isinstance(
            create_memory_arena(config(memory_mode="unified")),
            UnifiedMemoryManager)


class TestStaticPool:
    def test_shared_pool_accounting(self):
        arena = StaticMemoryArena(config(shuffle_fraction=0.25))
        assert arena.shuffle_budget == config().heap_bytes // 4
        arena.shuffle_acquire(arena.shuffle_budget)
        assert not arena.shuffle_over_budget()
        arena.shuffle_acquire(1)
        assert arena.shuffle_over_budget()
        arena.shuffle_release(arena.shuffle_used + 100)
        assert arena.shuffle_used == 0  # clamped, never negative


class TestExecutionPool:
    def test_grant_clamped_to_fair_share(self):
        arena = unified()
        key = arena.task_started()
        granted = arena.execution_acquire(arena.total * 2, task_key=key)
        # One active task may take the whole pool but no more.
        assert granted == arena.execution_pool_size()
        assert arena.execution_used == granted

    def test_two_tasks_split_the_pool(self):
        arena = unified()
        key_a = arena.task_started()
        key_b = arena.task_started()
        a = arena.execution_acquire(arena.total, task_key=key_a)
        b = arena.execution_acquire(arena.total, task_key=key_b)
        pool = arena.execution_pool_size()
        assert a == pool // 2
        assert b == pool // 2
        assert arena.min_per_task() <= a <= arena.max_per_task()

    def test_task_finish_releases_leftovers(self):
        arena = unified()
        key = arena.task_started()
        arena.execution_acquire(1000, task_key=key)
        assert arena.execution_used == 1000
        leftover = arena.task_finished(key)
        assert leftover == 1000
        assert arena.execution_used == 0

    def test_release_clamped_to_held(self):
        arena = unified()
        key = arena.task_started()
        arena.execution_acquire(500, task_key=key)
        assert arena.execution_release(10_000, task_key=key) == 500
        assert arena.execution_used == 0

    def test_execution_evicts_borrowed_storage(self):
        arena = unified()
        victims = []
        # Storage borrows beyond its region.
        over = arena.storage_region + 200_000
        assert arena.storage_acquire("blk", over,
                                     evict=lambda: victims.append("blk"))
        key = arena.task_started()
        granted = arena.execution_acquire(arena.total - over + 100_000,
                                          task_key=key)
        # The whole entry was evicted to satisfy execution demand.
        assert victims == ["blk"]
        assert arena.storage_used == 0
        assert granted > 0
        assert arena.stats.evict_events == 1

    def test_execution_cannot_evict_inside_region(self):
        arena = unified()
        within = arena.storage_region - 50_000
        assert arena.storage_acquire("blk", within, evict=lambda: None)
        key = arena.task_started()
        granted = arena.execution_acquire(arena.total, task_key=key)
        # Storage under the region floor survives execution pressure.
        assert arena.storage_used == within
        assert granted == arena.total - within

    def test_cooperative_spill_of_largest_sibling(self):
        # Within a single task the fair-share clamp makes a shortage
        # impossible, so the cooperative path is exercised the way Spark
        # hits it: a lone task grabs the whole pool, then a second task
        # arrives and its 1/2N minimum share must be carved out of the
        # hoarder.
        arena = unified()
        key_a = arena.task_started()
        big = FakeConsumer(arena, "big")
        small = FakeConsumer(arena, "small")
        small.acquire(arena.total // 8, task_key=key_a)
        big.acquire(arena.total, task_key=key_a)
        assert arena.free_bytes == 0       # task A holds the whole pool
        key_b = arena.task_started()
        starved = FakeConsumer(arena, "starved")
        want = arena.max_per_task()        # pool // 2 now that N == 2
        got = starved.acquire(want, task_key=key_b)
        assert big.spill_calls == 1        # largest sibling spilled
        assert small.spill_calls == 0
        assert got == want
        assert arena.stats.spill_events == 1
        # The spilled grants were credited back to task A, not task B.
        assert arena.task_used(key_a) == small.held
        assert arena.task_used(key_b) == got

    def test_borrow_events_emitted(self):
        arena = unified()
        key = arena.task_started()
        arena.execution_acquire(arena.total - arena.storage_region + 1,
                                task_key=key)
        assert arena.stats.borrow_events == 1
        assert arena.stats.borrowed_bytes == 1


class TestStoragePool:
    def test_storage_fills_free_execution_memory(self):
        arena = unified()
        assert arena.storage_acquire("a", arena.total, evict=lambda: None)
        assert arena.storage_used == arena.total
        assert arena.stats.borrow_events == 1

    def test_lru_eviction_makes_room(self):
        arena = unified()
        order = []
        third = arena.total // 3
        for name in ("a", "b", "c"):
            assert arena.storage_acquire(
                name, third,
                evict=lambda n=name: order.append(n))
        arena.storage_touch("a")  # "b" becomes the LRU entry
        assert arena.storage_acquire("d", third, evict=lambda: None)
        assert order == ["b"]

    def test_oversized_claim_rejected(self):
        arena = unified()
        observed = []

        def observer(event, payload):
            observed.append((event, dict(payload)))

        add_memory_observer(observer)
        try:
            assert not arena.storage_acquire("huge", arena.total + 1)
        finally:
            remove_memory_observer(observer)
        assert arena.storage_used == 0
        assert arena.stats.reject_events == 1
        assert observed and observed[0][0] == "reject"

    def test_pinned_entries_cannot_be_evicted(self):
        arena = unified()
        arena.storage_register_pinned("building")
        arena.storage_grow("building", arena.total)
        # A new claim cannot displace the pinned entry.
        assert not arena.storage_acquire("blk", 1000, evict=lambda: None)
        arena.storage_adopt("building", arena.total, evict=lambda: None)
        assert arena.storage_acquire("blk", 1000, evict=lambda: None)
        assert arena.storage_used == 1000

    def test_discard_is_idempotent(self):
        arena = unified()
        assert arena.storage_acquire("blk", 1000, evict=lambda: None)
        assert arena.storage_discard("blk") == 1000
        assert arena.storage_discard("blk") == 0
        assert arena.storage_used == 0

    def test_pressure_evicts_storage_then_spills_consumers(self):
        arena = unified()
        assert arena.storage_acquire("blk", 100_000, evict=lambda: None)
        key = arena.task_started()
        consumer = FakeConsumer(arena)
        consumer.acquire(200_000, task_key=key)
        freed = arena.release_for_pressure(250_000)
        assert freed == 300_000
        assert arena.storage_used == 0
        assert consumer.spill_calls == 1


class TestSharedShufflePoolRegression:
    """Satellite: concurrent writers must share one static pool."""

    def make_writer(self, exe, shuffle_id):
        return MapSideWriter(exe, shuffle_id=shuffle_id, map_part=0,
                             num_reduce=2, partitioner=lambda k: k,
                             kind=ShuffleKind.GROUP)

    def test_concurrent_writers_spill_at_combined_threshold(self):
        exe = DecaContext(config(heap_bytes=8 * MB,
                                 shuffle_fraction=0.1)).executors[0]
        budget = exe.config.shuffle_bytes
        writer_a = self.make_writer(exe, 0)
        writer_b = self.make_writer(exe, 1)
        # A alone stays at 60% of the budget: no spill.
        while writer_a._buffer_bytes < 0.6 * budget:
            writer_a.write_all([(1, "x" * 64)])
        assert writer_a.spill_count == 0
        # B adds another ~50%: the POOL crosses the budget, so the
        # writer that crosses it spills even though its own buffer is
        # far below the old per-writer threshold.
        while writer_b.spill_count == 0 \
                and writer_b._buffer_bytes < 0.5 * budget:
            writer_b.write_all([(2, "y" * 64)])
        assert writer_b.spill_count == 1
        assert writer_b.spilled_bytes < budget
        # Releases are idempotent across flush/abort.
        writer_a.abort()
        writer_b.abort()
        writer_b.abort()
        assert exe.arena.shuffle_used == 0

    def test_single_writer_threshold_unchanged(self):
        exe = DecaContext(config(heap_bytes=8 * MB,
                                 shuffle_fraction=0.1)).executors[0]
        budget = exe.config.shuffle_bytes
        writer = self.make_writer(exe, 0)
        while writer.spill_count == 0:
            writer.write_all([(1, "x" * 64)])
        # The writer's own buffer crossed the budget, exactly as with
        # the old per-writer check.
        assert writer.spilled_bytes > budget
        writer.abort()


class TestCacheFailFastRegression:
    """Satellite: an impossible block must not evict every resident."""

    def _block(self, key, nbytes):
        return CachedBlock(
            key=key, strategy=StorageStrategy.OBJECTS,
            records=[1], blob=None, page_group=None, schema=None,
            decode=None, record_count=1, memory_bytes=nbytes,
            disk_bytes=nbytes // 2,
            footprint=RecordFootprint(objects=1, object_bytes=nbytes,
                                      data_bytes=nbytes))

    def test_oversized_block_skips_useless_evictions(self):
        exe = DecaContext(config(storage_fraction=0.25)).executors[0]
        cache = exe.cache
        resident = self._block((0, 0), cache.storage_budget // 2)
        group = exe.heap.new_group("cache:(0, 0)", None)
        exe.heap.allocate(group, 1, resident.memory_bytes)
        resident.alloc_group = group
        cache.put(resident)
        oversized = self._block((0, 1), cache.storage_budget + 1)
        group = exe.heap.new_group("cache:(0, 1)", None)
        exe.heap.allocate(group, 1, oversized.memory_bytes)
        oversized.alloc_group = group
        oversized_bytes = oversized.memory_bytes
        cache.put(oversized)
        # The oversized block went straight to disk; the resident block
        # was NOT displaced on its behalf.
        assert cache.blocks[(0, 1)].on_disk
        assert not cache.blocks[(0, 0)].on_disk
        rejects = [e for e in exe.tracer.events
                   if e.name == "memory:reject"]
        assert len(rejects) == 1
        assert rejects[0].args["nbytes"] == oversized_bytes
        assert cache.recompute_memory_bytes() == cache.memory_bytes


class TestUnifiedEndToEnd:
    def test_wordcount_results_identical_across_memory_modes(self):
        from repro.data import random_words
        from repro.apps.wordcount import run_wordcount

        data = random_words(5_000, 500)
        results = {}
        for memory_mode in ("static", "unified"):
            cfg = config(heap_bytes=3 * MB, num_executors=2,
                         memory_mode=memory_mode,
                         storage_fraction=0.05, shuffle_fraction=0.05)
            results[memory_mode] = run_wordcount(data, cfg,
                                                 num_partitions=4).result
        assert results["static"] == results["unified"]

    def test_unified_mode_emits_memory_events(self):
        from repro.bench.harness import run_memory_point

        row = run_memory_point("cache-heavy", "unified",
                               ExecutionMode.SPARK)
        summary = row.extra["memory"]
        assert summary["arena"]["borrow_events"] > 0
        assert summary["arena"]["evict_events"] > 0
        assert summary["events"].get("memory:acquire", 0) > 0

    def test_unified_deca_mode_pages_compete_in_arena(self):
        from repro.bench.harness import run_trace_point

        row = run_trace_point(ExecutionMode.DECA, words=30_000,
                              keys=2_000, memory_mode="unified")
        run = row.extra["run"]
        for exe in run.ctx.executors:
            arena = exe.arena
            assert isinstance(arena, UnifiedMemoryManager)
            # Page-group storage flowed through the arena and was fully
            # conserved: acquired == released + still-resident.
            stats = arena.stats
            assert stats.storage_acquired_bytes >= arena.storage_used
            assert (stats.storage_acquired_bytes
                    - stats.storage_released_bytes) == arena.storage_used

    def test_task_slots_drain_after_run(self):
        from repro.bench.harness import run_wc_point

        row = run_wc_point("50GB", "10M", ExecutionMode.SPARK,
                           memory_mode="unified")
        run = row.extra["run"]
        for exe in run.ctx.executors:
            arena = exe.arena
            assert arena.execution_used == 0
            assert arena.snapshot()["active_tasks"] == 0
