"""Tests for Algorithms 2–4 — global classification and its predicates."""

from repro.analysis import (
    ArrayType,
    Assign,
    CallGraph,
    ClassType,
    Const,
    DOUBLE,
    Field,
    GlobalClassifier,
    INT,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    SizeType,
    StoreField,
    SymInput,
    classify_locally,
)
from repro.analysis.ir import Call
from repro.apps.udts import (
    make_graph_model,
    make_labeled_point_model,
    make_wordcount_model,
)


class TestPaperRunningExample:
    """Fig. 1/Fig. 3: LabeledPoint refines from VST to SFST globally."""

    def test_labeled_point_refines_to_sfst(self):
        m = make_labeled_point_model(dimensions=10)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        classifier = GlobalClassifier(cg)
        assert classify_locally(m.labeled_point) is SizeType.VARIABLE
        assert classifier.classify(m.labeled_point) is SizeType.STATIC_FIXED

    def test_symbolic_dimension_also_refines(self):
        m = make_labeled_point_model(dimensions=None)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        assert GlobalClassifier(cg).classify(m.labeled_point) \
            is SizeType.STATIC_FIXED

    def test_mixed_lengths_stay_variable(self):
        m = make_labeled_point_model(dimensions=10, fixed_length=False)
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        assert GlobalClassifier(cg).classify(m.labeled_point) \
            is SizeType.VARIABLE

    def test_features_field_is_init_only(self):
        m = make_labeled_point_model()
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        assert cg.is_init_only(m.features_field)

    def test_data_array_is_fixed_length(self):
        m = make_labeled_point_model()
        cg = CallGraph.build(m.stage_entry, known_types=(m.labeled_point,))
        assert GlobalClassifier(cg).is_fixed_length(m.double_array)


class TestWordCountTypes:
    def test_tuple2_refines_to_rfst(self):
        wc = make_wordcount_model()
        cg = CallGraph.build(wc.stage_entry, known_types=(wc.tuple2,))
        result = GlobalClassifier(cg).classify(wc.tuple2)
        assert result is SizeType.RUNTIME_FIXED

    def test_char_array_is_not_fixed_length(self):
        wc = make_wordcount_model()
        cg = CallGraph.build(wc.stage_entry, known_types=(wc.tuple2,))
        assert not GlobalClassifier(cg).is_fixed_length(wc.char_array)


class TestGraphTypes:
    def test_adjacency_is_vst_in_build_stage(self):
        gm = make_graph_model()
        cg = CallGraph.build(gm.build_stage_entry,
                             known_types=(gm.adjacency,))
        assert GlobalClassifier(cg).classify(gm.adjacency) \
            is SizeType.VARIABLE

    def test_adjacency_is_rfst_in_iterate_stage(self):
        gm = make_graph_model()
        cg = CallGraph.build(gm.iterate_stage_entry,
                             known_types=(gm.adjacency,))
        classifier = GlobalClassifier(
            cg, assume_init_only=(gm.neighbors_field,))
        assert classifier.classify(gm.adjacency) is SizeType.RUNTIME_FIXED

    def test_edge_and_message_are_sfst(self):
        gm = make_graph_model()
        cg = CallGraph.build(gm.build_stage_entry, known_types=(gm.edge,))
        classifier = GlobalClassifier(cg)
        assert classifier.classify(gm.edge) is SizeType.STATIC_FIXED
        assert classifier.classify(gm.rank_message) is SizeType.STATIC_FIXED


class TestInitOnlyRules:
    def _scope(self, ctor_body, extra_methods=(), cls=None):
        entry_body = [NewObject("o", cls, ctor=ctor_body)]
        for method in extra_methods:
            entry_body.append(Call(None, method, receiver="o"))
        entry = Method(name="entry", body=tuple(entry_body) + (Return(),))
        return CallGraph.build(entry, known_types=(cls,))

    def test_final_field_is_init_only(self):
        arr = ArrayType(DOUBLE)
        f = Field("data", arr, final=True)
        cls = ClassType("C", [f])
        ctor = Method("<init>", body=(), owner=cls, is_constructor=True)
        cg = self._scope(ctor, cls=cls)
        assert cg.is_init_only(f)

    def test_element_field_is_never_init_only(self):
        arr = ArrayType(DOUBLE)
        cls = ClassType("C", [Field("data", arr, final=True)])
        ctor = Method("<init>", body=(), owner=cls, is_constructor=True)
        cg = self._scope(ctor, cls=cls)
        assert not cg.is_init_only(arr.element_field)

    def test_single_ctor_store_is_init_only(self):
        arr = ArrayType(DOUBLE)
        f = Field("data", arr, final=False)
        cls = ClassType("C", [f])
        ctor = Method(
            "<init>", params=("d",),
            body=(StoreField("this", f, Local("d")),),
            owner=cls, is_constructor=True)
        cg = self._scope(ctor, cls=cls)
        assert cg.is_init_only(f)

    def test_double_ctor_store_is_not_init_only(self):
        arr = ArrayType(DOUBLE)
        f = Field("data", arr, final=False)
        cls = ClassType("C", [f])
        ctor = Method(
            "<init>", params=("d",),
            body=(StoreField("this", f, Local("d")),
                  StoreField("this", f, Local("d"))),
            owner=cls, is_constructor=True)
        cg = self._scope(ctor, cls=cls)
        assert not cg.is_init_only(f)

    def test_store_in_plain_method_is_not_init_only(self):
        arr = ArrayType(DOUBLE)
        f = Field("data", arr, final=False)
        cls = ClassType("C", [f])
        ctor = Method("<init>", body=(), owner=cls, is_constructor=True)
        setter = Method(
            "setData", params=("d",),
            body=(StoreField("this", f, Local("d")),),
            owner=cls)
        cg = self._scope(ctor, extra_methods=(setter,), cls=cls)
        assert not cg.is_init_only(f)

    def test_store_in_loop_inside_ctor_is_not_init_only(self):
        arr = ArrayType(DOUBLE)
        f = Field("data", arr, final=False)
        cls = ClassType("C", [f])
        ctor = Method(
            "<init>", params=("d",),
            body=(Loop((StoreField("this", f, Local("d")),)),),
            owner=cls, is_constructor=True)
        cg = self._scope(ctor, cls=cls)
        assert not cg.is_init_only(f)

    def test_delegating_ctor_sequence_counts_both_stores(self):
        arr = ArrayType(DOUBLE)
        f = Field("data", arr, final=False)
        cls = ClassType("C", [f])
        base_ctor = Method(
            "<init>", params=("d",),
            body=(StoreField("this", f, Local("d")),),
            owner=cls, is_constructor=True)
        delegating = Method(
            "<init>2", params=("d",),
            body=(
                Call(None, base_ctor, args=(Local("d"),), receiver="this"),
                StoreField("this", f, Local("d")),
            ),
            owner=cls, is_constructor=True)
        entry = Method(
            name="entry",
            body=(NewObject("o", cls, ctor=delegating), Return()))
        cg = CallGraph.build(entry, known_types=(cls,))
        assert cg.max_stores_per_constructor_sequence(f) == 2
        assert not cg.is_init_only(f)


class TestRefinementLemmas:
    def test_rfst_refinement_requires_init_only(self):
        """Lemma 2: a VST with a non-init-only RFST field stays VST."""
        arr = ArrayType(DOUBLE)
        f = Field("buf", arr, final=False)
        cls = ClassType("Growable", [f])
        ctor = Method(
            "<init>", params=("b",),
            body=(StoreField("this", f, Local("b")),),
            owner=cls, is_constructor=True)
        grow = Method(
            "grow", params=(),
            body=(
                NewArray("bigger", arr, SymInput("newsize")),
                StoreField("this", f, Local("bigger")),
            ),
            owner=cls)
        entry = Method(
            name="entry",
            body=(
                NewArray("b", arr, SymInput("n")),
                NewObject("o", cls, ctor=ctor, args=(Local("b"),)),
                Call(None, grow, receiver="o"),
                Return(),
            ))
        cg = CallGraph.build(entry, known_types=(cls,))
        assert GlobalClassifier(cg).classify(cls) is SizeType.VARIABLE

    def test_sfst_refinement_requires_all_arrays_fixed(self):
        """Lemma 1: one variable-length array blocks SFST."""
        arr_fixed = ArrayType(DOUBLE)
        arr_var = ArrayType(INT)
        cls = ClassType("Two", [
            Field("a", arr_fixed, final=True),
            Field("b", arr_var, final=True),
        ])
        ctor = Method(
            "<init>", params=("a", "b"),
            body=(StoreField("this", cls.field("a"), Local("a")),
                  StoreField("this", cls.field("b"), Local("b"))),
            owner=cls, is_constructor=True)
        entry = Method(
            name="entry",
            body=(
                Assign("n", SymInput("n")),
                Loop((
                    NewArray("x", arr_fixed, Const(16)),
                    Assign("m", SymInput("m")),
                    NewArray("y", arr_var, Local("m")),
                    NewObject("o", cls, ctor=ctor,
                              args=(Local("x"), Local("y"))),
                )),
                Return(),
            ))
        cg = CallGraph.build(entry, known_types=(cls,))
        classifier = GlobalClassifier(cg)
        assert classifier.is_fixed_length(arr_fixed)
        assert not classifier.is_fixed_length(arr_var)
        # b's array varies across instances but is final -> RFST overall.
        assert classifier.classify(cls) is SizeType.RUNTIME_FIXED

    def test_recursively_defined_never_refines(self):
        node = ClassType("Node", [Field("v", INT)])
        node.add_field(Field("next", node))
        entry = Method(name="entry", body=(Return(),))
        cg = CallGraph.build(entry, known_types=(node,))
        assert GlobalClassifier(cg).classify(node) \
            is SizeType.RECURSIVELY_DEFINED

    def test_assumed_fixed_length_hint(self):
        arr = ArrayType(DOUBLE)
        entry = Method(name="entry", body=(Return(),))
        cg = CallGraph.build(entry)
        assert not GlobalClassifier(cg).is_fixed_length(arr)
        hinted = GlobalClassifier(cg, assume_fixed_length=(arr,))
        assert hinted.is_fixed_length(arr)
        assert hinted.classify(arr) is SizeType.STATIC_FIXED
