"""Tests for repro.jvm.sizing — JVM object-layout arithmetic."""

import pytest

from repro.errors import TypeGraphError
from repro.jvm import sizing


class TestAlign:
    def test_already_aligned(self):
        assert sizing.align(16) == 16

    def test_rounds_up(self):
        assert sizing.align(17) == 24
        assert sizing.align(1) == 8

    def test_zero(self):
        assert sizing.align(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(TypeGraphError):
            sizing.align(-8)


class TestPrimitiveBytes:
    @pytest.mark.parametrize("name,size", [
        ("boolean", 1), ("byte", 1), ("char", 2), ("short", 2),
        ("int", 4), ("float", 4), ("long", 8), ("double", 8),
    ])
    def test_known_primitives(self, name, size):
        assert sizing.primitive_bytes(name) == size

    def test_unknown_primitive(self):
        with pytest.raises(TypeGraphError):
            sizing.primitive_bytes("string")


class TestObjectBytes:
    def test_empty_object_is_header_aligned(self):
        # 12-byte header padded to 16.
        assert sizing.object_bytes(0, 0) == 16

    def test_labeled_point_shape(self):
        # LabeledPoint: one double + one reference = 12 + 8 + 4 = 24.
        assert sizing.object_bytes(1, 8) == 24

    def test_dense_vector_shape(self):
        # DenseVector: one reference + three ints = 12 + 4 + 12 = 28 -> 32.
        assert sizing.object_bytes(1, 12) == 32

    def test_rejects_negative(self):
        with pytest.raises(TypeGraphError):
            sizing.object_bytes(-1, 0)


class TestArrayBytes:
    def test_double_array(self):
        # 16-byte header + 10 doubles = 96.
        assert sizing.array_bytes(8, 10) == 96

    def test_empty_array_is_just_header(self):
        assert sizing.array_bytes(8, 0) == 16

    def test_reference_array(self):
        assert sizing.array_bytes(sizing.REFERENCE_BYTES, 3) == \
            sizing.align(16 + 12)

    def test_rejects_negative_length(self):
        with pytest.raises(TypeGraphError):
            sizing.array_bytes(8, -1)

    def test_rejects_zero_element(self):
        with pytest.raises(TypeGraphError):
            sizing.array_bytes(0, 4)


class TestBoxedBytes:
    def test_boxed_double_costs_header(self):
        # java.lang.Double: 12-byte header + 8 bytes -> 24; the raw double
        # is 8 — a 3x bloat, which is what Deca's PR speedup exploits.
        assert sizing.boxed_bytes("double") == 24
        assert sizing.boxed_bytes("double") > sizing.primitive_bytes("double")

    def test_boxed_int(self):
        assert sizing.boxed_bytes("int") == 16
