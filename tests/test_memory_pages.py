"""Tests for repro.memory.page and repro.memory.manager."""

import pytest

from repro.config import DecaConfig, MB
from repro.errors import PageError, PageOverflowError, PageReclaimedError
from repro.jvm import SimHeap
from repro.memory import DecaMemoryManager, PageGroup, PagePointer
from repro.memory.layout import PrimitiveSlot, RecordSchema
from repro.analysis import DOUBLE, INT
from repro.simtime import SimClock


def point_schema():
    return RecordSchema("Point", [("x", PrimitiveSlot(DOUBLE)),
                                  ("tag", PrimitiveSlot(INT))])


class TestPageGroupAppend:
    def test_records_fill_pages_sequentially(self):
        group = PageGroup("g", page_bytes=64)
        schema = point_schema()  # 12 bytes per record
        pointers = [group.append_record(schema, (float(i), i))
                    for i in range(10)]
        # 5 records of 12 B per 64 B page.
        assert group.page_count == 2
        assert pointers[0].page_index == 0
        assert pointers[5].page_index == 1
        assert group.used_bytes == 120

    def test_end_offset_tracks_last_page(self):
        group = PageGroup("g", page_bytes=64)
        schema = point_schema()
        group.append_record(schema, (1.0, 1))
        assert group.end_offset == 12

    def test_oversized_record_gets_dedicated_page(self):
        group = PageGroup("g", page_bytes=16)
        pointer = group.append_bytes(b"x" * 100)
        assert pointer.length == 100
        assert group.pages[pointer.page_index].capacity == 100

    def test_read_resolves_pointer(self):
        group = PageGroup("g", page_bytes=64)
        schema = point_schema()
        pointer = group.append_record(schema, (2.5, 7))
        buf, off = group.read(pointer)
        assert schema.unpack_from(buf, off)[0] == (2.5, 7)

    def test_read_past_used_raises(self):
        group = PageGroup("g", page_bytes=64)
        group.append_bytes(b"abc")
        with pytest.raises(PageOverflowError):
            group.read(PagePointer(0, 0, 999))

    def test_scan_visits_every_record_in_order(self):
        group = PageGroup("g", page_bytes=64)
        schema = point_schema()
        values = [(float(i), i) for i in range(20)]
        for value in values:
            group.append_record(schema, value)
        assert list(group.records(schema)) == values

    def test_zero_page_size_rejected(self):
        with pytest.raises(PageError):
            PageGroup("g", page_bytes=0)


class TestRefCounting:
    def test_group_reclaims_at_zero(self):
        group = PageGroup("g", page_bytes=64)
        info_a = group.new_page_info()
        info_b = info_a.share()
        info_a.close()
        assert not group.reclaimed
        info_b.close()
        assert group.reclaimed

    def test_double_close_raises(self):
        group = PageGroup("g", page_bytes=64)
        info = group.new_page_info()
        info.close()
        with pytest.raises(PageReclaimedError):
            info.close()

    def test_access_after_reclaim_raises(self):
        group = PageGroup("g", page_bytes=64)
        group.new_page_info().close()
        with pytest.raises(PageReclaimedError):
            group.append_bytes(b"x")

    def test_dependency_closes_with_owner(self):
        """Fig. 7(a): a secondary's page-info holds the primary's alive."""
        primary = PageGroup("primary", page_bytes=64)
        secondary = PageGroup("secondary", page_bytes=64)
        p_info = primary.new_page_info()
        s_info = secondary.new_page_info()
        s_info.add_dependency(p_info)
        assert not primary.reclaimed
        s_info.close()
        assert primary.reclaimed
        assert secondary.reclaimed


class TestHeapIntegration:
    def test_pages_are_single_heap_objects(self):
        cfg = DecaConfig(heap_bytes=64 * MB, page_bytes=MB)
        heap = SimHeap(cfg, SimClock())
        group = PageGroup("g", page_bytes=MB, heap=heap)
        for _ in range(5):
            group.reserve(MB)  # five full pages
        # Five page objects on the heap, regardless of record count.
        assert heap.live_objects == 5

    def test_reclaim_frees_heap_space(self):
        cfg = DecaConfig(heap_bytes=64 * MB, page_bytes=MB)
        heap = SimHeap(cfg, SimClock())
        group = PageGroup("g", page_bytes=MB, heap=heap)
        group.reserve(MB)
        group.reclaim()
        heap.full_gc()
        assert heap.live_objects == 0
        assert heap.old_used_bytes == 0


class TestMemoryManager:
    def make_manager(self):
        cfg = DecaConfig(heap_bytes=64 * MB, page_bytes=MB)
        return DecaMemoryManager(cfg, SimHeap(cfg, SimClock()))

    def test_duplicate_names_rejected(self):
        manager = self.make_manager()
        manager.new_page_group("block-0")
        with pytest.raises(PageError):
            manager.new_page_group("block-0")

    def test_stats_track_groups(self):
        manager = self.make_manager()
        a = manager.new_page_group("a")
        a.append_bytes(b"x" * 100)
        assert manager.group_count == 1
        assert manager.used_bytes == 100
        assert manager.allocated_bytes > 0

    def test_reclaimed_groups_are_forgotten(self):
        manager = self.make_manager()
        group = manager.new_page_group("a")
        group.reclaim()
        assert manager.group_count == 0
        manager.new_page_group("a")  # name is reusable

    def test_lru_eviction_order(self):
        manager = self.make_manager()
        a = manager.new_page_group("a", evictable=True)
        b = manager.new_page_group("b", evictable=True)
        manager.touch(a)  # a becomes most recently used
        order = [g.name for g in manager.eviction_order()]
        assert order == ["b", "a"]

    def test_evict_frees_lru_first(self):
        manager = self.make_manager()
        a = manager.new_page_group("a", evictable=True)
        b = manager.new_page_group("b", evictable=True)
        a.reserve(MB)
        b.reserve(MB)
        manager.touch(a)
        evicted = []
        freed = manager.evict(1, on_evict=lambda g: evicted.append(g.name))
        assert evicted == ["b"]
        assert freed > 0
        assert b.reclaimed and not a.reclaimed

    def test_shuffle_groups_are_not_evictable(self):
        manager = self.make_manager()
        manager.new_page_group("shuffle", evictable=False)
        assert list(manager.eviction_order()) == []


class TestColumnRuns:
    def test_append_run_dedicated_page(self):
        group = PageGroup("runs", page_bytes=64)
        data = bytes(range(200))  # larger than the group's page size
        ptr = group.append_run(data)
        assert ptr.offset == 0
        assert ptr.length == len(data)
        buffer, offset = group.read(ptr)
        assert bytes(buffer[offset:offset + ptr.length]) == data

    def test_append_run_is_contiguous_per_run(self):
        group = PageGroup("runs", page_bytes=64)
        first = group.append_run(b"a" * 100)
        second = group.append_run(b"b" * 50)
        assert first.page_index != second.page_index
        assert group.used_bytes == 150

    def test_empty_run_still_allocates(self):
        group = PageGroup("runs", page_bytes=64)
        ptr = group.append_run(b"")
        assert ptr.length == 0

    def test_swap_chunks_cover_used_bytes(self):
        group = PageGroup("runs", page_bytes=64)
        group.append_run(b"x" * 100)
        group.append_run(b"y" * 30)
        chunks = group.swap_chunks()
        assert sum(len(c) for c in chunks) == group.used_bytes
        assert b"".join(bytes(c) for c in chunks) == b"x" * 100 + b"y" * 30
        for chunk in chunks:
            chunk.release()

    def test_swap_chunks_rejects_reclaimed_group(self):
        group = PageGroup("runs", page_bytes=64)
        group.append_run(b"x" * 10)
        group.reclaim()
        with pytest.raises(PageReclaimedError):
            group.swap_chunks()
