"""The concurrency race lint: DECA401-410 static rules.

Same three contracts as the borrow suite one layer down: the engine's
own concurrency surface is clean (zero findings), every seeded-bug
fixture fires exactly its rule, and the ``race`` pseudo-app integrates
with the lint driver/report pipeline deterministically.
"""

from pathlib import Path

from repro.lint import (
    PSEUDO_APPS,
    RACE_APP,
    RACE_MODULES,
    RULES_BY_ID,
    Severity,
    analyze_race_source,
    lint_race,
    run_lint,
    run_race_rules,
)
from repro.lint.output import to_sarif

FIXTURE_PATH = (Path(__file__).resolve().parent.parent / "src" / "repro"
                / "lint" / "fixtures" / "race_bugs.py")
RACE_RULES = tuple(f"DECA4{i:02d}" for i in range(1, 11))


def fixture_findings():
    return analyze_race_source(FIXTURE_PATH.read_text(),
                               "repro.lint.fixtures.race_bugs",
                               "lint/fixtures/race_bugs.py",
                               target="fixtures")


class TestRuleCatalogue:
    def test_all_race_rules_registered(self):
        for rule_id in RACE_RULES:
            assert rule_id in RULES_BY_ID

    def test_severities(self):
        for rule_id in RACE_RULES:
            expected = (Severity.WARNING if rule_id == "DECA409"
                        else Severity.ERROR)
            assert RULES_BY_ID[rule_id].severity is expected

    def test_paper_anchors_present(self):
        for rule_id in RACE_RULES:
            assert RULES_BY_ID[rule_id].paper.startswith("§")


class TestEngineIsClean:
    def test_zero_findings_on_concurrency_surface(self):
        findings, summary = run_race_rules()
        assert findings == ()
        assert summary["modules"] == len(RACE_MODULES)
        assert summary["functions"] > 0
        assert summary["race_findings"] == 0

    def test_every_module_parses_independently(self):
        root = Path(__file__).resolve().parent.parent / "src" / "repro"
        for module, relpath in RACE_MODULES:
            findings = analyze_race_source((root / relpath).read_text(),
                                           module, relpath)
            assert findings == [], (module, findings)

    def test_deterministic_across_runs(self):
        first, summary1 = run_race_rules()
        second, summary2 = run_race_rules()
        assert first == second
        assert summary1 == summary2


class TestFixturesFireExactly:
    def test_one_finding_per_rule(self):
        rules = sorted(f.rule_id for f in fixture_findings())
        assert rules == sorted(RACE_RULES)

    def test_findings_point_into_the_fixture_file(self):
        for finding in fixture_findings():
            assert finding.location.startswith(
                "src/repro/lint/fixtures/race_bugs.py:")
            assert finding.target == "fixtures"

    def test_every_finding_has_a_why_chain(self):
        for finding in fixture_findings():
            assert finding.why, finding.rule_id

    def test_subjects_name_the_buggy_functions(self):
        by_rule = {f.rule_id: f for f in fixture_findings()}
        assert by_rule["DECA401"].subject.endswith("unlink_races_attach")
        assert by_rule["DECA402"].subject.endswith(
            "RacyRegistry.release_unlocked")
        assert by_rule["DECA403"].subject.endswith("demote_after_free")
        assert by_rule["DECA404"].subject.endswith("stale_pool_write")
        assert by_rule["DECA405"].subject.endswith("consume_before_join")
        assert by_rule["DECA406"].subject.endswith("sweep_live_worker")
        assert by_rule["DECA407"].subject.endswith(
            "respill_inflight_victim")
        assert by_rule["DECA408"].subject.endswith("write_through_attach")
        assert by_rule["DECA409"].subject.endswith("relay_unanchored")
        assert by_rule["DECA410"].subject.endswith("double_grant")

    def test_toctou_why_chain_carries_pointsto_ownership(self):
        by_rule = {f.rule_id: f for f in fixture_findings()}
        why = " ".join(by_rule["DECA401"].why)
        assert "concurrent" in why


class TestRacePseudoApp:
    def test_race_only_request(self):
        report = run_lint([RACE_APP], shadow=False)
        assert [r.app for r in report.apps] == [RACE_APP]
        assert report.apps[0].findings == ()
        assert not report.has_errors

    def test_race_rides_along_with_all(self):
        report = run_lint(["all"], shadow=False)
        apps = [r.app for r in report.apps]
        # The pseudo-apps ride at the end, engine then race.
        assert tuple(apps[-len(PSEUDO_APPS):]) == PSEUDO_APPS
        assert apps[-1] == RACE_APP

    def test_lint_race_summary_shape(self):
        result = lint_race()
        assert result.summary["shadow"] is False
        assert result.summary["modules"] == len(RACE_MODULES)
        assert "DECA401" in result.title

    def test_sarif_carries_race_rules(self):
        report = run_lint([RACE_APP], shadow=False)
        sarif = to_sarif(report)
        rule_ids = {rule["id"]
                    for rule in sarif["runs"][0]["tool"]["driver"]["rules"]}
        for rule_id in RACE_RULES:
            assert rule_id in rule_ids


class TestPathSensitivity:
    """Targeted micro-sources pinning the protocol model's precision."""

    def check(self, source: str):
        return analyze_race_source(source, "scratch", "scratch.py")

    def test_create_after_unlink_closes_the_window(self):
        findings = self.check(
            "def recycle(registry, name):\n"
            "    unlink_segment(name)\n"
            "    seg = SharedPageSegment(name, 4096, create=True)\n"
            "    return seg\n")
        assert findings == []

    def test_attach_after_unlink_is_toctou(self):
        findings = self.check(
            "def bad(name):\n"
            "    unlink_segment(name)\n"
            "    seg = SharedPageSegment(name, 4096)\n"
            "    return seg\n")
        assert [f.rule_id for f in findings] == ["DECA401"]

    def test_refdec_under_lock_is_clean(self):
        findings = self.check(
            "class Reg:\n"
            "    def release(self, name):\n"
            "        with self._lock:\n"
            "            self._refs[name] = self._refs[name] - 1\n")
        assert findings == []

    def test_refdec_outside_lock_is_flagged(self):
        # The rule targets *mixed* discipline: the class locks one
        # mutation path but not the other (a lock-free class is a
        # different design, not a race).
        findings = self.check(
            "class Reg:\n"
            "    def register(self, name):\n"
            "        with self._lock:\n"
            "            self._refs[name] = 1\n"
            "    def release(self, name):\n"
            "        self._refs[name] = self._refs[name] - 1\n")
        assert [f.rule_id for f in findings] == ["DECA402"]

    def test_join_before_consume_is_clean(self):
        findings = self.check(
            "def gather(queue, worker):\n"
            "    out = queue.get()\n"
            "    records = pickle.loads(out.result_blob)\n"
            "    return records\n")
        assert findings == []

    def test_guarded_sweep_is_clean(self):
        findings = self.check(
            "def reap(proc, prefix):\n"
            "    if proc.is_alive():\n"
            "        return\n"
            "    sweep_segments(prefix)\n")
        assert findings == []

    def test_anchored_relay_is_clean(self):
        findings = self.check(
            "def relay(tracer, event, stage_start):\n"
            "    tracer.emit(event.replace(ts_ms=stage_start + "
            "event.ts_ms))\n")
        assert findings == []
