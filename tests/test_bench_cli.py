"""Tests for the ``python -m repro.bench`` command line."""

import pytest

from repro.bench.__main__ import main


class TestCli:
    def test_wc_point_runs(self, capsys):
        assert main(["wc", "--size", "50GB", "--keys", "10M",
                     "--modes", "deca"]) == 0
        out = capsys.readouterr().out
        assert "repro.bench wc" in out
        assert "deca" in out
        assert "spark" not in out.replace("spark-ser", "")

    def test_lr_point_runs(self, capsys):
        assert main(["lr", "--label", "40GB", "--iterations", "2",
                     "--modes", "spark", "deca"]) == 0
        out = capsys.readouterr().out
        assert out.count("40GB") == 2

    def test_unknown_mode_exits(self):
        with pytest.raises(SystemExit):
            main(["wc", "--modes", "flink"])

    def test_unknown_label_exits(self):
        with pytest.raises(SystemExit):
            main(["lr", "--label", "999GB"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
