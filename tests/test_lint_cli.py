"""End-to-end tests for ``python -m repro.bench lint``."""

import json

import pytest

from repro.bench.__main__ import main


class TestLintCli:
    def test_json_format_is_parseable_and_clean(self, capsys):
        assert main(["lint", "--apps", "lr", "--no-shadow",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "deca-lint"
        assert [app["app"] for app in payload["apps"]] == ["lr"]
        assert payload["totals"]["error"] == 0

    def test_text_format_prints_a_summary(self, capsys):
        assert main(["lint", "--apps", "lr", "--no-shadow"]) == 0
        out = capsys.readouterr().out
        assert "deca-lint" in out
        assert "lr" in out

    def test_sarif_format_is_valid_sarif(self, capsys):
        assert main(["lint", "--apps", "lr", "--no-shadow",
                     "--format", "sarif"]) == 0
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        assert sarif["runs"][0]["tool"]["driver"]["name"] == "deca-lint"

    def test_written_baseline_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", "--apps", "wordcount", "--write-baseline",
                     str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", "--apps", "wordcount", "--format", "json",
                     "--baseline", str(baseline)]) == 0

    def test_findings_missing_from_baseline_fail(self, tmp_path, capsys):
        baseline = tmp_path / "empty.json"
        baseline.write_text(json.dumps({"apps": []}))
        # The pr shadow run produces a DECA006 note (the edge shuffle has
        # no declared UDT), which an empty baseline does not contain.
        assert main(["lint", "--apps", "pr", "--format", "json",
                     "--baseline", str(baseline)]) == 1
        captured = capsys.readouterr()
        assert "not in baseline" in captured.err
        assert "DECA006" in captured.err

    def test_rules_filter_keeps_only_matching_family(self, capsys):
        # pr emits a DECA006 note; the closure-family filter drops it.
        assert main(["lint", "--apps", "pr", "--format", "json",
                     "--rules", "DECA2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        findings = [f for app in payload["apps"]
                    for f in app["findings"]]
        assert all(f["rule"].startswith("DECA2") for f in findings)
        assert payload["totals"]["note"] == 0
        # The closure summary still describes the unfiltered run.
        closures = payload["apps"][0]["summary"]["closures"]
        assert closures["udfs_analyzed"] == closures["udf_sites"] > 0

    def test_rules_filter_passes_unfiltered_without_prefixes(self, capsys):
        assert main(["lint", "--apps", "pr", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["note"] >= 1    # the DECA006 note

    def test_unknown_app_name_exits_with_known_names(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--apps", "nope"])
        assert "nope" in str(excinfo.value)
        assert "lr" in str(excinfo.value)
