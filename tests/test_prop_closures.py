"""Property-based tests for the closure analyzer.

Two invariants over generated UDFs:

* **no false positives** — randomly generated *pure* closures (arithmetic
  over the argument, captured immutable constants, pure builtins) are
  never flagged and always classify ``deterministic`` / ``pure``;
* **no false negatives** — seeding a generated closure with a known
  impurity (a ``random`` call, a global store, a captured-list append)
  always produces the matching rule id.
"""

import random as random_module

from hypothesis import given, settings, strategies as st

from repro.analysis.closures import analyze_closure, iter_hazard_rules

_PURE_CALLS = ("abs", "min", "max", "len", "sum", "round")


@st.composite
def pure_expr(draw, depth=0):
    """A pure arithmetic expression over ``x`` and captured constants."""
    if depth >= 3:
        return draw(st.sampled_from(
            ["x", "x", "c0", "c1", str(draw(st.integers(1, 9)))]))
    kind = draw(st.sampled_from(
        ["leaf", "leaf", "binop", "call", "tuple_index"]))
    if kind == "leaf":
        return draw(pure_expr(depth=3))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*"]))
        left = draw(pure_expr(depth=depth + 1))
        right = draw(pure_expr(depth=depth + 1))
        return f"({left} {op} {right})"
    if kind == "call":
        fn = draw(st.sampled_from(_PURE_CALLS))
        inner = draw(pure_expr(depth=depth + 1))
        if fn in ("len", "sum", "min", "max"):
            return f"{fn}((1, 2, {inner}))"
        return f"{fn}({inner})"
    index = draw(st.integers(0, 2))
    return f"t0[{index}]"


def build_udf(body_lines, globals_extra=None):
    """Compile a UDF from source; exec'd code exercises the no-source
    pragma fallback too."""
    namespace = {
        "c0": 3, "c1": 2.5, "t0": (1, 2, 3),
        "__builtins__": __builtins__,
    }
    namespace.update(globals_extra or {})
    source = "def udf(x):\n" + "".join(
        f"    {line}\n" for line in body_lines)
    exec(source, namespace)
    return namespace["udf"]


class TestGeneratedPureClosuresNeverFlagged:
    @given(pure_expr())
    @settings(max_examples=60, deadline=None)
    def test_pure_expression_closure_is_clean(self, expr):
        udf = build_udf([f"return {expr}"])
        report = analyze_closure(udf)
        assert report.active_hazards == (), (
            f"false positive on pure UDF: return {expr} -> "
            f"{list(iter_hazard_rules(report))}")
        assert report.determinism == "deterministic"
        assert report.purity == "pure"
        assert report.escape == "none"

    @given(pure_expr(), pure_expr())
    @settings(max_examples=30, deadline=None)
    def test_pure_multi_statement_closure_is_clean(self, a, b):
        udf = build_udf([f"y = {a}", f"z = y + {b}", "return (y, z)"])
        report = analyze_closure(udf)
        assert report.active_hazards == ()
        assert report.determinism == "deterministic"


class TestSeededImpuritiesAlwaysFlagged:
    @given(pure_expr())
    @settings(max_examples=30, deadline=None)
    def test_random_call_always_flags_deca202(self, expr):
        udf = build_udf([f"return {expr} + random.random()"],
                        {"random": random_module})
        rules = set(iter_hazard_rules(analyze_closure(udf)))
        assert "DECA202" in rules
        assert analyze_closure(udf).determinism == "nondeterministic"

    @given(pure_expr())
    @settings(max_examples=30, deadline=None)
    def test_global_store_always_flags_deca204(self, expr):
        udf = build_udf(["global sink", f"sink = {expr}",
                         "return sink"])
        rules = set(iter_hazard_rules(analyze_closure(udf)))
        assert "DECA204" in rules
        assert analyze_closure(udf).purity == "impure"

    @given(pure_expr())
    @settings(max_examples=30, deadline=None)
    def test_captured_list_append_always_flags_deca204(self, expr):
        udf = build_udf([f"acc.append({expr})", "return x"],
                        {"acc": []})
        rules = set(iter_hazard_rules(analyze_closure(udf)))
        assert "DECA204" in rules
        # The captured list itself is a mutable global capture.
        assert "DECA206" in rules

    @given(pure_expr())
    @settings(max_examples=20, deadline=None)
    def test_argument_escape_into_captured_list_flags_deca205(self, expr):
        udf = build_udf(["acc.append(x)", f"return {expr}"],
                        {"acc": []})
        rules = set(iter_hazard_rules(analyze_closure(udf)))
        assert "DECA205" in rules
