"""Tests for repro.config."""

import pytest

from repro.config import (
    DecaConfig,
    ExecutionMode,
    GcAlgorithm,
    GcCostModel,
    MB,
    gc_cost_model,
)
from repro.errors import ConfigError


class TestDecaConfigValidation:
    def test_default_config_is_valid(self):
        cfg = DecaConfig()
        assert cfg.heap_bytes > 0
        assert cfg.mode is ExecutionMode.SPARK

    def test_rejects_nonpositive_heap(self):
        with pytest.raises(ConfigError):
            DecaConfig(heap_bytes=0)

    def test_rejects_bad_young_fraction(self):
        with pytest.raises(ConfigError):
            DecaConfig(young_fraction=0.0)
        with pytest.raises(ConfigError):
            DecaConfig(young_fraction=1.0)

    def test_rejects_zero_executors(self):
        with pytest.raises(ConfigError):
            DecaConfig(num_executors=0)

    def test_rejects_page_larger_than_heap(self):
        with pytest.raises(ConfigError):
            DecaConfig(heap_bytes=MB, page_bytes=2 * MB)

    def test_rejects_overcommitted_fractions(self):
        with pytest.raises(ConfigError):
            DecaConfig(storage_fraction=0.8, shuffle_fraction=0.3)

    def test_rejects_negative_tenuring(self):
        with pytest.raises(ConfigError):
            DecaConfig(tenuring_threshold=-1)

    def test_rejects_bad_survival_rate(self):
        with pytest.raises(ConfigError):
            DecaConfig(temp_survival_rate=1.5)


class TestDecaConfigViews:
    def test_generations_partition_heap(self):
        cfg = DecaConfig(heap_bytes=120 * MB, young_fraction=0.25)
        assert cfg.young_bytes + cfg.old_bytes == cfg.heap_bytes
        assert cfg.young_bytes == 30 * MB

    def test_storage_and_shuffle_budgets(self):
        cfg = DecaConfig(heap_bytes=100 * MB, storage_fraction=0.6,
                         shuffle_fraction=0.4)
        assert cfg.storage_bytes == 60 * MB
        assert cfg.shuffle_bytes == 40 * MB

    def test_with_options_returns_validated_copy(self):
        cfg = DecaConfig()
        tuned = cfg.with_options(storage_fraction=0.4, shuffle_fraction=0.6)
        assert tuned.storage_fraction == 0.4
        assert cfg.storage_fraction == 0.6  # original untouched
        with pytest.raises(ConfigError):
            cfg.with_options(heap_bytes=-1)

    def test_gc_costs_follow_algorithm(self):
        cms = DecaConfig(gc_algorithm=GcAlgorithm.CMS)
        assert cms.gc_costs.pause_fraction < 1.0
        ps = DecaConfig(gc_algorithm=GcAlgorithm.PARALLEL_SCAVENGE)
        assert ps.gc_costs.pause_fraction == 1.0


class TestGcCostModels:
    def test_each_algorithm_has_a_model(self):
        for algorithm in GcAlgorithm:
            assert isinstance(gc_cost_model(algorithm), GcCostModel)

    def test_concurrent_collectors_have_smaller_pauses(self):
        ps = gc_cost_model(GcAlgorithm.PARALLEL_SCAVENGE)
        cms = gc_cost_model(GcAlgorithm.CMS)
        g1 = gc_cost_model(GcAlgorithm.G1)
        assert ps.pause_fraction > cms.pause_fraction > g1.pause_fraction

    def test_concurrent_collectors_pay_a_tax(self):
        assert gc_cost_model(GcAlgorithm.CMS).concurrent_tax > 0
        assert gc_cost_model(GcAlgorithm.G1).concurrent_tax > 0
        assert gc_cost_model(
            GcAlgorithm.PARALLEL_SCAVENGE).concurrent_tax == 0

    def test_concurrent_collectors_pay_costlier_minors(self):
        """Card tables / remembered sets make CMS/G1 young GCs dearer."""
        ps = gc_cost_model(GcAlgorithm.PARALLEL_SCAVENGE)
        cms = gc_cost_model(GcAlgorithm.CMS)
        g1 = gc_cost_model(GcAlgorithm.G1)
        assert ps.minor_multiplier == 1.0
        assert g1.minor_multiplier > cms.minor_multiplier > 1.0
