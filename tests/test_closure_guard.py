"""ClosureGuard regression tests: speculation and lineage re-execution
against the fault-injection machinery, in all three guard modes.

The contract (docs/closure_analysis.md): with a nondeterministic UDF in
the affected stage, ``warn`` refuses speculation and logs a
``closure:unsafe_retry`` trace event on lineage re-execution but lets
recovery proceed; ``strict`` raises
:class:`repro.errors.NondeterministicUdfError`; ``off`` performs no
analysis at all.
"""

import random

import pytest

from repro.config import (
    DecaConfig,
    ExecutionMode,
    FaultConfig,
    MB,
    ScriptedFault,
)
from repro.errors import NondeterministicUdfError
from repro.lint import run_closure_rules
from repro.spark import DecaContext


def make_ctx(closure_guard="off", faults=None, **overrides):
    defaults = dict(mode=ExecutionMode.SPARK, heap_bytes=32 * MB,
                    num_executors=2, tasks_per_executor=2,
                    closure_guard=closure_guard)
    if faults is not None:
        defaults["faults"] = faults
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


def nondet_counts(ctx, records=400, keys=20, partitions=4):
    """A wordcount whose map stage carries a nondeterministic UDF."""
    data = [(i % keys, 1) for i in range(records)]
    pairs = ctx.parallelize(data, partitions, name="cg.input") \
               .map(lambda kv: (kv[0], kv[1] + int(random.random() * 0.0)),
                    name="cg.jitter")
    return pairs.reduce_by_key(lambda a, b: a + b, partitions,
                               name="cg.counts")


def clean_counts(ctx, records=400, keys=20, partitions=4):
    data = [(i % keys, 1) for i in range(records)]
    return ctx.parallelize(data, partitions, name="cg.input") \
              .map(lambda kv: (kv[0], kv[1]), name="cg.ident") \
              .reduce_by_key(lambda a, b: a + b, partitions,
                             name="cg.counts")


def closure_events(ctx, name):
    return [e for e in ctx.tracer.by_category("closure")
            if e.name == name]


CORRUPT = FaultConfig(scripted=(
    ScriptedFault("fetch-corrupt", shuffle_id=-1, map_part=0,
                  reduce_part=0),))


class TestLineageReexecution:
    def test_warn_mode_logs_unsafe_retry_and_recovers(self):
        ctx = make_ctx("warn", faults=CORRUPT)
        result = dict(nondet_counts(ctx).collect())
        assert sum(result.values()) == 400
        events = closure_events(ctx, "closure:unsafe_retry")
        assert events, "warn mode must log the unsafe re-execution"
        assert any(e.args["action"] == "lineage-reexecution"
                   for e in events)
        assert all(e.args["mode"] == "warn" for e in events)
        # Recovery still happened.
        assert ctx.finish().recovery.recomputed_partitions >= 1

    def test_strict_mode_raises_on_reexecution(self):
        ctx = make_ctx("strict", faults=CORRUPT)
        with pytest.raises(NondeterministicUdfError) as info:
            nondet_counts(ctx).collect()
        assert info.value.action == "lineage re-execution"

    def test_deterministic_udf_reexecutes_in_strict_mode(self):
        ctx = make_ctx("strict", faults=CORRUPT)
        result = dict(clean_counts(ctx).collect())
        assert sum(result.values()) == 400
        assert ctx.finish().recovery.recomputed_partitions >= 1
        assert not closure_events(ctx, "closure:unsafe_retry")

    def test_off_mode_recovers_without_any_analysis(self):
        ctx = make_ctx("off", faults=CORRUPT)
        result = dict(nondet_counts(ctx).collect())
        assert sum(result.values()) == 400
        assert not ctx.tracer.by_category("closure")
        assert ctx.finish().recovery.recomputed_partitions >= 1


SPECULATE = FaultConfig(speculation=True, speculation_multiplier=1.2)


def skewed_job(ctx):
    """One hot key makes a reduce partition the straggler."""
    data = [("hot" if i % 10 else f"cold{i}", 1) for i in range(3000)]
    return ctx.parallelize(data, 4, name="sp.pairs") \
              .group_by_key(4, name="sp.groups") \
              .map(lambda kv: (kv[0], len(kv[1]) + int(0 * random.random())),
                   name="sp.lens")


class TestSpeculation:
    def test_warn_mode_refuses_to_speculate_nondet_stage(self):
        ctx = make_ctx("warn", faults=SPECULATE)
        result = dict(skewed_job(ctx).collect())
        assert result["hot"] == 2700
        events = closure_events(ctx, "closure:unsafe_retry")
        assert any(e.args["action"] == "speculation" for e in events)
        # The nondeterministic result stage was never duplicated.
        spec = [t for job in ctx.finish().jobs for s in job.stages
                for t in s.tasks
                if t.speculative and t.stage_id == events[0].args["stage_id"]]
        assert spec == []

    def test_strict_mode_raises_on_speculation(self):
        ctx = make_ctx("strict", faults=SPECULATE)
        with pytest.raises(NondeterministicUdfError) as info:
            skewed_job(ctx).collect()
        assert info.value.action == "speculation"

    def test_off_mode_still_speculates(self):
        ctx = make_ctx("off", faults=SPECULATE)
        result = dict(skewed_job(ctx).collect())
        assert result["hot"] == 2700
        assert not ctx.tracer.by_category("closure")
        assert ctx.finish().recovery.speculative_tasks >= 1

    def test_clean_stages_speculate_in_warn_mode(self):
        ctx = make_ctx("warn", faults=SPECULATE)
        data = [("hot" if i % 10 else f"cold{i}", 1) for i in range(3000)]
        counts = ctx.parallelize(data, 4, name="sp.pairs") \
                    .group_by_key(4, name="sp.groups") \
                    .map(lambda kv: (kv[0], len(kv[1])), name="sp.lens")
        assert dict(counts.collect())["hot"] == 2700
        assert ctx.finish().recovery.speculative_tasks >= 1
        assert not closure_events(ctx, "closure:unsafe_retry")


class TestVerdictEvents:
    def test_first_analysis_emits_closure_verdict(self):
        ctx = make_ctx("warn", faults=SPECULATE)
        dict(skewed_job(ctx).collect())
        verdicts = closure_events(ctx, "closure:verdict")
        assert verdicts
        nondet = [e for e in verdicts
                  if e.args["determinism"] == "nondeterministic"]
        assert nondet and "DECA202" in nondet[0].args["rules"]


class TestSyntheticUdfCaughtBothWays:
    """Acceptance: one nondeterministic UDF caught statically (DECA202)
    AND differentially (DECA211) by the lint double-run."""

    def test_static_and_differential_detection(self):
        ctx = make_ctx("off")
        rdd = ctx.parallelize(list(range(64)), 4, name="syn.input") \
                 .map(lambda x: (x, random.random()), name="syn.nondet")
        assert rdd is not None
        findings, summary = run_closure_rules("synthetic", ctx)
        rules = {f.rule_id for f in findings}
        assert "DECA202" in rules, "static detection failed"
        assert "DECA211" in rules, "differential detection failed"
        assert summary["udfs_nondeterministic"] >= 1
        assert summary["double_run_mismatches"] >= 1

    def test_double_run_never_contradicts_deterministic_verdict(self):
        ctx = make_ctx("off")
        ctx.parallelize(list(range(64)), 4, name="det.input") \
           .map(lambda x: (x % 4, x * x), name="det.square")
        findings, summary = run_closure_rules("synthetic", ctx)
        assert not any(f.rule_id == "DECA211" for f in findings)
        assert summary["double_run_mismatches"] == 0
        assert summary["double_runs"] >= 1
