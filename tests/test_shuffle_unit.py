"""Unit tests for the shuffle subsystem internals."""

import pytest

from repro.config import CpuCosts, DecaConfig, IoCosts, MB, SerializerCosts
from repro.errors import ShuffleError
from repro.spark import DecaContext
from repro.spark.shuffle import (
    MapOutputBlock,
    MapSideWriter,
    ShuffleBlockStore,
    ShuffleKind,
    ShufflePlan,
    read_reduce_partition,
)


def executor(**overrides):
    defaults = dict(heap_bytes=32 * MB, num_executors=2,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults)).executors[0]


class TestBlockStore:
    def test_register_and_fetch(self):
        store = ShuffleBlockStore()
        block = MapOutputBlock(records=[(1, 2)], nbytes=10, objects=1,
                               executor_id=0, decomposed=False)
        store.register(7, 0, 3, block)
        store.set_map_parts(7, 1)
        assert store.fetch(7, 0, 3) is block
        assert store.fetch(7, 0, 4) is None
        assert store.map_parts(7) == 1

    def test_unknown_shuffle_raises(self):
        with pytest.raises(ShuffleError):
            ShuffleBlockStore().map_parts(99)

    def test_remove_shuffle(self):
        store = ShuffleBlockStore()
        store.set_map_parts(7, 1)
        store.register(7, 0, 0, MapOutputBlock([], 0, 0, 0, False))
        store.remove_shuffle(7)
        assert store.fetch(7, 0, 0) is None
        with pytest.raises(ShuffleError):
            store.map_parts(7)


class TestMapSideWriter:
    def make_writer(self, kind=ShuffleKind.COMBINE, plan=None, exe=None,
                    num_reduce=2):
        exe = exe or executor()
        return exe, MapSideWriter(
            exe, shuffle_id=0, map_part=0, num_reduce=num_reduce,
            partitioner=lambda k: k, kind=kind,
            merge_value=(lambda a, b: a + b)
            if kind is ShuffleKind.COMBINE else None,
            plan=plan or ShufflePlan())

    def test_combine_requires_merge(self):
        exe = executor()
        with pytest.raises(ShuffleError):
            MapSideWriter(exe, 0, 0, 2, lambda k: k,
                          ShuffleKind.COMBINE)

    def test_eager_combining_merges_per_key(self):
        exe, writer = self.make_writer()
        writer.write_all([(1, 10), (1, 5), (2, 7), (1, 1)])
        store = ShuffleBlockStore()
        writer.flush(store)
        store.set_map_parts(0, 1)
        block_odd = store.fetch(0, 0, 1)
        assert dict(block_odd.records) == {1: 16}
        block_even = store.fetch(0, 0, 0)
        assert dict(block_even.records) == {2: 7}

    def test_sort_kind_sorts_output(self):
        exe, writer = self.make_writer(kind=ShuffleKind.SORT,
                                       num_reduce=1)
        writer.write_all([(3, "c"), (1, "a"), (2, "b")])
        store = ShuffleBlockStore()
        writer.flush(store)
        assert store.fetch(0, 0, 0).records == \
            [(1, "a"), (2, "b"), (3, "c")]

    def test_buffer_freed_on_flush(self):
        exe, writer = self.make_writer()
        writer.write_all([(k, 1) for k in range(100)])
        assert writer._buffer_group.live_bytes > 0
        writer.flush(ShuffleBlockStore())
        assert writer._buffer_group.freed

    def test_spill_on_tiny_budget(self):
        exe = executor(heap_bytes=2 * MB, shuffle_fraction=0.001,
                       storage_fraction=0.1)
        _, writer = self.make_writer(kind=ShuffleKind.GROUP, exe=exe)
        writer.write_all([(k, "x" * 50) for k in range(2000)])
        assert writer.spilled_bytes > 0

    def test_decomposed_plan_uses_page_objects(self):
        exe = executor()
        plan = ShufflePlan(decomposed=True)
        _, writer = self.make_writer(plan=plan, exe=exe)
        writer.write_all([(k, 1) for k in range(500)])
        # One page object per config.page_bytes of data, not per entry.
        assert writer._buffer_group.live_objects < 10

    def test_segment_reuse_skips_temp_alloc(self):
        exe_a = executor()
        plan = ShufflePlan(decomposed=True, value_segment_reuse=True)
        _, writer = self.make_writer(plan=plan, exe=exe_a)
        writer.write_all([(1, v) for v in range(1000)])
        reuse_temp = exe_a.heap.live_objects

        exe_b = executor()
        _, writer_b = self.make_writer(exe=exe_b)
        writer_b.write_all([(1, v) for v in range(1000)])
        alloc_temp = exe_b.heap.live_objects
        assert reuse_temp < alloc_temp


class TestReduceRead:
    def test_reader_concatenates_map_outputs(self):
        exe = executor()
        store = ShuffleBlockStore()
        store.set_map_parts(5, 2)
        store.register(5, 0, 0, MapOutputBlock(
            [(1, "a")], nbytes=16, objects=1, executor_id=0,
            decomposed=False))
        store.register(5, 1, 0, MapOutputBlock(
            [(2, "b")], nbytes=16, objects=1,
            executor_id=1, decomposed=False))
        records = list(read_reduce_partition(exe, store, 5, 0))
        assert sorted(records) == [(1, "a"), (2, "b")]

    def test_remote_block_costs_network(self):
        exe = executor()
        store = ShuffleBlockStore()
        store.set_map_parts(5, 1)
        store.register(5, 0, 0, MapOutputBlock(
            [(1, "a")], nbytes=1000, objects=1,
            executor_id=exe.executor_id + 1, decomposed=False))
        list(read_reduce_partition(exe, store, 5, 0))
        assert exe.network_ms_total > 0

    def test_local_block_skips_network(self):
        exe = executor()
        store = ShuffleBlockStore()
        store.set_map_parts(5, 1)
        store.register(5, 0, 0, MapOutputBlock(
            [(1, "a")], nbytes=1000, objects=1,
            executor_id=exe.executor_id, decomposed=False))
        list(read_reduce_partition(exe, store, 5, 0))
        assert exe.network_ms_total == 0

    def test_decomposed_blocks_skip_deserialization(self):
        exe = executor()
        store = ShuffleBlockStore()
        store.set_map_parts(5, 1)
        store.register(5, 0, 0, MapOutputBlock(
            [(i, i) for i in range(1000)], nbytes=8000, objects=1000,
            executor_id=exe.executor_id, decomposed=True))
        list(read_reduce_partition(exe, store, 5, 0))
        assert exe.serializer.deser_ms_total == 0.0


class TestSpillMerge:
    def test_spilled_writers_charge_merge_reads(self):
        """Appendix C: spilled runs are merged at read time."""
        exe_writer = executor(heap_bytes=2 * MB, shuffle_fraction=0.001,
                              storage_fraction=0.1)
        writer = MapSideWriter(
            exe_writer, shuffle_id=0, map_part=0, num_reduce=1,
            partitioner=lambda k: 0, kind=ShuffleKind.GROUP)
        writer.write_all([(k, "x" * 50) for k in range(2000)])
        assert writer.spilled_bytes > 0
        store = ShuffleBlockStore()
        store.set_map_parts(0, 1)
        writer.flush(store)
        block = store.fetch(0, 0, 0)
        assert block.merge_penalty_bytes > 0

        reader = executor()
        disk_before = reader.disk_ms_total
        list(read_reduce_partition(reader, store, 0, 0))
        plain_store = ShuffleBlockStore()
        plain_store.set_map_parts(0, 1)
        plain_store.register(0, 0, 0, MapOutputBlock(
            records=block.records, nbytes=block.nbytes,
            objects=block.objects, executor_id=block.executor_id,
            decomposed=False))
        reader_b = executor()
        list(read_reduce_partition(reader_b, plain_store, 0, 0))
        spilled_cost = reader.disk_ms_total - disk_before
        assert spilled_cost > reader_b.disk_ms_total

    def test_spill_sort_charges_cover_only_the_buffer_epoch(self):
        """Each spill sorts the records accumulated since the previous
        spill — not every record written so far.  With the sort as the
        only nonzero cost, the clock reads out exactly how many records
        were sorted; re-charging cumulative counts (the pre-fix bug)
        would push it past ``records_written``."""
        sort_ms = 1.0
        exe = executor(
            heap_bytes=32 * MB, shuffle_fraction=0.001,
            storage_fraction=0.1, tasks_per_executor=1,
            cpu=CpuCosts(record_op_ms=0.0, arithmetic_per_dim_ms=0.0,
                         hash_probe_ms=0.0, sort_per_record_ms=sort_ms,
                         object_alloc_ms=0.0, boxing_ms=0.0,
                         page_access_ms=0.0),
            io=IoCosts(disk_write_per_byte_ms=0.0,
                       disk_read_per_byte_ms=0.0, disk_seek_ms=0.0,
                       network_per_byte_ms=0.0, network_rtt_ms=0.0,
                       tier_write_per_byte_ms=0.0,
                       tier_read_per_byte_ms=0.0),
            serializer=SerializerCosts(kryo_ser_per_object_ms=0.0,
                                       kryo_deser_per_object_ms=0.0,
                                       deca_write_per_object_ms=0.0,
                                       deca_read_per_object_ms=0.0))
        writer = MapSideWriter(
            exe, shuffle_id=0, map_part=0, num_reduce=1,
            partitioner=lambda k: 0, kind=ShuffleKind.GROUP)
        writer.write_all([(k, "x" * 50) for k in range(2000)])
        assert writer.spill_count >= 2
        spills = [e for e in exe.tracer.events
                  if e.name == "shuffle:spill"]
        sorted_records = sum(e.args["records"] for e in spills)
        # The spill epochs partition the input: spilled plus still
        # buffered equals everything written, with no overlap.
        assert sorted_records + writer._buffer_records \
            == writer.records_written
        assert exe.clock.now_ms == pytest.approx(
            sort_ms * sorted_records)
        assert exe.clock.now_ms <= sort_ms * writer.records_written

    def test_merge_penalty_sums_exactly_to_spilled_bytes(self):
        """The per-partition merge penalties must add up to the bytes
        actually spilled; the pre-fix floor division dropped the
        remainder."""
        exe = executor(heap_bytes=2 * MB, shuffle_fraction=0.001,
                       storage_fraction=0.1)
        num_reduce = 3
        writer = MapSideWriter(
            exe, shuffle_id=0, map_part=0, num_reduce=num_reduce,
            partitioner=lambda k: k, kind=ShuffleKind.GROUP)
        writer.write_all([(k, "x" * (50 + k % 7)) for k in range(2000)])
        assert writer.spilled_bytes > 0
        assert writer.spilled_bytes % num_reduce != 0, \
            "pick sizes leaving a remainder, or the test proves nothing"
        store = ShuffleBlockStore()
        store.set_map_parts(0, 1)
        writer.flush(store)
        penalties = [store.fetch(0, 0, part).merge_penalty_bytes
                     for part in range(num_reduce)]
        assert sum(penalties) == writer.spilled_bytes
        assert max(penalties) - min(penalties) <= 1

    def test_unspilled_blocks_have_no_penalty(self):
        exe = executor()
        writer = MapSideWriter(
            exe, shuffle_id=1, map_part=0, num_reduce=1,
            partitioner=lambda k: 0, kind=ShuffleKind.COMBINE,
            merge_value=lambda a, b: a + b)
        writer.write_all([(1, 1), (2, 2)])
        store = ShuffleBlockStore()
        writer.flush(store)
        assert store.fetch(1, 0, 0).merge_penalty_bytes == 0
