"""Tests for context-level plumbing: hashing, planning dispatch,
transformed-stage detection, run metrics and the simulated clock."""

import pytest

from repro.config import DecaConfig, ExecutionMode, MB
from repro.errors import DecaError
from repro.simtime import SimClock
from repro.spark import DecaContext
from repro.spark.cache import StorageStrategy
from repro.spark.context import stable_hash
from repro.apps.logistic_regression import labeled_point_udt_info


def make_ctx(mode=ExecutionMode.SPARK, **overrides):
    defaults = dict(mode=mode, heap_bytes=32 * MB, num_executors=2,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestSimClock:
    def test_monotone(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance(0.0)
        assert clock.now_ms == 5.0

    def test_rejects_negative_advance(self):
        with pytest.raises(DecaError):
            SimClock().advance(-1.0)

    def test_rejects_negative_start(self):
        with pytest.raises(DecaError):
            SimClock(start_ms=-1.0)

    def test_advance_to_never_goes_back(self):
        clock = SimClock(start_ms=10.0)
        clock.advance_to(5.0)
        assert clock.now_ms == 10.0
        clock.advance_to(20.0)
        assert clock.now_ms == 20.0


class TestStableHash:
    def test_deterministic_across_types(self):
        for key in (0, 1, -5, 3.5, "word", b"bytes", (1, "a"), True):
            assert stable_hash(key) == stable_hash(key)
            assert stable_hash(key) >= 0

    def test_strings_are_process_independent(self):
        # crc32("spark") is a fixed constant — no PYTHONHASHSEED effects.
        assert stable_hash("spark") == 2635321133

    def test_tuples_differ_by_order(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_spread_over_partitions(self):
        buckets = {stable_hash(f"key{i}") % 8 for i in range(1000)}
        assert len(buckets) == 8


class TestPlanDispatch:
    def test_spark_mode_has_no_optimizer(self):
        ctx = make_ctx(ExecutionMode.SPARK)
        assert ctx._optimizer is None

    def test_deca_mode_builds_optimizer(self):
        ctx = make_ctx(ExecutionMode.DECA)
        assert ctx._optimizer is not None

    def test_sparkser_plans_serialized_even_untyped(self):
        ctx = make_ctx(ExecutionMode.SPARK_SER)
        rdd = ctx.parallelize([1], 1).map(lambda x: x)
        plan = ctx.plan_cache(rdd)
        assert plan.strategy is StorageStrategy.SERIALIZED
        assert plan.schema is None  # falls back to cost-only model

    def test_shuffle_plan_measure_uses_parent(self):
        ctx = make_ctx(ExecutionMode.SPARK)
        parent = ctx.parallelize([("a", 1)], 1).map(lambda r: r)
        dep = parent.reduce_by_key(lambda a, b: a, 1).shuffle_dep
        plan = ctx.plan_shuffle(dep)
        assert plan.measure == parent.measure_record


class TestTransformedStageDetection:
    def test_map_over_decomposed_cache_is_transformed(self):
        ctx = make_ctx(ExecutionMode.DECA)
        info = labeled_point_udt_info(4)
        cached = ctx.parallelize([(1.0, (1.0,) * 4)], 1).map(
            lambda r: r, udt_info=info).cache()
        downstream = cached.map(lambda r: r)
        assert ctx._is_deca_transformed(downstream)

    def test_map_over_object_cache_is_not(self):
        ctx = make_ctx(ExecutionMode.DECA)
        cached = ctx.parallelize([1], 1).map(lambda x: x).cache()
        downstream = cached.map(lambda x: x)
        assert not ctx._is_deca_transformed(downstream)

    def test_spark_mode_never_transforms(self):
        ctx = make_ctx(ExecutionMode.SPARK)
        cached = ctx.parallelize([1], 1).map(lambda x: x).cache()
        assert not ctx._is_deca_transformed(cached.map(lambda x: x))

    def test_uncached_chain_is_not_transformed(self):
        ctx = make_ctx(ExecutionMode.DECA)
        rdd = ctx.parallelize([1], 1).map(lambda x: x).map(lambda x: x)
        assert not ctx._is_deca_transformed(rdd)


class TestRunMetrics:
    def test_finish_collects_executor_stats(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(2000), 4).map(
            lambda x: (x % 5, x)).reduce_by_key(lambda a, b: a + b, 4)
        rdd.collect()
        run = ctx.finish()
        assert set(run.executor_gc_ms) == {0, 1}
        assert run.wall_ms == ctx.wall_ms
        assert len(run.jobs) == 1

    def test_gc_fraction_bounds(self):
        ctx = make_ctx()
        ctx.parallelize(range(100), 2).count()
        run = ctx.finish()
        assert 0.0 <= run.gc_fraction <= 1.0

    def test_cached_bytes_reported_per_rdd(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(500), 2).map(lambda x: x).cache()
        rdd.count()
        run = ctx.finish()
        assert run.cached_bytes.get(rdd.name, 0) > 0
        assert run.total_cached_bytes == sum(run.cached_bytes.values())

    def test_empty_run(self):
        ctx = make_ctx()
        run = ctx.finish()
        assert run.jobs == []
        assert run.gc_pause_ms == 0.0


class TestTextFile:
    def test_read_cost_charged(self):
        ctx = make_ctx()
        lines = ["x" * 1000] * 200
        ctx.text_file(lines, 2).count()
        assert ctx.wall_ms > 0

    def test_empty_text_file(self):
        ctx = make_ctx()
        assert ctx.text_file([], 2).count() == 0
