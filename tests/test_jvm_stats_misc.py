"""Tests for GC statistics, collector cost models and allocation groups."""

import pytest

from repro.config import GcAlgorithm, GcCostModel
from repro.errors import AllocationError
from repro.jvm import CollectorModel, GcEvent, GcKind, GcStats, Lifetime
from repro.jvm.objects import AllocationGroup


def event(kind=GcKind.MINOR, start=0.0, pause=1.0, concurrent=0.0,
          reclaimed=0):
    return GcEvent(kind=kind, start_ms=start, pause_ms=pause,
                   concurrent_ms=concurrent, traced_objects=0,
                   reclaimed_bytes=reclaimed, promoted_bytes=0,
                   live_objects_after=0, used_bytes_after=0)


class TestGcStats:
    def test_counts_by_kind(self):
        stats = GcStats()
        stats.record(event(GcKind.MINOR))
        stats.record(event(GcKind.MINOR))
        stats.record(event(GcKind.FULL))
        assert stats.minor_count == 2
        assert stats.full_count == 1

    def test_pause_split_by_kind(self):
        stats = GcStats()
        stats.record(event(GcKind.MINOR, pause=1.0))
        stats.record(event(GcKind.FULL, pause=10.0))
        assert stats.minor_pause_ms == 1.0
        assert stats.full_pause_ms == 10.0
        assert stats.pause_ms == 11.0

    def test_reclaimed_total(self):
        stats = GcStats()
        stats.record(event(reclaimed=100))
        stats.record(event(reclaimed=250))
        assert stats.reclaimed_bytes == 350

    def test_merged_with_sorts_by_start(self):
        a = GcStats()
        a.record(event(start=5.0))
        b = GcStats()
        b.record(event(start=1.0))
        b.record(event(start=9.0))
        merged = a.merged_with(b)
        assert [e.start_ms for e in merged.events] == [1.0, 5.0, 9.0]

    def test_total_cost(self):
        e = event(pause=2.0, concurrent=3.0)
        assert e.total_cost_ms == 5.0


class TestCollectorModel:
    def test_minor_scales_with_survivors(self):
        model = CollectorModel(GcAlgorithm.PARALLEL_SCAVENGE)
        small = model.minor_cost(100, 1000)
        big = model.minor_cost(100_000, 1_000_000)
        assert big.pause_ms > 10 * small.pause_ms

    def test_full_scales_with_live_objects(self):
        model = CollectorModel(GcAlgorithm.PARALLEL_SCAVENGE)
        small = model.full_cost(1_000, 100_000)
        big = model.full_cost(1_000_000, 100_000_000)
        assert big.pause_ms > 50 * small.pause_ms

    def test_ps_has_no_concurrent_work(self):
        model = CollectorModel(GcAlgorithm.PARALLEL_SCAVENGE)
        assert model.full_cost(10_000, 1_000_000).concurrent_ms == 0.0

    def test_concurrent_total_below_ps_pause(self):
        """CMS/G1 full collections cost the application less wall time
        than a stop-the-world collection of the same live set."""
        live, nbytes = 500_000, 50_000_000
        ps = CollectorModel(GcAlgorithm.PARALLEL_SCAVENGE).full_cost(
            live, nbytes)
        for algorithm in (GcAlgorithm.CMS, GcAlgorithm.G1):
            cost = CollectorModel(algorithm).full_cost(live, nbytes)
            assert cost.total_ms < ps.total_ms
            assert cost.pause_ms < 0.2 * ps.pause_ms

    def test_concurrent_minors_cost_more(self):
        ps = CollectorModel(GcAlgorithm.PARALLEL_SCAVENGE)
        g1 = CollectorModel(GcAlgorithm.G1)
        assert g1.minor_cost(10_000, 1_000_000).pause_ms > \
            ps.minor_cost(10_000, 1_000_000).pause_ms

    def test_custom_cost_model(self):
        model = CollectorModel(GcAlgorithm.PARALLEL_SCAVENGE,
                               costs=GcCostModel(minor_base_ms=100.0))
        assert model.minor_cost(0, 0).pause_ms == 100.0


class TestAllocationGroup:
    def test_promote_moves_all_young(self):
        group = AllocationGroup("g", Lifetime.PINNED)
        group.record_allocation(10, 1000)
        objects, nbytes = group.promote_young()
        assert (objects, nbytes) == (10, 1000)
        assert group.young_objects == 0
        assert group.old_objects == 10

    def test_shrink_prefers_old(self):
        group = AllocationGroup("g", Lifetime.PINNED)
        group.record_allocation(1, 100, into_old=True)
        group.record_allocation(1, 50)
        group.shrink(120)
        assert group.old_bytes == 0
        assert group.young_bytes == 30

    def test_shrink_beyond_holdings_rejected(self):
        group = AllocationGroup("g", Lifetime.PINNED)
        group.record_allocation(1, 10)
        with pytest.raises(AllocationError):
            group.shrink(11)

    def test_free_reports_dead_space(self):
        group = AllocationGroup("g", Lifetime.PINNED)
        group.record_allocation(5, 500)
        group.record_allocation(5, 500, into_old=True)
        assert group.free() == (10, 1000)
        assert group.live_objects == 0

    def test_negative_allocation_rejected(self):
        group = AllocationGroup("g", Lifetime.TEMPORARY)
        with pytest.raises(AllocationError):
            group.record_allocation(-1, 10)
