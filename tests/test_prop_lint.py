"""Property test: the shadow validator never flags sound decompositions.

Strategy: generate a random (but well-formed) UDT whose fields are
primitives and primitive arrays, run the *real* pipeline — global
classification, schema construction, page-group appends, accessor
writes — and assert the differential checker reports zero DECA101
soundness violations.  The engine and the linter implement the same §3.1
safety property independently; any disagreement is a bug in one of them.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ArrayType,
    ClassType,
    Const,
    DOUBLE,
    Field,
    INT,
    LONG,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    StoreField,
    SymInput,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.global_refine import GlobalClassifier
from repro.core.optimizer import PlanReport
from repro.lint import ShadowRecorder, check_observations
from repro.memory.layout import build_schema
from repro.memory.page import PageGroup
from repro.memory.sudt import bind_accessor

PRIMITIVES = (INT, LONG, DOUBLE)

field_spec = st.one_of(
    st.tuples(st.just("prim"), st.sampled_from(PRIMITIVES)),
    # ("array", element, declared length, proven fixed?)
    st.tuples(st.just("array"), st.sampled_from(PRIMITIVES),
              st.integers(min_value=0, max_value=5), st.booleans()),
)

udt_specs = st.lists(field_spec, min_size=1, max_size=4)


def _build_model(specs):
    """Turn a spec list into (ClassType, entry Method, fixed_lengths)."""
    fields = []
    arrays = []
    for index, spec in enumerate(specs):
        name = f"f{index}"
        if spec[0] == "prim":
            fields.append(Field(name, spec[1], final=True))
        else:
            _, element, length, fixed = spec
            array_type = ArrayType(element)
            fields.append(Field(name, array_type, final=True))
            arrays.append((name, array_type, length, fixed))
    cls = ClassType("PropRec", fields)
    ctor = Method(
        "<init>", params=tuple(f.name for f in fields),
        body=tuple(StoreField("this", f, Local(f.name)) for f in fields),
        owner=cls, is_constructor=True)

    loop_body = []
    args = []
    for f in fields:
        array = next((a for a in arrays if a[0] == f.name), None)
        if array is None:
            args.append(SymInput(f.name))
            continue
        _, array_type, length, fixed = array
        length_expr = Const(length) if fixed \
            else SymInput(f"{f.name}_len")
        loop_body.append(NewArray(f"{f.name}_arr", array_type,
                                  length_expr))
        args.append(Local(f"{f.name}_arr"))
    loop_body.append(NewObject("rec", cls, ctor=ctor, args=tuple(args)))
    entry = Method("prop.stage", body=(Loop(tuple(loop_body)), Return()))

    fixed_lengths = {id(array_type): length
                     for _, array_type, length, fixed in arrays if fixed}
    return cls, entry, fixed_lengths, arrays


def _value_for(spec, index, record_index):
    if spec[0] == "prim":
        base = record_index * 10 + index
        return float(base) if spec[1] is DOUBLE else base
    _, element, length, fixed = spec
    n = length if fixed else (record_index % 4)
    if element is DOUBLE:
        return tuple(float(i) for i in range(n))
    return tuple(range(n))


@settings(max_examples=40, deadline=None)
@given(specs=udt_specs, num_records=st.integers(min_value=1, max_value=8))
def test_sound_decompositions_never_trigger_deca101(specs, num_records):
    # A record made only of zero-length fixed arrays has zero size; the
    # page layer rejects those (scans could never advance past them), so
    # the shape is unreachable in the real engine.
    assume(any(spec[0] == "prim" or spec[2] > 0 or not spec[3]
               for spec in specs))
    cls, entry, fixed_lengths, _ = _build_model(specs)
    classifier = GlobalClassifier(CallGraph.build(entry,
                                                  known_types=(cls,)))
    size_type = classifier.classify(cls)
    assert size_type.decomposable, "generated types are always SFST/RFST"

    schema = build_schema(cls, size_type, fixed_lengths=fixed_lengths)
    records = [tuple(_value_for(spec, i, r)
                     for i, spec in enumerate(specs))
               for r in range(num_records)]

    report = PlanReport(target="cache:prop", udt=cls.name,
                        local_size_type=size_type,
                        global_size_type=size_type,
                        decomposed=True, reason="property test")

    with ShadowRecorder() as recorder:
        group = PageGroup("prop", 1024)
        pointers = [group.append_record(schema, record)
                    for record in records]
        # Size-preserving accessor writes are part of normal operation
        # (e.g. shuffle segment reuse) and must stay silent too.
        buf, off = group.read(pointers[0])
        bind_accessor(schema, buf, off).write(records[0])

    findings = check_observations("prop", recorder, (report,))
    assert findings == [], [f.message for f in findings]
