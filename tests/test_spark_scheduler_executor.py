"""Tests for the DAG scheduler, executors and task lifecycle."""

import pytest

from repro.config import DecaConfig, MB
from repro.spark import DecaContext
from repro.spark.rdd import ShuffleDependency
from repro.spark.scheduler import TaskContext
from repro.spark.metrics import TaskMetrics


def make_ctx(**overrides):
    defaults = dict(heap_bytes=32 * MB, num_executors=3,
                    tasks_per_executor=2)
    defaults.update(overrides)
    return DecaContext(DecaConfig(**defaults))


class TestStageConstruction:
    def test_narrow_chain_is_one_stage(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(10), 2).map(lambda x: x) \
            .filter(lambda x: True).map(lambda x: x)
        stage = ctx.scheduler._build_stages(rdd)
        assert stage.parents == []
        assert stage.is_result_stage

    def test_shuffle_cuts_a_stage(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([(1, 1)], 2).reduce_by_key(lambda a, b: a, 2)
        stage = ctx.scheduler._build_stages(rdd)
        assert len(stage.parents) == 1
        parent = stage.parents[0]
        assert not parent.is_result_stage
        assert isinstance(parent.shuffle_dep, ShuffleDependency)

    def test_join_has_two_parent_stages(self):
        ctx = make_ctx()
        left = ctx.parallelize([(1, "a")], 2)
        right = ctx.parallelize([(1, "b")], 2)
        stage = ctx.scheduler._build_stages(left.join(right, 2))
        assert len(stage.parents) == 2

    def test_chained_shuffles_nest(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([(1, 1)], 2) \
            .reduce_by_key(lambda a, b: a, 2) \
            .map(lambda kv: (kv[1], kv[0])) \
            .group_by_key(2)
        stage = ctx.scheduler._build_stages(rdd)
        assert len(stage.parents) == 1
        assert len(stage.parents[0].parents) == 1

    def test_topological_order_parents_first(self):
        ctx = make_ctx()
        rdd = ctx.parallelize([(1, 1)], 2) \
            .reduce_by_key(lambda a, b: a, 2) \
            .group_by_key(2)
        result_stage = ctx.scheduler._build_stages(rdd)
        order = ctx.scheduler._topological(result_stage)
        assert order[-1] is result_stage
        positions = {stage.stage_id: i for i, stage in enumerate(order)}
        for stage in order:
            for parent in stage.parents:
                assert positions[parent.stage_id] \
                    < positions[stage.stage_id]


class TestClockBarriers:
    def test_stage_barrier_synchronizes_executors(self):
        ctx = make_ctx()
        # Unbalanced work: partition sizes differ wildly.
        data = list(range(1000))
        ctx.parallelize(data, 5).map(lambda x: x).collect()
        clocks = [e.clock.now_ms for e in ctx.executors]
        assert max(clocks) - min(clocks) < 1e-9

    def test_jobs_are_sequential(self):
        ctx = make_ctx()
        rdd = ctx.parallelize(range(100), 4).map(lambda x: x)
        rdd.count()
        first_end = ctx.wall_ms
        rdd.count()
        assert ctx.wall_ms >= first_end

    def test_round_robin_task_placement(self):
        ctx = make_ctx(num_executors=3)
        assert ctx.executor_for(0).executor_id == 0
        assert ctx.executor_for(1).executor_id == 1
        assert ctx.executor_for(3).executor_id == 0


class TestTaskLifecycle:
    def test_temp_group_freed_at_task_end(self):
        ctx = make_ctx(num_executors=1)
        executor = ctx.executors[0]
        task = TaskContext(executor=executor, metrics=TaskMetrics())
        executor.begin_task(task)
        executor.alloc_temp(100, 10_000)
        assert executor._temp_group is not None
        executor.end_task(task)
        assert executor._temp_group is None
        executor.heap.minor_gc()
        assert executor.heap.live_objects == 0

    def test_task_metrics_attribute_gc(self):
        ctx = make_ctx(num_executors=1)
        executor = ctx.executors[0]
        task = TaskContext(executor=executor, metrics=TaskMetrics())
        executor.begin_task(task)
        executor.heap.minor_gc()
        executor.end_task(task)
        assert task.metrics.gc_pause_ms > 0
        assert task.metrics.duration_ms >= task.metrics.gc_pause_ms

    def test_compute_scaled_by_parallelism(self):
        ctx = make_ctx(num_executors=1, tasks_per_executor=4)
        executor = ctx.executors[0]
        before = executor.clock.now_ms
        executor.charge_compute(4.0)
        assert executor.clock.now_ms - before == pytest.approx(1.0)

    def test_io_charges_accumulate(self):
        ctx = make_ctx(num_executors=1)
        executor = ctx.executors[0]
        executor.charge_disk_write(10_000)
        executor.charge_disk_read(10_000)
        executor.charge_network(10_000)
        assert executor.disk_ms_total > 0
        assert executor.network_ms_total > 0

    def test_live_objects_matching_prefix(self):
        ctx = make_ctx(num_executors=1)
        executor = ctx.executors[0]
        group = executor.new_pinned_group("cache:block-1")
        executor.heap.allocate(group, 42, 420)
        assert executor.live_objects_matching("cache:") == 42
        assert executor.live_objects_matching("shuffle") == 0


class TestJobMetrics:
    def test_stage_metrics_per_job(self):
        ctx = make_ctx()
        ctx.parallelize([(1, 2)], 2).reduce_by_key(
            lambda a, b: a + b, 2).collect()
        (job,) = ctx._jobs
        assert len(job.stages) == 2  # shuffle-map + result
        assert job.wall_ms > 0
        names = [s.name for s in job.stages]
        assert any(n.startswith("shuffle-map") for n in names)
        assert any(n.startswith("result") for n in names)

    def test_totals_aggregate_tasks(self):
        ctx = make_ctx()
        ctx.parallelize(range(50), 4).map(lambda x: x).collect()
        (job,) = ctx._jobs
        totals = job.totals
        assert totals.records_read == 50
        assert totals.compute_ms > 0

    def test_slowest_task_selected(self):
        ctx = make_ctx()
        ctx.parallelize(range(100), 4).map(lambda x: x).collect()
        stage = ctx._jobs[0].stages[0]
        slowest = stage.slowest_task
        assert slowest is not None
        assert slowest.duration_ms == max(t.duration_ms
                                          for t in stage.tasks)
