"""Unit tests for the bytecode-level closure analyzer.

Every rule of the DECA2xx family gets a positive and (via the clean
closures) a negative case; the bounded call-graph walk, the pragma
suppression and the ``analyze_value`` builtin handling are pinned too.
"""

import os
import random
import time

import pytest

from repro.analysis.closures import (
    analyze_closure,
    analyze_value,
    code_location,
    iter_hazard_rules,
)


def rules_of(fn, **kwargs):
    return list(iter_hazard_rules(analyze_closure(fn, **kwargs)))


class TestCleanClosures:
    def test_pure_arithmetic_lambda_is_clean(self):
        report = analyze_closure(lambda x: x * 2 + 1)
        assert report.hazards == ()
        assert report.determinism == "deterministic"
        assert report.purity == "pure"
        assert report.escape == "none"

    def test_tuple_default_capture_is_recorded_not_flagged(self):
        frozen = (1.0, 2.0, 3.0)

        def assign(point, c=frozen):
            best, best_d = 0, float("inf")
            for index in range(len(c)):
                d = (point - c[index]) * (point - c[index])
                if d < best_d:
                    best, best_d = index, d
            return best

        report = analyze_closure(assign)
        assert rules_of(assign) == []
        kinds = {(c.name, c.kind) for c in report.captures}
        assert ("c", "default") in kinds

    def test_cell_capture_of_immutable_is_clean(self):
        base = 10

        def shift(x):
            return x + base

        report = analyze_closure(shift)
        assert report.hazards == ()
        assert any(c.name == "base" and c.kind == "cell"
                   for c in report.captures)

    def test_deterministic_module_calls_are_clean(self):
        def keyed(record):
            import zlib
            return zlib.crc32(repr(record).encode()) & 0xFF

        report = analyze_closure(keyed)
        assert report.determinism == "deterministic"

    def test_genexpr_over_argument_is_not_an_escape(self):
        def total(xs):
            return sum(v * v for v in xs)

        report = analyze_closure(total)
        assert report.escape == "none"


class TestNondeterminism:
    def test_random_call_flags_deca202(self):
        def jitter(x):
            return x + random.random()

        assert "DECA202" in rules_of(jitter)
        assert analyze_closure(jitter).determinism == "nondeterministic"

    def test_local_import_of_random_flags_deca202(self):
        def jitter(x):
            import random as r
            return x + r.random()

        assert "DECA202" in rules_of(jitter)

    def test_time_and_environ_flag_deca202(self):
        def stamp(x):
            return x, time.time()

        def env(x):
            return os.environ.get("HOME", x)

        assert "DECA202" in rules_of(stamp)
        assert "DECA202" in rules_of(env)

    def test_id_builtin_flags_deca202(self):
        def addr(x):
            return id(x)

        assert "DECA202" in rules_of(addr)

    def test_captured_random_instance_flags_deca202(self):
        rng = random.Random(17)

        def draw(x):
            return rng.random() * x

        assert "DECA202" in rules_of(draw)

    def test_hazard_found_through_helper_carries_via_chain(self):
        def helper():
            return random.random()

        def outer(x):
            return x + helper()

        report = analyze_closure(outer)
        nondet = [h for h in report.hazards if h.rule_id == "DECA202"]
        assert nondet and any("helper" in step for h in nondet
                              for step in h.via)

    def test_call_depth_exhaustion_degrades_to_unknown(self):
        def d1():
            return random.random()

        def d2():
            return d1()

        report = analyze_closure(lambda x: x + d2(), max_depth=1)
        assert report.determinism == "unknown"
        assert any("depth exhausted" in item for item in report.unresolved)


class TestIterationOrder:
    def test_captured_set_flags_deca203(self):
        stopwords = {"a", "the", "of"}

        def keep(word):
            return word not in stopwords

        assert "DECA203" in rules_of(keep)


class TestImpurity:
    def test_store_global_flags_deca204_and_205(self):
        def leak(x):
            global _test_sink
            _test_sink = x
            return x

        rules = rules_of(leak)
        assert "DECA204" in rules
        assert "DECA205" in rules

    def test_captured_cell_append_flags_204_and_205(self):
        seen = []

        def tap(record):
            seen.append(record)
            return record

        rules = rules_of(tap)
        assert {"DECA204", "DECA205"} <= set(rules)

    def test_mutable_default_argument_flags_deca206(self):
        def tap(record, log=[]):  # noqa: B006 - the hazard under test
            log.append(record)
            return record

        rules = rules_of(tap)
        assert "DECA206" in rules
        assert "DECA204" in rules

    def test_nonlocal_rebind_flags_deca204(self):
        count = 0

        def bump(x):
            nonlocal count
            count += 1
            return x

        assert "DECA204" in rules_of(bump)

    def test_print_flags_deca204(self):
        def noisy(x):
            print(x)
            return x

        assert "DECA204" in rules_of(noisy)

    def test_argument_mutation_flags_deca204(self):
        def grow(records):
            records.append(0)
            return records

        assert "DECA204" in rules_of(grow)


class TestEscape:
    def test_inner_lambda_over_argument_flags_deca205(self):
        def delayed(x):
            return lambda: x

        assert "DECA205" in rules_of(delayed)
        assert analyze_closure(delayed).escape == "escapes"


class TestPragmas:
    def test_pragma_suppresses_named_rule(self):
        audit = []

        def tap(record, log=audit):  # deca: allow(DECA204, DECA205, DECA206)
            log.append(record)
            return record

        report = analyze_closure(tap)
        assert report.hazards != ()
        assert report.active_hazards == ()
        assert report.suppressed_hazards == report.hazards
        assert report.purity == "pure"

    def test_family_wildcard_suppresses_everything(self):
        def jitter(x):  # deca: allow(DECA2xx)
            return x + random.random()

        report = analyze_closure(jitter)
        assert report.active_hazards == ()
        assert report.determinism == "deterministic"


class TestAnalyzeValue:
    def test_pure_builtin_gets_clean_synthetic_report(self):
        report = analyze_value(min)
        assert report is not None
        assert report.location == "<builtin>"
        assert report.determinism == "deterministic"

    def test_unknown_callable_is_honestly_unresolved(self):
        report = analyze_value(random.random)
        assert report is not None
        assert report.determinism != "deterministic"

    def test_non_callable_returns_none(self):
        assert analyze_value(42) is None

    def test_non_function_raises_in_analyze_closure(self):
        with pytest.raises(TypeError):
            analyze_closure(42)


class TestReportShape:
    def test_why_chain_names_opcode_and_line(self):
        def jitter(x):
            return x + random.random()

        report = analyze_closure(jitter)
        hazard = next(h for h in report.hazards
                      if h.rule_id == "DECA202")
        why = hazard.why(report.location)
        assert "[closure.dis]" in why
        assert hazard.opcode in why
        assert f":{hazard.line}:" in why

    def test_report_round_trips_to_dict(self):
        def jitter(x):
            return x + random.random()

        data = analyze_closure(jitter).to_dict()
        assert data["determinism"] == "nondeterministic"
        assert data["hazards"] and data["hazards"][0]["rule"]

    def test_code_location_is_repo_relative(self):
        def probe(x):
            return x

        assert code_location(probe.__code__).startswith("tests/")
