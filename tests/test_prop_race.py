"""Property-based tests: the vector-clock race sanitizer on real paths.

Two invariants, mirroring the DECA30x provenance properties one
protocol layer up:

* random *legal* interleavings of the concurrency protocol — segment
  register/acquire/release/unlink on a real
  :class:`~repro.exec.shm.ShmSegmentRegistry`, extent
  alloc/view/grow/free on a real
  :class:`~repro.memory.tier.PageStoreTier`, arena pool CAS
  transitions, grant/release pairs and worker fork→access→absorb→exit
  cycles — never record a single vclock violation.  The protocol the
  engine actually follows is race-free by construction, and the
  sanitizer must agree on every schedule;
* every seeded DECA40x bug fixture always trips the sanitizer with
  exactly its slug, on every run (the fixtures are deterministic, so
  this half is a straight sweep over the bench driver's checks).
"""

from hypothesis import given, settings, strategies as st

from repro.bench.__main__ import _race_fixture_checks
from repro.exec.shm import SegmentRef, ShmSegmentRegistry
from repro.memory.tier import PageStoreTier
from repro.obs.vclock import RACE_SLUGS, VClockChecker

#: One random step: (verb, resource index, payload seed).
STEP = st.tuples(
    st.sampled_from(["seg_new", "seg_acq", "seg_rel",
                     "ext_new", "ext_view", "ext_drop",
                     "grow", "pool", "grant", "worker"]),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=1, max_value=16),
)


class ProtocolMachine:
    """Applies one random legal schedule, asserting zero violations.

    Legality means exactly the ordering discipline the engine keeps:
    refcounts reach zero before unlink, exported views die before the
    extent does, pool writes carry the version they were derived from,
    grants are released, and worker notes are absorbed at the wave
    barrier before the driver reclaims anything the worker touched.
    """

    def __init__(self, tmp_path) -> None:
        self.checker = VClockChecker()
        self.registry = ShmSegmentRegistry(vclock=self.checker)
        self.tier = PageStoreTier(str(tmp_path / "prop.bin"),
                                  vclock=self.checker)
        self.seg_refs: dict[str, int] = {}
        self.extents: set[str] = set()
        self.held: dict[str, list] = {}
        self.worker_serial = 0
        self.grow_serial = 0

    def step(self, verb: str, index: int, seed: int) -> None:
        seg = f"repro-propseg-{index}"
        ext = f"ext{index}"
        if verb == "seg_new" and seg not in self.seg_refs:
            # Rebirth of a previously unlinked name is legal: the
            # create kills the old reclaim record (DECA401's window
            # only exists *between* unlink and re-create).
            self.registry.register(
                SegmentRef(name=seg, nbytes=seed * 64, count=0))
            self.seg_refs[seg] = 1
        elif verb == "seg_acq" and seg in self.seg_refs:
            self.registry.acquire(seg)
            self.seg_refs[seg] += 1
        elif verb == "seg_rel" and self.seg_refs.get(seg, 0) > 1:
            # The final release (→ unlink) is finish()'s job, so a
            # mid-schedule release never drops the count to zero here.
            self.registry.release(seg)
            self.seg_refs[seg] -= 1
        elif verb == "ext_new" and ext not in self.extents:
            self.tier.swap_out(ext, [b"\x11" * (seed * 97)])
            self.extents.add(ext)
        elif verb == "ext_view" and ext in self.extents:
            self.held.setdefault(ext, []).extend(self.tier.views(ext))
        elif verb == "ext_drop" and ext in self.extents:
            for view in self.held.pop(ext, []):
                view.release()
            self.tier.drop(ext)
            self.extents.discard(ext)
        elif verb == "grow":
            name = f"grow{self.grow_serial}"
            self.grow_serial += 1
            self.tier.swap_out(
                name, [b"\x5b" * (self.tier.file_bytes + 4096)])
            self.tier.drop(name)
        elif verb == "pool":
            version = self.checker.pool_read("execution")
            self.checker.pool_write("execution", based_on=version)
        elif verb == "grant":
            token = f"arena:0:{self.worker_serial}-{index}"
            self.checker.note_grant(token)
            self.checker.note_grant_release(token)
        elif verb == "worker":
            self._worker_cycle(seed)
        assert self.checker.summary()["violations"] == 0

    def _worker_cycle(self, seed: int) -> None:
        """Fork → remote accesses → absorb → wave-barrier exit."""
        actor = f"w{self.worker_serial}"
        self.worker_serial += 1
        snapshot = self.checker.fork(actor)
        worker = VClockChecker(actor=actor, snapshot=snapshot)
        for offset, seg in enumerate(sorted(self.seg_refs)):
            if (seed + offset) % 2:
                worker.note_attach("segment", seg)
        for offset, ext in enumerate(sorted(self.extents)):
            if (seed + offset) % 2:
                worker.note_access("extent", ext)
        # Absorb *before* any later reclaim: the wave-barrier ordering
        # the mp driver keeps, and exactly what makes the schedule
        # race-free.
        self.checker.absorb(worker.export_notes(drain=True))
        self.checker.exit_actor(actor)

    def finish(self) -> None:
        for views in self.held.values():
            for view in views:
                view.release()
        self.held.clear()
        for seg, count in sorted(self.seg_refs.items()):
            for _ in range(count):
                self.registry.release(seg)
        self.seg_refs.clear()
        for ext in sorted(self.extents):
            self.tier.drop(ext)
        self.extents.clear()
        assert self.checker.check_finish()["violations"] == 0
        self.tier.close()


@settings(max_examples=40, deadline=None)
@given(script=st.lists(STEP, min_size=1, max_size=40))
def test_legal_interleavings_never_violate(tmp_path_factory, script):
    machine = ProtocolMachine(tmp_path_factory.mktemp("race-prop"))
    try:
        for verb, index, seed in script:
            machine.step(verb, index, seed)
    finally:
        machine.finish()


@settings(max_examples=25, deadline=None)
@given(join_first=st.booleans(),
       tasks=st.integers(min_value=1, max_value=5))
def test_result_handoff_safe_iff_joined(join_first, tasks):
    """Consuming a result is clean iff the wave barrier ran first.

    The producing worker's clock only reaches the driver through a
    join edge (queue get / process join); consuming before that edge
    is exactly DECA405, and it fires for every task in the wave.
    """
    checker = VClockChecker()
    checker.fork("w0")
    for task in range(tasks):
        checker.note_result_produced(f"t{task}", actor="w0")
    if join_first:
        # The join edge is the clock merge (absorb of the worker's
        # notes / process join), not the mere death record.
        checker.join("w0")
        checker.exit_actor("w0")
    for task in range(tasks):
        checker.note_result_consumed(f"t{task}")
    expected = 0 if join_first else tasks
    assert checker.summary()["violations"] == expected
    assert checker.counters["wave-barrier-bypass"] == expected


def test_every_race_fixture_always_fires():
    rows = _race_fixture_checks()
    assert len(rows) == len(RACE_SLUGS)
    for row in rows:
        assert row["fired"], f"{row['rule']} did not trip the vclock"
        assert row["violations"] >= 1
