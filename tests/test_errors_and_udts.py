"""Tests for the exception hierarchy and the app UDT models."""

import pytest

from repro import errors
from repro.analysis import (
    CallGraph,
    GlobalClassifier,
    SizeType,
    classify_locally,
)
from repro.apps.udts import (
    make_graph_model,
    make_ranking_model,
    make_uservisit_model,
)
from repro.apps.kmeans import cluster_stat_udt_info
from repro.apps.sql_queries import ranking_udt_info, uservisit_udt_info


class TestErrorHierarchy:
    def test_everything_derives_from_deca_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.DecaError), name

    def test_specific_parents(self):
        assert issubclass(errors.OutOfMemoryError, errors.HeapError)
        assert issubclass(errors.PageOverflowError, errors.PageError)
        assert issubclass(errors.ShuffleError, errors.ExecutionError)
        assert issubclass(errors.SchemaError, errors.SqlError)
        assert issubclass(errors.TypeGraphError, errors.AnalysisError)

    def test_catch_all(self):
        with pytest.raises(errors.DecaError):
            raise errors.PageReclaimedError("gone")


class TestSqlRowModels:
    def test_ranking_row_is_rfst(self):
        model = make_ranking_model()
        assert classify_locally(model.row_type) is SizeType.RUNTIME_FIXED
        cg = CallGraph.build(model.stage_entry,
                             known_types=(model.row_type,))
        assert GlobalClassifier(cg).classify(model.row_type) \
            is SizeType.RUNTIME_FIXED

    def test_uservisit_row_is_rfst(self):
        model = make_uservisit_model()
        cg = CallGraph.build(model.stage_entry,
                             known_types=(model.row_type,))
        assert GlobalClassifier(cg).classify(model.row_type) \
            is SizeType.RUNTIME_FIXED
        assert len(model.row_type.fields) == 9

    def test_ranking_udt_info_roundtrip(self):
        info = ranking_udt_info()
        row = ("url00000001.example.com/page", 42, 17)
        assert info.from_schema_value(info.to_schema_value(row)) == row

    def test_uservisit_udt_info_roundtrip(self):
        info = uservisit_udt_info()
        row = ("101.2.3.4", "url1.example.com", 20090101, 3.5,
               "Mozilla/5.0", "DNK", "da", "vldb", 60)
        assert info.from_schema_value(info.to_schema_value(row)) == row


class TestGraphAndKMeansModels:
    def test_rank_message_is_sfst(self):
        gm = make_graph_model()
        assert classify_locally(gm.rank_message) is SizeType.STATIC_FIXED

    def test_cluster_stat_decomposes_with_dimension(self):
        info = cluster_stat_udt_info(6)
        cg = info.callgraph()
        assert cg is not None
        classifier = GlobalClassifier(cg)
        assert classifier.classify(info.udt) is SizeType.STATIC_FIXED

    def test_cluster_stat_object_model_counts_wrappers(self):
        """The runtime Tuple2 graph has more objects than the flattened
        logical record — that difference drives Spark's churn."""
        info = cluster_stat_udt_info(6)
        record = (2, ((1.0,) * 6, 5))
        footprint = info.measure(record)
        assert footprint.objects >= 6  # 2 tuples + 2 boxes + DV + array

    def test_cluster_stat_roundtrip(self):
        info = cluster_stat_udt_info(3)
        record = (1, ((1.0, 2.0, 3.0), 7))
        assert info.from_schema_value(info.to_schema_value(record)) \
            == record
