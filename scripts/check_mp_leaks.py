#!/usr/bin/env python
"""CI leak guard for the mp execution backend.

Runs *after* the mp test/bench steps and fails the job if the run left
anything behind that a correct segment lifecycle would have cleaned up:

* shared-memory segments — every segment the backend creates is named
  ``repro-mp-<pid>-...`` (repro.exec.shm.SEGMENT_PREFIX plus the
  driver pid), so a linked segment whose creator pid is dead is a leak
  of the registry, the atexit sweep or the worker-death orphan sweep.
  A segment whose creator is *alive* is checked against that process's
  registry manifest (repro.exec.shm.manifest_path): present means the
  run still owns it, absent means the registry entry is gone and
  nothing will ever unlink it — the live-creator orphan;
* worker processes — mp workers are forked children of the test
  process and share its command line, so any surviving ``pytest`` /
  ``repro.bench`` process after those steps finished is a stray worker
  (a hang the per-test timeout should have reaped);
* cold-tier files — the mmap cold tier names its backing files
  ``repro-tier-<pid>-...`` (repro.memory.tier.TIER_FILE_PREFIX) in the
  temp directory and unlinks them on close/finalize, so a tier file
  whose embedded pid is no longer alive is an orphan the
  ``weakref.finalize`` hook failed to reap.

Exit status 0 = clean, 1 = leaks found (details on stdout).
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile

SHM_DIR = "/dev/shm"
SEGMENT_PREFIX = "repro-mp"
SEGMENT_PATTERN = re.compile(r"^repro-mp-(\d+)-")
TIER_PATTERN = re.compile(r"^repro-tier-(\d+)-")

#: Command lines mp workers inherit from the processes that fork them.
WORKER_PATTERNS = ("python -m pytest", "-m repro.bench")


def manifest_segments(pid: int) -> set[str] | None:
    """Segments the (alive) creator's registry still owns.

    Mirrors ``repro.exec.shm.manifest_path`` without importing the
    package — this script must run standalone in CI.  Returns ``None``
    when the process has no manifest (its registry owns nothing, so
    every surviving segment of that pid is an orphan).
    """
    path = os.path.join(tempfile.gettempdir(),
                        f"repro-mp-manifest-{pid}.json")
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    segments = payload.get("segments")
    if not isinstance(segments, list):
        return None
    return {str(name) for name in segments}


def leaked_segments() -> list[str]:
    """Linked ``repro-mp-*`` segments nothing will ever unlink.

    Three classes: a name with no parseable creator pid (flagged — the
    backend never produces one), a dead creator (the sweeps failed),
    and a *live* creator whose registry manifest no longer lists the
    segment (the registry dropped the entry without unlinking — the
    manifest-absent orphan a dead-pid check alone cannot see).
    Segments a live creator's manifest still claims are in use, not
    leaks.
    """
    if not os.path.isdir(SHM_DIR):
        return []
    leaks: list[str] = []
    manifests: dict[int, set[str] | None] = {}
    for entry in sorted(os.listdir(SHM_DIR)):
        if not entry.startswith(SEGMENT_PREFIX):
            continue
        match = SEGMENT_PATTERN.match(entry)
        if match is None:
            leaks.append(f"{entry} (no creator pid in name)")
            continue
        pid = int(match.group(1))
        if not _pid_alive(pid):
            leaks.append(f"{entry} (creator pid {pid} dead)")
            continue
        if pid not in manifests:
            manifests[pid] = manifest_segments(pid)
        owned = manifests[pid]
        if owned is None or entry not in owned:
            leaks.append(f"{entry} (creator pid {pid} alive but "
                         f"registry entry gone)")
    return leaks


def stray_processes() -> list[str]:
    strays: list[str] = []
    for pattern in WORKER_PATTERNS:
        try:
            proc = subprocess.run(["pgrep", "-af", pattern],
                                  capture_output=True, text=True,
                                  timeout=30)
        except (FileNotFoundError, subprocess.TimeoutExpired):
            continue
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            pid = int(line.split(None, 1)[0])
            if pid == os.getpid():
                continue
            strays.append(line)
    return strays


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def orphaned_tier_files() -> list[str]:
    """Cold-tier mmap files whose creating process is dead."""
    tmpdir = tempfile.gettempdir()
    orphans: list[str] = []
    try:
        entries = os.listdir(tmpdir)
    except OSError:
        return []
    for entry in sorted(entries):
        match = TIER_PATTERN.match(entry)
        if match is None:
            continue
        if not _pid_alive(int(match.group(1))):
            orphans.append(os.path.join(tmpdir, entry))
    return orphans


def main() -> int:
    segments = leaked_segments()
    strays = stray_processes()
    tier_files = orphaned_tier_files()
    if segments:
        print(f"LEAK: {len(segments)} shared-memory segment(s) "
              f"still linked under {SHM_DIR}:")
        for name in segments:
            print(f"  {name}")
    if strays:
        print(f"LEAK: {len(strays)} stray worker process(es):")
        for line in strays:
            print(f"  {line}")
    if tier_files:
        print(f"LEAK: {len(tier_files)} orphaned cold-tier file(s):")
        for path in tier_files:
            print(f"  {path}")
    if segments or strays or tier_files:
        return 1
    print("clean: no leaked segments, no stray workers, "
          "no orphaned tier files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
