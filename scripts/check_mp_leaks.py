#!/usr/bin/env python
"""CI leak guard for the mp execution backend.

Runs *after* the mp test/bench steps and fails the job if the run left
anything behind that a correct segment lifecycle would have cleaned up:

* shared-memory segments — every segment the backend creates is named
  ``repro-mp-*`` (repro.exec.shm.SEGMENT_PREFIX), so anything with that
  prefix still linked under ``/dev/shm`` is a leak of the registry,
  the atexit sweep or the worker-death orphan sweep;
* worker processes — mp workers are forked children of the test
  process and share its command line, so any surviving ``pytest`` /
  ``repro.bench`` process after those steps finished is a stray worker
  (a hang the per-test timeout should have reaped);
* cold-tier files — the mmap cold tier names its backing files
  ``repro-tier-<pid>-...`` (repro.memory.tier.TIER_FILE_PREFIX) in the
  temp directory and unlinks them on close/finalize, so a tier file
  whose embedded pid is no longer alive is an orphan the
  ``weakref.finalize`` hook failed to reap.

Exit status 0 = clean, 1 = leaks found (details on stdout).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

SHM_DIR = "/dev/shm"
SEGMENT_PREFIX = "repro-mp"
TIER_PATTERN = re.compile(r"^repro-tier-(\d+)-")

#: Command lines mp workers inherit from the processes that fork them.
WORKER_PATTERNS = ("python -m pytest", "-m repro.bench")


def leaked_segments() -> list[str]:
    if not os.path.isdir(SHM_DIR):
        return []
    return sorted(entry for entry in os.listdir(SHM_DIR)
                  if entry.startswith(SEGMENT_PREFIX))


def stray_processes() -> list[str]:
    strays: list[str] = []
    for pattern in WORKER_PATTERNS:
        try:
            proc = subprocess.run(["pgrep", "-af", pattern],
                                  capture_output=True, text=True,
                                  timeout=30)
        except (FileNotFoundError, subprocess.TimeoutExpired):
            continue
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            pid = int(line.split(None, 1)[0])
            if pid == os.getpid():
                continue
            strays.append(line)
    return strays


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def orphaned_tier_files() -> list[str]:
    """Cold-tier mmap files whose creating process is dead."""
    tmpdir = tempfile.gettempdir()
    orphans: list[str] = []
    try:
        entries = os.listdir(tmpdir)
    except OSError:
        return []
    for entry in sorted(entries):
        match = TIER_PATTERN.match(entry)
        if match is None:
            continue
        if not _pid_alive(int(match.group(1))):
            orphans.append(os.path.join(tmpdir, entry))
    return orphans


def main() -> int:
    segments = leaked_segments()
    strays = stray_processes()
    tier_files = orphaned_tier_files()
    if segments:
        print(f"LEAK: {len(segments)} shared-memory segment(s) "
              f"still linked under {SHM_DIR}:")
        for name in segments:
            print(f"  {name}")
    if strays:
        print(f"LEAK: {len(strays)} stray worker process(es):")
        for line in strays:
            print(f"  {line}")
    if tier_files:
        print(f"LEAK: {len(tier_files)} orphaned cold-tier file(s):")
        for path in tier_files:
            print(f"  {path}")
    if segments or strays or tier_files:
        return 1
    print("clean: no leaked segments, no stray workers, "
          "no orphaned tier files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
