"""Simulated time.

Every executor owns a :class:`SimClock`; all cost models *advance* a clock
instead of sleeping.  Job wall-time is then ``max`` over the executors'
clocks, mirroring how a stage finishes when its slowest task finishes.
"""

from __future__ import annotations

from .errors import DecaError


class SimClock:
    """A monotonically increasing clock measured in simulated milliseconds."""

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise DecaError("clock cannot start before zero")
        self._now_ms = float(start_ms)

    @property
    def now_ms(self) -> float:
        """Current simulated time."""
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Move the clock forward by *delta_ms* and return the new time.

        Negative deltas are rejected: simulated time never runs backwards.
        """
        if delta_ms < 0:
            raise DecaError(f"cannot advance clock by {delta_ms} ms")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_to(self, when_ms: float) -> float:
        """Move the clock forward to *when_ms* if it is in the future."""
        if when_ms > self._now_ms:
            self._now_ms = when_ms
        return self._now_ms

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_ms:.3f} ms)"
