"""Table/figure rendering for benchmark results.

Each benchmark prints the rows/series its paper counterpart reports and
also writes them under ``benchmarks/results/`` so the run leaves a
reviewable artifact (EXPERIMENTS.md links there).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Sequence

from .harness import FigureRow

RESULTS_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "results")


def format_table(title: str, header: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in header]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != 0.0 and abs(value) < 0.005:
            return f"{value:.2e}"
        return f"{value:.3f}"
    return str(value)


def rows_as_table(title: str, rows: Sequence[FigureRow],
                  include_cache: bool = True) -> str:
    """The standard exec/GC(/cache) presentation used by most figures."""
    header = ["app", "point", "mode", "exec(s)", "gc(s)", "gc%"]
    if include_cache:
        header += ["cache(MB)", "swapped(MB)"]
    body = []
    for row in rows:
        line: list[object] = [row.app, row.label, row.mode,
                              row.exec_s, row.gc_s,
                              f"{100 * row.gc_fraction:.1f}%"]
        if include_cache:
            line += [row.cached_mb, row.swapped_mb]
        body.append(line)
    return format_table(title, header, body)


def write_result(name: str, content: str) -> str:
    """Persist *content* under benchmarks/results/<name>.txt."""
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    return path


def write_json_result(name: str, payload: object) -> str:
    """Persist *payload* under benchmarks/results/<name>.json.

    The machine-readable companion of :func:`write_result`: keys are
    sorted and floats come straight from the simulated clocks, so a
    benchmark run with fixed seeds writes byte-identical files — the
    trajectory artifacts CI uploads and diffs.
    """
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def rows_as_json(rows: Sequence[FigureRow]) -> list[dict]:
    """FigureRows as JSON-ready dicts (non-serializable extras dropped)."""
    payload = []
    for row in rows:
        extra = {key: value for key, value in row.extra.items()
                 if isinstance(value, (str, int, float, bool, type(None),
                                       list, dict))}
        payload.append({
            "app": row.app,
            "label": row.label,
            "mode": row.mode,
            "exec_s": round(row.exec_s, 6),
            "gc_s": round(row.gc_s, 6),
            "gc_fraction": round(row.gc_fraction, 6),
            "cached_mb": round(row.cached_mb, 6),
            "swapped_mb": round(row.swapped_mb, 6),
            "full_gcs": row.full_gcs,
            "minor_gcs": row.minor_gcs,
            "extra": extra,
        })
    return payload


def ascii_timeline(title: str, series: dict[str, list[tuple[float, float]]],
                   width: int = 64, height: int = 12) -> str:
    """Render (time, value) series as an ASCII chart.

    Used by the lifetime benchmarks (Figs. 8a/9a) so the written artifact
    shows the *shape* — the fluctuating Spark population vs Deca's flat
    line — without any plotting dependency.  Each series gets a marker
    character; overlapping points show the later series' marker.
    """
    points = [p for rows in series.values() for p in rows]
    if not points:
        return f"{title}\n(empty)"
    t_max = max(t for t, _ in points) or 1.0
    v_max = max(v for _, v in points) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@"
    legend = []
    for index, (name, rows) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"{marker} = {name}")
        for t, v in rows:
            col = min(width - 1, int(t / t_max * (width - 1)))
            row = min(height - 1, int(v / v_max * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [title, "=" * len(title),
             f"y: 0..{v_max:g}   x: 0..{t_max:g} ms   " + "  ".join(legend)]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    return "\n".join(lines)


def speedup(baseline: FigureRow, improved: FigureRow) -> float:
    """Execution-time speedup of *improved* over *baseline*."""
    if improved.exec_s <= 0:
        return float("inf")
    return baseline.exec_s / improved.exec_s
