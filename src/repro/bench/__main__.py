"""Command-line experiment runner: ``python -m repro.bench``.

Runs individual scaled experiment points without pytest — handy for
exploring regimes interactively::

    python -m repro.bench lr --label 80GB --iterations 5
    python -m repro.bench wc --size 150GB --keys 100M
    python -m repro.bench pr --graph HB
    python -m repro.bench kmeans --label 100GB
    python -m repro.bench cc --graph WB
    python -m repro.bench faults --kill-prob 0.1 --json fault_smoke
    python -m repro.bench trace --json trace_sample

``trace`` runs a workload instrumented end to end by :mod:`repro.obs`,
writes the Chrome ``trace_event`` JSON artifact (loadable in
``about://tracing`` / Perfetto) and prints the per-executor utilization
summary.  Each other run prints one row per execution mode (Spark /
SparkSer / Deca).
"""

from __future__ import annotations

import argparse
import sys

from ..config import ExecutionMode
from ..errors import StageAbortError
from ..obs import chrome_trace, utilization_summary
from .harness import (
    COLD_TIERS,
    GRAPH_SCALES,
    LR_SIZES,
    MEMORY_WORKLOADS,
    SQL_LAYOUTS,
    WC_SIZES,
    fault_recovery_faults,
    run_fault_recovery_point,
    run_graph_point,
    run_kmeans_point,
    run_lr_point,
    run_memory_point,
    run_sql_point,
    run_sql_swap_roundtrip,
    run_tier_point,
    run_trace_point,
    run_wc_point,
)
from .report import (
    RESULTS_DIR,
    rows_as_json,
    rows_as_table,
    write_json_result,
)


def _modes(names: list[str] | None) -> list[ExecutionMode]:
    if not names:
        return list(ExecutionMode)
    lookup = {mode.value: mode for mode in ExecutionMode}
    try:
        return [lookup[name] for name in names]
    except KeyError as exc:
        raise SystemExit(f"unknown mode {exc.args[0]!r}; "
                         f"choose from {sorted(lookup)}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run scaled Deca experiments from the command line.")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--modes", nargs="*", metavar="MODE",
                        help="spark / spark-ser / deca (default: all)")
    sub = parser.add_subparsers(dest="app", required=True)

    lr = sub.add_parser("lr", parents=[common],
                        help="LogisticRegression sweep point")
    lr.add_argument("--label", default="80GB", choices=sorted(LR_SIZES))
    lr.add_argument("--iterations", type=int, default=5)

    km = sub.add_parser("kmeans", parents=[common],
                        help="KMeans sweep point")
    km.add_argument("--label", default="80GB", choices=sorted(LR_SIZES))
    km.add_argument("--iterations", type=int, default=5)

    wc = sub.add_parser("wc", parents=[common],
                        help="WordCount point")
    wc.add_argument("--size", default="100GB",
                    choices=sorted({s for s, _ in WC_SIZES}))
    wc.add_argument("--keys", default="100M",
                    choices=sorted({k for _, k in WC_SIZES}))

    for name in ("pr", "cc"):
        graph = sub.add_parser(name, parents=[common],
                               help=f"{name.upper()} graph point")
        graph.add_argument("--graph", default="WB",
                           choices=sorted(GRAPH_SCALES))
        graph.add_argument("--iterations", type=int, default=3)

    ft = sub.add_parser("faults", parents=[common],
                        help="WordCount under fault injection")
    ft.add_argument("--size", default="50GB",
                    choices=sorted({s for s, _ in WC_SIZES}))
    ft.add_argument("--keys", default="10M",
                    choices=sorted({k for _, k in WC_SIZES}))
    ft.add_argument("--seed", type=int, default=17)
    ft.add_argument("--kill-prob", type=float, default=0.05)
    ft.add_argument("--corrupt-prob", type=float, default=0.0)
    ft.add_argument("--no-crash", action="store_true",
                    help="skip the scripted executor crash")
    ft.add_argument("--speculation", action="store_true")
    ft.add_argument("--json", metavar="NAME",
                    help="also write benchmarks/results/<NAME>.json")

    lint = sub.add_parser(
        "lint",
        help="run deca-lint: static rules + shadow validation per app")
    lint.add_argument("--apps", nargs="*", default=["all"], metavar="APP",
                      help="app names from the lint registry "
                           "(default: all)")
    lint.add_argument("--format", default="text",
                      choices=["text", "json", "sarif"],
                      help="output format printed to stdout")
    lint.add_argument("--out", metavar="NAME",
                      help="also write benchmarks/results/<NAME>.json "
                           "(the canonical payload, baseline-comparable)")
    lint.add_argument("--baseline", metavar="PATH",
                      help="fail if findings appear that this baseline "
                           "payload does not contain")
    lint.add_argument("--write-baseline", metavar="PATH",
                      help="write the canonical payload to PATH and exit")
    lint.add_argument("--no-shadow", action="store_true",
                      help="skip the instrumented shadow runs "
                           "(static rules only)")
    lint.add_argument("--rules", nargs="*", default=[], metavar="PREFIX",
                      help="keep only findings whose rule id starts with "
                           "one of these prefixes (e.g. DECA2 for the "
                           "closure family); summaries are unaffected")
    lint.add_argument("--check", action="store_true",
                      help="compare against the committed baseline "
                           "(benchmarks/baselines/lint_baseline.json "
                           "unless --baseline overrides it) and exit 1 "
                           "on any finding it does not contain")
    lint.add_argument("--update-baseline", action="store_true",
                      help="regenerate the committed baseline "
                           "(benchmarks/baselines/lint_baseline.json) "
                           "from this run, print a per-app audit of "
                           "what it now contains, and exit")

    sz = sub.add_parser(
        "sanitize",
        help="prove the runtime alias sanitizer live: drive each seeded "
             "DECA30x bug fixture against a real tier/registry/ledger, "
             "then run clean WC+PageRank under REPRO_SANITIZE semantics")
    sz.add_argument("--fixtures-only", action="store_true",
                    help="skip the clean WC/PageRank runs (fixture "
                         "checks only)")
    sz.add_argument("--backends", nargs="*", default=["sim", "mp"],
                    choices=["sim", "mp"],
                    help="backends for the clean runs (default: both)")
    sz.add_argument("--seed", type=int, default=17)
    sz.add_argument("--json", metavar="NAME",
                    help="also write benchmarks/results/<NAME>.json")

    mem = sub.add_parser(
        "memory",
        help="static vs unified memory-arena ablation "
             "(docs/memory_model.md)")
    mem.add_argument("--workloads", nargs="*", metavar="W",
                     default=list(MEMORY_WORKLOADS),
                     choices=list(MEMORY_WORKLOADS),
                     help="shuffle-heavy / cache-heavy (default: both)")
    mem.add_argument("--memory-modes", nargs="*", metavar="MM",
                     default=["static", "unified"],
                     choices=["static", "unified"],
                     help="arena modes to compare (default: both)")
    mem.add_argument("--mode", default="spark",
                     choices=[m.value for m in ExecutionMode],
                     help="execution mode the workloads run under")
    mem.add_argument("--json", metavar="NAME",
                     help="also write benchmarks/results/<NAME>.json")

    tier = sub.add_parser(
        "tier",
        help="heap vs mmap cold-tier ablation "
             "(swap traffic by tier, docs/memory_model.md)")
    tier.add_argument("--label", default="200GB",
                      choices=sorted(LR_SIZES),
                      help="LR occupancy point (default: the swapping "
                           "regime)")
    tier.add_argument("--tiers", nargs="*", metavar="T",
                      default=list(COLD_TIERS), choices=list(COLD_TIERS),
                      help="cold tiers to compare (default: both)")
    tier.add_argument("--mode", default="deca",
                      choices=[m.value for m in ExecutionMode],
                      help="execution mode (default: deca — the raw "
                           "byte-move path)")
    tier.add_argument("--json", metavar="NAME",
                      help="also write benchmarks/results/<NAME>.json")
    tier.add_argument("--check", action="store_true",
                      help="exit 1 unless all tiers produced identical "
                           "results and (in deca mode) mmap charged "
                           "zero swap-copy bytes where heap charged "
                           "some")

    sq = sub.add_parser(
        "sql",
        help="row vs columnar SQL-layout ablation "
             "(docs/sql_engine.md): identical digests, faster columnar "
             "kernels, zero-copy mmap swap roundtrip")
    sq.add_argument("--layouts", nargs="*", metavar="L",
                    default=list(SQL_LAYOUTS), choices=list(SQL_LAYOUTS),
                    help="cache layouts to compare (default: both)")
    sq.add_argument("--rankings", type=int, default=4_000,
                    help="rankings rows (default: 4000)")
    sq.add_argument("--uservisits", type=int, default=8_000,
                    help="uservisits rows (default: 8000)")
    sq.add_argument("--no-swap", action="store_true",
                    help="skip the mmap swap-roundtrip leg")
    sq.add_argument("--json", metavar="NAME",
                    help="also write benchmarks/results/<NAME>.json")
    sq.add_argument("--check", action="store_true",
                    help="exit 1 unless both layouts produced identical "
                         "query digests, the columnar kernels were "
                         "faster, and the swap roundtrip moved raw "
                         "bytes with zero serializer copies and a "
                         "clean ledger")

    be = sub.add_parser(
        "backend",
        help="sim vs mp execution-backend ablation "
             "(cross-backend equivalence + zero-copy counters)")
    be.add_argument("--apps", nargs="*", default=["wc", "pr"],
                    choices=["wc", "pr"],
                    help="workloads to compare (default: both)")
    be.add_argument("--backends", nargs="*", default=["sim", "mp"],
                    choices=["sim", "mp"],
                    help="execution backends to run (default: both)")
    be.add_argument("--mode", default="deca",
                    choices=[m.value for m in ExecutionMode])
    be.add_argument("--words", type=int, default=40_000)
    be.add_argument("--keys", type=int, default=2_000)
    be.add_argument("--nodes", type=int, default=400)
    be.add_argument("--edges", type=int, default=2_000)
    be.add_argument("--iterations", type=int, default=3)
    be.add_argument("--partitions", type=int, default=4)
    be.add_argument("--seed", type=int, default=17)
    be.add_argument("--json", metavar="NAME",
                    help="also write benchmarks/results/<NAME>.json")
    be.add_argument("--digest-dir", metavar="DIR",
                    help="write <app>_<backend>.digest files (CI cmp)")
    be.add_argument("--check", action="store_true",
                    help="exit 1 unless every backend produced identical "
                         "results per app (and, in deca mode, mp moved "
                         "decomposed data without pickling records)")

    tr = sub.add_parser(
        "trace",
        help="instrumented WordCount writing a Chrome trace artifact")
    tr.add_argument("--mode", default="spark",
                    choices=[m.value for m in ExecutionMode])
    tr.add_argument("--words", type=int, default=20_000)
    tr.add_argument("--keys", type=int, default=2_000)
    tr.add_argument("--kill-prob", type=float, default=0.0,
                    help="arm the fault injector (aborted-attempt spans)")
    tr.add_argument("--seed", type=int, default=17)
    tr.add_argument("--json", metavar="NAME", default="trace_sample",
                    help="trace artifact name under benchmarks/results/")

    args = parser.parse_args(argv)
    if args.app == "lint":
        return _run_lint(args)
    if args.app == "sanitize":
        return _run_sanitize(args)
    if args.app == "trace":
        return _run_trace(args)
    if args.app == "memory":
        return _run_memory(args)
    if args.app == "tier":
        return _run_tier(args)
    if args.app == "sql":
        return _run_sql(args)
    if args.app == "backend":
        return _run_backend(args)
    modes = _modes(args.modes)

    rows = []
    for mode in modes:
        if args.app == "lr":
            rows.append(run_lr_point(args.label, mode,
                                     iterations=args.iterations))
        elif args.app == "kmeans":
            rows.append(run_kmeans_point(args.label, mode,
                                         iterations=args.iterations))
        elif args.app == "wc":
            rows.append(run_wc_point(args.size, args.keys, mode))
        elif args.app == "faults":
            faults = fault_recovery_faults(
                seed=args.seed, task_kill_prob=args.kill_prob,
                fetch_corruption_prob=args.corrupt_prob,
                executor_crash=not args.no_crash,
                speculation=args.speculation)
            try:
                rows.append(run_fault_recovery_point(
                    args.size, args.keys, mode, faults=faults))
            except StageAbortError as exc:
                raise SystemExit(
                    f"[{mode.value}] job failed permanently: {exc}")
        else:
            rows.append(run_graph_point(args.app.upper(), args.graph,
                                        mode,
                                        iterations=args.iterations))
    print(rows_as_table(f"repro.bench {args.app}", rows))
    if args.app == "faults":
        for row in rows:
            recovery = row.extra["recovery"]
            print(f"[{row.mode}] correct={row.extra['correct']} "
                  f"overhead={row.extra['recovery_overhead_s']:.3f}s "
                  f"failures={recovery['task_failures']} "
                  f"retries={recovery['task_retries']} "
                  f"lost={recovery['executors_lost']} "
                  f"recomputed={recovery['recomputed_partitions']}")
        if args.json:
            path = write_json_result(args.json, rows_as_json(rows))
            print(f"wrote {path}")
    return 0


def _run_lint(args) -> int:
    """The ``lint`` subcommand: rules + shadow validation + baseline."""
    import json
    import os

    from ..lint import (
        baseline_diff,
        filter_report,
        render_text,
        report_payload,
        run_lint,
        serialize,
        to_sarif,
    )

    try:
        report = run_lint(args.apps, shadow=not args.no_shadow)
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]))
    if args.rules:
        report = filter_report(report, tuple(args.rules))
    payload = report_payload(report)

    if args.update_baseline:
        # One audited command: rewrite the committed baseline from a
        # full run and print exactly what it now contains so the diff
        # is reviewable next to the code change that motivated it.
        target = os.path.join(os.path.dirname(RESULTS_DIR),
                              "baselines", "lint_baseline.json")
        os.makedirs(os.path.dirname(target), exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(serialize(payload))
        total = 0
        for app in payload.get("apps", []):
            count = len(app.get("findings", []))
            total += count
            print(f"  {app['app']:<16} findings={count}")
        print(f"updated baseline {target} "
              f"({len(payload.get('apps', []))} apps, "
              f"{total} findings)")
        return 0

    if args.write_baseline:
        os.makedirs(os.path.dirname(os.path.abspath(args.write_baseline)),
                    exist_ok=True)
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(serialize(payload))
        print(f"wrote baseline {args.write_baseline}")
        return 0

    if args.format == "json":
        print(serialize(payload), end="")
    elif args.format == "sarif":
        print(serialize(to_sarif(report)), end="")
    else:
        print(render_text(report))

    if args.out:
        path = write_json_result(args.out, payload)
        print(f"wrote {path}", file=sys.stderr)

    baseline_path = args.baseline
    if args.check and not baseline_path:
        baseline_path = os.path.join(os.path.dirname(RESULTS_DIR),
                                     "baselines", "lint_baseline.json")
    status = 0
    if baseline_path:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        new_findings = baseline_diff(payload, baseline)
        if new_findings:
            print(f"{len(new_findings)} finding(s) not in baseline "
                  f"{baseline_path}:", file=sys.stderr)
            for identity in new_findings:
                print(f"  {identity}", file=sys.stderr)
            status = 1
    if report.has_errors:
        print("deca-lint: error-severity findings present",
              file=sys.stderr)
        status = 1
    return status


def _sanitize_fixture_checks() -> list[dict]:
    """Drive every seeded DECA30x bug against a live ledger.

    Each fixture from :mod:`repro.lint.fixtures.borrow_bugs` runs with
    its own fresh :class:`ProvenanceLedger` wired into real runtime
    objects (mmap tier, page group, segment registry); the check passes
    when the ledger records at least one violation with exactly the
    slug the fixture's rule maps to.
    """
    import tempfile

    from ..exec.shm import SegmentRef, ShmSegmentRegistry, SharedPageSegment
    from ..lint.fixtures import borrow_bugs
    from ..memory.page import PageGroup
    from ..memory.provenance import ProvenanceLedger
    from ..memory.tier import PageStoreTier

    class _Scratch:
        """Stand-in resizable mapping for the remap fixture."""

        def resize(self, nbytes: int) -> None:
            return None

    rows: list[dict] = []

    def run(rule: str, slug: str, drive) -> None:
        ledger = ProvenanceLedger()
        with tempfile.TemporaryDirectory() as tmp:
            holds = drive(ledger, tmp) or []
            ledger.check_finish()
            count = ledger.counters.get(slug, 0)
            for view in holds:
                try:
                    view.release()
                except BufferError:
                    pass
            borrow_bugs.reset()
        rows.append({"rule": rule, "slug": slug, "violations": count,
                     "fired": count > 0})

    def drive_301(ledger, tmp):
        tier = PageStoreTier(f"{tmp}/t301.bin", ledger=ledger)
        tier.swap_out("fx-uaf", [b"\xaa" * 64])
        view = borrow_bugs.bug_use_after_free_extent(tier)
        held = [view]
        tier.close()
        return held

    def drive_302(ledger, tmp):
        name = "repro-fx-302"
        registry = ShmSegmentRegistry(ledger=ledger)
        seed = SharedPageSegment(name, 4096, create=True)
        registry.register(SegmentRef(name=name, nbytes=4096, count=0))
        view = borrow_bugs.bug_use_after_unlink_segment(
            registry, ledger, name)
        held = [view]
        seed.close()
        return held

    def drive_303(ledger, tmp):
        tier = PageStoreTier(f"{tmp}/t303.bin", ledger=ledger)
        tier.swap_out("fx-df", [b"\xaa" * 64])
        borrow_bugs.bug_double_free(tier)
        tier.close()
        return []

    def drive_304(ledger, tmp):
        tier = PageStoreTier(f"{tmp}/t304.bin", ledger=ledger)
        tier.swap_out("fx-esc", [b"\xaa" * 64])
        group = PageGroup("fx-esc", page_bytes=4096)
        group.ledger = ledger
        borrow_bugs.bug_view_escapes_adoption(tier, group, ledger)
        return []

    def drive_305(ledger, tmp):
        tier = PageStoreTier(f"{tmp}/t305.bin", ledger=ledger)
        tier.swap_out("fx-remap", [b"\xaa" * 64])
        views = borrow_bugs.bug_remap_invalidates_export(
            tier, ledger, _Scratch())
        return list(views)

    def drive_306(ledger, tmp):
        tier = PageStoreTier(f"{tmp}/t306.bin", ledger=ledger)
        tier.swap_out("fx-leak", [b"\xaa" * 64])
        views = borrow_bugs.bug_leak_at_finish(tier, stop_early=True)
        return list(views)

    def drive_307(ledger, tmp):
        entry = borrow_bugs.BadCacheEntry(b"\xaa" * 64)
        borrow_bugs.bug_cross_process_cold_alias(entry, ledger,
                                                 "fx-cold")
        return []

    def drive_308(ledger, tmp):
        group = PageGroup("fx-drain", page_bytes=4096)
        group.append_bytes(b"\xaa" * 48)
        group.ledger = ledger
        borrow_bugs.bug_unreleased_drain_copy(group, ledger)
        return []

    run("DECA301", "use-after-free-extent", drive_301)
    run("DECA302", "use-after-unlink-segment", drive_302)
    run("DECA303", "double-free", drive_303)
    run("DECA304", "view-escapes-adoption", drive_304)
    run("DECA305", "remap-invalidates-export", drive_305)
    run("DECA306", "leak-at-finish", drive_306)
    run("DECA307", "cross-process-cold-alias", drive_307)
    run("DECA308", "unreleased-drain-copy", drive_308)
    return rows


def _race_fixture_checks() -> list[dict]:
    """Drive every seeded DECA40x bug against a live vclock checker.

    Each fixture from :mod:`repro.lint.fixtures.race_bugs` runs with a
    fresh :class:`~repro.obs.vclock.VClockChecker` against real engine
    objects where the protocol needs them (a mmap tier for the
    demote/promote race, a real shm segment for the read-only write, a
    live tracer for the relay) and stubs where only the protocol edge
    matters; the check passes when the checker records at least one
    violation with exactly the slug the fixture's rule maps to.
    """
    import os
    import pickle
    import queue
    import tempfile
    import types

    from multiprocessing import shared_memory

    from ..lint.fixtures import race_bugs
    from ..memory.tier import PageStoreTier
    from ..obs.tracer import TraceEvent, Tracer
    from ..obs.vclock import VClockChecker

    rows: list[dict] = []

    def run(rule: str, slug: str, drive) -> None:
        checker = VClockChecker()
        try:
            drive(checker)
        finally:
            race_bugs.reset()
        count = checker.counters.get(slug, 0)
        rows.append({"rule": rule, "slug": slug, "violations": count,
                     "fired": count > 0})

    def drive_401(checker):
        race_bugs.unlink_races_attach(checker, "repro-racefx-401")

    def drive_402(checker):
        registry = race_bugs.RacyRegistry()
        registry.register("seg")
        registry.release_unlocked(checker, "seg")

    def drive_403(checker):
        with tempfile.TemporaryDirectory() as tmp:
            tier = PageStoreTier(os.path.join(tmp, "t403.bin"))
            tier.swap_out("fx-cold", [b"\xaa" * 64])
            entry = types.SimpleNamespace(cold=False)
            race_bugs.demote_after_free(checker, tier, entry, "fx-cold")
            tier.close()

    def drive_404(checker):
        arena = types.SimpleNamespace(free_bytes=128,
                                      execution_acquire=lambda n: None)
        pending: queue.Queue = queue.Queue()
        pending.put(1)
        race_bugs.stale_pool_write(checker, arena, pending)

    def drive_405(checker):
        checker.fork("worker0")
        checker.note_result_produced("t0", actor="worker0")
        outcome = types.SimpleNamespace(result_blob=pickle.dumps([1, 2]))
        worker = types.SimpleNamespace(join=lambda: None)
        race_bugs.consume_before_join(checker, outcome, worker)

    def drive_406(checker):
        checker.fork("w-live")
        race_bugs.sweep_live_worker(checker, "repro-racefx-none-")

    def drive_407(checker):
        store = types.SimpleNamespace(pick_victim=lambda: "b1",
                                      swap_out=lambda key: None)
        race_bugs.respill_inflight_victim(checker, store, "b1")

    def drive_408(checker):
        seg = shared_memory.SharedMemory(name="repro-racefx-408",
                                         create=True, size=64)
        try:
            race_bugs.write_through_attach(checker, "repro-racefx-408",
                                           b"\xff" * 8)
        finally:
            race_bugs.reset()
            seg.close()
            seg.unlink()

    def drive_409(checker):
        event = TraceEvent(name="x", category="task", phase="i",
                           ts_ms=1.0)
        race_bugs.relay_unanchored(checker, Tracer(), event, 100.0)

    def drive_410(checker):
        arena = types.SimpleNamespace(grant=lambda task: None)
        race_bugs.double_grant(checker, arena, "7")

    run("DECA401", "unlink-concurrent-with-attach", drive_401)
    run("DECA402", "refcount-outside-lock", drive_402)
    run("DECA403", "demote-promote-race", drive_403)
    run("DECA404", "borrow-evict-lost-update", drive_404)
    run("DECA405", "wave-barrier-bypass", drive_405)
    run("DECA406", "orphan-sweep-live-worker", drive_406)
    run("DECA407", "reentrant-spill-victim", drive_407)
    run("DECA408", "readonly-page-write", drive_408)
    run("DECA409", "trace-relay-reorder", drive_409)
    run("DECA410", "double-grant", drive_410)
    return rows


def _run_sanitize(args) -> int:
    """The ``sanitize`` subcommand: prove every DECA30x rule live.

    Two halves: (1) seeded-bug fixtures must each trip the runtime
    sanitizer with exactly their violation slug; (2) the clean WC and
    PageRank workloads must run to completion under ``sanitize=True``
    with ``cold_tier="mmap"`` on every requested backend, recording
    zero violations.
    """
    import random

    from ..apps.pagerank import run_pagerank
    from ..apps.wordcount import run_wordcount
    from ..config import DecaConfig

    status = 0
    fixture_rows = _sanitize_fixture_checks()
    print("repro.bench sanitize · seeded-bug fixtures")
    for row in fixture_rows:
        verdict = "fired" if row["fired"] else "MISSED"
        print(f"  {row['rule']} {row['slug']:<28} "
              f"violations={row['violations']:>2}  {verdict}")
        if not row["fired"]:
            status = 1

    race_rows = _race_fixture_checks()
    print("repro.bench sanitize · seeded race fixtures (vclock)")
    for row in race_rows:
        verdict = "fired" if row["fired"] else "MISSED"
        print(f"  {row['rule']} {row['slug']:<28} "
              f"violations={row['violations']:>2}  {verdict}")
        if not row["fired"]:
            status = 1

    clean_cells: list[dict] = []
    if not args.fixtures_only:
        rng = random.Random(args.seed)
        words = [f"w{rng.randrange(2_000)}" for _ in range(40_000)]
        edges = sorted({(rng.randrange(400), rng.randrange(400))
                        for _ in range(2_000)})
        print("repro.bench sanitize · clean runs "
              "(deca mode, cold_tier=mmap)")
        for backend in args.backends:
            for app in ("wc", "pr"):
                cfg = DecaConfig(mode=ExecutionMode.DECA,
                                 execution_backend=backend,
                                 cold_tier="mmap", sanitize=True)
                try:
                    if app == "wc":
                        run = run_wordcount(words, cfg, num_partitions=4)
                    else:
                        run = run_pagerank(edges, cfg, iterations=3,
                                           num_partitions=4)
                    counters = dict(run.metrics.sanitize)
                    violations = counters.get("violations", 0)
                    race_violations = run.metrics.race.get(
                        "violations", 0)
                except Exception as exc:   # SanitizerError included
                    counters = {}
                    violations = -1
                    race_violations = -1
                    print(f"  {app}/{backend}: FAILED ({exc})",
                          file=sys.stderr)
                clean = violations == 0 and race_violations == 0
                clean_cells.append({
                    "app": app, "backend": backend,
                    "violations": violations,
                    "race_violations": race_violations,
                    "borrows": counters.get("borrows", 0),
                    "frees": counters.get("frees", 0),
                    "clean": clean,
                })
                if not clean:
                    status = 1
                else:
                    print(f"  {app}/{backend}: clean "
                          f"(borrows={counters.get('borrows', 0)} "
                          f"frees={counters.get('frees', 0)} "
                          f"violations=0 race_violations=0)")

    if args.json:
        path = write_json_result(args.json, {
            "fixtures": fixture_rows,
            "race_fixtures": race_rows,
            "clean_runs": clean_cells,
            "ok": status == 0,
        })
        print(f"wrote {path}")
    if status == 0:
        print("sanitize: all rules fired on fixtures; clean runs clean")
    else:
        print("sanitize: FAILURES (see above)", file=sys.stderr)
    return status


def _run_memory(args) -> int:
    """The ``memory`` subcommand: the static-vs-unified arena ablation."""
    mode = {m.value: m for m in ExecutionMode}[args.mode]
    rows = []
    for workload in args.workloads:
        for memory_mode in args.memory_modes:
            row = run_memory_point(workload, memory_mode, mode)
            # Present the arena mode alongside the workload point.
            rows.append(row)
    print(rows_as_table("repro.bench memory", rows))
    print()
    for row in rows:
        summary = row.extra["memory"]
        events = summary["events"]
        arena = summary["arena"]
        print(f"[{row.label} {row.extra['memory_mode']}] "
              f"spills={events.get('shuffle:spill', 0)} "
              f"merge_spills={events.get('shuffle:merge-spill', 0)} "
              f"spilled_bytes={summary['spilled_bytes']} "
              f"swapouts={events.get('cache:swap-out', 0)} "
              f"borrows={arena.get('borrow_events', 0)} "
              f"evicts={arena.get('evict_events', 0)} "
              f"rejects={events.get('memory:reject', 0)}")
    if args.json:
        path = write_json_result(args.json, rows_as_json(rows))
        print(f"wrote {path}")
    return 0


def _run_tier(args) -> int:
    """The ``tier`` subcommand: the heap-vs-mmap cold-tier ablation.

    Runs the same LR occupancy point once per cold tier and reports
    where the swap traffic went: the heap tier round-trips Deca page
    bytes through accounted heap copies (``swap_copy_bytes``), the
    mmap tier moves them into file-backed extents
    (``tier_bytes_moved``) with zero heap copies.  Results must be
    byte-identical — the tier only changes where cold bytes live.
    """
    mode = {m.value: m for m in ExecutionMode}[args.mode]
    cells: list[dict] = []
    for tier in args.tiers:
        row = run_tier_point(tier, args.label, mode)
        summary = row.extra["tier"]
        cells.append({
            "cold_tier": tier, "label": args.label, "mode": mode.value,
            "exec_s": round(row.exec_s, 4),
            "gc_s": round(row.gc_s, 4),
            "digest": row.extra["digest"],
            "swapouts": summary["events"].get("cache:swap-out", 0),
            "swapped_bytes": summary["swapped_bytes"],
            "swap_copy_bytes": summary["swap_copy_bytes"],
            "tier_bytes_moved": summary["tier_bytes_moved"],
            "tier_stats": summary["tier"],
        })

    header = (f"{'tier':<6} {'exec(s)':>8} {'swapouts':>9} "
              f"{'swapped':>10} {'heap-copies':>12} "
              f"{'tier-moved':>11}  digest")
    print(f"repro.bench tier · LR {args.label} · mode={mode.value}")
    print(header)
    print("-" * len(header))
    for cell in cells:
        print(f"{cell['cold_tier']:<6} {cell['exec_s']:>8.3f} "
              f"{cell['swapouts']:>9} {cell['swapped_bytes']:>10} "
              f"{cell['swap_copy_bytes']:>12} "
              f"{cell['tier_bytes_moved']:>11}  {cell['digest']}")

    status = 0
    digests = {cell["cold_tier"]: cell["digest"] for cell in cells}
    if len(set(digests.values())) > 1:
        print(f"MISMATCH: results differ across tiers: {digests}",
              file=sys.stderr)
        status = 1
    elif len(digests) > 1:
        print(f"equivalence: results identical across {sorted(digests)}")
    if args.check and mode is ExecutionMode.DECA:
        by_tier = {cell["cold_tier"]: cell for cell in cells}
        heap_cell = by_tier.get("heap")
        mmap_cell = by_tier.get("mmap")
        if heap_cell is not None and heap_cell["swap_copy_bytes"] <= 0:
            print("tier check: heap tier charged no swap copies "
                  "(the point never swapped — raise the label)",
                  file=sys.stderr)
            status = 1
        if mmap_cell is not None:
            if mmap_cell["swap_copy_bytes"] != 0:
                print(f"tier check: mmap tier charged "
                      f"{mmap_cell['swap_copy_bytes']} heap-copy bytes "
                      f"on the Deca path (must be zero)", file=sys.stderr)
                status = 1
            if mmap_cell["tier_bytes_moved"] <= 0:
                print("tier check: mmap tier moved no bytes",
                      file=sys.stderr)
                status = 1

    if args.json:
        path = write_json_result(args.json, {
            "label": args.label,
            "mode": mode.value,
            "cells": cells,
            "equivalent": len(set(digests.values())) <= 1,
        })
        print(f"wrote {path}")
    return status if args.check else 0


def _run_sql(args) -> int:
    """The ``sql`` subcommand: the row-vs-columnar layout ablation.

    Runs the TPC-H-flavoured suite once per cache layout and compares
    per-query result digests (must be identical — layout changes byte
    arrangement, not answers) and simulated wall times (columnar
    kernels touch one column run per value, row kernels reconstruct
    the record).  Unless ``--no-swap``, a third leg demotes the
    columnar cache to the mmap tier and re-runs every query from
    promoted pages: digests must still match, with zero serializer
    bytes and a clean provenance ledger.
    """
    cells = {layout: run_sql_point(layout, args.rankings,
                                   args.uservisits)
             for layout in args.layouts}

    names = sorted(next(iter(cells.values()))["digests"])
    header = (f"{'layout':<9} " + "".join(f"{name + '(ms)':>12}"
                                          for name in names)
              + f" {'cached(B)':>10}  digests")
    print(f"repro.bench sql · rankings={args.rankings} "
          f"uservisits={args.uservisits}")
    print(header)
    print("-" * len(header))
    for layout, cell in cells.items():
        walls = "".join(f"{cell['wall_ms'][name]:>12.4f}"
                        for name in names)
        joined = ",".join(cell["digests"][name][:8] for name in names)
        print(f"{layout:<9} {walls} {cell['cached_bytes']:>10}  "
              f"{joined}")

    status = 0
    if len(cells) > 1:
        mismatched = [name for name in names
                      if len({cell["digests"][name]
                              for cell in cells.values()}) > 1]
        if mismatched:
            print(f"MISMATCH: layouts disagree on {mismatched}",
                  file=sys.stderr)
            status = 1
        else:
            print(f"equivalence: digests identical across "
                  f"{sorted(cells)}")

    if args.check and {"row", "columnar"} <= cells.keys():
        slower = [name for name in ("scan", "filter", "groupby")
                  if cells["columnar"]["wall_ms"][name]
                  >= cells["row"]["wall_ms"][name]]
        if slower:
            print(f"sql check: columnar kernels not faster on "
                  f"{slower}", file=sys.stderr)
            status = 1

    swap = None
    if not args.no_swap:
        swap = run_sql_swap_roundtrip(args.rankings, args.uservisits)
        print(f"swap roundtrip: moved_out={swap['bytes_moved_out']} "
              f"moved_in={swap['bytes_moved_in']} "
              f"serializer_copies={swap['swap_copy_bytes']} "
              f"ledger_violations={swap['ledger_violations']} "
              f"digests_match={swap['digests_match']}")
        if args.check:
            if not swap["digests_match"]:
                print("sql check: swap roundtrip changed query results",
                      file=sys.stderr)
                status = 1
            if swap["bytes_moved_out"] <= 0:
                print("sql check: demotion moved no bytes",
                      file=sys.stderr)
                status = 1
            if swap["swap_copy_bytes"] != 0:
                print(f"sql check: swap roundtrip charged "
                      f"{swap['swap_copy_bytes']} serializer bytes "
                      f"(must be zero on the mmap tier)",
                      file=sys.stderr)
                status = 1
            if swap["ledger_violations"] != 0:
                print(f"sql check: provenance ledger recorded "
                      f"{swap['ledger_violations']} violation(s)",
                      file=sys.stderr)
                status = 1

    if args.json:
        path = write_json_result(args.json, {
            "rankings_rows": args.rankings,
            "uservisits_rows": args.uservisits,
            "cells": cells,
            "swap_roundtrip": swap,
            "ok": status == 0,
        })
        print(f"wrote {path}")
    return status if args.check else 0


def _run_backend(args) -> int:
    """The ``backend`` subcommand: the sim-vs-mp ablation.

    Runs the same seeded WC / PageRank inputs under each backend and
    reports *real* wall seconds plus the cross-process traffic counters
    — ``bytes_pickled_records`` should be ~0 wherever the optimizer
    decomposed the data (those payloads travel as shared segments,
    ``bytes_shared``).  Sorted-result sha256 digests feed the CI
    equivalence step.
    """
    import hashlib
    import json
    import os
    import random
    import time

    from ..apps.pagerank import run_pagerank
    from ..apps.wordcount import run_wordcount
    from ..config import DecaConfig

    mode = {m.value: m for m in ExecutionMode}[args.mode]
    rng = random.Random(args.seed)
    words = [f"w{rng.randrange(args.keys)}" for _ in range(args.words)]
    edges = sorted({(rng.randrange(args.nodes), rng.randrange(args.nodes))
                    for _ in range(args.edges)})

    def digest_of(items: list) -> str:
        payload = json.dumps(sorted(repr(item) for item in items))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    cells: list[dict] = []
    digests: dict[str, dict[str, str]] = {}
    for app in args.apps:
        for backend in args.backends:
            cfg = DecaConfig(mode=mode, execution_backend=backend)
            start = time.perf_counter()
            if app == "wc":
                run = run_wordcount(words, cfg,
                                    num_partitions=args.partitions)
                items = sorted(run.result.items())
            else:
                run = run_pagerank(edges, cfg,
                                   iterations=args.iterations,
                                   num_partitions=args.partitions)
                items = sorted(run.result)
            wall_s = time.perf_counter() - start
            stats = dict(run.metrics.backend)
            digest = digest_of(items)
            digests.setdefault(app, {})[backend] = digest
            cells.append({
                "app": app, "backend": backend, "mode": mode.value,
                "wall_s": round(wall_s, 4), "digest": digest,
                "bytes_pickled_records": stats.get(
                    "bytes_pickled_records", 0),
                "bytes_pickled_results": stats.get(
                    "bytes_pickled_results", 0),
                "bytes_shared": stats.get("bytes_shared", 0),
                "segments_created": stats.get("segments_created", 0),
                "mp_tasks": stats.get("mp_tasks", 0),
            })

    header = (f"{'app':<4} {'backend':<8} {'wall(s)':>8} "
              f"{'pickled-rec':>12} {'pickled-res':>12} "
              f"{'shared':>10} {'segs':>5}  digest")
    print(f"repro.bench backend · mode={mode.value}")
    print(header)
    print("-" * len(header))
    for cell in cells:
        print(f"{cell['app']:<4} {cell['backend']:<8} "
              f"{cell['wall_s']:>8.3f} "
              f"{cell['bytes_pickled_records']:>12} "
              f"{cell['bytes_pickled_results']:>12} "
              f"{cell['bytes_shared']:>10} "
              f"{cell['segments_created']:>5}  "
              f"{cell['digest'][:16]}")

    if args.digest_dir:
        os.makedirs(args.digest_dir, exist_ok=True)
        for app, per_backend in digests.items():
            for backend, digest in per_backend.items():
                path = os.path.join(args.digest_dir,
                                    f"{app}_{backend}.digest")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(digest + "\n")
        print(f"wrote digests to {args.digest_dir}/")

    status = 0
    for app, per_backend in digests.items():
        if len(set(per_backend.values())) > 1:
            print(f"MISMATCH: {app} results differ across backends: "
                  f"{per_backend}", file=sys.stderr)
            status = 1
        else:
            print(f"equivalence: {app} identical across "
                  f"{sorted(per_backend)}")
    if args.check and mode is ExecutionMode.DECA:
        for cell in cells:
            if cell["backend"] != "mp":
                continue
            if cell["app"] == "wc" \
                    and cell["bytes_pickled_records"] != 0:
                # WC's shuffle is fully decomposed: every record byte
                # must have crossed in shared pages.
                print(f"zero-copy violation: wc/mp pickled "
                      f"{cell['bytes_pickled_records']} record bytes",
                      file=sys.stderr)
                status = 1
            if cell["bytes_shared"] <= 0:
                print(f"zero-copy violation: {cell['app']}/mp moved no "
                      f"bytes through shared segments", file=sys.stderr)
                status = 1

    if args.json:
        path = write_json_result(args.json, {
            "mode": mode.value,
            "seed": args.seed,
            "cells": cells,
            "equivalent": status == 0,
        })
        print(f"wrote {path}")
    return status if args.check else 0


def _run_trace(args) -> int:
    """The ``trace`` subcommand: run, export, summarize."""
    from ..config import FaultConfig

    faults = None
    if args.kill_prob > 0.0:
        faults = FaultConfig(seed=args.seed,
                             task_kill_prob=args.kill_prob)
    mode = {m.value: m for m in ExecutionMode}[args.mode]
    row = run_trace_point(mode, words=args.words, keys=args.keys,
                          faults=faults)
    tracer = row.extra["run"].ctx.tracer
    path = write_json_result(args.json, chrome_trace(tracer))
    print(rows_as_table("repro.bench trace", [row]))
    print()
    print(utilization_summary(tracer, title="executor utilization"))
    categories = sorted({e.category for e in tracer.events})
    print(f"\n{len(tracer.events)} events "
          f"({', '.join(categories)})")
    print(f"wrote {path} — open in about://tracing or ui.perfetto.dev")
    return 0


if __name__ == "__main__":
    sys.exit(main())
