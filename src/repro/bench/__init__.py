"""Benchmark harness: scaled scenarios for every table and figure.

:mod:`repro.bench.harness` defines the scaled-down workload points (the
paper's "40GB"/"80GB"/... labels mapped to record counts that land in the
same heap-occupancy regimes) and runs each application under the three
modes; :mod:`repro.bench.report` renders the rows/series the paper's
tables and figures report.
"""

from .harness import (
    FigureRow,
    GraphScale,
    LR_SIZES,
    WC_SIZES,
    lr_records_for,
    run_graph_point,
    run_lr_point,
    run_kmeans_point,
    run_wc_point,
)
from .report import format_table, write_result

__all__ = [
    "FigureRow",
    "GraphScale",
    "LR_SIZES",
    "WC_SIZES",
    "lr_records_for",
    "run_graph_point",
    "run_lr_point",
    "run_kmeans_point",
    "run_wc_point",
    "format_table",
    "write_result",
]
