"""Scaled workload points for the paper's experiments.

The cluster in the paper has 4 workers with 20–30 GB heaps; the datasets
range from 2 GB to 200 GB.  Everything here is scaled by roughly 10⁴ while
preserving the *occupancy regimes* that drive each figure:

* a "40 GB" dataset fills ~45 % of the old generation in object form —
  full collections are rare;
* an "80 GB" dataset fills ~90 % — the futile-full-GC regime of §2.2
  where Spark burns most of its time tracing live cached objects;
* "100/200 GB" datasets exceed the storage budget — the swapping regime
  of Appendix C.

Each ``run_*_point`` executes one application under one mode with the
family's fixed heap and returns a :class:`FigureRow` carrying the metrics
the tables/figures report.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field
from typing import Any

from ..config import (
    DecaConfig,
    ExecutionMode,
    FaultConfig,
    GcAlgorithm,
    MB,
    ScriptedFault,
)
from ..data import (
    clustered_points,
    labeled_points,
    power_law_graph,
    random_words,
)
from ..apps.common import AppRun
from ..apps.connected_components import run_connected_components
from ..apps.kmeans import run_kmeans
from ..apps.logistic_regression import run_logistic_regression
from ..apps.pagerank import run_pagerank
from ..apps.wordcount import run_wordcount


@dataclass(frozen=True)
class FigureRow:
    """One data point of a table or figure."""

    app: str
    label: str
    mode: str
    exec_s: float
    gc_s: float
    cached_mb: float = 0.0
    swapped_mb: float = 0.0
    full_gcs: int = 0
    minor_gcs: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def gc_fraction(self) -> float:
        return self.gc_s / self.exec_s if self.exec_s > 0 else 0.0


def _row(app: str, label: str, mode: ExecutionMode, run: AppRun,
         **extra: Any) -> FigureRow:
    metrics = run.metrics
    return FigureRow(
        app=app, label=label, mode=mode.value,
        exec_s=metrics.wall_ms / 1000.0,
        gc_s=metrics.gc_pause_ms / 1000.0,
        cached_mb=run.cached_bytes / MB,
        swapped_mb=run.swapped_cache_bytes / MB,
        full_gcs=metrics.full_gc_count,
        minor_gcs=metrics.minor_gc_count,
        extra=dict(extra),
    )


# ---------------------------------------------------------------------------
# LR / KMeans family (Fig. 9, Tables 3–5)
# ---------------------------------------------------------------------------

LR_HEAP_MB = 4
LR_EXECUTORS = 2
LR_DIMENSIONS = 10
LR_PARTITIONS = 8
# Bytes of one 10-dim LabeledPoint in object form: 24 (LP) + 32 (DV)
# + 96 (double[10]) — see Fig. 2.
_LR_OBJECT_BYTES = 152

# Paper label -> old-generation occupancy of the Spark object cache.
LR_SIZES: dict[str, float] = {
    "40GB": 0.45,
    "60GB": 0.65,
    "80GB": 0.90,
    "100GB": 1.15,
    "200GB": 2.30,
}


def lr_config(mode: ExecutionMode, heap_mb: int = LR_HEAP_MB,
              **overrides: Any) -> DecaConfig:
    defaults: dict[str, Any] = dict(
        mode=mode, heap_bytes=heap_mb * MB, num_executors=LR_EXECUTORS,
        tasks_per_executor=2, page_bytes=256 * 1024,
        young_fraction=0.25,
        # The paper gives 90% of the memory to data caching in the
        # caching-only experiments (§6.2).
        storage_fraction=0.9, shuffle_fraction=0.1)
    defaults.update(overrides)
    return DecaConfig(**defaults)


def lr_records_for(label: str, heap_mb: int = LR_HEAP_MB,
                   dimensions: int = LR_DIMENSIONS) -> int:
    """Record count that lands the Spark object cache at the label's
    old-generation occupancy."""
    occupancy = LR_SIZES[label]
    old_bytes = heap_mb * MB * 0.75
    object_bytes = 24 + 32 + (16 + 8 * dimensions + 7) // 8 * 8
    total = occupancy * old_bytes * LR_EXECUTORS
    return max(100, int(total / object_bytes))


def run_lr_point(label: str, mode: ExecutionMode, iterations: int = 5,
                 dimensions: int = LR_DIMENSIONS,
                 heap_mb: int = LR_HEAP_MB,
                 profile: bool = False,
                 **config_overrides: Any) -> FigureRow:
    records = lr_records_for(label, heap_mb, dimensions)
    data = labeled_points(records, dimensions)
    if profile:
        # Sample densely enough for the run's simulated duration.
        config_overrides.setdefault("profiler_period_ms", 5.0)
    config = lr_config(mode, heap_mb, **config_overrides)
    run = run_logistic_regression(data, config, iterations=iterations,
                                  num_partitions=LR_PARTITIONS,
                                  profile=profile)
    row = _row("LR", label, mode, run, records=records)
    row.extra["run"] = run
    return row


def run_kmeans_point(label: str, mode: ExecutionMode, k: int = 4,
                     iterations: int = 5,
                     dimensions: int = LR_DIMENSIONS,
                     heap_mb: int = LR_HEAP_MB,
                     **config_overrides: Any) -> FigureRow:
    records = lr_records_for(label, heap_mb, dimensions)
    data = clustered_points(records, dimensions, clusters=k)
    config = lr_config(mode, heap_mb, **config_overrides)
    run = run_kmeans(data, k=k, config=config, iterations=iterations,
                     num_partitions=LR_PARTITIONS)
    return _row("KMeans", label, mode, run, records=records)


# ---------------------------------------------------------------------------
# WordCount family (Fig. 8)
# ---------------------------------------------------------------------------

WC_HEAP_MB = 3
# Paper label -> (words, unique keys); "10M"/"100M" key variants scale to
# small/large shuffle-buffer populations.
WC_SIZES: dict[tuple[str, str], tuple[int, int]] = {
    ("50GB", "10M"): (30_000, 1_000),
    ("100GB", "10M"): (60_000, 1_000),
    ("150GB", "10M"): (90_000, 1_000),
    ("50GB", "100M"): (30_000, 10_000),
    ("100GB", "100M"): (60_000, 20_000),
    ("150GB", "100M"): (90_000, 30_000),
}


def run_wc_point(size_label: str, keys_label: str, mode: ExecutionMode,
                 profile: bool = False,
                 **config_overrides: Any) -> FigureRow:
    words, keys = WC_SIZES[(size_label, keys_label)]
    data = random_words(words, keys)
    if profile:
        config_overrides.setdefault("profiler_period_ms", 2.0)
    defaults: dict[str, Any] = dict(
        mode=mode, heap_bytes=WC_HEAP_MB * MB, num_executors=2,
        tasks_per_executor=2, page_bytes=256 * 1024,
        storage_fraction=0.2, shuffle_fraction=0.8)
    defaults.update(config_overrides)
    run = run_wordcount(data, DecaConfig(**defaults), num_partitions=4,
                        profile=profile)
    row = _row("WC", f"{size_label}/{keys_label}", mode, run,
               words=words, keys=keys)
    row.extra["run"] = run
    return row


# ---------------------------------------------------------------------------
# PageRank / ConnectedComponent family (Fig. 10)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GraphScale:
    """A scaled stand-in for one of Table 2's graphs."""

    name: str
    label: str
    vertices: int
    edges: int


GRAPH_SCALES: dict[str, GraphScale] = {
    "LJ": GraphScale("LiveJournal", "LJ(2GB)", 4_800, 34_000),
    "WB": GraphScale("WebBase", "WB(30GB)", 11_800, 100_000),
    "HB": GraphScale("HiBench", "HB(60GB)", 30_000, 200_000),
    "Pokec": GraphScale("Pokec", "Pokec", 1_600, 15_000),
}

GRAPH_HEAP_MB = 2.5


def graph_config(mode: ExecutionMode, heap_mb: float = GRAPH_HEAP_MB,
                 **overrides: Any) -> DecaConfig:
    defaults: dict[str, Any] = dict(
        mode=mode, heap_bytes=int(heap_mb * MB), num_executors=2,
        tasks_per_executor=2, page_bytes=128 * 1024,
        storage_fraction=0.4, shuffle_fraction=0.6)
    defaults.update(overrides)
    return DecaConfig(**defaults)


def run_graph_point(app: str, scale_key: str, mode: ExecutionMode,
                    iterations: int = 3,
                    **config_overrides: Any) -> FigureRow:
    """Run PR or CC on one scaled graph."""
    scale = GRAPH_SCALES[scale_key]
    edges = power_law_graph(scale.vertices, scale.edges)
    config = graph_config(mode, **config_overrides)
    if app == "PR":
        run = run_pagerank(edges, config, iterations=iterations,
                           num_partitions=8)
    elif app == "CC":
        run = run_connected_components(edges, config,
                                       iterations=iterations,
                                       num_partitions=8)
    else:
        raise ValueError(f"unknown graph app {app!r}")
    return _row(app, scale.label, mode, run,
                vertices=scale.vertices, edges=scale.edges)


# ---------------------------------------------------------------------------
# GC tuning points (Table 4)
# ---------------------------------------------------------------------------

def run_lr_tuning_point(storage_fraction: float,
                        algorithm: GcAlgorithm,
                        label: str = "80GB") -> FigureRow:
    shuffle = round(1.0 - storage_fraction, 2)
    return run_lr_point(
        label, ExecutionMode.SPARK,
        storage_fraction=storage_fraction,
        shuffle_fraction=min(shuffle, 1.0 - storage_fraction),
        gc_algorithm=algorithm)


def run_pr_tuning_point(storage_fraction: float,
                        algorithm: GcAlgorithm,
                        scale_key: str = "WB") -> FigureRow:
    return run_graph_point(
        "PR", scale_key, ExecutionMode.SPARK,
        storage_fraction=storage_fraction,
        shuffle_fraction=round(1.0 - storage_fraction, 2),
        gc_algorithm=algorithm)


# ---------------------------------------------------------------------------
# Trace point (repro.obs demonstration workload)
# ---------------------------------------------------------------------------

def run_trace_point(mode: ExecutionMode = ExecutionMode.SPARK,
                    words: int = 20_000, keys: int = 2_000,
                    faults: FaultConfig | None = None,
                    **config_overrides: Any) -> FigureRow:
    """A WordCount variant sized to exercise every traced code path.

    The input lines are cached under a storage budget too small to hold
    them (cache swap-outs), the shuffle budget is tiny (map-side spills)
    and two jobs run over the same lineage (cache re-reads, multiple
    job/stage spans) — so one run's trace contains job, stage and task
    spans plus GC, spill and swap events.  ``extra["run"]`` carries the
    :class:`~repro.apps.common.AppRun`, whose context owns the tracer.
    """
    from ..spark import DecaContext
    from ..spark.metrics import RunMetrics

    defaults: dict[str, Any] = dict(
        mode=mode, heap_bytes=3 * MB, num_executors=2,
        tasks_per_executor=2, page_bytes=128 * 1024,
        storage_fraction=0.05, shuffle_fraction=0.05)
    defaults.update(config_overrides)
    if faults is not None:
        defaults["faults"] = faults
    ctx = DecaContext(DecaConfig(**defaults))
    data = random_words(words, keys)
    lines = ctx.text_file(data, 4, name="trace.input").cache()
    counts = lines.map(lambda word: (word, 1), name="trace.pairs") \
                  .reduce_by_key(lambda a, b: a + b, 4,
                                 name="trace.counts")
    total_words = lines.count()          # job 0: materialize the cache
    result = dict(counts.collect())      # job 1: shuffle over cached input
    metrics: RunMetrics = ctx.finish()
    run = AppRun(result={"words": total_words, "counts": result},
                 metrics=metrics, ctx=ctx)
    row = _row("WC-TRACE", f"{words}w/{keys}k", mode, run,
               words=words, keys=keys)
    row.extra["run"] = run
    return row


# ---------------------------------------------------------------------------
# Memory-arena ablation points (static vs unified, docs/memory_model.md)
# ---------------------------------------------------------------------------

# Workload key -> what regime it stresses.
MEMORY_WORKLOADS: tuple[str, ...] = ("shuffle-heavy", "cache-heavy")


def memory_summary(run: AppRun) -> dict[str, Any]:
    """Deterministic, integer-only accounting summary of one run.

    Aggregates the ``memory:*`` trace events, the spill/swap events of
    the legacy planes, and (in unified mode) the per-executor arena
    counters — the payload the ``repro.bench memory`` determinism job
    byte-compares across seeded runs.
    """
    events: dict[str, int] = {}
    spilled_bytes = 0
    swapped_bytes = 0
    for event in run.ctx.tracer.events:
        if event.category == "memory":
            events[event.name] = events.get(event.name, 0) + 1
        elif event.name in ("shuffle:spill", "shuffle:merge-spill"):
            events[event.name] = events.get(event.name, 0) + 1
            spilled_bytes += int(event.args.get("spilled_bytes", 0))
        elif event.name == "cache:swap-out":
            events[event.name] = events.get(event.name, 0) + 1
            swapped_bytes += int(event.args.get("released_bytes", 0))
    arena: dict[str, int] = {}
    for executor in run.ctx.executors:
        snapshot = getattr(executor.arena, "snapshot", None)
        if snapshot is None:
            continue
        for key, value in snapshot().items():
            arena[key] = arena.get(key, 0) + value
    return {
        "events": dict(sorted(events.items())),
        "spilled_bytes": spilled_bytes,
        "swapped_cache_bytes": swapped_bytes,
        "arena": dict(sorted(arena.items())),
    }


def run_memory_point(workload: str, memory_mode: str,
                     mode: ExecutionMode = ExecutionMode.SPARK,
                     **config_overrides: Any) -> FigureRow:
    """One memory-ablation point: a workload under one ``memory_mode``.

    * ``shuffle-heavy`` — WordCount with a shuffle budget far below its
      buffer population: static mode spills repeatedly, unified mode
      grows execution grants into the arena instead.
    * ``cache-heavy`` — the two-job traced WordCount whose cached input
      exceeds the storage region: unified mode borrows for the cache and
      then evicts it back when execution demands (borrow + evict
      events); static mode fail-fast-rejects the oversized blocks.
    """
    overrides = dict(config_overrides)
    overrides["memory_mode"] = memory_mode
    if workload == "shuffle-heavy":
        overrides.setdefault("storage_fraction", 0.05)
        overrides.setdefault("shuffle_fraction", 0.05)
        row = run_wc_point("100GB", "100M", mode, **overrides)
    elif workload == "cache-heavy":
        row = run_trace_point(mode, words=90_000, keys=2_000, **overrides)
    else:
        raise ValueError(f"unknown memory workload {workload!r}; "
                         f"choose from {MEMORY_WORKLOADS}")
    run: AppRun = row.extra["run"]
    row.extra["memory_mode"] = memory_mode
    row.extra["memory"] = memory_summary(run)
    return row


def run_memory_ablation(mode: ExecutionMode = ExecutionMode.SPARK,
                        **config_overrides: Any
                        ) -> dict[str, dict[str, FigureRow]]:
    """Every workload × memory mode (the full static-vs-unified grid)."""
    grid: dict[str, dict[str, FigureRow]] = {}
    for workload in MEMORY_WORKLOADS:
        grid[workload] = {
            memory_mode: run_memory_point(workload, memory_mode, mode,
                                          **config_overrides)
            for memory_mode in ("static", "unified")
        }
    return grid


# ---------------------------------------------------------------------------
# Cold-tier ablation points (heap vs mmap, docs/memory_model.md)
# ---------------------------------------------------------------------------

COLD_TIERS: tuple[str, ...] = ("heap", "mmap")


def result_digest(result: Any) -> str:
    """Stable digest of a job result (tier modes must agree on it)."""
    return hashlib.sha256(repr(result).encode()).hexdigest()[:16]


def tier_summary(run: AppRun) -> dict[str, Any]:
    """Deterministic summary of one run's swap traffic by cold tier.

    Counts the swap and ``tier:*`` events, the serializer's swap-copy
    byte counter (the Deca-path heap-copy cost the mmap tier removes)
    and the summed :class:`~repro.memory.tier.TierStats` — integers and
    fixed-precision sums only, no file paths, so two seeded runs
    byte-compare equal.
    """
    events: dict[str, int] = {}
    swapped_bytes = 0
    tier_moved = 0
    for event in run.ctx.tracer.events:
        if event.category in ("tier", "io.tier") \
                or event.name.startswith("cache:swap"):
            events[event.name] = events.get(event.name, 0) + 1
        if event.name == "cache:swap-out":
            swapped_bytes += int(event.args.get("released_bytes", 0))
            tier_moved += int(event.args.get("tier_bytes", 0))
    swap_copy = sum(e.serializer.swap_copy_bytes_total
                    for e in run.ctx.executors)
    return {
        "cold_tier": run.ctx.config.cold_tier,
        "events": dict(sorted(events.items())),
        "swapped_bytes": swapped_bytes,
        "tier_bytes_moved": tier_moved,
        "swap_copy_bytes": swap_copy,
        "tier": dict(sorted(run.metrics.tier.items())),
    }


def run_tier_point(cold_tier: str, label: str = "200GB",
                   mode: ExecutionMode = ExecutionMode.DECA,
                   **config_overrides: Any) -> FigureRow:
    """One cold-tier ablation point: LR in the swapping regime.

    The default "200GB" point runs the object cache at ~2.3x the old
    generation, so cached page groups are evicted and promoted all run
    long — exactly the traffic the tier moves.  Results must be
    byte-identical across tiers (only where the cold bytes live and
    what the moves cost may differ).
    """
    if cold_tier not in COLD_TIERS:
        raise ValueError(f"unknown cold tier {cold_tier!r}; "
                         f"choose from {COLD_TIERS}")
    overrides = dict(config_overrides)
    overrides["cold_tier"] = cold_tier
    row = run_lr_point(label, mode, **overrides)
    run: AppRun = row.extra["run"]
    row.extra["cold_tier"] = cold_tier
    row.extra["tier"] = tier_summary(run)
    row.extra["digest"] = result_digest(run.result)
    return row


def run_tier_ablation(label: str = "200GB",
                      mode: ExecutionMode = ExecutionMode.DECA,
                      **config_overrides: Any) -> dict[str, FigureRow]:
    """Both cold tiers on the same point (the heap-vs-mmap ablation)."""
    return {tier: run_tier_point(tier, label, mode, **config_overrides)
            for tier in COLD_TIERS}


# ---------------------------------------------------------------------------
# SQL layout points (row vs columnar ablation, docs/sql_engine.md)
# ---------------------------------------------------------------------------

SQL_LAYOUTS = ("row", "columnar")


def run_sql_point(layout: str, rankings_rows: int = 4_000,
                  uservisits_rows: int = 8_000,
                  **config_overrides: Any) -> dict[str, Any]:
    """The TPC-H-flavoured suite under one cache layout.

    Runs every suite query on one engine whose relations were cached
    with *layout* and reports per-query result digests and simulated
    wall times.  The layouts must agree on every digest — the layout
    changes how cached bytes are arranged, never what the kernels
    compute.
    """
    if layout not in SQL_LAYOUTS:
        raise ValueError(f"unknown SQL layout {layout!r}; "
                         f"choose from {SQL_LAYOUTS}")
    from ..apps.sql_queries import make_suite_engine, suite_queries
    from ..data import rankings_table, uservisits_table

    config = DecaConfig(**config_overrides)
    digests: dict[str, str] = {}
    walls: dict[str, float] = {}
    with make_suite_engine(rankings_table(rankings_rows),
                           uservisits_table(uservisits_rows),
                           config, layout=layout) as engine:
        cached_bytes = engine.cached_bytes
        layouts = {name: engine.layout_of(name)
                   for name in ("rankings", "uservisits")}
        for name, query in suite_queries():
            result = engine.run(query)
            digests[name] = result_digest(result.rows)
            walls[name] = result.wall_ms
    return {
        "layout": layout,
        "relation_layouts": layouts,
        "cached_bytes": cached_bytes,
        "digests": digests,
        "wall_ms": {name: round(ms, 6) for name, ms in walls.items()},
        "total_wall_ms": round(sum(walls.values()), 6),
    }


def run_sql_swap_roundtrip(rankings_rows: int = 4_000,
                           uservisits_rows: int = 8_000,
                           **config_overrides: Any) -> dict[str, Any]:
    """Demote the cached columnar suite to the mmap tier and re-run.

    The cached relations swap out as raw page bytes, swap back in as
    adopted pages, and every query must reproduce its resident digest —
    with ``swap_copy_bytes == 0`` (no serializer pass anywhere) and the
    provenance ledger clean.
    """
    from ..apps.sql_queries import make_suite_engine, suite_queries
    from ..data import rankings_table, uservisits_table

    overrides = dict(config_overrides)
    overrides["cold_tier"] = "mmap"
    overrides.setdefault("sanitize", True)
    config = DecaConfig(**overrides)
    engine = make_suite_engine(rankings_table(rankings_rows),
                               uservisits_table(uservisits_rows),
                               config, layout="columnar")
    try:
        queries = suite_queries()
        resident = {name: result_digest(engine.run(query).rows)
                    for name, query in queries}
        moved_out = (engine.demote_table("rankings")
                     + engine.demote_table("uservisits"))
        # run() promotes each relation back from the tier on demand.
        promoted = {name: result_digest(engine.run(query).rows)
                    for name, query in queries}
        tier_stats = dict(engine.tier_stats or {})
        swap_copy_bytes = engine.swap_copy_bytes
    finally:
        engine.close()
    violations = 0
    if engine.ledger is not None:
        violations = int(engine.ledger.check_finish()["violations"])
    return {
        "resident_digests": resident,
        "promoted_digests": promoted,
        "digests_match": resident == promoted,
        "bytes_moved_out": moved_out,
        "bytes_moved_in": tier_stats.get("bytes_moved_in", 0),
        "swap_copy_bytes": swap_copy_bytes,
        "ledger_violations": violations,
        "tier": tier_stats,
    }


# ---------------------------------------------------------------------------
# Fault-recovery points (fault-tolerance benchmark)
# ---------------------------------------------------------------------------

def fault_recovery_faults(seed: int = 17,
                          task_kill_prob: float = 0.05,
                          fetch_corruption_prob: float = 0.0,
                          executor_crash: bool = True,
                          speculation: bool = False) -> FaultConfig:
    """The standard fault plan of the recovery benchmark.

    Probabilistic task kills plus (optionally) one scripted executor crash
    in the first job's result stage — the crash lands *after* the map
    outputs exist, so recovery must regenerate the lost lineage, not just
    retry the killed task.
    """
    scripted = ()
    if executor_crash:
        scripted = (ScriptedFault("executor-crash", stage_id=1,
                                  partition=0, attempt=0, after_ops=3),)
    return FaultConfig(seed=seed, task_kill_prob=task_kill_prob,
                       fetch_corruption_prob=fetch_corruption_prob,
                       scripted=scripted, speculation=speculation)


def run_fault_recovery_point(size_label: str = "50GB",
                             keys_label: str = "10M",
                             mode: ExecutionMode = ExecutionMode.SPARK,
                             faults: FaultConfig | None = None,
                             **config_overrides: Any) -> FigureRow:
    """WordCount under fault injection, next to its fault-free baseline.

    Runs the same point twice — clean, then with the injector armed —
    checks the faulted run still produces the baseline's exact counts,
    and reports the recovery costs.  ``extra`` carries the full metrics
    trajectory (``RunMetrics.to_dict()``) for the JSON artifact.
    """
    if faults is None:
        faults = fault_recovery_faults()
    baseline = run_wc_point(size_label, keys_label, mode,
                            **config_overrides)
    faulted = run_wc_point(size_label, keys_label, mode, faults=faults,
                           **config_overrides)
    base_run: AppRun = baseline.extra["run"]
    fault_run: AppRun = faulted.extra["run"]
    recovery = fault_run.metrics.recovery
    row = FigureRow(
        app="WC-FT", label=f"{size_label}/{keys_label}", mode=mode.value,
        exec_s=faulted.exec_s, gc_s=faulted.gc_s,
        cached_mb=faulted.cached_mb, swapped_mb=faulted.swapped_mb,
        full_gcs=faulted.full_gcs, minor_gcs=faulted.minor_gcs,
        extra={
            "correct": base_run.result == fault_run.result,
            "baseline_exec_s": baseline.exec_s,
            "recovery_overhead_s": faulted.exec_s - baseline.exec_s,
            "recovery": recovery.to_dict(),
            "trajectory": fault_run.metrics.to_dict(),
        })
    row.extra["run"] = fault_run
    return row
