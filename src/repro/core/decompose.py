"""Decomposition decisions for shared objects (paper §4.3.3).

When the same objects are bound to several containers, Deca chooses among:

* **fully decomposable** — the objects are SFST/RFST in every container:
  the primary container owns the page group; secondaries hold pointers or
  a shared page-info (reference counting keeps the group alive);
* **partially decomposable** — at least one container cannot hold the
  decomposed form, but the objects are immutable (or modifications need
  not propagate): decompose only in the long-lived containers, keep object
  form in the rest — Fig. 7(b)'s groupByKey-then-cache pattern;
* **not decomposable** — a VST in a long-lived container: leave the
  objects intact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.pointsto import ContainerKind
from ..analysis.size_type import SizeType


class DecompositionKind(enum.Enum):
    """The three outcomes of §4.3.3."""

    FULL = "full"
    PARTIAL = "partial"
    NONE = "none"


@dataclass(frozen=True)
class ContainerView:
    """One container's view of a creation site's objects."""

    kind: ContainerKind
    size_type: SizeType
    # Do changes made through this container have to be visible in the
    # other containers sharing the objects?
    propagates_modifications: bool = False


@dataclass(frozen=True)
class DecompositionDecision:
    kind: DecompositionKind
    # Containers that store decomposed bytes (page groups).
    decomposed: tuple[ContainerView, ...] = ()
    # Containers that keep object form.
    object_form: tuple[ContainerView, ...] = ()
    reason: str = ""


def decide_decomposition(views: tuple[ContainerView, ...]
                         ) -> DecompositionDecision:
    """Apply §4.3.3 to the containers sharing one set of objects."""
    if not views:
        return DecompositionDecision(DecompositionKind.NONE,
                                     reason="no containers")
    # UDF variables never force object form: they receive pointers into
    # the primary's pages (§4.3.3, first paragraph).
    material = tuple(v for v in views
                     if v.kind is not ContainerKind.UDF_VARIABLES)
    if not material:
        return DecompositionDecision(
            DecompositionKind.NONE, object_form=views,
            reason="objects only ever referenced by UDF variables")
    if all(v.size_type.decomposable for v in material):
        return DecompositionDecision(
            DecompositionKind.FULL, decomposed=material,
            object_form=tuple(v for v in views if v not in material),
            reason="SFST/RFST in every container")
    decomposable = tuple(v for v in material if v.size_type.decomposable)
    blocked = tuple(v for v in material if not v.size_type.decomposable)
    if decomposable and not any(v.propagates_modifications
                                for v in blocked):
        return DecompositionDecision(
            DecompositionKind.PARTIAL, decomposed=decomposable,
            object_form=blocked + tuple(
                v for v in views if v.kind is ContainerKind.UDF_VARIABLES),
            reason="decomposable only in some containers; modifications "
                   "do not propagate from the others")
    return DecompositionDecision(
        DecompositionKind.NONE, object_form=views,
        reason="variable-sized (or recursively-defined) everywhere, or "
               "modifications must propagate")
