"""Iterator fusion (paper §5, pre-processing phase).

Deca "uses iterator fusion [Steno, PLDI'11] to bundle the iterative and
isolated invocations of UDFs into larger, hopefully optimizable code
regions".  In the engine this means collapsing chains of per-record narrow
transformations (``map``/``filter``) into a single operator:

* one loop instead of a stack of nested iterators — the fused operator
  pays each stage's declared compute cost but only **one** per-record UDF
  dispatch;
* intermediate records disappear — only the final record of the chain
  allocates a temporary object graph, which is the real memory win.

Fusion never crosses a ``cache()`` boundary (the cached dataset must
materialize as declared), a shuffle, or an RDD consumed by more than one
child (fusing would duplicate its work).  It is applied explicitly::

    from repro.core.fusion import fuse
    result = fuse(words.map(parse).filter(valid).map(project)).collect()
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..spark.rdd import MapPartitionsRDD, RDD

FusedOp = tuple[str, Callable[[Any], Any]]


class FusedMapRDD(MapPartitionsRDD):
    """A chain of map/filter stages executed in one per-record loop."""

    def __init__(self, source: RDD, ops: list[FusedOp], name: str,
                 udt_info=None,
                 record_cost_ms: float | None = None) -> None:
        def body(it, task):
            return _run_pipeline(it, ops)
        super().__init__(source, body, name, per_record=True,
                         udt_info=udt_info, record_cost_ms=record_cost_ms)
        self.ops = ops

    @property
    def fused_length(self) -> int:
        return len(self.ops)


def _run_pipeline(records: Iterator[Any],
                  ops: list[FusedOp]) -> Iterator[Any]:
    for record in records:
        keep = True
        for kind, fn in ops:
            if kind == "map":
                record = fn(record)
            elif not fn(record):
                keep = False
                break
        if keep:
            yield record


def _op_of(rdd: RDD) -> FusedOp | None:
    """The (kind, fn) of a fusible stage, or None."""
    if not isinstance(rdd, MapPartitionsRDD):
        return None
    fn = getattr(rdd, "_record_fn", None)
    kind = getattr(rdd, "_record_kind", None)
    if fn is None or kind not in ("map", "filter"):
        return None
    return kind, fn


def fusible_chain(rdd: RDD) -> tuple[RDD, list[tuple[RDD, FusedOp]]]:
    """The maximal fusible suffix ending at *rdd*.

    Returns ``(source, [(stage, op), ...])`` outermost-last; the chain is
    empty when *rdd* itself is not fusible.
    """
    consumers = _consumer_counts(rdd.ctx)
    chain: list[tuple[RDD, FusedOp]] = []
    node: RDD = rdd
    while True:
        op = _op_of(node)
        if op is None:
            return node, chain
        if node.is_cached:
            # A cache point must materialize exactly as declared.
            return node, chain
        if node is not rdd and consumers.get(node.rdd_id, 0) > 1:
            return node, chain
        chain.append((node, op))
        node = node.deps[0].parent


def fuse(rdd: RDD) -> RDD:
    """Fuse *rdd*'s trailing map/filter chain into one operator.

    Returns *rdd* unchanged when fewer than two stages are fusible.
    """
    source, chain = fusible_chain(rdd)
    if len(chain) < 2:
        return rdd
    ops = [op for _, op in reversed(chain)]
    explicit = [getattr(stage, "_record_cost_ms", None)
                for stage, _ in chain]
    costs = [c for c in explicit if c is not None]
    record_cost = sum(costs) if costs else None
    return FusedMapRDD(
        source, ops,
        name=f"{rdd.name}#fused{len(ops)}",
        udt_info=rdd.udt_info,
        record_cost_ms=record_cost)


def _consumer_counts(ctx) -> dict[int, int]:
    counts: dict[int, int] = {}
    for other in ctx._rdds.values():
        for dep in other.deps:
            counts[dep.parent.rdd_id] = \
                counts.get(dep.parent.rdd_id, 0) + 1
    return counts
