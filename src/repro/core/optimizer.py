"""The hybrid Deca optimizer (paper §5, Appendix A).

A static enumeration of every possible job suffers path explosion, so Deca
optimizes *at runtime*: when a job first materializes a cached dataset or
a shuffle, the optimizer

1. runs the UDT classification — local (Algorithm 1) then global
   (Algorithms 2–4) over the dataset's declared stage call graph;
2. resolves the symbolic array lengths of the analysis against the job's
   runtime symbol bindings (the driver knows the actual dimension by now);
3. maps the objects to their containers and applies the ownership and
   decomposition rules of §4.3;
4. emits a :class:`~repro.spark.context.CachePlan` /
   :class:`~repro.spark.shuffle.ShufflePlan` that the engine executes —
   the stand-in for the bytecode transformation of Appendix B, with
   synthesized accessor classes taking the place of rewritten methods.

Plans are memoized per dataset/shuffle, mirroring how transformed classes
are generated once and shipped to every executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.global_refine import GlobalClassifier
from ..analysis.local import classify_locally
from ..analysis.size_type import SizeType
from ..analysis.symconst import Affine
from ..analysis.udt import ClassType, PrimitiveType
from ..errors import MemoryLayoutError
from ..memory.layout import build_schema, columnar_plan
from ..spark.cache import StorageStrategy
from ..spark.shuffle import ShuffleKind, ShufflePlan

if TYPE_CHECKING:
    from ..analysis.closures import ClosureReport
    from ..spark.context import CachePlan as CachePlanT, DecaContext
    from ..spark.rdd import RDD, ShuffleDependency, UdtInfo
    from ..sql.schema import TableSchema


@dataclass(frozen=True)
class PlanReport:
    """What the optimizer decided for one dataset/shuffle, and why."""

    target: str
    udt: str | None
    local_size_type: SizeType | None
    global_size_type: SizeType | None
    decomposed: bool
    reason: str

    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable form (used by ``repro.lint`` summaries)."""
        return {
            "target": self.target,
            "udt": self.udt,
            "local": (self.local_size_type.value
                      if self.local_size_type else None),
            "global": (self.global_size_type.value
                       if self.global_size_type else None),
            "decomposed": self.decomposed,
            "reason": self.reason,
        }


class DecaOptimizer:
    """Plans cache and shuffle storage for a context in DECA mode."""

    def __init__(self, ctx: "DecaContext") -> None:
        self.ctx = ctx
        self._cache_plans: dict[int, "CachePlanT"] = {}
        self._shuffle_plans: dict[int, ShufflePlan] = {}
        self._closure_reports: dict[int, "ClosureReport | None"] = {}
        self.reports: list[PlanReport] = []

    # -- cached datasets --------------------------------------------------------
    def plan_cache(self, rdd: "RDD") -> "CachePlanT":
        cached = self._cache_plans.get(rdd.rdd_id)
        if cached is not None:
            return cached
        plan = self._plan_cache_uncached(rdd)
        self._cache_plans[rdd.rdd_id] = plan
        return plan

    def _plan_cache_uncached(self, rdd: "RDD") -> "CachePlanT":
        from ..spark.context import CachePlan

        info = rdd.udt_info
        if info is None:
            self.reports.append(PlanReport(
                target=f"cache:{rdd.name}", udt=None,
                local_size_type=None, global_size_type=None,
                decomposed=False, reason="no UDT declared"))
            return CachePlan(StorageStrategy.OBJECTS)

        escaper = self._escaping_consumer(rdd)
        if escaper is not None:
            # A consuming UDF lets records outlive the call (stored into
            # captured state or closed over) — decomposed page records
            # would dangle once the page group is reclaimed, so the
            # container must stay in object form (§4.2).
            self.reports.append(PlanReport(
                target=f"cache:{rdd.name}", udt=info.udt.name,
                local_size_type=None, global_size_type=None,
                decomposed=False,
                reason=f"records escape consuming UDF {escaper}; "
                       "closure analysis forces object form"))
            return CachePlan(StorageStrategy.OBJECTS)

        local, refined, classifier = self._classify(info)
        if refined is None or not refined.decomposable:
            self.reports.append(PlanReport(
                target=f"cache:{rdd.name}", udt=info.udt.name,
                local_size_type=local, global_size_type=refined,
                decomposed=False,
                reason=f"size-type {refined.value if refined else '?'} "
                       "cannot be safely decomposed"))
            return CachePlan(StorageStrategy.OBJECTS)

        fixed_lengths = self._resolve_fixed_lengths(info, classifier)
        try:
            schema = build_schema(info.udt, refined,
                                  fixed_lengths=fixed_lengths)
        except MemoryLayoutError as exc:
            self.reports.append(PlanReport(
                target=f"cache:{rdd.name}", udt=info.udt.name,
                local_size_type=local, global_size_type=refined,
                decomposed=False, reason=f"layout failed: {exc}"))
            return CachePlan(StorageStrategy.OBJECTS)

        self.reports.append(PlanReport(
            target=f"cache:{rdd.name}", udt=info.udt.name,
            local_size_type=local, global_size_type=refined,
            decomposed=True,
            reason="decomposed into cache-block page groups"))
        return CachePlan(StorageStrategy.DECA_PAGES, schema=schema,
                         encode=info.to_schema_value,
                         decode=info.from_schema_value)

    def _escaping_consumer(self, rdd: "RDD") -> str | None:
        """Name of a registered consumer UDF with an ``escapes`` verdict.

        Walks the RDDs registered so far for direct children of *rdd*
        (narrow or shuffle dependents) and runs the closure analyzer on
        their record functions.  Only a *definite* escape downgrades the
        plan — ``unknown`` verdicts leave decomposition to the size-type
        rules, which already handle unanalyzed code conservatively.
        """
        from ..analysis.closures import analyze_value

        for rdd_id in sorted(self.ctx._rdds):
            child = self.ctx._rdds[rdd_id]
            if not any(dep.parent is rdd for dep in child.deps):
                continue
            fn = getattr(child, "_record_fn", None)
            if fn is None:
                continue
            report = self._closure_reports.get(rdd_id)
            if report is None and rdd_id not in self._closure_reports:
                try:
                    report = analyze_value(fn)
                except TypeError:
                    report = None
                self._closure_reports[rdd_id] = report
            if report is not None and report.escape == "escapes":
                return f"{child.name}#{report.qualname}"
        return None

    # -- shuffles ---------------------------------------------------------------
    def plan_shuffle(self, dep: "ShuffleDependency") -> ShufflePlan:
        cached = self._shuffle_plans.get(dep.shuffle_id)
        if cached is not None:
            return cached
        plan = self._plan_shuffle_uncached(dep)
        self._shuffle_plans[dep.shuffle_id] = plan
        return plan

    def _plan_shuffle_uncached(self, dep: "ShuffleDependency"
                               ) -> ShufflePlan:
        parent = dep.parent
        info = parent.udt_info
        measure = parent.measure_record
        target = f"shuffle:{dep.shuffle_id}:{parent.name}"
        if info is None:
            self.reports.append(PlanReport(
                target=target, udt=None, local_size_type=None,
                global_size_type=None, decomposed=False,
                reason="no UDT declared for the shuffled records"))
            return ShufflePlan(measure=measure)

        local, refined, classifier = self._classify(info)
        if refined is None or not refined.decomposable:
            # Fig. 7(b): a grouped Value array is a VST inside the buffer;
            # the buffer keeps object form (a later cache may still
            # decompose — that is the cache plan's business).
            self.reports.append(PlanReport(
                target=target, udt=info.udt.name, local_size_type=local,
                global_size_type=refined, decomposed=False,
                reason="records not decomposable inside the buffer"))
            return ShufflePlan(measure=measure)

        fixed_lengths = self._resolve_fixed_lengths(info, classifier)
        try:
            schema = build_schema(info.udt, refined,
                                  fixed_lengths=fixed_lengths)
        except MemoryLayoutError as exc:
            self.reports.append(PlanReport(
                target=target, udt=info.udt.name, local_size_type=local,
                global_size_type=refined, decomposed=False,
                reason=f"layout failed: {exc}"))
            return ShufflePlan(measure=measure)

        value_reuse = (dep.kind is ShuffleKind.COMBINE
                       and self._value_field_is_sfst(info, classifier))
        pointer_array = not self._statically_addressable(info, classifier)
        self.reports.append(PlanReport(
            target=target, udt=info.udt.name, local_size_type=local,
            global_size_type=refined, decomposed=True,
            reason="decomposed into shuffle-buffer page groups"
                   + (" with value segment reuse" if value_reuse else "")
                   + ("" if pointer_array else ", pointer array elided")))
        return ShufflePlan(decomposed=True,
                           value_segment_reuse=value_reuse,
                           pointer_array=pointer_array,
                           schema=schema,
                           encode=info.to_schema_value,
                           measure=measure)

    # -- shared machinery ------------------------------------------------------------
    def _classify(self, info: "UdtInfo") -> tuple[
            SizeType, SizeType | None, GlobalClassifier | None]:
        local = classify_locally(info.udt)
        callgraph = info.callgraph()
        if callgraph is None:
            # No code to analyze: only the local result is available.
            return local, local, None
        classifier = GlobalClassifier(
            callgraph, assume_init_only=info.assume_init_only)
        return local, classifier.classify(info.udt), classifier

    def _resolve_fixed_lengths(self, info: "UdtInfo",
                               classifier: GlobalClassifier | None
                               ) -> dict[int, int]:
        """Turn proved-equal symbolic lengths into concrete integers.

        The analysis proves *equality* of allocation lengths; the runtime
        optimizer knows the actual values (Appendix A's hybrid split) via
        ``info.runtime_symbols``.
        """
        if classifier is None:
            return {}
        fixed: dict[int, int] = {}
        facts = classifier.callgraph.facts
        for type_id, sites in facts.array_sites.items():
            if not sites:
                continue
            length = sites[0].length
            if not isinstance(length, Affine):
                continue
            if any(site.length != length for site in sites):
                continue
            resolved = self._resolve_affine(length, info.runtime_symbols)
            if resolved is not None:
                fixed[type_id] = resolved
        return fixed

    @staticmethod
    def _resolve_affine(length: Affine,
                        symbols: dict[str, int]) -> int | None:
        total = length.offset
        for label, coeff in length.coeffs:
            value = symbols.get(label)
            if value is None:
                return None
            total += coeff * value
        if total < 0 or total != int(total):
            return None
        return int(total)

    def _value_field_is_sfst(self, info: "UdtInfo",
                             classifier: GlobalClassifier | None) -> bool:
        """Is the Value part of a KV pair an SFST (segment reuse, §4.3.2)?"""
        udt = info.udt
        if not isinstance(udt, ClassType) or len(udt.fields) < 2:
            return False
        value_field = udt.fields[-1]
        return self._field_is_sfst(value_field, classifier)

    def _statically_addressable(self, info: "UdtInfo",
                                classifier: GlobalClassifier | None
                                ) -> bool:
        """Both Key and Value primitives/SFSTs → offsets are static and
        the pointer array can be elided (§4.3.2)."""
        udt = info.udt
        if not isinstance(udt, ClassType):
            return False
        return all(self._field_is_sfst(field, classifier)
                   for field in udt.fields)

    def _field_is_sfst(self, field, classifier) -> bool:
        for runtime_type in field.get_type_set():
            if isinstance(runtime_type, PrimitiveType):
                continue
            if classifier is None:
                if classify_locally(runtime_type) \
                        is not SizeType.STATIC_FIXED:
                    return False
            elif classifier.classify(runtime_type) \
                    is not SizeType.STATIC_FIXED:
                return False
        return True


# -- SQL cache layout --------------------------------------------------------
@dataclass(frozen=True)
class SqlLayoutPlan:
    """The optimizer's row-vs-columnar decision for one cached relation."""

    table: str
    layout: str  # "columnar" | "row"
    size_type: SizeType | None
    reason: str

    def to_dict(self) -> dict[str, object]:
        return {
            "table": self.table,
            "layout": self.layout,
            "size_type": self.size_type.value if self.size_type else None,
            "reason": self.reason,
        }


def plan_sql_layout(schema: "TableSchema") -> SqlLayoutPlan:
    """Decide the cache layout for a SQL relation.

    Column-major needs a fixed-schema (UDT-F) relation: the synthesized
    UDT must classify decomposable (Algorithm 1 over one field per
    column) and every field must have a per-column layout
    (:func:`~repro.memory.layout.columnar_plan`).  Opaque payload
    columns fail that — their element type-sets are polymorphic — so
    those relations fall back to the row-major record layout.
    """
    from ..sql.schema import table_udt

    udt = table_udt(schema)
    size_type = classify_locally(udt)
    if not size_type.decomposable:
        return SqlLayoutPlan(
            table=schema.name, layout="row", size_type=size_type,
            reason=f"{udt.name} classifies {size_type.value}; "
                   "caching row-major")
    try:
        record = build_schema(udt, size_type)
        columnar_plan(record)
    except MemoryLayoutError as exc:
        return SqlLayoutPlan(
            table=schema.name, layout="row", size_type=size_type,
            reason=f"no column-major layout: {exc}")
    return SqlLayoutPlan(
        table=schema.name, layout="columnar", size_type=size_type,
        reason="fixed-schema relation; one page run per column")
