"""Data containers and their lifetimes (paper §4.2).

Every object reference in a running job lives in one of three container
kinds, and each kind has a statically known lifetime end point:

* **UDF variables** — function-object fields and method locals; they die
  when the task completes (locals effectively at each method return).
* **Cache blocks** — the partitions of a cached RDD; they die when the
  application calls ``unpersist()``.
* **Shuffle buffers** — written by one phase, read by the next; they die
  when the reading phase completes.  Within a buffer, §4.2 distinguishes
  sort-based buffers (references live as long as the buffer), hash-based
  buffers under ``reduceByKey`` (a Value reference dies at every combine),
  and hash-based buffers under ``groupByKey`` (appends only — references
  live as long as the buffer).

:class:`LifetimeRegistry` records container open/close events against the
simulated clock and enforces the no-use-after-close discipline that makes
Deca's bulk reclamation safe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analysis.pointsto import ContainerKind
from ..errors import ContainerError

__all__ = ["ContainerKind", "ValueLifetime", "Container",
           "LifetimeRegistry", "lifetime_rule"]


class ValueLifetime(enum.Enum):
    """When the references held by a container die (§4.2)."""

    TASK_END = "task-end"                  # UDF variables
    UNPERSIST = "unpersist"                # cache blocks
    BUFFER_RELEASE = "buffer-release"      # sort / group shuffle buffers
    EACH_COMBINE = "each-combine"          # reduceByKey Value references


def lifetime_rule(kind: ContainerKind, *,
                  eager_combine: bool = False) -> ValueLifetime:
    """The paper's lifetime rule for a container of *kind*."""
    if kind is ContainerKind.UDF_VARIABLES:
        return ValueLifetime.TASK_END
    if kind is ContainerKind.CACHE_BLOCK:
        return ValueLifetime.UNPERSIST
    if eager_combine:
        return ValueLifetime.EACH_COMBINE
    return ValueLifetime.BUFFER_RELEASE


@dataclass
class Container:
    """One container instance during a run."""

    kind: ContainerKind
    name: str
    stage_id: int
    opened_ms: float = 0.0
    closed_ms: float | None = None
    # Page-infos / allocation groups are attached by the engine.
    payload: object | None = None

    @property
    def closed(self) -> bool:
        return self.closed_ms is not None

    def check_open(self) -> None:
        if self.closed:
            raise ContainerError(
                f"container {self.name!r} used after its lifetime ended")


class LifetimeRegistry:
    """Tracks container lifetimes across a run (for audits and tests)."""

    def __init__(self) -> None:
        self._containers: dict[str, Container] = {}
        self.events: list[tuple[str, str, float]] = []

    def open(self, kind: ContainerKind, name: str, stage_id: int,
             now_ms: float) -> Container:
        if name in self._containers \
                and not self._containers[name].closed:
            raise ContainerError(f"container {name!r} opened twice")
        container = Container(kind=kind, name=name, stage_id=stage_id,
                              opened_ms=now_ms)
        self._containers[name] = container
        self.events.append(("open", name, now_ms))
        return container

    def close(self, container: Container, now_ms: float) -> None:
        container.check_open()
        if now_ms < container.opened_ms:
            raise ContainerError(
                f"container {container.name!r} closed before it opened")
        container.closed_ms = now_ms
        self.events.append(("close", container.name, now_ms))

    def get(self, name: str) -> Container:
        try:
            return self._containers[name]
        except KeyError:
            raise ContainerError(f"unknown container {name!r}") from None

    def open_containers(self) -> list[Container]:
        return [c for c in self._containers.values() if not c.closed]

    def assert_all_closed(self) -> None:
        """Audit hook: a finished run must have closed every container."""
        leaked = [c.name for c in self.open_containers()]
        if leaked:
            raise ContainerError(
                f"containers with unreleased lifetimes: {leaked}")
