"""Deca's core: lifetime-based memory management (paper §4, §5).

This package is the paper's contribution proper, assembled from the
substrates:

* :mod:`repro.core.containers` — the three data-container kinds and their
  lifetime rules (§4.2);
* :mod:`repro.core.decompose` — fully/partially-decomposable decisions for
  objects shared between containers (§4.3.3);
* :mod:`repro.core.optimizer` — the hybrid runtime optimizer (Appendix A):
  intercepts each dataset/shuffle as jobs materialize it, runs the UDT
  classification (Algorithms 1–4), resolves symbolic sizes with runtime
  bindings, and emits cache/shuffle plans that the engine executes.
"""

from .containers import Container, ContainerKind, LifetimeRegistry
from .decompose import DecompositionKind, decide_decomposition
from .optimizer import DecaOptimizer, PlanReport
from .fusion import FusedMapRDD, fuse
from .codegen import compile_scan, generate_scan_source, scan_flat

__all__ = [
    "Container",
    "ContainerKind",
    "LifetimeRegistry",
    "DecompositionKind",
    "decide_decomposition",
    "DecaOptimizer",
    "PlanReport",
    "FusedMapRDD",
    "fuse",
    "compile_scan",
    "generate_scan_source",
    "scan_flat",
]
