"""Code transformation made concrete (paper Appendix B, Fig. 12).

Deca rewrites UDF bytecode so that field accesses become offset-based
reads of the page bytes: Fig. 12 shows the transformed LR gradient loop —
``block.readDouble(offset)`` with hand-scheduled offset arithmetic, one
reused result array, no object creation.

This module performs the equivalent transformation as *Python source
generation*: given a record schema, :func:`generate_scan_source` emits the
text of a function that walks a page group with inline
``struct.unpack_from`` calls at precomputed offsets (no accessor objects,
no per-record tuples beyond what the caller's body builds), and
:func:`compile_scan` compiles it.  The generated source is kept on the
function (``__deca_source__``) so users can inspect their transformed
loops the way Fig. 12 displays the transformed Scala.

Only fixed-size schemas qualify — exactly the SFST condition under which
Deca can schedule offsets statically (§3.1, Appendix B).
"""

from __future__ import annotations

import struct
from typing import Callable, Iterator

from ..errors import MemoryLayoutError
from ..memory.layout import (
    FixedArraySchema,
    PrimitiveSlot,
    RecordSchema,
    Schema,
)
from ..memory.page import PageGroup

_CODE_OF = {
    "boolean": "?", "byte": "b", "char": "H", "short": "h",
    "int": "i", "float": "f", "long": "q", "double": "d",
}


def _flatten(schema: Schema, prefix: str, offset: int,
             out: list[tuple[str, str, int, int]]) -> int:
    """Flatten a fixed schema into (name, struct-code, offset, count)."""
    if isinstance(schema, PrimitiveSlot):
        code = _CODE_OF[schema.primitive.name]
        out.append((prefix, code, offset, 1))
        return offset + schema.fixed_size
    if isinstance(schema, FixedArraySchema):
        element = schema.element
        if not isinstance(element, PrimitiveSlot):
            # Arrays of records: flatten each slot.
            for index in range(schema.length):
                offset = _flatten(element, f"{prefix}_{index}", offset,
                                  out)
            return offset
        code = _CODE_OF[element.primitive.name]
        out.append((prefix, code, offset, schema.length))
        return offset + schema.fixed_size
    if isinstance(schema, RecordSchema):
        for name, field_schema in schema.fields:
            offset = _flatten(field_schema, f"{prefix}_{name}"
                              if prefix else name, offset, out)
        return offset
    raise MemoryLayoutError(
        f"cannot generate static offsets for {schema!r}")


def generate_scan_source(schema: RecordSchema,
                         fn_name: str = "scan_records") -> str:
    """Generate the source of a page-group scan function.

    The function signature is ``fn(page_group)`` and it yields one tuple
    ``(field0, field1, ...)`` per record, with array fields as tuples —
    the same values ``schema.unpack`` produces, but with offsets scheduled
    at generation time (Appendix B's "absolute field offset = object
    start offset + relative field offset").
    """
    if schema.fixed_size is None:
        raise MemoryLayoutError(
            "static offset scheduling needs a fixed-size (SFST) schema; "
            "runtime fixed-sized types keep the accessor path")
    slots: list[tuple[str, str, int, int]] = []
    _flatten(schema, "", 0, slots)

    lines = [
        f"def {fn_name}(page_group):",
        f'    """Generated Deca scan for {schema.name} '
        f'({schema.fixed_size} B/record)."""',
        f"    stride = {schema.fixed_size}",
    ]
    for index, (name, code, offset, count) in enumerate(slots):
        fmt = f"<{count}{code}" if count != 1 else f"<{code}"
        lines.append(f"    _u{index} = _structs[{index}].unpack_from"
                     f"  # {name} @ +{offset}")
    lines.append("    for page in page_group.pages:")
    lines.append("        data = page.data")
    lines.append("        used = page.used")
    lines.append("        base = 0")
    lines.append("        while base < used:")
    parts = []
    for index, (name, code, offset, count) in enumerate(slots):
        if count == 1:
            lines.append(
                f"            v{index} = _u{index}(data, base + {offset})[0]")
        else:
            lines.append(
                f"            v{index} = _u{index}(data, base + {offset})")
        parts.append(f"v{index}")
    lines.append(f"            yield ({', '.join(parts)},)")
    lines.append("            base += stride")
    return "\n".join(lines) + "\n"


def compile_scan(schema: RecordSchema,
                 fn_name: str = "scan_records"
                 ) -> Callable[[PageGroup], Iterator[tuple]]:
    """Compile the generated scan function for *schema*.

    The result carries its source on ``__deca_source__`` and the field
    slot table on ``__deca_slots__``.
    """
    source = generate_scan_source(schema, fn_name)
    slots: list[tuple[str, str, int, int]] = []
    _flatten(schema, "", 0, slots)
    structs = [struct.Struct(f"<{count}{code}" if count != 1
                             else f"<{code}")
               for _, code, _, count in slots]
    namespace: dict = {"_structs": structs}
    exec(compile(source, f"<deca-scan:{schema.name}>", "exec"), namespace)
    fn = namespace[fn_name]
    fn.__deca_source__ = source
    fn.__deca_slots__ = tuple(slots)
    return fn


def scan_flat(page_group: PageGroup, schema: RecordSchema
              ) -> Iterator[tuple]:
    """Scan *page_group* with a freshly compiled flat reader.

    Values come out *flattened* — nested records are splatted into the
    top-level tuple in field order, arrays stay tuples — which is how the
    transformed loops of Fig. 12 see the data (no object nesting exists
    anymore).
    """
    return compile_scan(schema)(page_group)
