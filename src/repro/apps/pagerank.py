"""PageRank — mixed caching and shuffling (§6.3, Fig. 10(a)).

Following the paper's setup: ``groupByKey`` turns the edge list into
adjacency lists which are cached for all iterations; every iteration joins
the adjacency lists with the current ranks and aggregates the contribution
messages per target vertex.  The adjacency array is a VST inside the
grouping shuffle buffer but init-only afterwards, so Deca decomposes it
*in the cache* while leaving the buffer in object form — the partially-
decomposable pattern of Fig. 7(b).
"""

from __future__ import annotations

from ..config import DecaConfig
from ..spark.rdd import UdtInfo
from .common import AppRun, make_context
from .udts import make_graph_model

Edge = tuple[int, int]


def adjacency_udt_info() -> UdtInfo:
    """The AdjacencyList model: RFST in the phases that read the cache."""
    model = make_graph_model()
    return UdtInfo(
        udt=model.adjacency,
        entry_method=model.iterate_stage_entry,
        known_types=(model.adjacency,),
        encode=lambda rec: (rec[0], tuple(rec[1])),
        decode=lambda v: (v[0], tuple(v[1])),
        assume_init_only=(model.neighbors_field,),
    )


def message_udt_info() -> UdtInfo:
    """The ``RankMessage(target: Long, rank: Double)`` model — an SFST,
    so Deca decomposes the aggregation buffers and reuses the value
    segment on every combine (§4.3.2)."""
    model = make_graph_model()
    return UdtInfo(
        udt=model.rank_message,
        entry_method=model.iterate_stage_entry,
        constant_footprint=True,
    )


def build_adjacency(ctx, edges: list[Edge], num_partitions: int,
                    name: str = "pr"):
    """Edge list → cached adjacency lists (the paper's first stage)."""
    edge_rdd = ctx.parallelize(edges, num_partitions, name=f"{name}.edges")
    grouped = edge_rdd.group_by_key(num_partitions,
                                    name=f"{name}.groupEdges")
    adjacency = grouped.map(lambda kv: (kv[0], tuple(kv[1])),
                            name=f"{name}.adjacency",
                            udt_info=adjacency_udt_info()).cache()
    return adjacency


def run_pagerank(edges: list[Edge], config: DecaConfig | None = None,
                 iterations: int = 10, num_partitions: int = 8,
                 damping: float = 0.85) -> AppRun:
    """Rank vertices; returns ``{vertex: rank}`` and run metrics."""
    if not edges:
        raise ValueError("pagerank needs a non-empty edge list")
    ctx = make_context(config)
    adjacency = build_adjacency(ctx, edges, num_partitions, name="pr")

    msg_info = message_udt_info()
    ranks = adjacency.map_values(lambda _: 1.0, name="pr.initRanks") \
        .with_udt(msg_info)
    for _ in range(iterations):
        contributions = adjacency.join(ranks, num_partitions,
                                       name="pr.joined") \
            .flat_map(_contributions, name="pr.contribs",
                      udt_info=msg_info)
        summed = contributions.reduce_by_key(lambda a, b: a + b,
                                             num_partitions,
                                             name="pr.sumContribs")
        ranks = summed.map_values(
            lambda total, d=damping: (1.0 - d) + d * total,
            name="pr.newRanks").with_udt(msg_info)
    result = dict(ranks.collect())
    metrics = ctx.finish()
    return AppRun(result=result, metrics=metrics, ctx=ctx,
                  cached_bytes=ctx.cached_bytes_of(adjacency),
                  swapped_cache_bytes=ctx.swapped_bytes_of(adjacency))


def _contributions(record):
    _, (neighbors, rank) = record
    if not neighbors:
        return
    share = rank / len(neighbors)
    for neighbor in neighbors:
        yield neighbor, share
