"""ConnectedComponent — mixed caching and shuffling (§6.3, Fig. 10(b)).

Label propagation over the (undirected) graph: adjacency lists are built
with ``groupByKey`` and cached; each iteration joins the cached adjacency
with the current labels, sends each vertex's label to its neighbors, and
keeps the minimum label seen.  Container behaviour matches PageRank —
the VST-in-buffer / RFST-in-cache pattern of Fig. 7(b).
"""

from __future__ import annotations

from ..config import DecaConfig
from ..spark.rdd import UdtInfo
from .common import AppRun, make_context
from .pagerank import build_adjacency
from .udts import make_graph_model


def label_message_udt_info() -> UdtInfo:
    """CC's ``(vertex: Long, label: Long)`` message — an SFST pair, so
    the min-label aggregation buffers decompose with segment reuse."""
    model = make_graph_model()
    return UdtInfo(
        udt=model.edge,  # two longs: structurally identical to Edge
        entry_method=model.iterate_stage_entry,
        constant_footprint=True,
    )

Edge = tuple[int, int]


def run_connected_components(edges: list[Edge],
                             config: DecaConfig | None = None,
                             iterations: int = 10,
                             num_partitions: int = 8) -> AppRun:
    """Propagate minimum labels; returns ``{vertex: component}``."""
    if not edges:
        raise ValueError("connected components needs edges")
    ctx = make_context(config)
    # Treat the graph as undirected: propagate along both directions.
    symmetric = edges + [(dst, src) for src, dst in edges]
    adjacency = build_adjacency(ctx, symmetric, num_partitions, name="cc")

    msg_info = label_message_udt_info()
    labels = adjacency.map(lambda kv: (kv[0], kv[0]),
                           name="cc.initLabels").with_udt(msg_info)
    for _ in range(iterations):
        messages = adjacency.join(labels, num_partitions,
                                  name="cc.joined") \
            .flat_map(_broadcast_label, name="cc.messages",
                      udt_info=msg_info)
        best = messages.reduce_by_key(min, num_partitions,
                                      name="cc.minLabel").with_udt(msg_info)
        # A vertex keeps its own label if no smaller one arrives.
        labels = labels.join(best, num_partitions, name="cc.update") \
            .map(lambda kv: (kv[0], min(kv[1][0], kv[1][1])),
                 name="cc.newLabels").with_udt(msg_info)
    result = dict(labels.collect())
    metrics = ctx.finish()
    return AppRun(result=result, metrics=metrics, ctx=ctx,
                  cached_bytes=ctx.cached_bytes_of(adjacency),
                  swapped_cache_bytes=ctx.swapped_bytes_of(adjacency))


def _broadcast_label(record):
    vertex, (neighbors, label) = record
    yield vertex, label
    for neighbor in neighbors:
        yield neighbor, label
