"""Logistic Regression — the caching-only application (§6.2, Fig. 9).

The running example of the paper (Fig. 1): parse the input once into
``LabeledPoint`` objects, ``cache()`` them, then iterate map+reduce over
the cached dataset to descend the gradient.  The cached points are
long-living; in Spark each is a three-object graph that every full
collection retraces in vain, while Deca refines ``LabeledPoint`` to an
SFST (the feature arrays all have the global dimension ``D``) and stores
the whole dataset as a few pages.
"""

from __future__ import annotations

import math

from ..config import DecaConfig
from ..spark.rdd import UdtInfo
from .common import AppRun, make_context
from .udts import make_labeled_point_model

LabeledPoint = tuple[float, tuple[float, ...]]


def labeled_point_udt_info(dimensions: int) -> UdtInfo:
    """The Fig. 1 type model with the runtime dimension bound."""
    model = make_labeled_point_model(dimensions=None)
    return UdtInfo(
        udt=model.labeled_point,
        entry_method=model.stage_entry,
        encode=lambda rec: (rec[0], (rec[1], 0, 1, len(rec[1]))),
        decode=lambda v: (v[0], tuple(v[1][0])),
        runtime_symbols={"D": dimensions, "D2": dimensions},
        constant_footprint=True,
    )


def run_logistic_regression(points: list[LabeledPoint],
                            config: DecaConfig | None = None,
                            iterations: int = 10,
                            num_partitions: int = 8,
                            profile: bool = False) -> AppRun:
    """Train a separating hyperplane; returns weights and run metrics."""
    if not points:
        raise ValueError("logistic regression needs a non-empty dataset")
    dimensions = len(points[0][1])
    ctx = make_context(config,
                       profile_prefix="cache:" if profile else None)
    info = labeled_point_udt_info(dimensions)
    cpu = ctx.config.cpu
    dim_cost = cpu.record_op_ms + cpu.arithmetic_per_dim_ms * dimensions

    raw = ctx.parallelize(points, num_partitions, name="lr.input")
    cached = raw.map(lambda rec: rec, name="lr.points",
                     udt_info=info).cache()

    weights = [2.0 * ((i * 2654435761 % 97) / 97.0) - 1.0
               for i in range(dimensions)]
    count = float(len(points))
    for _ in range(iterations):
        frozen = tuple(weights)

        def gradient(point, w=frozen):
            label, features = point
            margin = sum(wi * x for wi, x in zip(w, features))
            margin = max(-30.0, min(30.0, -label * margin))
            factor = (1.0 / (1.0 + math.exp(margin)) - 1.0) * label
            return tuple(x * factor for x in features)

        total = cached.map(gradient, name="lr.gradient",
                           record_cost_ms=dim_cost) \
                      .reduce(lambda a, b: tuple(
                          x + y for x, y in zip(a, b)))
        weights = [w - g / count for w, g in zip(weights, total)]

    metrics = ctx.finish()
    return AppRun(result=tuple(weights), metrics=metrics, ctx=ctx,
                  cached_bytes=ctx.cached_bytes_of(cached),
                  swapped_cache_bytes=ctx.swapped_bytes_of(cached))
