"""Benchmark applications (paper §6, Table 1).

Each application is written against the public :class:`repro.spark.DecaContext`
API exactly as its Scala counterpart is written against Spark, and declares
its UDTs (:mod:`repro.apps.udts`) so the Deca optimizer can classify and
decompose them:

========================  ======  =====  ========  ==================
application               stages  jobs   cache     shuffle
========================  ======  =====  ========  ==================
WordCount (WC)            two     single none      aggregated
LogisticRegression (LR)   single  multi  static    none
KMeans                    two     multi  static    aggregated
PageRank (PR)             multi   multi  static    grouped+aggregated
ConnectedComponent (CC)   multi   multi  static    grouped+aggregated
========================  ======  =====  ========  ==================

plus the two exploratory SQL queries of Table 6.
"""

__all__ = [
    "run_wordcount",
    "run_logistic_regression",
    "run_kmeans",
    "run_pagerank",
    "run_connected_components",
    "run_query1",
    "run_query2",
]


def __getattr__(name: str):
    """Lazily import the application entry points.

    The app modules pull in the whole engine; deferring the imports lets
    lightweight users (e.g. the analysis tests) import submodules such as
    :mod:`repro.apps.udts` without paying for it.
    """
    if name in __all__:
        from . import (
            connected_components,
            kmeans,
            logistic_regression,
            pagerank,
            sql_queries,
            wordcount,
        )
        modules = {
            "run_wordcount": wordcount.run_wordcount,
            "run_logistic_regression":
                logistic_regression.run_logistic_regression,
            "run_kmeans": kmeans.run_kmeans,
            "run_pagerank": pagerank.run_pagerank,
            "run_connected_components":
                connected_components.run_connected_components,
            "run_query1": sql_queries.run_query1,
            "run_query2": sql_queries.run_query2,
        }
        return modules[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
