"""The two exploratory SQL queries of §6.6, three ways.

For each query the paper compares:

* **Spark** / **Deca** — a semantically identical hand-written RDD program
  (rows cached as objects or decomposed pages respectively);
* **Spark SQL** — the columnar engine (:mod:`repro.sql`).

Query 1 — a simple filter::

    SELECT pageURL, pageRank FROM rankings WHERE pageRank > 100;

Query 2 — a GroupBy aggregate::

    SELECT SUBSTR(sourceIP, 1, 5), SUM(adRevenue)
    FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 5);
"""

from __future__ import annotations

from ..config import DecaConfig
from ..data.tables import RankingRow, UserVisitRow
from ..spark.rdd import UdtInfo
from ..sql import SqlEngine, groupby_sum, select, top_k
from ..sql.engine import Query, QueryResult
from ..sql.schema import RANKINGS_SCHEMA, USERVISITS_SCHEMA
from .common import AppRun, make_context
from .udts import make_ranking_model, make_uservisit_model


def _chars(s: str) -> tuple:
    return (tuple(ord(c) for c in s),)


def _string(v: tuple) -> str:
    return "".join(chr(c) for c in v[0])


def ranking_udt_info() -> UdtInfo:
    model = make_ranking_model()
    return UdtInfo(
        udt=model.row_type,
        entry_method=model.stage_entry,
        encode=lambda row: (_chars(row[0]), row[1], row[2]),
        decode=lambda v: (_string(v[0]), v[1], v[2]),
    )


def uservisit_udt_info() -> UdtInfo:
    model = make_uservisit_model()
    return UdtInfo(
        udt=model.row_type,
        entry_method=model.stage_entry,
        encode=lambda r: (_chars(r[0]), _chars(r[1]), r[2], r[3],
                          _chars(r[4]), _chars(r[5]), _chars(r[6]),
                          _chars(r[7]), r[8]),
        decode=lambda v: (_string(v[0]), _string(v[1]), v[2], v[3],
                          _string(v[4]), _string(v[5]), _string(v[6]),
                          _string(v[7]), v[8]),
    )


def run_query1(rankings: list[RankingRow],
               config: DecaConfig | None = None,
               num_partitions: int = 8,
               threshold: int = 100) -> AppRun:
    """The hand-written RDD version of Query 1 (Spark/Deca rows)."""
    ctx = make_context(config)
    rows = ctx.parallelize(rankings, num_partitions, name="q1.rankings") \
        .map(lambda r: r, name="q1.rows",
             udt_info=ranking_udt_info()).cache()
    result = rows.filter(lambda r: r[1] > threshold, name="q1.filter") \
        .map(lambda r: (r[0], r[1]), name="q1.project") \
        .collect()
    metrics = ctx.finish()
    return AppRun(result=result, metrics=metrics, ctx=ctx,
                  cached_bytes=ctx.cached_bytes_of(rows),
                  swapped_cache_bytes=ctx.swapped_bytes_of(rows))


def run_query2(uservisits: list[UserVisitRow],
               config: DecaConfig | None = None,
               num_partitions: int = 8,
               prefix: int = 5) -> AppRun:
    """The hand-written RDD version of Query 2 (Spark/Deca rows)."""
    ctx = make_context(config)
    rows = ctx.parallelize(uservisits, num_partitions,
                           name="q2.uservisits") \
        .map(lambda r: r, name="q2.rows",
             udt_info=uservisit_udt_info()).cache()
    summed = rows.map(lambda r: (r[0][:prefix], r[3]), name="q2.keyed") \
        .reduce_by_key(lambda a, b: a + b, num_partitions,
                       name="q2.sum")
    result = sorted(summed.collect())
    metrics = ctx.finish()
    return AppRun(result=result, metrics=metrics, ctx=ctx,
                  cached_bytes=ctx.cached_bytes_of(rows),
                  swapped_cache_bytes=ctx.swapped_bytes_of(rows))


def run_query1_sparksql(rankings: list[RankingRow],
                        config: DecaConfig | None = None,
                        threshold: int = 100) -> QueryResult:
    """Query 1 on the columnar engine; returns its QueryResult."""
    with SqlEngine(config) as engine:
        engine.register_table("rankings", RANKINGS_SCHEMA, rankings)
        engine.cache_table("rankings")
        return engine.run(select(["pageURL", "pageRank"], "rankings",
                                 where=("pageRank", ">", threshold)))


def run_query2_sparksql(uservisits: list[UserVisitRow],
                        config: DecaConfig | None = None,
                        prefix: int = 5) -> QueryResult:
    """Query 2 on the columnar engine; returns its QueryResult."""
    with SqlEngine(config) as engine:
        engine.register_table("uservisits", USERVISITS_SCHEMA,
                              uservisits)
        engine.cache_table("uservisits")
        return engine.run(groupby_sum("uservisits", "sourceIP",
                                      "adRevenue", key_prefix=prefix))


def suite_queries(threshold: int = 100, prefix: int = 5,
                  k: int = 10) -> list[tuple[str, Query]]:
    """A small TPC-H-flavoured suite over the §6.6 tables.

    Four shapes the columnar kernels must cover: a full-projection
    scan, a selective filter (Query 1), a GroupBy-SUM (Query 2), and a
    top-k (filter + sort + limit).
    """
    return [
        ("scan", select(["pageURL", "pageRank", "avgDuration"],
                        "rankings")),
        ("filter", select(["pageURL", "pageRank"], "rankings",
                          where=("pageRank", ">", threshold))),
        ("groupby", groupby_sum("uservisits", "sourceIP", "adRevenue",
                                key_prefix=prefix)),
        ("topk", top_k(["pageURL", "pageRank"], "rankings",
                       order_by="pageRank", k=k,
                       where=("avgDuration", ">", 10))),
    ]


def make_suite_engine(rankings: list[RankingRow],
                      uservisits: list[UserVisitRow],
                      config: DecaConfig | None = None,
                      layout: str = "auto") -> SqlEngine:
    """An engine with both §6.6 tables registered and cached."""
    engine = SqlEngine(config)
    engine.register_table("rankings", RANKINGS_SCHEMA, rankings)
    engine.register_table("uservisits", USERVISITS_SCHEMA, uservisits)
    engine.cache_table("rankings", layout=layout)
    engine.cache_table("uservisits", layout=layout)
    return engine


def run_sql_suite(rankings: list[RankingRow],
                  uservisits: list[UserVisitRow],
                  config: DecaConfig | None = None,
                  layout: str = "auto",
                  threshold: int = 100, prefix: int = 5,
                  k: int = 10) -> dict[str, QueryResult]:
    """Run the whole suite on one engine; maps query name -> result."""
    with make_suite_engine(rankings, uservisits, config,
                           layout=layout) as engine:
        return {name: engine.run(query)
                for name, query in suite_queries(threshold, prefix, k)}
