"""UDT models and constructor IR for the benchmark applications.

These declarations are the Python analogue of what Deca's pre-processing
phase extracts from the applications' compiled bytecode: class shapes,
field finality, runtime type-sets and the constructor bodies that assign
the fields.  The Deca optimizer classifies them with Algorithms 1–4.

The central example is the paper's Fig. 1/Fig. 3 ``LabeledPoint``:

* locally, ``features`` is a non-final field holding RFST ``DenseVector``
  objects, so ``LabeledPoint`` is classified VST;
* globally, ``features`` is init-only (assigned once, in the constructor)
  and ``features.data`` is a fixed-length array (every allocation uses the
  global dimension constant), so ``LabeledPoint`` refines to SFST.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis import (
    ArrayType,
    Assign,
    CHAR,
    ClassType,
    Const,
    DOUBLE,
    Field,
    INT,
    LONG,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    StoreField,
    SymInput,
)
from ..analysis.ir import Local


@dataclass(frozen=True)
class LabeledPointModel:
    """The LR/KMeans type universe plus the per-stage entry method."""

    double_array: ArrayType
    dense_vector: ClassType
    vector: ClassType
    labeled_point: ClassType
    dense_vector_ctor: Method
    labeled_point_ctor: Method
    stage_entry: Method
    data_field: Field
    features_field: Field
    label_field: Field


def make_labeled_point_model(dimensions: int | None = 10,
                             fixed_length: bool = True) -> LabeledPointModel:
    """Build the Fig. 1 type model.

    With *fixed_length* (the paper's LR program) every feature array is
    allocated with the same length — the global constant ``D`` when
    *dimensions* is given, otherwise a single symbolic input (e.g. a
    dimension read from the dataset header).  With ``fixed_length=False``
    the map UDF allocates arrays of two different lengths (a dense/sparse
    mix), so the global analysis must leave the type variable-sized.
    """
    double_array = ArrayType(DOUBLE)
    data_field = Field("data", double_array, final=True)
    dense_vector = ClassType("DenseVector", [
        data_field,
        Field("offset", INT),
        Field("stride", INT),
        Field("length", INT),
    ])
    # The abstract ``Vector`` supertype: the declared type of ``features``.
    vector = ClassType("Vector")
    label_field = Field("label", DOUBLE)
    features_field = Field("features", vector, type_set=(dense_vector,),
                           final=False)
    labeled_point = ClassType("LabeledPoint", [label_field, features_field])

    dense_vector_ctor = Method(
        name="<init>",
        params=("data",),
        body=(
            StoreField("this", data_field, Local("data")),
            StoreField("this", dense_vector.field("offset"), Const(0)),
            StoreField("this", dense_vector.field("stride"), Const(1)),
            StoreField("this", dense_vector.field("length"), Const(0)),
        ),
        owner=dense_vector,
        is_constructor=True,
    )
    labeled_point_ctor = Method(
        name="<init>",
        params=("label", "features"),
        body=(
            StoreField("this", label_field, Local("label")),
            StoreField("this", features_field, Local("features")),
        ),
        owner=labeled_point,
        is_constructor=True,
    )

    prologue: tuple = ()
    if dimensions is not None:
        length_expr = Const(dimensions)
        alt_length_expr = Const(dimensions if fixed_length
                                else dimensions + 7)
    else:
        # The dimension is read once from the dataset header and hoisted
        # before the input loop (Fig. 4's symbolized constant).
        prologue = (Assign("D", SymInput("D")),
                    Assign("D2", SymInput("D2")))
        length_expr = Local("D")
        alt_length_expr = Local("D") if fixed_length else Local("D2")

    # The map UDF of Fig. 1 (lines 13–17): parse one line, build the
    # feature array, wrap it into DenseVector and LabeledPoint.  The Loop
    # models iterating over the input split.
    loop_body = (
        NewArray("features_arr", double_array, length_expr),
        NewObject("features_vec", dense_vector, ctor=dense_vector_ctor,
                  args=(Local("features_arr"),)),
        Assign("label", SymInput("label")),
        NewObject("point", labeled_point, ctor=labeled_point_ctor,
                  args=(Local("label"), Local("features_vec"))),
    )
    if not fixed_length:
        loop_body = loop_body + (
            NewArray("other_arr", double_array, alt_length_expr),
            NewObject("other_vec", dense_vector, ctor=dense_vector_ctor,
                      args=(Local("other_arr"),)),
            StoreField("point", features_field, Local("other_vec")),
        )
    stage_entry = Method(
        name="lr.stage0",
        params=(),
        body=prologue + (Loop(loop_body), Return()),
    )

    return LabeledPointModel(
        double_array=double_array,
        dense_vector=dense_vector,
        vector=vector,
        labeled_point=labeled_point,
        dense_vector_ctor=dense_vector_ctor,
        labeled_point_ctor=labeled_point_ctor,
        stage_entry=stage_entry,
        data_field=data_field,
        features_field=features_field,
        label_field=label_field,
    )


@dataclass(frozen=True)
class WordCountModel:
    """WC's shuffle record: ``Tuple2[String, Int]``."""

    char_array: ArrayType
    string_type: ClassType
    tuple2: ClassType
    string_ctor: Method
    tuple2_ctor: Method
    stage_entry: Method


def make_wordcount_model() -> WordCountModel:
    """``Tuple2(word: String, count: Int)`` — an RFST (strings vary in
    length across instances but never grow), decomposable in the hash-based
    shuffle buffer with segment reuse for the aggregated count (§4.3.2)."""
    char_array = ArrayType(CHAR)
    value_field = Field("value", char_array, final=True)
    string_type = ClassType("String", [value_field])
    word_field = Field("word", string_type, final=True)
    count_field = Field("count", INT)
    tuple2 = ClassType("Tuple2", [word_field, count_field])

    string_ctor = Method(
        name="<init>", params=("value",),
        body=(StoreField("this", value_field, Local("value")),),
        owner=string_type, is_constructor=True)
    tuple2_ctor = Method(
        name="<init>", params=("word", "count"),
        body=(
            StoreField("this", word_field, Local("word")),
            StoreField("this", count_field, Local("count")),
        ),
        owner=tuple2, is_constructor=True)

    stage_entry = Method(
        name="wc.stage0",
        body=(
            Loop((
                # Each word read from the split has its own length.
                NewArray("chars", char_array, SymInput("wordlen")),
                NewObject("word", string_type, ctor=string_ctor,
                          args=(Local("chars"),)),
                NewObject("pair", tuple2, ctor=tuple2_ctor,
                          args=(Local("word"), Const(1))),
            )),
            Return(),
        ))

    return WordCountModel(
        char_array=char_array,
        string_type=string_type,
        tuple2=tuple2,
        string_ctor=string_ctor,
        tuple2_ctor=tuple2_ctor,
        stage_entry=stage_entry,
    )


@dataclass(frozen=True)
class GraphModel:
    """PR/CC type universe: edges, adjacency lists and rank messages."""

    long_array: ArrayType
    edge: ClassType
    adjacency: ClassType
    rank_message: ClassType
    edge_ctor: Method
    adjacency_ctor: Method
    rank_ctor: Method
    build_stage_entry: Method
    iterate_stage_entry: Method
    neighbors_field: Field


def make_graph_model() -> GraphModel:
    """PageRank/ConnectedComponent types.

    The adjacency list's ``neighbors`` array is built by ``groupByKey``
    appends — a VST inside the shuffle buffer (the growable buffer
    reassigns it), but init-only in the iterate stages that only read the
    cached adjacency RDD, where it therefore refines to an RFST (§3.4,
    Fig. 7(b)).
    """
    long_array = ArrayType(LONG)
    src_field = Field("src", LONG)
    dst_field = Field("dst", LONG)
    edge = ClassType("Edge", [src_field, dst_field])

    vid_field = Field("vid", LONG)
    neighbors_field = Field("neighbors", long_array, final=False)
    adjacency = ClassType("AdjacencyList", [vid_field, neighbors_field])

    target_field = Field("target", LONG)
    rank_field = Field("rank", DOUBLE)
    rank_message = ClassType("RankMessage", [target_field, rank_field])

    edge_ctor = Method(
        name="<init>", params=("src", "dst"),
        body=(
            StoreField("this", src_field, Local("src")),
            StoreField("this", dst_field, Local("dst")),
        ),
        owner=edge, is_constructor=True)
    adjacency_ctor = Method(
        name="<init>", params=("vid", "neighbors"),
        body=(
            StoreField("this", vid_field, Local("vid")),
            StoreField("this", neighbors_field, Local("neighbors")),
        ),
        owner=adjacency, is_constructor=True)
    rank_ctor = Method(
        name="<init>", params=("target", "rank"),
        body=(
            StoreField("this", target_field, Local("target")),
            StoreField("this", rank_field, Local("rank")),
        ),
        owner=rank_message, is_constructor=True)

    # Stage 0 groups edges into adjacency lists: the neighbor array of one
    # vertex is reallocated as values arrive (growable append), so the
    # store to ``neighbors`` happens outside the constructor too.
    build_stage_entry = Method(
        name="graph.build",
        body=(
            Loop((
                NewObject("e", edge, ctor=edge_ctor,
                          args=(SymInput("src"), SymInput("dst"))),
                NewArray("grown", long_array, SymInput("degree")),
                NewObject("adj", adjacency, ctor=adjacency_ctor,
                          args=(SymInput("vid"), Local("grown"))),
                NewArray("regrown", long_array, SymInput("degree2")),
                StoreField("adj", neighbors_field, Local("regrown")),
            )),
            Return(),
        ))

    # Iterate stages only read the cached adjacency lists and emit fresh
    # rank messages; they never assign ``neighbors``.
    iterate_stage_entry = Method(
        name="graph.iterate",
        body=(
            Loop((
                NewObject("msg", rank_message, ctor=rank_ctor,
                          args=(SymInput("target"), SymInput("rank"))),
            )),
            Return(),
        ))

    return GraphModel(
        long_array=long_array,
        edge=edge,
        adjacency=adjacency,
        rank_message=rank_message,
        edge_ctor=edge_ctor,
        adjacency_ctor=adjacency_ctor,
        rank_ctor=rank_ctor,
        build_stage_entry=build_stage_entry,
        iterate_stage_entry=iterate_stage_entry,
        neighbors_field=neighbors_field,
    )


@dataclass(frozen=True)
class SqlRowModel:
    """A row class for the hand-written RDD versions of the SQL queries."""

    row_type: ClassType
    row_ctor: Method
    stage_entry: Method


def _string_class(name: str, char_array: ArrayType) -> tuple[ClassType,
                                                             Method]:
    value_field = Field("value", char_array, final=True)
    cls = ClassType(name, [value_field])
    ctor = Method(
        "<init>", params=("value",),
        body=(StoreField("this", value_field, Local("value")),),
        owner=cls, is_constructor=True)
    return cls, ctor


def make_ranking_model() -> SqlRowModel:
    """``Ranking(pageURL: String, pageRank: Int, avgDuration: Int)``.

    Strings give the row per-instance sizes, so the global classification
    lands on RFST — decomposable with length-prefixed string fields.
    """
    char_array = ArrayType(CHAR)
    url_string, url_ctor = _string_class("UrlString", char_array)
    url_field = Field("pageURL", url_string, final=True)
    rank_field = Field("pageRank", INT)
    duration_field = Field("avgDuration", INT)
    row = ClassType("Ranking", [url_field, rank_field, duration_field])
    row_ctor = Method(
        "<init>", params=("url", "rank", "duration"),
        body=(
            StoreField("this", url_field, Local("url")),
            StoreField("this", rank_field, Local("rank")),
            StoreField("this", duration_field, Local("duration")),
        ),
        owner=row, is_constructor=True)
    stage_entry = Method(
        name="sql.scanRankings",
        body=(
            Loop((
                NewArray("chars", char_array, SymInput("urllen")),
                NewObject("url", url_string, ctor=url_ctor,
                          args=(Local("chars"),)),
                NewObject("row", row, ctor=row_ctor,
                          args=(Local("url"), SymInput("rank"),
                                SymInput("duration"))),
            )),
            Return(),
        ))
    return SqlRowModel(row_type=row, row_ctor=row_ctor,
                       stage_entry=stage_entry)


def make_uservisit_model() -> SqlRowModel:
    """The nine-column ``UserVisit`` row (five strings, four numerics)."""
    char_array = ArrayType(CHAR)
    strings = {}
    ctors = {}
    for field_name in ("sourceIP", "destURL", "userAgent", "countryCode",
                       "languageCode", "searchWord"):
        strings[field_name], ctors[field_name] = _string_class(
            f"Str_{field_name}", char_array)
    fields = [
        Field("sourceIP", strings["sourceIP"], final=True),
        Field("destURL", strings["destURL"], final=True),
        Field("visitDate", INT),
        Field("adRevenue", DOUBLE),
        Field("userAgent", strings["userAgent"], final=True),
        Field("countryCode", strings["countryCode"], final=True),
        Field("languageCode", strings["languageCode"], final=True),
        Field("searchWord", strings["searchWord"], final=True),
        Field("duration", INT),
    ]
    row = ClassType("UserVisit", fields)
    params = tuple(f.name for f in fields)
    row_ctor = Method(
        "<init>", params=params,
        body=tuple(StoreField("this", f, Local(f.name)) for f in fields),
        owner=row, is_constructor=True)
    loop_body = []
    args = []
    for f in fields:
        if f.name in strings:
            loop_body.append(NewArray(f"{f.name}_chars", char_array,
                                      SymInput(f"{f.name}_len")))
            loop_body.append(NewObject(f"{f.name}_str", strings[f.name],
                                       ctor=ctors[f.name],
                                       args=(Local(f"{f.name}_chars"),)))
            args.append(Local(f"{f.name}_str"))
        else:
            args.append(SymInput(f.name))
    loop_body.append(NewObject("row", row, ctor=row_ctor,
                               args=tuple(args)))
    stage_entry = Method(
        name="sql.scanUserVisits",
        body=(Loop(tuple(loop_body)), Return()))
    return SqlRowModel(row_type=row, row_ctor=row_ctor,
                       stage_entry=stage_entry)
