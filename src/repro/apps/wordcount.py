"""WordCount — the shuffling-only application (paper §6.1, Fig. 8).

A two-stage MapReduce job: the map stage emits ``(word, 1)`` pairs into a
hash-based shuffle buffer with eager aggregation; the reduce stage merges
the partial counts.  In Spark every eager combine allocates a fresh
``Tuple2`` (the fluctuating object population of Fig. 8(a)); Deca
classifies the aggregated Value an SFST and reuses its page segment on
every combine, and outputs the raw buffer bytes with no serialization.
"""

from __future__ import annotations

from ..config import DecaConfig
from ..spark.rdd import UdtInfo
from .common import AppRun, make_context
from .udts import make_wordcount_model


def wordcount_udt_info() -> UdtInfo:
    """The ``Tuple2[String, Int]`` model fed to the Deca optimizer."""
    model = make_wordcount_model()
    return UdtInfo(
        udt=model.tuple2,
        entry_method=model.stage_entry,
        encode=lambda kv: ((tuple(ord(c) for c in kv[0]),), kv[1]),
        decode=lambda v: ("".join(chr(c) for c in v[0][0]), v[1]),
    )


def run_wordcount(words: list[str], config: DecaConfig | None = None,
                  num_partitions: int = 8,
                  profile: bool = False) -> AppRun:
    """Count word occurrences; returns the counts and the run metrics."""
    ctx = make_context(config,
                       profile_prefix="shuffle-buf" if profile else None)
    info = wordcount_udt_info()
    lines = ctx.text_file(words, num_partitions, name="wc.input")
    pairs = lines.map(lambda word: (word, 1), name="wc.pairs") \
                 .with_udt(info)
    counts = pairs.reduce_by_key(lambda a, b: a + b, num_partitions,
                                 name="wc.counts")
    result = dict(counts.collect())
    metrics = ctx.finish()
    return AppRun(result=result, metrics=metrics, ctx=ctx)
