"""Shared plumbing for the benchmark applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..config import DecaConfig
from ..spark.context import DecaContext
from ..spark.metrics import RunMetrics


@dataclass
class AppRun:
    """The outcome of one application run under one mode."""

    result: Any
    metrics: RunMetrics
    ctx: DecaContext
    cached_bytes: int = 0
    swapped_cache_bytes: int = 0

    @property
    def wall_s(self) -> float:
        return self.metrics.wall_ms / 1000.0

    @property
    def gc_s(self) -> float:
        return self.metrics.gc_pause_ms / 1000.0


def make_context(config: DecaConfig | None = None,
                 profile_prefix: str | None = None,
                 **overrides) -> DecaContext:
    """Build a context, optionally with profiling enabled.

    *profile_prefix* attaches heap samplers tracking allocation groups
    whose name starts with the prefix (e.g. ``"cache:"`` to follow cached
    LabeledPoint populations, Figs. 8a/9a).
    """
    cfg = (config or DecaConfig()).with_options(**overrides) \
        if overrides else (config or DecaConfig())
    ctx = DecaContext(cfg)
    if profile_prefix is not None:
        ctx.enable_profiling(tracked_prefix=profile_prefix)
    return ctx
