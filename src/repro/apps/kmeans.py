"""KMeans — caching plus aggregated shuffling (§6.2, Table 1).

Like LR, the training points are parsed once and cached; unlike LR, every
iteration is a two-stage job — the assignment map emits
``(cluster, (vector_sum, count))`` pairs into a hash-based shuffle buffer
with eager aggregation, and the reduce stage recomputes the centers.  Both
the cache decomposition and the shuffle segment reuse therefore apply.
"""

from __future__ import annotations

from ..analysis import (
    Assign,
    ArrayType,
    ClassType,
    DOUBLE,
    Field,
    INT,
    Local,
    Loop,
    Method,
    NewArray,
    NewObject,
    Return,
    StoreField,
    SymInput,
)
from ..config import DecaConfig
from ..spark.rdd import UdtInfo
from .common import AppRun, make_context
from .udts import make_labeled_point_model

Point = tuple[float, ...]


def cluster_stat_udt_info(dimensions: int) -> UdtInfo:
    """The ``(cluster, (vector_sum, count))`` aggregation record.

    All sum arrays share the dataset dimension, so the record is an SFST
    — the eager-aggregation buffer decomposes with in-place segment reuse
    on every merge (§4.3.2).
    """
    double_array = ArrayType(DOUBLE)
    sum_field = Field("sum", double_array, final=True)
    stat = ClassType("ClusterStat", [
        Field("cluster", INT), sum_field, Field("count", INT)])
    ctor = Method(
        "<init>", params=("cluster", "sum", "count"),
        body=(
            StoreField("this", stat.field("cluster"), Local("cluster")),
            StoreField("this", sum_field, Local("sum")),
            StoreField("this", stat.field("count"), Local("count")),
        ),
        owner=stat, is_constructor=True)
    entry = Method(
        name="km.assignStage",
        body=(
            Assign("D", SymInput("D")),
            Loop((
                NewArray("sum", double_array, Local("D")),
                NewObject("stat", stat, ctor=ctor,
                          args=(SymInput("cluster"), Local("sum"),
                                SymInput("count"))),
            )),
            Return(),
        ))
    # What Spark actually allocates per record: Tuple2(Integer,
    # Tuple2(DenseVector, Integer)) — wrappers and boxes included.
    boxed_int = ClassType("Integer", [Field("value", INT)])
    dense = ClassType("DenseVector", [
        Field("data", double_array, final=True),
        Field("offset", INT), Field("stride", INT), Field("length", INT)])
    inner = ClassType("Tuple2$inner", [
        Field("_1", dense, final=True), Field("_2", boxed_int, final=True)])
    outer = ClassType("Tuple2$outer", [
        Field("_1", boxed_int, final=True), Field("_2", inner, final=True)])
    return UdtInfo(
        udt=stat,
        entry_method=entry,
        encode=lambda kv: (kv[0], tuple(kv[1][0]), kv[1][1]),
        decode=lambda v: (v[0], (tuple(v[1]), v[2])),
        runtime_symbols={"D": dimensions},
        constant_footprint=True,
        object_model=outer,
        measure_encode=lambda kv: (
            (kv[0],), (((tuple(kv[1][0]), 0, 1, len(kv[1][0])),
                        (kv[1][1],)))),
    )


def point_udt_info(dimensions: int) -> UdtInfo:
    """KMeans reuses the LR vector model with a constant label slot."""
    model = make_labeled_point_model(dimensions=None)
    return UdtInfo(
        udt=model.labeled_point,
        entry_method=model.stage_entry,
        encode=lambda p: (0.0, (p, 0, 1, len(p))),
        decode=lambda v: tuple(v[1][0]),
        runtime_symbols={"D": dimensions, "D2": dimensions},
        constant_footprint=True,
    )


def _closest(point: Point, centers: list[Point]) -> int:
    best_index = 0
    best_distance = float("inf")
    for index, center in enumerate(centers):
        distance = sum((x - c) * (x - c) for x, c in zip(point, center))
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return best_index


def run_kmeans(points: list[Point], k: int = 8,
               config: DecaConfig | None = None,
               iterations: int = 10,
               num_partitions: int = 8) -> AppRun:
    """Cluster *points* into *k* centers; returns centers and metrics."""
    if not points:
        raise ValueError("kmeans needs a non-empty dataset")
    if k < 1:
        raise ValueError("k must be >= 1")
    dimensions = len(points[0])
    ctx = make_context(config)
    info = point_udt_info(dimensions)
    cpu = ctx.config.cpu
    # Distance computation vectorizes over dimensions; the k-way argmin
    # adds comparisons, not full passes.
    assign_cost = (cpu.record_op_ms
                   + cpu.arithmetic_per_dim_ms * (dimensions + k))

    raw = ctx.parallelize(points, num_partitions, name="km.input")
    cached = raw.map(lambda p: p, name="km.points", udt_info=info).cache()
    stat_info = cluster_stat_udt_info(dimensions)

    centers = [points[(i * 7919) % len(points)] for i in range(k)]
    for _ in range(iterations):
        # A tuple, not a list: the closure analyzer (DECA206) flags
        # mutable default captures — a list here would be shared state a
        # retried task could observe mid-update.
        frozen = tuple(centers)

        def assign(point, c=frozen):
            index = _closest(point, c)
            return index, (point, 1)

        def merge(a, b):
            (sum_a, count_a), (sum_b, count_b) = a, b
            return (tuple(x + y for x, y in zip(sum_a, sum_b)),
                    count_a + count_b)

        sums = cached.map(assign, name="km.assign",
                          record_cost_ms=assign_cost,
                          udt_info=stat_info) \
                     .reduce_by_key(merge, num_partitions,
                                    name="km.update") \
                     .collect()
        new_centers = list(centers)
        for index, (vector_sum, count) in sums:
            new_centers[index] = tuple(x / count for x in vector_sum)
        centers = new_centers

    metrics = ctx.finish()
    return AppRun(result=centers, metrics=metrics, ctx=ctx,
                  cached_bytes=ctx.cached_bytes_of(cached),
                  swapped_cache_bytes=ctx.swapped_bytes_of(cached))
