"""The multiprocess execution backend (driver side).

``MpBackend`` claims every stage and runs its tasks on a pool of
**forked** worker processes.  Forking at stage start is the whole trick:
the workers inherit the driver's RDD graph (closures included), the
shuffle store with every registered parent block, the backend's shared
cache tables and the optimizer's plans — a task ships as a bare split
index, and a decomposed block ships back as a
:class:`~repro.exec.shm.SegmentRef` naming the shared-memory pages the
worker packed it into.  Record payloads cross process boundaries either
in place (shared segments, counted as ``bytes_shared``) or, for
object-form plans, through one explicit pickle (counted as
``bytes_pickled_records`` — the serialization tax the paper's
decomposition eliminates).

Determinism: task *results* are bitwise identical to the sim backend
(the workers run the same data-plane code in the same per-split order),
and metrics/trace/registration processing happens driver-side in sorted
split order regardless of worker arrival order — so the *structure* of
traces and metrics is reproducible.  Timings are real wall-clock and
therefore vary run to run; the sim backend remains the byte-exact one.

Fault handling mirrors the simulated scheduler where the physics allow:

* an injected ``task-kill`` raises inside the worker, which unlinks its
  own attempt segments and reports the failure (graceful; retried with
  the attempt counter rotating the executor assignment);
* an injected ``executor-crash`` makes the worker ``_exit`` without
  reporting — the driver detects the dead process, **sweeps the
  attempt's orphan segments by deterministic name prefix**, and retries;
* ``max_task_failures`` aborts the stage exactly like the sim path;
* a wave that stops making progress is killed at
  ``mp_stage_timeout_s`` (the CI hang guard's backstop).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import itertools
import pickle
import time
from dataclasses import dataclass, field
from queue import Empty
from typing import Any, Callable, Iterator, TYPE_CHECKING

from ..errors import ExecutionError, StageAbortError, TaskKilledError
from ..memory.unified import UnifiedMemoryManager
from ..spark.metrics import TaskMetrics
from ..spark.shuffle import MapOutputBlock
from .backend import ExecutionBackend
from .shm import (SEGMENT_PREFIX, SegmentRef, ShmSegmentRegistry,
                  read_segment_records, shm_available, sweep_segments,
                  unlink_segment)
from .worker import (CacheBlockOut, TaskFailure, TaskOutput, worker_main)

if TYPE_CHECKING:
    from ..spark.context import DecaContext
    from ..spark.metrics import JobMetrics, StageMetrics
    from ..spark.scheduler import DAGScheduler, Stage

#: Distinguishes segment namespaces when one interpreter builds several
#: mp contexts (tests): names stay deterministic *per context order*.
_RUN_IDS = itertools.count()


@dataclass(frozen=True)
class ShuffleMeta:
    """Everything a reader needs to decode one shuffle's shared blocks."""

    schema: Any
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any] | None
    tag: int | None


@dataclass
class CacheEntry:
    """One cached partition in the backend's cross-process table."""

    kind: str                       # "shm" | "packed" | "records"
    count: int
    ref: SegmentRef | None = None
    blob: bytes | None = None
    records: list | None = None
    schema: Any = None
    decode: Callable[[Any], Any] | None = None
    # Set when the driver's cache swapped the block to the cold tier:
    # workers must recompute instead of resolving the (stale-hot) copy.
    cold: bool = False

    def read(self) -> Iterator[Any]:
        if self.cold:
            raise RuntimeError(
                "cold cache block read as hot — workers must recompute "
                "demoted blocks from lineage")
        if self.kind == "records":
            assert self.records is not None
            yield from self.records
        elif self.kind == "shm":
            assert self.ref is not None
            yield from read_segment_records(self.ref, self.schema,
                                            self.decode)
        else:  # packed: the sim cache's SERIALIZED representation
            assert self.blob is not None
            decode = self.decode or (lambda value: value)
            offset = 0
            blob = self.blob
            while offset < len(blob):
                value, offset = self.schema.unpack_from(blob, offset)
                yield decode(value)


@dataclass
class StageState:
    """Driver state snapshot a stage's forked workers execute against."""

    ctx: "DecaContext"
    stage: "Stage"
    is_map_stage: bool
    result_func: Callable | None
    shuffle_plan: Any
    shuffle_meta: dict[int, ShuffleMeta]
    cache_blocks: dict[tuple[int, int], CacheEntry]
    fault_plans: dict[int, Any]
    attempts: dict[int, int]
    num_executors: int
    run_tag: str
    # worker_id -> {"actor": ..., "clock": ...} fork snapshots (race
    # sanitizer; empty unless config.sanitize).
    vclock_snapshots: dict[int, dict] = field(default_factory=dict)


@dataclass
class _AttemptReport:
    """One attempt's outcome, buffered for deterministic processing."""

    split: int
    attempt: int
    executor_id: int
    status: str                     # "success" | "killed" | ...
    duration_ms: float = 0.0
    records_read: int = 0
    events: list = field(default_factory=list)


class MpBackend(ExecutionBackend):
    """Real parallel execution over forked workers and shared pages."""

    name = "mp"

    def __init__(self, ctx: "DecaContext") -> None:
        super().__init__(ctx)
        if not shm_available():
            raise ExecutionError(
                "execution_backend='mp' needs multiprocessing.shared_memory")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ExecutionError(
                "execution_backend='mp' needs the fork start method")
        self._mp = multiprocessing.get_context("fork")
        self.run_tag = f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_RUN_IDS)}"
        self.num_workers = (ctx.config.mp_workers
                            or ctx.config.num_executors)
        # The driver's provenance ledger (if sanitize mode is on) audits
        # segment register/release — unlink with readers is a violation.
        self.registry = ShmSegmentRegistry(on_unlink=self._segment_unlinked,
                                           ledger=ctx.ledger,
                                           vclock=ctx.vclock)
        self.shuffle_meta: dict[int, ShuffleMeta] = {}
        self.cache_blocks: dict[tuple[int, int], CacheEntry] = {}
        self._cache_segments: dict[int, list[str]] = {}
        self._segment_owner: dict[str, int] = {}
        # Race-sanitizer bookkeeping for the current wave: worker_id ->
        # actor name, split -> owning worker_id.
        self._wave_actors: dict[int, str] = {}
        self._split_worker: dict[int, int] = {}

    # -- arena accounting -----------------------------------------------------
    def _charge_segment(self, ref: SegmentRef, executor_id: int) -> None:
        """Charge a shared segment to its owning executor's pool."""
        assert ref.name is not None
        self._segment_owner[ref.name] = executor_id
        arena = self.ctx.executors[executor_id].arena
        if isinstance(arena, UnifiedMemoryManager):
            entry = f"shm:{ref.name}"
            arena.storage_register_pinned(entry)
            arena.storage_grow(entry, ref.nbytes)

    def _segment_unlinked(self, name: str, nbytes: int) -> None:
        executor_id = self._segment_owner.pop(name, None)
        if executor_id is None:
            return
        arena = self.ctx.executors[executor_id].arena
        if isinstance(arena, UnifiedMemoryManager):
            arena.storage_discard(f"shm:{name}")

    def _adopt_segment(self, ref: SegmentRef, executor_id: int) -> None:
        if ref.name is None:
            return
        self.registry.register(ref)
        self._charge_segment(ref, executor_id)
        self.stats.segments_created += 1
        self.stats.bytes_shared += ref.nbytes
        self.stats.segments_live = len(self.registry)

    # -- the backend protocol -------------------------------------------------
    def run_map_stage(self, scheduler: "DAGScheduler", stage: "Stage",
                      stage_metrics: "StageMetrics",
                      job_metrics: "JobMetrics",
                      stage_start: float) -> bool:
        dep = stage.shuffle_dep
        assert dep is not None
        ctx = self.ctx
        plan = ctx.plan_shuffle(dep)
        info = dep.parent.udt_info
        if (dep.shuffle_id not in self.shuffle_meta and plan.decomposed
                and plan.schema is not None):
            self.shuffle_meta[dep.shuffle_id] = ShuffleMeta(
                schema=plan.schema,
                encode=plan.encode or (lambda value: value),
                decode=(info.from_schema_value if info is not None
                        else None),
                tag=dep.tag)
        outputs = self._run_stage(scheduler, stage, stage_metrics,
                                  job_metrics, stage_start,
                                  shuffle_plan=plan)
        meta = self.shuffle_meta.get(dep.shuffle_id)
        for split in sorted(outputs):
            out = outputs[split]
            for mb in out.map_blocks:
                if mb.ref is not None:
                    self._adopt_segment(mb.ref, out.executor_id)
                    assert meta is not None
                    block = MapOutputBlock(
                        records=None, nbytes=mb.nbytes, objects=mb.objects,
                        executor_id=out.executor_id, decomposed=True,
                        merge_penalty_bytes=mb.merge_penalty_bytes,
                        shm_ref=mb.ref, shm_schema=meta.schema,
                        shm_decode=meta.decode, shm_tag=meta.tag)
                else:
                    assert mb.blob is not None
                    self.stats.bytes_pickled_records += len(mb.blob)
                    block = MapOutputBlock(
                        records=pickle.loads(mb.blob), nbytes=mb.nbytes,
                        objects=mb.objects, executor_id=out.executor_id,
                        decomposed=plan.decomposed,
                        merge_penalty_bytes=mb.merge_penalty_bytes)
                ctx.shuffle_store.register(dep.shuffle_id, split,
                                           mb.reduce_part, block)
            self._register_caches(out)
        return True

    def run_result_stage(self, scheduler: "DAGScheduler", stage: "Stage",
                         func: Callable[[Iterator], Any],
                         stage_metrics: "StageMetrics",
                         job_metrics: "JobMetrics",
                         stage_start: float) -> list | None:
        outputs = self._run_stage(scheduler, stage, stage_metrics,
                                  job_metrics, stage_start,
                                  result_func=func)
        results: list[Any] = []
        ctx = self.ctx
        for split in range(stage.num_tasks):
            out = outputs[split]
            assert out.result_blob is not None
            if ctx.vclock is not None:
                # The producer's notes were absorbed at the wave barrier
                # in _run_stage, so this consume has its edge.
                ctx.vclock.note_result_consumed(
                    f"t{stage.stage_id}.{split}.{out.attempt}")
            self.stats.bytes_pickled_results += len(out.result_blob)
            results.append(pickle.loads(out.result_blob))
            self._register_caches(out)
        return results

    def _register_caches(self, out: TaskOutput) -> None:
        ctx = self.ctx
        for cb in out.cache_blocks:
            key = (cb.rdd_id, cb.split)
            existing = self.cache_blocks.get(key)
            if existing is not None:
                if not existing.cold:
                    # Already materialized by an earlier task (cannot
                    # happen within a stage; defensive for replays):
                    # keep the first.
                    if cb.ref is not None and cb.ref.name is not None:
                        unlink_segment(cb.ref.name)
                    continue
                # A demoted block was recomputed: the fresh bytes
                # replace the cold entry and its stale segment.
                if existing.ref is not None \
                        and existing.ref.name is not None:
                    self.registry.release(existing.ref.name)
                    segs = self._cache_segments.get(cb.rdd_id)
                    if segs is not None and existing.ref.name in segs:
                        segs.remove(existing.ref.name)
            self.cache_blocks[key] = self._cache_entry(cb, out.executor_id)

    def _cache_entry(self, cb: CacheBlockOut, executor_id: int
                     ) -> CacheEntry:
        ctx = self.ctx
        rdd = ctx._rdds.get(cb.rdd_id)
        plan = ctx.plan_cache(rdd) if rdd is not None else None
        schema = plan.schema if plan is not None else None
        decode = plan.decode if plan is not None else None
        if cb.kind == "shm":
            assert cb.ref is not None
            if cb.ref.name is not None:
                self._adopt_segment(cb.ref, executor_id)
                self._cache_segments.setdefault(cb.rdd_id, []).append(
                    cb.ref.name)
            return CacheEntry(kind="shm", count=cb.count, ref=cb.ref,
                              schema=schema, decode=decode)
        assert cb.blob is not None
        self.stats.bytes_pickled_records += len(cb.blob)
        if cb.kind == "packed":
            return CacheEntry(kind="packed", count=cb.count, blob=cb.blob,
                              schema=schema, decode=decode)
        return CacheEntry(kind="records", count=cb.count,
                          records=pickle.loads(cb.blob))

    def demote_block(self, key: tuple[int, int]) -> None:
        """Mark a block cold: forked workers recompute it from lineage
        instead of resolving the shared-memory copy (the driver's cache
        moved the authoritative bytes into the mmap tier)."""
        entry = self.cache_blocks.get(key)
        if entry is None or entry.cold:
            return
        entry.cold = True
        if (self.ctx.ledger is not None and entry.ref is not None
                and entry.ref.name is not None):
            self.ctx.ledger.note_demote("segment", entry.ref.name)
        if (self.ctx.vclock is not None and entry.ref is not None
                and entry.ref.name is not None):
            self.ctx.vclock.note_demote("segment", entry.ref.name)
        self.stats.extra["blocks_demoted"] = \
            self.stats.extra.get("blocks_demoted", 0) + 1

    def unpersist_rdd(self, rdd_id: int) -> None:
        for key in [k for k in self.cache_blocks if k[0] == rdd_id]:
            del self.cache_blocks[key]
        for name in self._cache_segments.pop(rdd_id, []):
            self.registry.release(name)
        self.stats.segments_live = len(self.registry)

    def shutdown(self) -> None:
        self.cache_blocks.clear()
        self._cache_segments.clear()
        self.registry.release_all()
        self.stats.segments_live = 0

    # -- the wave engine ------------------------------------------------------
    def _run_stage(self, scheduler: "DAGScheduler", stage: "Stage",
                   stage_metrics: "StageMetrics",
                   job_metrics: "JobMetrics", stage_start: float,
                   shuffle_plan: Any = None,
                   result_func: Callable | None = None,
                   ) -> dict[int, TaskOutput]:
        ctx = self.ctx
        cfg = ctx.config
        injector = ctx.fault_injector
        recovery = job_metrics.recovery
        pending: dict[int, int] = {s: 0 for s in range(stage.num_tasks)}
        failures: dict[int, int] = {s: 0 for s in range(stage.num_tasks)}
        outputs: dict[int, TaskOutput] = {}
        reports: list[_AttemptReport] = []
        waves = 0
        real_start = time.perf_counter()
        deadline = time.monotonic() + cfg.mp_stage_timeout_s
        self.stats.mp_stages += 1
        while pending:
            waves += 1
            wave = sorted(pending)
            fault_plans: dict[int, Any] = {}
            if injector.enabled:
                # Planned driver-side, in split order, so the injector's
                # seeded RNG sees the same draw sequence on every run.
                for split in wave:
                    plan = injector.plan_task(stage.stage_id, split,
                                              pending[split])
                    if plan is not None:
                        fault_plans[split] = plan
            state = StageState(
                ctx=ctx, stage=stage,
                is_map_stage=result_func is None,
                result_func=result_func, shuffle_plan=shuffle_plan,
                shuffle_meta=self.shuffle_meta,
                cache_blocks=self.cache_blocks,
                fault_plans=fault_plans, attempts=dict(pending),
                num_executors=len(ctx.executors), run_tag=self.run_tag)
            nworkers = max(1, min(self.num_workers, len(wave)))
            assignments = [wave[w::nworkers] for w in range(nworkers)]
            self._wave_actors = {}
            self._split_worker = {}
            if ctx.vclock is not None:
                # Fork edges: each worker's checker starts from a
                # snapshot of the driver clock taken before the fork.
                for worker_id, splits in enumerate(assignments):
                    actor = f"w{stage.stage_id}.{waves}.{worker_id}"
                    self._wave_actors[worker_id] = actor
                    for split in splits:
                        self._split_worker[split] = worker_id
                    state.vclock_snapshots[worker_id] = {
                        "actor": actor,
                        "clock": ctx.vclock.fork(actor)}
            queue = self._mp.Queue()
            procs = []
            for worker_id, splits in enumerate(assignments):
                proc = self._mp.Process(
                    target=worker_main,
                    args=(state, worker_id, splits, queue), daemon=True)
                proc.start()
                procs.append(proc)
            oks, fails, deaths = self._gather(procs, queue, assignments,
                                              stage, pending, deadline)
            # One process death is one lost executor, however many of
            # its assigned tasks went down with it.
            recovery.executors_lost += deaths
            self.stats.worker_deaths += deaths
            queue.close()
            for proc in procs:
                proc.join(timeout=5.0)
            if ctx.vclock is not None:
                # The wave barrier: every worker is joined, so all of
                # them are dead by the time the next wave (or a sweep
                # outside _gather) runs.
                for actor in self._wave_actors.values():
                    ctx.vclock.exit_actor(actor)
            self.stats.mp_tasks += len(oks) + len(fails)
            for out in oks:
                if ctx.vclock is not None and out.vclock_notes is not None:
                    # Receive edge: replay the worker's segment accesses
                    # and join its clock into the driver's.
                    ctx.vclock.absorb(out.vclock_notes)
                outputs[out.split] = out
                attempt = pending.pop(out.split)
                reports.append(_AttemptReport(
                    split=out.split, attempt=attempt,
                    executor_id=out.executor_id, status="success",
                    duration_ms=out.duration_ms,
                    records_read=out.records_read, events=out.events))
                if attempt > 0:
                    recovery.task_retries += attempt
            for fail in sorted(fails, key=lambda f: f.split):
                split = fail.split
                if ctx.vclock is not None \
                        and fail.vclock_notes is not None:
                    ctx.vclock.absorb(fail.vclock_notes)
                reports.append(_AttemptReport(
                    split=split, attempt=fail.attempt,
                    executor_id=fail.executor_id, status=fail.status,
                    duration_ms=fail.duration_ms, events=fail.events))
                recovery.task_failures += 1
                failures[split] += 1
                if fail.status == "executor-lost":
                    # The dead worker reported nothing: sweep whatever
                    # the attempt managed to pack before dying.  The
                    # vclock saw the death confirmation in _gather
                    # (exit_actor), so the owner is provably dead here.
                    prefix = self._attempt_prefix(stage, split,
                                                  fail.attempt)
                    sweep_segments(prefix)
                    if ctx.vclock is not None:
                        owner_id = self._split_worker.get(split)
                        ctx.vclock.note_sweep(
                            prefix,
                            owner=self._wave_actors.get(owner_id)
                            if owner_id is not None else None)
                if fail.status == "error":
                    # Non-injected failures are driver errors, as in the
                    # sim path (which only retries injected fault kinds).
                    self._flush(scheduler, stage_metrics, reports,
                                stage_start, real_start, waves)
                    raise ExecutionError(
                        f"mp task {stage.stage_id}.{split} "
                        f"(attempt {fail.attempt}) failed: {fail.message}")
                if failures[split] >= cfg.faults.max_task_failures:
                    self._flush(scheduler, stage_metrics, reports,
                                stage_start, real_start, waves)
                    raise StageAbortError(
                        stage.stage_id, split, failures[split],
                        TaskKilledError(stage.stage_id, split,
                                        fail.attempt))
                pending[split] = fail.attempt + 1
        self._flush(scheduler, stage_metrics, reports, stage_start,
                    real_start, waves)
        return outputs

    def _attempt_prefix(self, stage: "Stage", split: int,
                        attempt: int) -> str:
        return f"{self.run_tag}-t{stage.stage_id}p{split}a{attempt}-"

    def _flush(self, scheduler: "DAGScheduler",
               stage_metrics: "StageMetrics",
               reports: list[_AttemptReport], stage_start: float,
               real_start: float, waves: int) -> None:
        """Fold buffered attempts into metrics/trace, in split order.

        Workers finish in wall-clock order; sorting here makes the
        emitted structure — task metrics rows, relayed trace events —
        identical across runs of the same program.
        """
        ctx = self.ctx
        elapsed_ms = (time.perf_counter() - real_start) * 1000.0
        for report in sorted(reports, key=lambda r: (r.split, r.attempt)):
            stage_metrics.tasks.append(TaskMetrics(
                task_id=report.split, stage_id=stage_metrics.stage_id,
                executor_id=report.executor_id, attempt=report.attempt,
                status=report.status, records_read=report.records_read,
                compute_ms=report.duration_ms,
                duration_ms=report.duration_ms))
            for event in report.events:
                # Worker timestamps are relative to its fork; re-anchor
                # them at the stage's driver timestamp.  The pid is the
                # worker-assigned executor trace pid, same numbering the
                # sim backend uses — traces stay single-file.
                if ctx.vclock is not None:
                    ctx.vclock.note_relay(stage_start + event.ts_ms,
                                          stage_start, pid=event.pid)
                ctx.tracer.emit(dataclasses.replace(
                    event, ts_ms=stage_start + event.ts_ms))
        ctx.tracer.instant(
            f"mp:stage:{stage_metrics.stage_id}", "mp",
            ts_ms=stage_start, stage_id=stage_metrics.stage_id,
            waves=waves, workers=self.num_workers,
            segments_live=len(self.registry))
        reports.clear()
        # The mp clock policy: real elapsed time becomes the simulated
        # stage wall for every executor (clocks never go backwards).
        for executor in ctx.executors:
            executor.clock.advance_to(stage_start + elapsed_ms)

    def _gather(self, procs: list, queue: Any,
                assignments: list[list[int]], stage: "Stage",
                pending: dict[int, int], deadline: float,
                ) -> tuple[list[TaskOutput], list[TaskFailure], int]:
        """Drain one wave's result queue until every worker is accounted
        for — by its "done" sentinel or by its corpse.  Returns the
        wave's outputs, failures and the count of workers that died."""
        oks: list[TaskOutput] = []
        fails: list[TaskFailure] = []
        done: set[int] = set()
        reported: set[int] = set()
        deaths = 0

        def dispatch(message: tuple) -> None:
            kind, payload = message
            if kind == "ok":
                oks.append(payload)
                reported.add(payload.split)
            elif kind == "fail":
                fails.append(payload)
                reported.add(payload.split)
            else:  # "done"
                done.add(payload)

        while len(done) < len(procs):
            if time.monotonic() >= deadline:
                for proc in procs:
                    proc.terminate()
                for proc in procs:
                    proc.join(timeout=5.0)
                if self.ctx.vclock is not None:
                    # Every worker was just terminated and joined.
                    for actor in self._wave_actors.values():
                        self.ctx.vclock.exit_actor(actor)
                for split, attempt in sorted(pending.items()):
                    if split not in reported:
                        sweep_segments(
                            self._attempt_prefix(stage, split, attempt))
                raise ExecutionError(
                    f"mp stage {stage.stage_id} exceeded "
                    f"mp_stage_timeout_s="
                    f"{self.ctx.config.mp_stage_timeout_s}")
            try:
                dispatch(queue.get(timeout=0.05))
                continue
            except Empty:
                pass
            for worker_id, proc in enumerate(procs):
                if worker_id in done or proc.is_alive():
                    continue
                if proc.exitcode is None:
                    continue
                # The worker exited without its sentinel reaching us yet:
                # drain any messages it flushed before dying, then treat
                # what is still unreported as lost with the process.
                while True:
                    try:
                        dispatch(queue.get(timeout=0.05))
                    except Empty:
                        break
                if worker_id in done:
                    continue
                done.add(worker_id)
                deaths += 1
                if self.ctx.vclock is not None:
                    # Death confirmed (corpse with an exit code): the
                    # actor leaves the live set before any orphan sweep.
                    actor = self._wave_actors.get(worker_id)
                    if actor is not None:
                        self.ctx.vclock.exit_actor(actor)
                for split in assignments[worker_id]:
                    if split in reported:
                        continue
                    attempt = pending[split]
                    reported.add(split)
                    executor_id = (split + attempt) % len(
                        self.ctx.executors)
                    fails.append(TaskFailure(
                        split=split, attempt=attempt,
                        executor_id=executor_id, status="executor-lost",
                        message=f"worker {worker_id} died "
                                f"(exit {proc.exitcode})"))
        return oks, fails, deaths
