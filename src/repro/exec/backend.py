"""The pluggable execution-backend protocol.

A backend decides *how task attempts run*: the :class:`SimBackend`
declines every stage so the scheduler's original in-process simulated
loop executes unchanged (byte-for-byte — every existing benchmark and
trace is untouched), while :class:`~repro.exec.mp.MpBackend` claims
stages and runs their tasks on a real ``multiprocessing`` worker pool
with shared-memory Deca pages.

The protocol is deliberately coarse — a backend takes whole *stages*,
not tasks — because a stage is the natural fork point: everything a
task needs (lineage, closures, parent map outputs, cached blocks) is
driver state at stage start, so a forked pool inherits it for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:
    from ..spark.context import DecaContext
    from ..spark.metrics import JobMetrics, StageMetrics
    from ..spark.scheduler import Scheduler, Stage


@dataclass
class BackendStats:
    """Cross-process traffic accounting (the zero-copy scoreboard).

    ``bytes_pickled_records`` is the number the paper's decomposition
    story is about: record payload that crossed a process boundary via
    serialization.  Decomposed shuffle and cache paths should drive it
    to ~0 — their payloads travel as ``bytes_shared`` (shared-memory
    segments read in place) instead.  Action results returned to the
    driver are counted separately: they exist under every backend.
    """

    backend: str = "sim"
    bytes_pickled_records: int = 0
    bytes_pickled_results: int = 0
    bytes_shared: int = 0
    segments_created: int = 0
    segments_live: int = 0
    mp_stages: int = 0
    mp_tasks: int = 0
    worker_deaths: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def bytes_pickled(self) -> int:
        return self.bytes_pickled_records + self.bytes_pickled_results

    def to_dict(self) -> dict[str, Any]:
        out = {
            "backend": self.backend,
            "bytes_pickled_records": self.bytes_pickled_records,
            "bytes_pickled_results": self.bytes_pickled_results,
            "bytes_pickled": self.bytes_pickled,
            "bytes_shared": self.bytes_shared,
            "segments_created": self.segments_created,
            "segments_live": self.segments_live,
            "mp_stages": self.mp_stages,
            "mp_tasks": self.mp_tasks,
            "worker_deaths": self.worker_deaths,
        }
        out.update(self.extra)
        return out


class ExecutionBackend:
    """Base backend: declines every stage (the scheduler runs inline)."""

    name = "sim"

    def __init__(self, ctx: "DecaContext") -> None:
        self.ctx = ctx
        self.stats = BackendStats(backend=self.name)

    def run_map_stage(self, scheduler: "Scheduler", stage: "Stage",
                      stage_metrics: "StageMetrics",
                      job_metrics: "JobMetrics",
                      stage_start: float) -> bool:
        """Run a whole shuffle-map stage; ``False`` means "not mine"."""
        return False

    def run_result_stage(self, scheduler: "Scheduler", stage: "Stage",
                         func: Callable[[Iterator], Any],
                         stage_metrics: "StageMetrics",
                         job_metrics: "JobMetrics",
                         stage_start: float) -> list | None:
        """Run a result stage; ``None`` means "not mine"."""
        return None

    def unpersist_rdd(self, rdd_id: int) -> None:
        """An RDD was unpersisted: drop backend-held cache blocks."""

    def demote_block(self, key: tuple[int, int]) -> None:
        """A cached block went cold (swapped to the cold tier).

        Workers must stop resolving it from hot backend storage (shared
        memory) and fall back to recomputing from lineage.
        """

    def shutdown(self) -> None:
        """Release every backend resource (context teardown)."""


class SimBackend(ExecutionBackend):
    """The simulated backend.

    It holds no state and claims no stages: the scheduler's sequential
    attempt loop over simulated executors — heaps, clocks, GC pauses,
    speculation — runs exactly as before this layer existed.
    """

    name = "sim"


def create_backend(ctx: "DecaContext") -> ExecutionBackend:
    """Build the backend `ctx.config.execution_backend` selects."""
    kind = ctx.config.execution_backend
    if kind == "mp":
        from .mp import MpBackend
        return MpBackend(ctx)
    return SimBackend(ctx)
