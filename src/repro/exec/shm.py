"""Shared-memory Deca page segments (the mp backend's data plane).

A decomposed container that must cross a process boundary — a shuffle map
output or a cached block under the mp backend — is packed once into a
``multiprocessing.shared_memory`` segment and read **in place** by every
consumer process through schema accessors over a ``memoryview``.  No
pickle, no copy of the byte stream: the segment *is* the Deca page group,
exactly the property §4.3 claims for decomposed data.

Lifecycle rules (mirroring page-info reference counting, §4.3.3):

* the **worker that runs the producing task creates** the segment, packs
  the records and immediately detaches; it also unregisters the segment
  from the stdlib ``resource_tracker`` (which would otherwise unlink it
  when the transient worker exits — the owner of a segment's lifetime is
  the *driver*, not whichever process happened to create it);
* the **driver registers** the segment in a :class:`ShmSegmentRegistry`
  with a reference count; consumers attach/detach without touching the
  count, while logical owners (a shuffle's blocks, a cached RDD) hold
  references — the segment is unlinked when the last one is released;
* segment names are **deterministic** (``repro-mp-<pid>-<run>-...``), so
  after a worker dies mid-task the driver can sweep the attempt's
  leftover segments from ``/dev/shm`` by prefix without any cooperation
  from the dead process;
* an ``atexit`` sweep unlinks anything still registered when the driver
  interpreter exits, so a test run that never calls ``ctx.finish()``
  still leaves ``/dev/shm`` clean (the CI leak guard asserts this).
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import PageError
from ..memory.layout import Schema
from ..memory.page import Page, PageGroup
from ..memory.provenance import ProvenanceLedger
from ..obs.vclock import VClockChecker

try:  # pragma: no cover - the stdlib ships both on every target platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    resource_tracker = None  # type: ignore[assignment]
    shared_memory = None  # type: ignore[assignment]

#: Every segment of every run starts with this, so the leak guard (and the
#: orphan sweep after a worker death) can recognise ours by name alone.
SEGMENT_PREFIX = "repro-mp"

#: Linux mounts POSIX shared memory here; the sweep helpers are no-ops on
#: platforms without it.
_SHM_DIR = "/dev/shm"


def shm_available() -> bool:
    """Whether this platform can back Deca pages with shared memory."""
    return shared_memory is not None


def _untrack(shm: "shared_memory.SharedMemory") -> None:
    """Opt this handle out of the stdlib resource tracker.

    Python 3.11 registers the segment with the tracker on *every*
    construction — attach included — so without this, the first process
    to exit would have the tracker unlink a segment other processes (and
    the driver's registry) still own.
    """
    if resource_tracker is None:
        return
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class SegmentRef:
    """A process-portable handle on one packed segment.

    ``name`` is ``None`` for an empty container (no segment is created
    for zero records — shared memory cannot be zero-sized anyway).
    """

    name: str | None
    nbytes: int
    count: int


EMPTY_SEGMENT = SegmentRef(name=None, nbytes=0, count=0)


class SharedPageSegment:
    """An attached shared-memory segment serving page buffers.

    Writers bump-allocate page buffers out of the mapping; readers wrap
    the used span as one :class:`~repro.memory.page.Page`.  ``close``
    drops this process's mapping only; ``unlink`` removes the segment
    from the system (driver-side, via the registry).
    """

    def __init__(self, name: str, nbytes: int = 0,
                 create: bool = False) -> None:
        if shared_memory is None:  # pragma: no cover
            raise PageError("shared memory is unavailable on this platform")
        if create and nbytes <= 0:
            raise PageError(f"segment {name!r} needs a positive size")
        self.name = name
        self.nbytes = nbytes
        self._shm = shared_memory.SharedMemory(
            name=name, create=create, size=nbytes if create else 0)
        _untrack(self._shm)
        if not create and nbytes == 0:
            # Attach side: trust the mapping (it is page-rounded, so the
            # logical byte count still comes from the SegmentRef).
            self.nbytes = self._shm.size
        self._offset = 0
        self.closed = False

    def allocate(self, nbytes: int) -> memoryview:
        """Bump-allocate a writable page buffer from the mapping."""
        if self._offset + nbytes > self._shm.size:
            raise PageError(
                f"segment {self.name!r} overflow: "
                f"{self._offset} + {nbytes} > {self._shm.size}")
        view = self._shm.buf[self._offset:self._offset + nbytes]
        self._offset += nbytes
        return view

    def view(self, nbytes: int) -> memoryview:
        """The first *nbytes* of the mapping (reader side)."""
        return self._shm.buf[:nbytes]

    def close(self) -> None:
        """Detach this process's mapping (tolerates live page views:
        their memory is reclaimed when the last reference drops)."""
        if self.closed:
            return
        self.closed = True
        try:
            self._shm.close()
        except BufferError:
            # A page view is still exported somewhere (e.g. a suspended
            # reader generator); the mapping lives until it is collected.
            pass

    def unlink(self) -> None:
        if resource_tracker is not None:
            # ``SharedMemory.unlink`` sends a tracker *unregister*; the
            # constructor untracked this handle, so re-register first to
            # keep the tracker's books balanced (else it logs KeyErrors).
            try:
                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:
                pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


def pack_records_segment(name: str, schema: Schema, values: list,
                         ) -> SegmentRef:
    """Pack encoded *values* into a fresh segment named *name*.

    One sizing pass then one in-place pack straight into the shared
    mapping — the only full traversal of the bytes; every subsequent
    reader works on the same physical pages.
    """
    if not values:
        return EMPTY_SEGMENT
    total = sum(schema.size_of(value) for value in values)
    if total <= 0:
        return EMPTY_SEGMENT
    segment = SharedPageSegment(name, total, create=True)
    try:
        buf = segment.view(total)
        offset = 0
        for value in values:
            offset = schema.pack_into(buf, offset, value)
        del buf
    finally:
        segment.close()
    return SegmentRef(name=name, nbytes=total, count=len(values))


def attach_page_group(ref: SegmentRef, group_name: str | None = None,
                      ledger: ProvenanceLedger | None = None,
                      vclock: VClockChecker | None = None) -> PageGroup:
    """Attach *ref* as a single-page read-side :class:`PageGroup`.

    The group's pages alias the shared mapping (zero-copy); reclaiming
    the group — by refcount through its page-infos, like any Deca
    container — detaches the mapping.  The segment itself stays linked:
    unlinking is the driver registry's job.
    """
    if ref.name is None or ref.nbytes <= 0:
        return PageGroup(group_name or "shm:empty", page_bytes=1)
    segment = SharedPageSegment(ref.name, ref.nbytes)

    def _detach(_group: PageGroup) -> None:
        # Release the pages' views first so the mapping has no exported
        # pointers left — otherwise ``close`` (and later the handle's
        # finalizer) would trip over BufferError.
        if vclock is not None:
            # Consumers attach read-only: prove no write leaked through
            # the shared mapping while the group was mounted (DECA408).
            vclock.verify_readonly("segment", ref.name or "")
        for page in group.pages:
            if isinstance(page.data, memoryview):
                try:
                    page.data.release()
                except BufferError:  # a reader still holds a sub-view
                    pass
                page.data = memoryview(b"")
        group.pages.clear()
        segment.close()

    group = PageGroup(group_name or f"shm:{ref.name}",
                      page_bytes=ref.nbytes, on_reclaim=_detach)
    page = Page(0, ref.nbytes, buffer=segment.view(ref.nbytes))
    page.used = ref.nbytes
    group.pages.append(page)
    if ledger is not None:
        # Sanitize mode: the mounted view is a borrow of the segment;
        # reclaiming the group must detach it (checked at finish).
        ledger.borrow("segment", ref.name, view=page.data, transient=False)
        group.ledger = ledger
    if vclock is not None:
        vclock.note_attach("segment", ref.name)
        vclock.adopt_readonly("segment", ref.name, page.data)
    return group


def read_segment_records(ref: SegmentRef, schema: Schema,
                         decode: Callable[[Any], Any] | None = None,
                         ) -> Iterator[Any]:
    """Decode every record of *ref* in place (attach, scan, detach)."""
    if ref.name is None or ref.count == 0:
        return
    group = attach_page_group(ref)
    info = group.new_page_info()
    try:
        if decode is None:
            yield from group.records(schema)
        else:
            for value in group.records(schema):
                yield decode(value)
    finally:
        info.close()


# -- driver-side lifetime registry ------------------------------------------

#: Names the atexit sweep still has to unlink, across every registry in
#: the process (a test may build several contexts).
_PENDING_UNLINK: set[str] = set()
_ATEXIT_ARMED = False


def manifest_path(pid: int | None = None) -> str:
    """The per-process registry manifest under the temp dir.

    The manifest mirrors ``_PENDING_UNLINK``: every segment this process
    still owns.  ``scripts/check_mp_leaks.py`` uses it to catch the
    *live-creator* orphan — a linked segment whose creating process is
    alive but whose registry entry is gone, so nothing will ever unlink
    it (a dead-pid check alone cannot see this leak).
    """
    return os.path.join(tempfile.gettempdir(),
                        f"repro-mp-manifest-{pid or os.getpid()}.json")


def _write_manifest() -> None:
    """Persist the owned-segment set (best-effort; removed when empty)."""
    path = manifest_path()
    try:
        if not _PENDING_UNLINK:
            if os.path.exists(path):
                os.unlink(path)
            return
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"pid": os.getpid(),
                       "segments": sorted(_PENDING_UNLINK)}, handle)
    except OSError:  # pragma: no cover - tmpdir trouble must not kill a run
        pass


def _sweep_at_exit() -> None:
    for name in sorted(_PENDING_UNLINK):
        unlink_segment(name)
    _PENDING_UNLINK.clear()
    _write_manifest()


def _arm_atexit() -> None:
    global _ATEXIT_ARMED
    if not _ATEXIT_ARMED:
        atexit.register(_sweep_at_exit)
        _ATEXIT_ARMED = True


def unlink_segment(name: str) -> bool:
    """Best-effort unlink of segment *name*; True if it existed."""
    if shared_memory is None:  # pragma: no cover
        return False
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError:
        return False
    # No _untrack here: ``unlink()`` below sends its own tracker
    # unregister, which balances the register this attach just made.
    try:
        shm.close()
    except BufferError:  # pragma: no cover - fresh attach has no views
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        return False
    return True


def list_segments(prefix: str = SEGMENT_PREFIX) -> list[str]:
    """Segment names currently linked under */dev/shm* with *prefix*."""
    if not os.path.isdir(_SHM_DIR):
        return []
    return sorted(entry for entry in os.listdir(_SHM_DIR)
                  if entry.startswith(prefix))


def sweep_segments(prefix: str) -> list[str]:
    """Unlink every linked segment whose name starts with *prefix*.

    This is the driver's recovery path after a worker died mid-task:
    the attempt's segment names are deterministic, so everything the
    dead process created — but never reported — is swept by prefix.
    """
    swept = []
    for name in list_segments(prefix):
        if unlink_segment(name):
            _PENDING_UNLINK.discard(name)
            swept.append(name)
    if swept:
        _write_manifest()
    return swept


class ShmSegmentRegistry:
    """Reference-counted ownership of a run's shared segments.

    The registry is the mp analogue of page-info reference counting: a
    segment is registered with one reference by its first logical owner;
    additional owners ``acquire`` it; ``release`` at zero unlinks the
    segment from the system.  ``on_unlink`` lets the backend discharge
    the segment's bytes from the owning executor's memory arena.
    """

    def __init__(self, on_unlink: Callable[[str, int], None] | None = None,
                 ledger: ProvenanceLedger | None = None,
                 vclock: VClockChecker | None = None) -> None:
        # Every refcount mutation runs under this lock: the registry is
        # driver-side today, but a speculative-execution thread touching
        # it concurrently must not lose a count (DECA402's subject).
        self._lock = threading.RLock()
        self._refs: dict[str, int] = {}
        self._nbytes: dict[str, int] = {}
        self.on_unlink = on_unlink
        # Sanitize mode: segment register/unlink transitions are checked
        # against the driver-side provenance ledger (None = no-op).
        self.ledger = ledger
        # Race sanitizer: unlink ordering vs attaches (None = off).
        self.vclock = vclock
        self.created_total = 0
        self.bytes_total = 0
        _arm_atexit()

    def __len__(self) -> int:
        return len(self._refs)

    @property
    def live_bytes(self) -> int:
        return sum(self._nbytes.values())

    def register(self, ref: SegmentRef) -> None:
        """Adopt *ref* with one reference (idempotent per name)."""
        if ref.name is None:
            return
        with self._lock:
            if ref.name in self._refs:
                raise PageError(f"segment {ref.name!r} registered twice")
            self._refs[ref.name] = 1
            self._nbytes[ref.name] = ref.nbytes
            self.created_total += 1
            self.bytes_total += ref.nbytes
        if self.ledger is not None:
            self.ledger.note_alloc("segment", ref.name)
        if self.vclock is not None:
            self.vclock.note_create("segment", ref.name)
        _PENDING_UNLINK.add(ref.name)
        _write_manifest()

    def acquire(self, name: str) -> None:
        with self._lock:
            if name not in self._refs:
                raise PageError(f"segment {name!r} is not registered")
            self._refs[name] += 1

    def release(self, name: str) -> None:
        """Drop one reference; the last one unlinks the segment."""
        with self._lock:
            count = self._refs.get(name)
            if count is None:
                return
            if self.vclock is not None:
                self.vclock.note_refdec(name, locked=True)
            if count > 1:
                self._refs[name] = count - 1
                return
            del self._refs[name]
            nbytes = self._nbytes.pop(name, 0)
        if self.ledger is not None:
            # The last reference is gone: any borrow still live over the
            # segment is a use-after-unlink in the making.
            self.ledger.note_free("segment", name)
        unlink_segment(name)
        if self.vclock is not None:
            self.vclock.note_reclaim("segment", name)
        _PENDING_UNLINK.discard(name)
        _write_manifest()
        if self.on_unlink is not None:
            self.on_unlink(name, nbytes)

    def release_all(self) -> int:
        """Unlink every registered segment (context teardown)."""
        with self._lock:
            names = sorted(self._refs)
            for name in names:
                self._refs[name] = 1
        for name in names:
            self.release(name)
        return len(names)
