"""Pluggable execution backends (sim in-process vs real multiprocess).

See :mod:`repro.exec.backend` for the protocol, :mod:`repro.exec.mp`
for the multiprocess implementation and :mod:`repro.exec.shm` for the
shared-memory Deca page segments; ``docs/execution_backends.md`` has
the full story.
"""

from .backend import (BackendStats, ExecutionBackend, SimBackend,
                      create_backend)

__all__ = [
    "BackendStats",
    "ExecutionBackend",
    "SimBackend",
    "create_backend",
]
