"""Worker-side task execution for the mp backend.

A worker is **forked at stage start**, so it inherits the driver's whole
object graph: the RDD lineage (closures included — nothing is pickled to
ship a task), the shuffle store with every parent stage's registered map
outputs, the backend's cache/segment tables and the optimizer's plans.
The task payload is just a split index.

The worker re-runs the *real data plane* of the simulated engine — the
same ``rdd.compute`` chains, the same :class:`MapSideWriter` combine
dictionaries — against a :class:`WorkerExecutor` stub whose simulated
charges are no-ops.  Because the data path is literally the same code in
the same order, mp results are bitwise identical to sim results (float
summation order included); only the *costs* differ: mp tasks are measured
in wall-clock, not simulated, milliseconds.

Outputs leave the worker two ways:

* decomposed shuffle blocks and Deca-page cache blocks are packed into
  shared-memory segments (:mod:`repro.exec.shm`) and only a
  :class:`~repro.exec.shm.SegmentRef` crosses the queue — zero pickled
  record bytes;
* object-form blocks are pickled (and counted — this is exactly the
  serialization cost the paper's decomposition removes).
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, TYPE_CHECKING

from ..errors import TaskKilledError
from ..obs.tracer import TraceEvent, Tracer
from ..obs.vclock import VClockChecker
from ..spark.faults import EXECUTOR_CRASH, TASK_KILL, TaskFaultPlan
from ..spark.metrics import TaskMetrics
from ..spark.scheduler import TaskContext
from ..spark.shuffle import MapSideWriter, ShuffleBlockStore
from .shm import SegmentRef, pack_records_segment, read_segment_records

if TYPE_CHECKING:
    from .mp import StageState

#: Exit code a worker uses for an injected executor crash, so the driver
#: can tell an injected death from an interpreter error.
CRASH_EXIT_CODE = 17


def _resolvable(entry: Any) -> bool:
    """Whether a backend cache entry may serve reads.

    Cold entries (the driver's cache demoted the block into the mmap
    tier) must not be resolved as shared memory — the worker recomputes
    the partition from lineage instead, like a real executor whose
    BlockManager dropped the block.
    """
    return entry is not None and not getattr(entry, "cold", False)


# -- messages shipped back to the driver -------------------------------------

@dataclass
class MapBlockOut:
    """One (map, reduce) shuffle block leaving a worker."""

    reduce_part: int
    count: int
    nbytes: int
    objects: int
    merge_penalty_bytes: int
    ref: SegmentRef | None = None   # shared pages (decomposed plans)
    blob: bytes | None = None       # pickled records (object plans)


@dataclass
class CacheBlockOut:
    """One cached partition materialized by a worker task."""

    rdd_id: int
    split: int
    kind: str                       # "shm" | "packed" | "pickle"
    count: int
    ref: SegmentRef | None = None
    blob: bytes | None = None


@dataclass
class TaskOutput:
    """Everything one successful task attempt reports to the driver."""

    split: int
    attempt: int
    executor_id: int
    duration_ms: float = 0.0
    records_read: int = 0
    map_blocks: list[MapBlockOut] = field(default_factory=list)
    cache_blocks: list[CacheBlockOut] = field(default_factory=list)
    result_blob: bytes | None = None
    events: list[TraceEvent] = field(default_factory=list)
    # Race-sanitizer notes (vclock export, sanitize mode only): the
    # worker's clock plus its recorded segment accesses for this task.
    vclock_notes: dict | None = None


@dataclass
class TaskFailure:
    """A graceful task failure (the worker survived it)."""

    split: int
    attempt: int
    executor_id: int
    status: str                     # "killed" | "error"
    message: str
    duration_ms: float = 0.0
    events: list[TraceEvent] = field(default_factory=list)
    vclock_notes: dict | None = None


# -- the executor stub --------------------------------------------------------

class _NullGroup:
    __slots__ = ("name", "freed", "live_objects")

    def __init__(self, name: str) -> None:
        self.name = name
        self.freed = False
        self.live_objects = 0

    def shrink(self, nbytes: int) -> None:
        pass


class _NullHeap:
    """Absorbs heap traffic: worker memory is real, not simulated."""

    young_used_bytes = 0
    old_used_bytes = 0

    def new_group(self, name: str, lifetime: Any = None) -> _NullGroup:
        return _NullGroup(name)

    def allocate(self, group: _NullGroup, objects: int, nbytes: int) -> None:
        pass

    def free_group(self, group: _NullGroup) -> None:
        group.freed = True


class _NullArena:
    """Never over budget: workers hold real memory, they do not spill."""

    def shuffle_acquire(self, nbytes: int) -> None:
        pass

    def shuffle_release(self, nbytes: int) -> None:
        pass

    def shuffle_over_budget(self) -> bool:
        return False


class _NullSerializer:
    """Serialization inside a worker is free: decomposed data is written
    straight to shared pages and object data is pickled exactly once, at
    the process boundary (where the backend counts it)."""

    def kryo_serialize(self, objects: int, nbytes: int) -> None:
        pass

    def kryo_deserialize(self, objects: int, nbytes: int) -> None:
        pass

    def deca_write(self, objects: int, nbytes: int) -> None:
        pass

    def deca_read(self, objects: int, nbytes: int) -> None:
        pass


class _WallClock:
    """The worker's clock is the wall clock (read-only for charges)."""

    def __init__(self) -> None:
        self._t0 = time.perf_counter()

    @property
    def now_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1000.0

    def advance(self, ms: float) -> None:
        pass

    def advance_to(self, ms: float) -> None:
        pass


class WorkerExecutor:
    """The executor a task sees inside an mp worker.

    Same interface as :class:`repro.spark.executor.Executor` where the
    data plane touches it; every simulated cost charge is a no-op (the
    work is real, the wall clock measures it).  Compute charges still
    tick the armed fault plan so an injected ``task-kill`` strikes
    mid-computation exactly like in the sim backend.
    """

    def __init__(self, executor_id: int, config: Any, clock: _WallClock,
                 read_shuffle_fn: Callable[[int, int], Any]) -> None:
        self.executor_id = executor_id
        self.config = config
        self.clock = clock
        self.tracer = Tracer()
        self.trace_pid = executor_id + 1
        self.heap = _NullHeap()
        self.arena = _NullArena()
        self.serializer = _NullSerializer()
        self.fault_injector = None
        self.parallelism = max(1, config.tasks_per_executor)
        self._read_shuffle_fn = read_shuffle_fn
        self._fault_plan: TaskFaultPlan | None = None
        self._fault_countdown = 0
        self._current_task: TaskContext | None = None

    # -- fault injection (task-kill only; crashes are handled by the task
    # runner because they must kill the whole process) ----------------------
    def arm_fault(self, plan: TaskFaultPlan) -> None:
        self._fault_plan = plan
        self._fault_countdown = plan.after_ops

    def disarm_fault(self) -> None:
        self._fault_plan = None
        self._fault_countdown = 0

    def _tick_fault(self) -> None:
        plan = self._fault_plan
        if plan is None:
            return
        if self._fault_countdown > 0:
            self._fault_countdown -= 1
            return
        self.disarm_fault()
        metrics = (self._current_task.metrics
                   if self._current_task is not None else None)
        raise TaskKilledError(
            metrics.stage_id if metrics else -1,
            metrics.task_id if metrics else -1,
            metrics.attempt if metrics else 0)

    # -- charges (no-ops; the wall clock is the cost model) ------------------
    def charge_compute(self, ms: float) -> None:
        self._tick_fault()

    def charge_disk_write(self, nbytes: int) -> None:
        pass

    def charge_disk_read(self, nbytes: int) -> None:
        pass

    def charge_network(self, nbytes: int) -> None:
        pass

    def alloc_temp(self, objects: int, nbytes: int) -> None:
        pass

    def new_pinned_group(self, name: str) -> _NullGroup:
        return _NullGroup(name)

    def free_pinned_group(self, group: _NullGroup) -> None:
        group.freed = True

    def read_shuffle(self, shuffle_id: int, reduce_part: int,
                     task: TaskContext) -> Any:
        return self._read_shuffle_fn(shuffle_id, reduce_part)


# -- the worker loop ----------------------------------------------------------

class _WorkerRuntime:
    """Per-process state of one forked stage worker."""

    def __init__(self, state: "StageState", worker_id: int) -> None:
        self.state = state
        self.worker_id = worker_id
        self.clock = _WallClock()
        # (rdd_id, split) -> records decoded/computed in this process.
        self.local_cache: dict[tuple[int, int], list] = {}
        # Segment names created by the current attempt (unlinked if the
        # attempt fails gracefully; left for the driver sweep if the
        # process dies).
        self.created: list[str] = []
        self.current_out: TaskOutput | None = None
        self.attempt_tag = ""
        ctx = state.ctx
        # Race sanitizer: a worker-local checker seeded from the driver's
        # fork snapshot; its notes ship home with every task outcome.
        self.vclock: VClockChecker | None = None
        seed = state.vclock_snapshots.get(worker_id)
        if seed is not None:
            self.vclock = VClockChecker(actor=str(seed["actor"]),
                                        snapshot=dict(seed["clock"]))
        # Reroute cache materialization through this worker: blocks come
        # from (or go to) the backend's cross-process tables instead of
        # the simulated per-executor CacheStore.
        ctx._cached_iterator = (
            lambda rdd, split, task: self._cached_iterator(rdd, split, task))

    # -- shuffle read shim ---------------------------------------------------
    def read_shuffle(self, shuffle_id: int, reduce_part: int) -> Any:
        state = self.state
        store = state.ctx.shuffle_store
        num_maps = store.map_parts(shuffle_id)
        meta = state.shuffle_meta.get(shuffle_id)
        for map_part in range(num_maps):
            block = store.fetch(shuffle_id, map_part, reduce_part)
            if block is None:
                raise RuntimeError(
                    f"mp fetch: missing map output "
                    f"({shuffle_id}, {map_part}, {reduce_part})")
            if block.records is not None:
                # Inherited by fork from the driver — zero IPC.
                yield from block.records
            elif block.shm_ref is not None and meta is not None:
                if self.vclock is not None \
                        and block.shm_ref.name is not None:
                    self.vclock.note_access("segment", block.shm_ref.name)
                records = read_segment_records(block.shm_ref, meta.schema,
                                               meta.decode)
                if meta.tag is None:
                    yield from records
                else:
                    # Cogroup blocks are stored untagged; the side tag is
                    # a per-shuffle constant, reattached on read.
                    for key, value in records:
                        yield key, (meta.tag, value)
            else:
                raise RuntimeError(
                    f"mp fetch: unreadable block "
                    f"({shuffle_id}, {map_part}, {reduce_part})")

    # -- cache shim ----------------------------------------------------------
    def _cached_iterator(self, rdd: Any, split: int,
                         task: TaskContext) -> Iterator[Any]:
        key = (rdd.rdd_id, split)
        local = self.local_cache.get(key)
        if local is not None:
            yield from local
            return
        entry = self.state.cache_blocks.get(key)
        if _resolvable(entry):
            if (self.vclock is not None and entry.ref is not None
                    and entry.ref.name is not None):
                self.vclock.note_access("segment", entry.ref.name)
            records = list(entry.read())
            self.local_cache[key] = records
            yield from records
            return
        records = list(rdd.compute(split, task))
        self.local_cache[key] = records
        self._build_cache_block(rdd, key, records)
        yield from records

    def _build_cache_block(self, rdd: Any, key: tuple[int, int],
                           records: list) -> None:
        from ..spark.cache import StorageStrategy
        out = self.current_out
        if out is None:
            return
        plan = self.state.ctx.plan_cache(rdd)
        encode = plan.encode or (lambda value: value)
        if (plan.strategy is StorageStrategy.DECA_PAGES
                and plan.schema is not None):
            name = f"{self.attempt_tag}c{key[0]}"
            ref = pack_records_segment(
                name, plan.schema, [encode(r) for r in records])
            if ref.name is not None:
                self.created.append(ref.name)
            out.cache_blocks.append(CacheBlockOut(
                rdd_id=key[0], split=key[1], kind="shm",
                count=len(records), ref=ref))
            return
        if (plan.strategy is StorageStrategy.SERIALIZED
                and plan.schema is not None):
            # Same representation the sim cache stores: schema-packed
            # bytes, decoded on read — so both backends hand later
            # stages byte-identical record values.
            chunks = bytearray()
            for record in records:
                chunks.extend(plan.schema.pack(encode(record)))
            out.cache_blocks.append(CacheBlockOut(
                rdd_id=key[0], split=key[1], kind="packed",
                count=len(records), blob=bytes(chunks)))
            return
        out.cache_blocks.append(CacheBlockOut(
            rdd_id=key[0], split=key[1], kind="pickle",
            count=len(records), blob=pickle.dumps(records)))

    # -- one task attempt ----------------------------------------------------
    def run_task(self, split: int, attempt: int
                 ) -> TaskOutput | TaskFailure:
        state = self.state
        stage = state.stage
        executor_id = (split + attempt) % state.num_executors
        self.attempt_tag = (f"{state.run_tag}-t{stage.stage_id}"
                            f"p{split}a{attempt}-")
        self.created = []
        plan = state.fault_plans.get(split)
        if (plan is not None and plan.kind == EXECUTOR_CRASH
                and plan.after_ops == 0):
            # Crash before doing any work.
            os._exit(CRASH_EXIT_CODE)
        crash_after = (plan is not None and plan.kind == EXECUTOR_CRASH)
        executor = WorkerExecutor(executor_id, state.ctx.config, self.clock,
                                  self.read_shuffle)
        task = TaskContext(
            executor=executor,
            metrics=TaskMetrics(task_id=split, stage_id=stage.stage_id,
                                attempt=attempt, executor_id=executor_id))
        executor._current_task = task
        out = TaskOutput(split=split, attempt=attempt,
                         executor_id=executor_id)
        self.current_out = out
        if plan is not None and plan.kind == TASK_KILL:
            executor.arm_fault(plan)
        start_ms = self.clock.now_ms
        try:
            if state.is_map_stage:
                self._run_map_task(executor, task, split, out)
            else:
                result = state.result_func(stage.rdd.iterator(split, task))
                out.result_blob = pickle.dumps(result)
        except TaskKilledError as exc:
            return self._fail(split, attempt, executor, "killed",
                              repr(exc), start_ms)
        except Exception as exc:  # noqa: BLE001 - reported to the driver
            return self._fail(split, attempt, executor, "error",
                              f"{type(exc).__name__}: {exc}", start_ms)
        if crash_after:
            # Injected crash between commit and report: the attempt's
            # segments exist but the driver never hears about them —
            # exactly the orphan state its sweep must clean up.
            os._exit(CRASH_EXIT_CODE)
        out.duration_ms = self.clock.now_ms - start_ms
        out.records_read = task.metrics.records_read
        if self.vclock is not None:
            self.vclock.note_result_produced(
                f"t{stage.stage_id}.{split}.{attempt}")
            out.vclock_notes = self.vclock.export_notes(drain=True)
        executor.tracer.complete(
            f"task:{stage.stage_id}.{split}.{attempt}", "task",
            ts_ms=start_ms, dur_ms=out.duration_ms,
            pid=executor.trace_pid, stage_id=stage.stage_id,
            task_id=split, attempt=attempt, status="success",
            backend="mp", worker_pid=os.getpid())
        out.events = list(executor.tracer.events)
        self.current_out = None
        return out

    def _fail(self, split: int, attempt: int, executor: WorkerExecutor,
              status: str, message: str, start_ms: float) -> TaskFailure:
        for name in self.created:
            from .shm import unlink_segment
            unlink_segment(name)
        self.created = []
        self.current_out = None
        duration = self.clock.now_ms - start_ms
        executor.tracer.complete(
            f"task:{self.state.stage.stage_id}.{split}.{attempt}", "task",
            ts_ms=start_ms, dur_ms=duration, pid=executor.trace_pid,
            stage_id=self.state.stage.stage_id, task_id=split,
            attempt=attempt, status=status, backend="mp",
            worker_pid=os.getpid())
        notes = (self.vclock.export_notes(drain=True)
                 if self.vclock is not None else None)
        return TaskFailure(split=split, attempt=attempt,
                           executor_id=executor.executor_id, status=status,
                           message=message, duration_ms=duration,
                           events=list(executor.tracer.events),
                           vclock_notes=notes)

    def _run_map_task(self, executor: WorkerExecutor, task: TaskContext,
                      split: int, out: TaskOutput) -> None:
        state = self.state
        stage = state.stage
        dep = stage.shuffle_dep
        assert dep is not None
        plan = state.shuffle_plan
        local_store = ShuffleBlockStore()
        writer = MapSideWriter(
            executor, dep.shuffle_id, split, dep.num_reduce,
            partitioner=dep.partitioner or state.ctx.partitioner,
            kind=dep.kind, merge_value=dep.merge_value, plan=plan)
        records = stage.rdd.iterator(split, task)
        if dep.tag is not None:
            records = ((key, (dep.tag, value)) for key, value in records)
        writer.write_all(records)
        writer.flush(local_store)
        meta = state.shuffle_meta.get(dep.shuffle_id)
        packable = meta is not None and meta.schema is not None
        for reduce_part in range(dep.num_reduce):
            block = local_store.fetch(dep.shuffle_id, split, reduce_part)
            assert block is not None
            if packable:
                assert meta is not None and meta.schema is not None
                if dep.tag is None:
                    values = [meta.encode(record)
                              for record in block.records]
                else:
                    values = [meta.encode((key, tagged[1]))
                              for key, tagged in block.records]
                name = f"{self.attempt_tag}s{dep.shuffle_id}r{reduce_part}"
                ref = pack_records_segment(name, meta.schema, values)
                if ref.name is not None:
                    self.created.append(ref.name)
                out.map_blocks.append(MapBlockOut(
                    reduce_part=reduce_part, count=len(block.records),
                    nbytes=block.nbytes, objects=block.objects,
                    merge_penalty_bytes=block.merge_penalty_bytes,
                    ref=ref))
            else:
                blob = pickle.dumps(block.records)
                out.map_blocks.append(MapBlockOut(
                    reduce_part=reduce_part, count=len(block.records),
                    nbytes=block.nbytes, objects=block.objects,
                    merge_penalty_bytes=block.merge_penalty_bytes,
                    blob=blob))


def worker_main(state: "StageState", worker_id: int, splits: list[int],
                queue: Any) -> None:
    """Entry point of one forked stage worker.

    Runs its assigned splits sequentially, reporting each attempt's
    outcome on *queue*, then a final ``("done", worker_id)``.
    """
    runtime = _WorkerRuntime(state, worker_id)
    for split in splits:
        attempt = state.attempts.get(split, 0)
        outcome = runtime.run_task(split, attempt)
        if isinstance(outcome, TaskOutput):
            queue.put(("ok", outcome))
        else:
            queue.put(("fail", outcome))
    queue.put(("done", worker_id))
    queue.close()
    queue.join_thread()
