"""Object-graph footprint measurement.

The cache-size bars and GC-pressure numbers of every figure depend on how
many heap objects and bytes one record costs in each representation:

* **object form** (Spark): the full JVM object graph — headers, references,
  boxed primitives in generic containers (Fig. 2 top);
* **decomposed form** (Deca): the record's *data-size* — the primitives
  alone (Fig. 2 bottom);
* **serialized form** (SparkSer): Kryo bytes, essentially data-size plus a
  small per-object tag.

When a dataset declares its UDT, the measurement walks the type graph with
the record's actual array lengths.  Untyped datasets (plain driver-side
values) fall back to a generic measurer over Python values.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.udt import ArrayType, ClassType, DataType, PrimitiveType
from ..errors import MemoryLayoutError
from ..jvm import sizing

# Kryo writes a 1-2 byte class registration tag per top-level object.
KRYO_TAG_BYTES = 2


@dataclass(frozen=True)
class RecordFootprint:
    """Heap cost of one record in its three representations."""

    objects: int          # heap objects in the object form
    object_bytes: int     # bytes of the object form
    data_bytes: int       # raw data size (the decomposed form)

    @property
    def serialized_bytes(self) -> int:
        """Approximate Kryo size (data plus a class tag)."""
        return self.data_bytes + KRYO_TAG_BYTES

    def __add__(self, other: "RecordFootprint") -> "RecordFootprint":
        return RecordFootprint(
            self.objects + other.objects,
            self.object_bytes + other.object_bytes,
            self.data_bytes + other.data_bytes,
        )


ZERO_FOOTPRINT = RecordFootprint(0, 0, 0)


def measure_typed(udt: DataType, value) -> RecordFootprint:
    """Measure *value* (in schema shape — nested tuples) against *udt*."""
    if isinstance(udt, PrimitiveType):
        # A bare primitive inside a generic container gets boxed.
        return RecordFootprint(
            objects=1,
            object_bytes=sizing.boxed_bytes(udt.name),
            data_bytes=udt.nbytes,
        )
    if isinstance(udt, ArrayType):
        return _measure_array(udt, value)
    if isinstance(udt, ClassType):
        return _measure_class(udt, value)
    raise MemoryLayoutError(f"cannot measure {udt!r}")


def _measure_array(udt: ArrayType, value) -> RecordFootprint:
    length = len(value)
    element_types = udt.element_field.get_type_set()
    element = element_types[0] if len(element_types) == 1 else None
    if isinstance(element, PrimitiveType) or element is None and not length:
        element_bytes = (element.nbytes if isinstance(element, PrimitiveType)
                         else sizing.REFERENCE_BYTES)
        return RecordFootprint(
            objects=1,
            object_bytes=sizing.array_bytes(element_bytes, length),
            data_bytes=(element_bytes * length
                        if isinstance(element, PrimitiveType) else 0),
        )
    # Reference array: the array object plus each element's graph.
    total = RecordFootprint(
        objects=1,
        object_bytes=sizing.array_bytes(sizing.REFERENCE_BYTES, length),
        data_bytes=0,
    )
    for item in value:
        if element is None:
            raise MemoryLayoutError(
                f"array {udt.name} has a polymorphic element type-set; "
                "measure each element with its concrete type")
        total = total + measure_typed(element, item)
    return total


def _measure_class(udt: ClassType, value) -> RecordFootprint:
    total = RecordFootprint(
        objects=1, object_bytes=udt.shallow_object_bytes, data_bytes=0)
    values = value if isinstance(value, (tuple, list)) else (value,)
    if len(values) != len(udt.fields):
        raise MemoryLayoutError(
            f"value arity {len(values)} does not match "
            f"{udt.name}'s {len(udt.fields)} fields")
    for field, item in zip(udt.fields, values):
        declared = field.declared_type
        if isinstance(declared, PrimitiveType):
            total = total + RecordFootprint(0, 0, declared.nbytes)
            continue
        type_set = field.get_type_set()
        if len(type_set) != 1:
            raise MemoryLayoutError(
                f"field {udt.name}.{field.name} has a polymorphic "
                "type-set; cannot measure statically")
        total = total + measure_typed(type_set[0], item)
    return total


def measure_generic(value) -> RecordFootprint:
    """Measure an untyped Python value as its JVM-equivalent graph.

    Used for driver-side collections and datasets without a declared UDT.
    Numbers box, strings become ``String`` + ``char[]``, tuples/lists
    become objects with reference fields.
    """
    if value is None:
        return ZERO_FOOTPRINT
    if isinstance(value, bool):
        return RecordFootprint(1, sizing.boxed_bytes("boolean"), 1)
    if isinstance(value, int):
        return RecordFootprint(1, sizing.boxed_bytes("long"), 8)
    if isinstance(value, float):
        return RecordFootprint(1, sizing.boxed_bytes("double"), 8)
    if isinstance(value, str):
        chars = sizing.array_bytes(2, len(value))
        return RecordFootprint(
            objects=2,
            object_bytes=sizing.object_bytes(1, 4) + chars,
            data_bytes=2 * len(value),
        )
    if isinstance(value, (bytes, bytearray)):
        return RecordFootprint(
            1, sizing.array_bytes(1, len(value)), len(value))
    if isinstance(value, (tuple, list)):
        total = RecordFootprint(
            1, sizing.object_bytes(len(value), 0), 0)
        for item in value:
            total = total + measure_generic(item)
        return total
    if isinstance(value, dict):
        total = RecordFootprint(1, sizing.object_bytes(1, 12), 0)
        for k, v in value.items():
            total = total + measure_generic(k) + measure_generic(v)
        return total
    # Opaque object: one header, unknown payload.
    return RecordFootprint(1, sizing.object_bytes(0, 16), 16)
