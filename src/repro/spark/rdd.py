"""RDDs: lazy, partitioned, lineage-tracked datasets.

The user-facing API mirrors Spark's: transformations build a lineage graph
(``map``, ``filter``, ``flatMap``, ``reduceByKey``, ``groupByKey``,
``sortByKey``, ``join``, ...), actions (``collect``, ``reduce``, ``count``)
submit jobs through the context's DAG scheduler, and ``cache()`` /
``unpersist()`` pin partitions in the block cache — the lifetime events
Deca keys on (§4.2).

A dataset may declare its UDT via :class:`UdtInfo`; that is what the Deca
optimizer classifies (Algorithms 1–4) and decomposes.  Without a UDT the
engine falls back to generic object accounting and Deca leaves the data in
object form, exactly as the real system leaves un-analyzable types intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Iterable, Iterator, TYPE_CHECKING

from ..analysis.callgraph import CallGraph
from ..analysis.ir import Method
from ..analysis.udt import DataType, Field
from ..errors import ExecutionError
from .measure import RecordFootprint, measure_generic, measure_typed
from .shuffle import ShuffleKind

if TYPE_CHECKING:
    from .context import DecaContext
    from .scheduler import TaskContext


@dataclass
class UdtInfo:
    """Everything the Deca optimizer needs to know about a dataset's UDT.

    *entry_method* is the stage-level IR whose call graph the global
    classification analyzes; *encode*/*decode* convert between the app's
    record values and the schema's nested-tuple shape; *runtime_symbols*
    bind the symbolic constants of the analysis (e.g. the dimension read
    from a dataset header) to their runtime values, which is how the hybrid
    runtime optimizer of Appendix A resolves sizes at job-submission time.
    """

    udt: DataType
    entry_method: Method | None = None
    known_types: tuple[DataType, ...] = ()
    encode: Callable[[Any], Any] | None = None
    decode: Callable[[Any], Any] | None = None
    runtime_symbols: dict[str, int] = dc_field(default_factory=dict)
    assume_init_only: tuple[Field, ...] = ()
    constant_footprint: bool = False
    # The *runtime object graph* of one record when it differs from the
    # logical UDT — e.g. Scala wraps aggregation records in Tuple2s with
    # boxed primitives; the footprint model should count those objects
    # even though the decomposition layout flattens them away.
    object_model: DataType | None = None
    measure_encode: Callable[[Any], Any] | None = None
    _cached_footprint: RecordFootprint | None = None
    _callgraph: CallGraph | None = None

    def to_schema_value(self, record: Any) -> Any:
        return self.encode(record) if self.encode else record

    def from_schema_value(self, value: Any) -> Any:
        return self.decode(value) if self.decode else value

    def measure(self, record: Any) -> RecordFootprint:
        """Footprint of one record (cached when sizes are constant)."""
        if self.constant_footprint and self._cached_footprint is not None:
            return self._cached_footprint
        if self.object_model is not None:
            encoder = self.measure_encode or self.to_schema_value
            footprint = measure_typed(self.object_model, encoder(record))
        else:
            footprint = measure_typed(self.udt,
                                      self.to_schema_value(record))
        if self.constant_footprint:
            self._cached_footprint = footprint
        return footprint

    def callgraph(self) -> CallGraph | None:
        """The (lazily built) per-stage call graph for the analysis."""
        if self.entry_method is None:
            return None
        if self._callgraph is None:
            self._callgraph = CallGraph.build(
                self.entry_method,
                known_types=(self.udt, *self.known_types))
        return self._callgraph


class Dependency:
    """An edge in the lineage graph."""

    def __init__(self, parent: "RDD") -> None:
        self.parent = parent


class NarrowDependency(Dependency):
    """Parent partition i feeds child partition i (pipelined)."""


class ShuffleDependency(Dependency):
    """A stage boundary: the parent's output is repartitioned by key."""

    def __init__(self, parent: "RDD", num_reduce: int, kind: ShuffleKind,
                 merge_value: Callable[[Any, Any], Any] | None = None,
                 tag: int | None = None,
                 partitioner: Callable[[Any], int] | None = None) -> None:
        super().__init__(parent)
        # Ids are per-context (not process-global) so two same-seed runs
        # emit identical ids — and byte-identical traces — even when they
        # share one interpreter.
        self.shuffle_id = next(parent.ctx._shuffle_ids)
        self.num_reduce = num_reduce
        self.kind = kind
        self.merge_value = merge_value
        # For cogroups: which side of the join this dependency feeds.
        self.tag = tag
        # A dependency-specific partitioner (e.g. sortByKey's range
        # partitioner); None means the context's hash partitioner.
        self.partitioner = partitioner


class RDD:
    """Base class: a lazy, partitioned dataset."""

    def __init__(self, ctx: "DecaContext", deps: list[Dependency],
                 num_partitions: int, name: str,
                 udt_info: UdtInfo | None = None) -> None:
        if num_partitions < 1:
            raise ExecutionError(
                f"RDD {name!r} needs at least one partition")
        self.ctx = ctx
        self.rdd_id = next(ctx._rdd_ids)
        self.deps = deps
        self.num_partitions = num_partitions
        self.name = name
        self.udt_info = udt_info
        self.is_cached = False
        ctx._register_rdd(self)

    # -- to be provided by subclasses ---------------------------------------
    def compute(self, split: int, task: "TaskContext") -> Iterator[Any]:
        raise NotImplementedError

    # -- record accounting ------------------------------------------------------
    def measure_record(self, record: Any) -> RecordFootprint:
        if self.udt_info is not None:
            return self.udt_info.measure(record)
        return measure_generic(record)

    # -- iteration (cache-aware) ---------------------------------------------------
    def iterator(self, split: int, task: "TaskContext") -> Iterator[Any]:
        """Compute or fetch partition *split*, honouring ``cache()``."""
        if not self.is_cached:
            return self.compute(split, task)
        return self.ctx._cached_iterator(self, split, task)

    # -- metadata -----------------------------------------------------------------
    def with_udt(self, udt_info: UdtInfo) -> "RDD":
        """Attach UDT information (returns self for chaining)."""
        self.udt_info = udt_info
        return self

    def cache(self) -> "RDD":
        """Pin this dataset's partitions in memory once computed."""
        self.is_cached = True
        self.ctx._note_cached(self)
        return self

    def unpersist(self) -> "RDD":
        """Release every cached block of this dataset (lifetime end)."""
        self.is_cached = False
        self.ctx._unpersist(self)
        return self

    # -- transformations (narrow) ------------------------------------------------
    def map(self, f: Callable[[Any], Any], name: str | None = None,
            udt_info: UdtInfo | None = None,
            record_cost_ms: float | None = None) -> "RDD":
        """Apply *f* per record.  *record_cost_ms* overrides the default
        per-record UDF cost (e.g. a gradient step charges per-dimension
        arithmetic rather than the flat default)."""
        out = MapPartitionsRDD(
            self, lambda it, task: map(f, it),
            name or f"{self.name}.map", per_record=True, udt_info=udt_info,
            record_cost_ms=record_cost_ms)
        out._record_fn = f          # enables iterator fusion (core.fusion)
        out._record_kind = "map"
        return out

    def flat_map(self, f: Callable[[Any], Iterable[Any]],
                 name: str | None = None,
                 udt_info: UdtInfo | None = None,
                 record_cost_ms: float | None = None) -> "RDD":
        def run(it, task):
            for record in it:
                yield from f(record)
        out = MapPartitionsRDD(self, run, name or f"{self.name}.flatMap",
                               per_record=True, udt_info=udt_info,
                               record_cost_ms=record_cost_ms)
        out._record_fn = f
        out._record_kind = "flatmap"  # ends a fusion group
        return out

    def filter(self, predicate: Callable[[Any], bool],
               name: str | None = None) -> "RDD":
        out = MapPartitionsRDD(
            self, lambda it, task: filter(predicate, it),
            name or f"{self.name}.filter", per_record=True,
            udt_info=self.udt_info)
        out._record_fn = predicate
        out._record_kind = "filter"
        return out

    def map_partitions(self, f: Callable[[Iterator[Any]], Iterable[Any]],
                       name: str | None = None,
                       udt_info: UdtInfo | None = None) -> "RDD":
        out = MapPartitionsRDD(
            self, lambda it, task: f(it),
            name or f"{self.name}.mapPartitions", per_record=False,
            udt_info=udt_info)
        # Registered for the closure analyzer; "mappartitions" is not a
        # fusible kind, so core.fusion ignores it.
        out._record_fn = f
        out._record_kind = "mappartitions"
        return out

    def map_values(self, f: Callable[[Any], Any],
                   name: str | None = None) -> "RDD":
        return self.map(lambda kv: (kv[0], f(kv[1])),
                        name or f"{self.name}.mapValues")

    def key_by(self, f: Callable[[Any], Any]) -> "RDD":
        return self.map(lambda v: (f(v), v), f"{self.name}.keyBy")

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self, other)

    def keys(self) -> "RDD":
        """The first element of each key-value pair."""
        return self.map(lambda kv: kv[0], f"{self.name}.keys")

    def values(self) -> "RDD":
        """The second element of each key-value pair."""
        return self.map(lambda kv: kv[1], f"{self.name}.values")

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """A per-record Bernoulli sample (deterministic per seed)."""
        if not 0.0 <= fraction <= 1.0:
            raise ExecutionError(
                f"sample fraction must be in [0, 1]: {fraction}")

        def keep(record) -> bool:
            import zlib
            digest = zlib.crc32(repr((seed, record)).encode("utf-8"))
            return (digest % 10_000) < fraction * 10_000

        return self.filter(keep, f"{self.name}.sample")

    def zip_with_index(self) -> "RDD":
        """Pair each record with its global position (one extra job to
        count the partition sizes, as in Spark)."""
        sizes = self.ctx.run_job(
            self, lambda it: sum(1 for _ in it),
            name=f"{self.name}.zipWithIndex.count")
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def run(split_records, task):
            return split_records

        out = MapPartitionsRDD(self, run, f"{self.name}.zipWithIndex",
                               per_record=False)

        def compute(split, task, _parent=self, _offsets=offsets):
            start = _offsets[split]
            for position, record in enumerate(
                    _parent.iterator(split, task)):
                yield record, start + position
        out.compute = compute  # type: ignore[method-assign]
        return out

    # -- key-based transformations (shuffles, §4.1) ---------------------------------
    def reduce_by_key(self, merge: Callable[[Any, Any], Any],
                      num_partitions: int | None = None,
                      name: str | None = None) -> "RDD":
        """GroupBy-Aggregation with eager map-side combining."""
        return ShuffledRDD(
            self, num_partitions or self.num_partitions,
            ShuffleKind.COMBINE, merge_value=merge,
            name=name or f"{self.name}.reduceByKey")

    def group_by_key(self, num_partitions: int | None = None,
                     name: str | None = None) -> "RDD":
        """GroupBy: build the complete value list per key (no combining)."""
        return ShuffledRDD(
            self, num_partitions or self.num_partitions,
            ShuffleKind.GROUP, name=name or f"{self.name}.groupByKey")

    def sort_by_key(self, num_partitions: int | None = None,
                    name: str | None = None,
                    sample_size: int = 128) -> "RDD":
        """Globally sort by key (a range partitioner plus local sorts).

        Like Spark's ``RangePartitioner``, a sampling job over the parent
        computes the partition boundaries up front; concatenating the
        output partitions in order then yields a total order.
        """
        num_reduce = num_partitions or self.num_partitions
        partitioner = _range_partitioner(self, num_reduce, sample_size)
        return ShuffledRDD(
            self, num_reduce, ShuffleKind.SORT,
            name=name or f"{self.name}.sortByKey",
            partitioner=partitioner)

    def join(self, other: "RDD", num_partitions: int | None = None,
             name: str | None = None) -> "RDD":
        """Inner join on keys (cogroup then cartesian per key)."""
        return JoinedRDD(self, other,
                         num_partitions or self.num_partitions,
                         name=name or f"{self.name}.join")

    def aggregate_by_key(self, zero: Any,
                         seq: Callable[[Any, Any], Any],
                         comb: Callable[[Any, Any], Any],
                         num_partitions: int | None = None) -> "RDD":
        """Aggregate values per key (implemented over reduceByKey, like
        the paper treats it as an extension of the basic operator)."""
        seeded = self.map_values(lambda v: seq(zero, v))
        return seeded.reduce_by_key(comb, num_partitions,
                                    name=f"{self.name}.aggregateByKey")

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        paired = self.map(lambda v: (v, None))
        reduced = paired.reduce_by_key(lambda a, b: a, num_partitions)
        return reduced.map(lambda kv: kv[0], f"{self.name}.distinct")

    # -- actions ----------------------------------------------------------------------
    def collect(self) -> list:
        results = self.ctx.run_job(self, lambda it: list(it),
                                   name=f"{self.name}.collect")
        return [record for part in results for record in part]

    def count(self) -> int:
        results = self.ctx.run_job(self, lambda it: sum(1 for _ in it),
                                   name=f"{self.name}.count")
        return sum(results)

    def reduce(self, f: Callable[[Any, Any], Any]) -> Any:
        def reduce_partition(it):
            acc = _SENTINEL
            for record in it:
                acc = record if acc is _SENTINEL else f(acc, record)
            return acc
        parts = self.ctx.run_job(self, reduce_partition,
                                 name=f"{self.name}.reduce")
        values = [p for p in parts if p is not _SENTINEL]
        if not values:
            raise ExecutionError(f"reduce of empty RDD {self.name!r}")
        acc = values[0]
        for value in values[1:]:
            acc = f(acc, value)
        return acc

    def take(self, n: int) -> list:
        collected = self.collect()
        return collected[:n]

    def first(self) -> Any:
        taken = self.take(1)
        if not taken:
            raise ExecutionError(f"first() on empty RDD {self.name!r}")
        return taken[0]

    def count_by_key(self) -> dict:
        """Count occurrences per key (a reduceByKey plus collect)."""
        counted = self.map(lambda kv: (kv[0], 1),
                           f"{self.name}.countByKey")             .reduce_by_key(lambda a, b: a + b)
        return dict(counted.collect())

    def sum(self) -> Any:
        parts = self.ctx.run_job(self, lambda it: sum(it),
                                 name=f"{self.name}.sum")
        return sum(parts)

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def foreach(self, f: Callable[[Any], None]) -> None:
        def run(it):
            for record in it:
                f(record)
            return None
        self.ctx.run_job(self, run, name=f"{self.name}.foreach")

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(id={self.rdd_id}, {self.name!r}, "
                f"partitions={self.num_partitions})")


_SENTINEL = object()


class ParallelCollectionRDD(RDD):
    """Driver-side data split into partitions."""

    def __init__(self, ctx: "DecaContext", data: list, num_partitions: int,
                 name: str = "parallelize",
                 udt_info: UdtInfo | None = None,
                 read_cost_per_record_ms: float = 0.0) -> None:
        super().__init__(ctx, [], num_partitions, name, udt_info)
        self._slices = _slice(data, num_partitions)
        self._read_cost = read_cost_per_record_ms

    def compute(self, split: int, task: "TaskContext") -> Iterator[Any]:
        for record in self._slices[split]:
            if self._read_cost:
                task.executor.charge_compute(self._read_cost)
            yield record


class MapPartitionsRDD(RDD):
    """A narrow transformation over one parent."""

    def __init__(self, parent: RDD,
                 body: Callable[[Iterator[Any], "TaskContext"],
                                Iterable[Any]],
                 name: str, per_record: bool,
                 udt_info: UdtInfo | None = None,
                 record_cost_ms: float | None = None) -> None:
        super().__init__(parent.ctx, [NarrowDependency(parent)],
                         parent.num_partitions, name, udt_info)
        self._body = body
        self._per_record = per_record
        self._record_cost_ms = record_cost_ms
        self._transformed: bool | None = None
        # Set by map/filter/flat_map for the iterator-fusion pass.
        self._record_fn: Callable[[Any], Any] | None = None
        self._record_kind: str | None = None

    def _reads_decomposed_data(self) -> bool:
        """Whether Deca transformed this UDF's input access (Appendix B).

        When the nearest cached ancestor is stored as decomposed pages,
        Deca rewrites the stage's loop like Fig. 12: field reads go
        straight to the page bytes and intermediate results are written
        into buffers reused across records — no per-record object graphs,
        hence no young-generation churn.
        """
        if self._transformed is None:
            self._transformed = self.ctx._is_deca_transformed(self)
        return self._transformed

    def compute(self, split: int, task: "TaskContext") -> Iterator[Any]:
        parent = self.deps[0].parent
        source = parent.iterator(split, task)
        executor = task.executor
        cpu = executor.config.cpu
        if not self._per_record:
            yield from self._body(source, task)
            return
        cost_ms = (self._record_cost_ms if self._record_cost_ms is not None
                   else cpu.record_op_ms)
        if self._reads_decomposed_data():
            # Transformed code path: reused result buffers, byte access.
            for record in self._body(source, task):
                executor.charge_compute(cost_ms + cpu.page_access_ms)
                task.metrics.records_read += 1
                yield record
            return
        for record in self._body(source, task):
            # One UDF application: compute cost plus the temporaries the
            # UDF allocates (the young-generation churn of §2.2).
            executor.charge_compute(cost_ms)
            footprint = self.measure_record(record)
            executor.alloc_temp(footprint.objects, footprint.object_bytes)
            task.metrics.records_read += 1
            yield record


class UnionRDD(RDD):
    """Concatenation of two datasets (partitions appended)."""

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.ctx,
            [NarrowDependency(left), NarrowDependency(right)],
            left.num_partitions + right.num_partitions,
            f"{left.name}.union")
        self._left = left
        self._right = right

    def compute(self, split: int, task: "TaskContext") -> Iterator[Any]:
        if split < self._left.num_partitions:
            return self._left.iterator(split, task)
        return self._right.iterator(split - self._left.num_partitions, task)


def _range_partitioner(parent: "RDD", num_reduce: int,
                       sample_size: int) -> Callable[[Any], int]:
    """Sample the parent's keys and return a boundary-based partitioner."""
    import bisect

    per_partition = max(1, sample_size // max(1, parent.num_partitions))

    def sample_partition(records) -> list:
        keys = [key for key, _ in records]
        if len(keys) <= per_partition:
            return keys
        stride = len(keys) / per_partition
        return [keys[int(i * stride)] for i in range(per_partition)]

    sampled = sorted(
        key
        for part in parent.ctx.run_job(
            parent, sample_partition,
            name=f"{parent.name}.rangeSample")
        for key in part)
    # A tuple: the partitioner closure captures it, and captured mutable
    # containers are exactly what the closure analyzer warns about.
    boundaries: tuple = ()
    if sampled and num_reduce > 1:
        step = len(sampled) / num_reduce
        boundaries = tuple(sampled[int(i * step)]
                           for i in range(1, num_reduce))

    def partition(key) -> int:
        return bisect.bisect_right(boundaries, key)

    return partition


class ShuffledRDD(RDD):
    """The reduce side of a shuffle."""

    def __init__(self, parent: RDD, num_reduce: int, kind: ShuffleKind,
                 merge_value: Callable[[Any, Any], Any] | None = None,
                 name: str = "shuffled",
                 partitioner: Callable[[Any], int] | None = None) -> None:
        dep = ShuffleDependency(parent, num_reduce, kind, merge_value,
                                partitioner=partitioner)
        super().__init__(parent.ctx, [dep], num_reduce, name)
        self.shuffle_dep = dep
        self.kind = kind

    def compute(self, split: int, task: "TaskContext") -> Iterator[Any]:
        executor = task.executor
        records = executor.read_shuffle(self.shuffle_dep.shuffle_id, split,
                                        task)
        cpu = executor.config.cpu
        plan = self.ctx.plan_shuffle(self.shuffle_dep)
        if self.kind is ShuffleKind.COMBINE:
            merged: dict[Any, Any] = {}
            merge = self.shuffle_dep.merge_value
            reuse = plan.decomposed and plan.value_segment_reuse
            for key, value in records:
                executor.charge_compute(cpu.hash_probe_ms)
                if key in merged:
                    merged[key] = merge(merged[key], value)
                    if reuse:
                        # SFST value: the merge result overwrites the old
                        # segment in place (§4.3.2) — no dead object.
                        executor.charge_compute(cpu.page_access_ms)
                    else:
                        executor.alloc_temp(1, 24)
                else:
                    merged[key] = value
            yield from merged.items()
        elif self.kind is ShuffleKind.GROUP:
            yield from _group_records(records, task,
                                      decomposed=plan.decomposed)
        elif self.kind is ShuffleKind.SORT:
            buffered = list(records)
            executor.charge_compute(cpu.sort_per_record_ms * len(buffered))
            yield from sorted(buffered, key=lambda kv: kv[0])
        else:
            raise ExecutionError(f"unsupported reduce kind {self.kind}")


def _group_records(records: Iterator[tuple[Any, Any]],
                   task: "TaskContext",
                   decomposed: bool = False) -> Iterator[tuple[Any, list]]:
    """Reduce-side grouping: the hash table of Fig. 6(b)/Fig. 7(b).

    The per-key value arrays are growable (a VST while being built, §3.4);
    they live in a pinned buffer until the task finishes.  When the
    incoming blocks are decomposed, the buffer holds pointers into the
    fetched pages instead of object graphs (Fig. 7(a)).
    """
    executor = task.executor
    cpu = executor.config.cpu
    buffer_group = executor.new_pinned_group("shuffle-read-buffer")
    groups: dict[Any, list] = {}
    count = 0
    # The buffer must be released even when the task dies mid-fill
    # (injected kill, executor loss, fetch failure): a failed attempt's
    # buffer is garbage, not a leaked live group.
    try:
        for key, value in records:
            executor.charge_compute(cpu.hash_probe_ms)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                executor.heap.allocate(buffer_group, 2, 48)
            bucket.append(value)
            if decomposed:
                executor.heap.allocate(buffer_group, 0, 8)  # one pointer
            else:
                footprint = measure_generic(value)
                executor.heap.allocate(buffer_group, footprint.objects,
                                       footprint.object_bytes)
            count += 1
        for key, values in groups.items():
            yield key, values
    finally:
        executor.free_pinned_group(buffer_group)


class JoinedRDD(RDD):
    """Inner join of two key-value datasets (a cogroup)."""

    def __init__(self, left: RDD, right: RDD, num_reduce: int,
                 name: str) -> None:
        left_dep = ShuffleDependency(left, num_reduce, ShuffleKind.COGROUP,
                                     tag=0)
        right_dep = ShuffleDependency(right, num_reduce,
                                      ShuffleKind.COGROUP, tag=1)
        super().__init__(left.ctx, [left_dep, right_dep], num_reduce, name)
        self.left_dep = left_dep
        self.right_dep = right_dep

    def compute(self, split: int, task: "TaskContext") -> Iterator[Any]:
        executor = task.executor
        cpu = executor.config.cpu
        buffer_group = executor.new_pinned_group("join-buffer")
        sides: tuple[dict[Any, list], dict[Any, list]] = ({}, {})
        # One try/finally spans fill and probe: a task that dies mid-fill
        # (fault injection, fetch failure) must still free the buffer.
        try:
            for dep, side in ((self.left_dep, 0), (self.right_dep, 1)):
                # Decomposed inputs enter the cogroup table as pointers
                # into the fetched pages (Fig. 7(a)); object inputs as
                # graphs.
                decomposed = self.ctx.plan_shuffle(dep).decomposed
                for key, tagged in executor.read_shuffle(dep.shuffle_id,
                                                         split, task):
                    value = tagged[1]  # strip the cogroup side tag
                    executor.charge_compute(cpu.hash_probe_ms)
                    sides[side].setdefault(key, []).append(value)
                    if decomposed:
                        executor.heap.allocate(buffer_group, 0, 8)
                        continue
                    footprint = measure_generic(value)
                    executor.heap.allocate(buffer_group, footprint.objects,
                                           footprint.object_bytes)
            left, right = sides
            for key, left_values in left.items():
                right_values = right.get(key)
                if right_values is None:
                    continue
                for lv in left_values:
                    for rv in right_values:
                        executor.charge_compute(cpu.record_op_ms)
                        yield key, (lv, rv)
        finally:
            executor.free_pinned_group(buffer_group)


def _slice(data: list, num_partitions: int) -> list[list]:
    """Split *data* into contiguous, evenly-sized partitions."""
    size, extra = divmod(len(data), num_partitions)
    slices = []
    start = 0
    for i in range(num_partitions):
        end = start + size + (1 if i < extra else 0)
        slices.append(data[start:end])
        start = end
    return slices
