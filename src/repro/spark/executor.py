"""Executors: one simulated JVM process each.

An executor bundles a clock, a simulated heap, the block cache, the Deca
memory manager and a serializer model.  Tasks charge their compute/I-O
costs here; charges are divided by the executor's task parallelism (the
concurrent task slots of a real executor), while GC pauses — which stop
every thread — land at full price via the heap.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, TYPE_CHECKING

from ..config import DecaConfig
from ..errors import ExecutorLostError, TaskKilledError
from ..jvm.heap import SimHeap
from ..jvm.objects import AllocationGroup, Lifetime
from ..jvm.stats import GcEvent
from ..memory.manager import DecaMemoryManager
from ..memory.provenance import ProvenanceLedger
from ..memory.tier import PageStoreTier
from ..memory.unified import UnifiedMemoryManager, create_memory_arena
from ..obs import Tracer
from ..obs.vclock import VClockChecker
from ..simtime import SimClock
from .cache import CacheStore
from .faults import EXECUTOR_CRASH, FaultInjector, TaskFaultPlan
from .profiler import HeapProfiler
from .serializer import SerializerModel
from .shuffle import ShuffleBlockStore, read_reduce_partition

if TYPE_CHECKING:
    from .scheduler import TaskContext


class Executor:
    """One worker process with its own heap and clock."""

    def __init__(self, executor_id: int, config: DecaConfig,
                 shuffle_store: ShuffleBlockStore,
                 tracer: Tracer | None = None) -> None:
        self.executor_id = executor_id
        self.config = config
        self.clock = SimClock()
        # Shared per-run tracer; executor events use pid executor_id + 1
        # (pid 0 is the driver timeline).
        self.tracer = tracer if tracer is not None else Tracer()
        self.trace_pid = executor_id + 1
        self.heap = SimHeap(config, self.clock, f"executor-{executor_id}")
        self.heap.add_gc_listener(self._on_gc_event)
        # The memory arena is the single accounting plane for cache
        # blocks, shuffle buffers and Deca page groups.  In static mode
        # it only tracks the shared shuffle pool; in unified mode it
        # arbitrates execution/storage borrowing (docs/memory_model.md).
        self.arena = create_memory_arena(
            config, clock=self.clock, tracer=self.tracer,
            pid=executor_id + 1)
        unified = (self.arena
                   if isinstance(self.arena, UnifiedMemoryManager) else None)
        self.memory_manager = DecaMemoryManager(config, self.heap,
                                                arena=unified)
        self.serializer = SerializerModel(
            config.serializer, self.clock,
            parallelism=config.tasks_per_executor)
        # Runtime alias sanitizer: one provenance ledger per executor
        # records every exported zero-copy view (None when off, so the
        # hot paths pay a single ``is None`` test).
        self.ledger: ProvenanceLedger | None = None
        if config.sanitize:
            self.ledger = ProvenanceLedger(
                tracer=self.tracer, clock=self.clock, pid=self.trace_pid)
        # Vector-clock race sanitizer: set by the context (one shared
        # driver checker per run), threaded into the cold tier and the
        # unified arena.  None unless config.sanitize.
        self.vclock: VClockChecker | None = None
        self.cache = CacheStore(self)
        self.serializer.on_charge = self._attribute_serializer_time
        self.shuffle_store = shuffle_store
        if unified is not None:
            # One pressure plane: the arena evicts storage LRU (cache
            # blocks and page groups alike), then spills execution
            # consumers, largest first.
            self.heap.add_pressure_handler(unified.release_for_pressure)
        else:
            self.heap.add_pressure_handler(self.cache.release_for_pressure)
        self.parallelism = max(1, config.tasks_per_executor)
        self.profiler: HeapProfiler | None = None
        self._temp_group: AllocationGroup | None = None
        self._current_task: "TaskContext | None" = None
        # Cumulative I/O time (for Fig. 11 breakdowns).
        self.disk_ms_total = 0.0
        self.network_ms_total = 0.0
        self.tier_ms_total = 0.0
        # The mmap cold tier, created lazily on first swap so runs that
        # never swap never touch the filesystem (cold_tier="heap" keeps
        # this None forever).
        self._cold_tier: PageStoreTier | None = None
        # Set by the context: notifies the execution backend that a
        # block went cold, so mp workers stop resolving it as shm.
        self.on_demote: "Callable[[tuple[int, int]], None] | None" = None
        # -- fault tolerance state --
        self.alive = True
        self.lost_count = 0
        # Set by the context; consulted on shuffle-fetch corruption.
        self.fault_injector: FaultInjector | None = None
        self._fault_plan: TaskFaultPlan | None = None
        self._fault_countdown = 0

    def _on_gc_event(self, event: GcEvent) -> None:
        """Forward one heap collection into the run's trace."""
        self.tracer.complete(
            f"gc:{event.kind.value}", "gc",
            ts_ms=event.start_ms, dur_ms=event.total_cost_ms,
            pid=self.trace_pid,
            executor_id=self.executor_id,
            kind=event.kind.value,
            pause_ms=event.pause_ms,
            concurrent_ms=event.concurrent_ms,
            traced_objects=event.traced_objects,
            reclaimed_bytes=event.reclaimed_bytes,
            promoted_bytes=event.promoted_bytes,
            live_objects_after=event.live_objects_after,
            heap_used_bytes=event.used_bytes_after)

    def _attribute_serializer_time(self, kind: str, ms: float) -> None:
        if self._current_task is None:
            return
        if kind == "ser":
            self._current_task.metrics.ser_ms += ms
        else:
            self._current_task.metrics.deser_ms += ms

    # -- profiling --------------------------------------------------------------
    def enable_profiler(self, period_ms: float,
                        tracked_prefix: str | None = None) -> HeapProfiler:
        """Attach a JProfiler-style sampler (Figs. 8a/9a)."""
        def tracked() -> int:
            if tracked_prefix is None:
                return self.heap.live_objects
            return self.live_objects_matching(tracked_prefix)
        self.profiler = HeapProfiler(self.heap, self.clock, period_ms,
                                     tracked_counter=tracked)
        return self.profiler

    def live_objects_matching(self, prefix: str) -> int:
        """Live objects in allocation groups whose name has *prefix*."""
        return sum(g.live_objects for g in self.heap._groups.values()
                   if g.name.startswith(prefix))

    def _sample(self) -> None:
        if self.profiler is not None:
            self.profiler.maybe_sample()

    # -- fault injection ---------------------------------------------------------
    def arm_fault(self, plan: TaskFaultPlan) -> None:
        """Schedule the current task attempt to fail.

        The failure strikes after ``plan.after_ops`` compute charges, so a
        non-zero countdown kills the attempt *mid-computation*, leaving
        partial heap/buffer state for the recovery path to clean up.
        """
        self._fault_plan = plan
        self._fault_countdown = plan.after_ops

    def disarm_fault(self) -> None:
        self._fault_plan = None
        self._fault_countdown = 0

    def _tick_fault(self) -> None:
        plan = self._fault_plan
        if plan is None:
            return
        if self._fault_countdown > 0:
            self._fault_countdown -= 1
            return
        self.disarm_fault()
        if plan.kind == EXECUTOR_CRASH:
            self.alive = False
            raise ExecutorLostError(self.executor_id)
        metrics = (self._current_task.metrics
                   if self._current_task is not None else None)
        raise TaskKilledError(
            metrics.stage_id if metrics else -1,
            metrics.task_id if metrics else -1,
            metrics.attempt if metrics else 0)

    # -- cost charging -------------------------------------------------------------
    def charge_compute(self, ms: float) -> None:
        self._tick_fault()
        self.clock.advance(ms / self.parallelism)
        if self._current_task is not None:
            self._current_task.metrics.compute_ms += ms / self.parallelism
        self._sample()

    def charge_disk_write(self, nbytes: int) -> None:
        io = self.config.io
        ms = (io.disk_seek_ms + io.disk_write_per_byte_ms * nbytes) \
            / self.parallelism
        start_ms = self.clock.now_ms
        self.clock.advance(ms)
        self.disk_ms_total += ms
        if self._current_task is not None:
            self._current_task.metrics.shuffle_write_ms += ms
        self.tracer.complete("disk:write", "io.disk", ts_ms=start_ms,
                             dur_ms=ms, pid=self.trace_pid, nbytes=nbytes)
        self._sample()

    def charge_disk_read(self, nbytes: int) -> None:
        io = self.config.io
        ms = (io.disk_seek_ms + io.disk_read_per_byte_ms * nbytes) \
            / self.parallelism
        start_ms = self.clock.now_ms
        self.clock.advance(ms)
        self.disk_ms_total += ms
        if self._current_task is not None:
            self._current_task.metrics.shuffle_read_ms += ms
        self.tracer.complete("disk:read", "io.disk", ts_ms=start_ms,
                             dur_ms=ms, pid=self.trace_pid, nbytes=nbytes)
        self._sample()

    def charge_tier_write(self, nbytes: int) -> None:
        """Charge moving bytes into the mmap cold tier: memory-bus
        bandwidth, no seek — the point of not serializing to disk."""
        if nbytes <= 0:
            return
        ms = self.config.io.tier_write_per_byte_ms * nbytes \
            / self.parallelism
        start_ms = self.clock.now_ms
        self.clock.advance(ms)
        self.tier_ms_total += ms
        if self._current_task is not None:
            self._current_task.metrics.cache_io_ms += ms
        self.tracer.complete("tier:write", "io.tier", ts_ms=start_ms,
                             dur_ms=ms, pid=self.trace_pid, nbytes=nbytes)
        self._sample()

    def charge_tier_read(self, nbytes: int) -> None:
        if nbytes <= 0:
            return
        ms = self.config.io.tier_read_per_byte_ms * nbytes \
            / self.parallelism
        start_ms = self.clock.now_ms
        self.clock.advance(ms)
        self.tier_ms_total += ms
        if self._current_task is not None:
            self._current_task.metrics.cache_io_ms += ms
        self.tracer.complete("tier:read", "io.tier", ts_ms=start_ms,
                             dur_ms=ms, pid=self.trace_pid, nbytes=nbytes)
        self._sample()

    @property
    def cold_tier(self) -> PageStoreTier | None:
        """The executor's mmap cold tier, or ``None`` under ``"heap"``."""
        if self.config.cold_tier != "mmap":
            return None
        if self._cold_tier is None:
            self._cold_tier = PageStoreTier(
                tracer=self.tracer, clock=self.clock, pid=self.trace_pid,
                tag=f"e{self.executor_id}", ledger=self.ledger,
                vclock=self.vclock)
        return self._cold_tier

    def charge_network(self, nbytes: int) -> None:
        io = self.config.io
        ms = (io.network_rtt_ms + io.network_per_byte_ms * nbytes) \
            / self.parallelism
        start_ms = self.clock.now_ms
        self.clock.advance(ms)
        self.network_ms_total += ms
        if self._current_task is not None:
            self._current_task.metrics.shuffle_read_ms += ms
        self.tracer.complete("net:transfer", "io.net", ts_ms=start_ms,
                             dur_ms=ms, pid=self.trace_pid, nbytes=nbytes)
        self._sample()

    # -- allocation helpers -----------------------------------------------------------
    def alloc_temp(self, objects: int, nbytes: int) -> None:
        """Allocate short-lived UDF objects into the task's temp group."""
        if objects <= 0 and nbytes <= 0:
            return
        if self._temp_group is None or self._temp_group.freed:
            self._temp_group = self.heap.new_group(
                "udf-temp", Lifetime.TEMPORARY)
        self.charge_compute(self.config.cpu.object_alloc_ms * objects)
        self.heap.allocate(self._temp_group, objects, nbytes)
        self._sample()

    def new_pinned_group(self, name: str) -> AllocationGroup:
        return self.heap.new_group(name, Lifetime.PINNED)

    def free_pinned_group(self, group: AllocationGroup) -> None:
        if not group.freed:
            self.heap.free_group(group)

    # -- task lifecycle ------------------------------------------------------------
    def begin_task(self, task: "TaskContext") -> None:
        self._current_task = task
        task._start_ms = self.clock.now_ms
        task._gc_start_ms = self.heap.stats.pause_ms
        if isinstance(self.arena, UnifiedMemoryManager):
            task._arena_key = self.arena.task_started()
        self._temp_group = self.heap.new_group(
            "udf-temp", Lifetime.TEMPORARY)

    def end_task(self, task: "TaskContext",
                 status: str = "success") -> None:
        # UDF locals die with the task (§4.2).
        if self._temp_group is not None and not self._temp_group.freed:
            self.heap.free_group(self._temp_group)
        self._temp_group = None
        arena_key = getattr(task, "_arena_key", None)
        if (arena_key is not None
                and isinstance(self.arena, UnifiedMemoryManager)):
            # Unreleased execution grants die with the task.
            self.arena.task_finished(arena_key)
            task._arena_key = None
        task.metrics.duration_ms = self.clock.now_ms - task._start_ms
        task.metrics.gc_pause_ms = (self.heap.stats.pause_ms
                                    - task._gc_start_ms)
        task.metrics.executor_id = self.executor_id
        task.metrics.status = status
        self._emit_task_span(task)
        self._current_task = None
        self.disarm_fault()
        self._sample()

    def _emit_task_span(self, task: "TaskContext") -> None:
        metrics = task.metrics
        self.tracer.complete(
            f"task:{metrics.stage_id}.{metrics.task_id}"
            f".{metrics.attempt}", "task",
            ts_ms=task._start_ms, dur_ms=metrics.duration_ms,
            pid=self.trace_pid,
            stage_id=metrics.stage_id, task_id=metrics.task_id,
            attempt=metrics.attempt, status=metrics.status,
            speculative=metrics.speculative,
            gc_pause_ms=metrics.gc_pause_ms,
            heap_used_bytes=(self.heap.young_used_bytes
                             + self.heap.old_used_bytes))

    def abort_task(self, task: "TaskContext", status: str) -> None:
        """Tear down a failed task attempt.

        Mirrors :meth:`end_task` — the attempt's UDF temporaries become
        garbage, its partial metrics are finalized and stamped with the
        failure *status* — without producing a result.  The aborted
        attempt's span lands in the trace with that status.
        """
        self.end_task(task, status=status)

    def restart(self, restart_delay_ms: float) -> None:
        """Bring a crashed executor back as a fresh process.

        The crash loses everything in the old process: cached blocks are
        invalidated (their heap groups freed) and the scheduler separately
        unregisters this executor's shuffle outputs.  The simulated clock
        pays the restart delay; GC statistics keep accumulating across the
        restart so run-level metrics and profiler timelines stay monotone.
        """
        restart_start_ms = self.clock.now_ms
        self.cache.invalidate_all()
        if self._temp_group is not None and not self._temp_group.freed:
            self.heap.free_group(self._temp_group)
        self._temp_group = None
        self._current_task = None
        self.disarm_fault()
        self.clock.advance(restart_delay_ms)
        self.lost_count += 1
        self.alive = True
        self.tracer.complete("executor:restart", "fault",
                             ts_ms=restart_start_ms,
                             dur_ms=restart_delay_ms, pid=self.trace_pid,
                             executor_id=self.executor_id,
                             lost_count=self.lost_count)
        self._sample()

    # -- shuffle read -----------------------------------------------------------------
    def read_shuffle(self, shuffle_id: int, reduce_part: int,
                     task: "TaskContext") -> Iterator[tuple[Any, Any]]:
        return read_reduce_partition(self, self.shuffle_store, shuffle_id,
                                     reduce_part)

    def __repr__(self) -> str:
        return (f"Executor(#{self.executor_id}, "
                f"t={self.clock.now_ms:.1f} ms)")
