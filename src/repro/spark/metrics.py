"""Task, stage and job metrics (the numbers every figure reports)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Cost breakdown of one task attempt (Fig. 11's bars).

    With fault tolerance enabled a (stage, partition) pair may run several
    attempts; every attempt — failed, speculative or successful — lands in
    its stage's task list so the metrics count the work actually performed.
    """

    task_id: int = -1
    stage_id: int = -1
    executor_id: int = -1
    attempt: int = 0
    speculative: bool = False
    # "success" | "killed" | "fetch-failed" | "executor-lost"
    status: str = "success"
    records_read: int = 0
    records_written: int = 0
    compute_ms: float = 0.0
    gc_pause_ms: float = 0.0
    ser_ms: float = 0.0
    deser_ms: float = 0.0
    shuffle_read_ms: float = 0.0
    shuffle_write_ms: float = 0.0
    cache_io_ms: float = 0.0
    duration_ms: float = 0.0

    def add(self, other: "TaskMetrics") -> None:
        self.records_read += other.records_read
        self.records_written += other.records_written
        self.compute_ms += other.compute_ms
        self.gc_pause_ms += other.gc_pause_ms
        self.ser_ms += other.ser_ms
        self.deser_ms += other.deser_ms
        self.shuffle_read_ms += other.shuffle_read_ms
        self.shuffle_write_ms += other.shuffle_write_ms
        self.cache_io_ms += other.cache_io_ms
        self.duration_ms += other.duration_ms


@dataclass
class RecoveryMetrics:
    """What fault recovery cost one job (attempts, retries, recomputation).

    ``recovery_ms`` sums the simulated time spent purely on recovery:
    retry backoff waits, executor restart delay and the re-execution of
    lineage that regenerated lost map outputs.
    """

    task_failures: int = 0
    task_retries: int = 0
    fetch_failures: int = 0
    executors_lost: int = 0
    recomputed_partitions: int = 0
    speculative_tasks: int = 0
    speculative_wins: int = 0
    recovery_ms: float = 0.0

    def add(self, other: "RecoveryMetrics") -> None:
        self.task_failures += other.task_failures
        self.task_retries += other.task_retries
        self.fetch_failures += other.fetch_failures
        self.executors_lost += other.executors_lost
        self.recomputed_partitions += other.recomputed_partitions
        self.speculative_tasks += other.speculative_tasks
        self.speculative_wins += other.speculative_wins
        self.recovery_ms += other.recovery_ms

    def to_dict(self) -> dict:
        return {
            "task_failures": self.task_failures,
            "task_retries": self.task_retries,
            "fetch_failures": self.fetch_failures,
            "executors_lost": self.executors_lost,
            "recomputed_partitions": self.recomputed_partitions,
            "speculative_tasks": self.speculative_tasks,
            "speculative_wins": self.speculative_wins,
            "recovery_ms": round(self.recovery_ms, 6),
        }


@dataclass
class StageMetrics:
    """Aggregate over one stage's tasks."""

    stage_id: int
    name: str
    tasks: list[TaskMetrics] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def totals(self) -> TaskMetrics:
        total = TaskMetrics(stage_id=self.stage_id)
        for task in self.tasks:
            total.add(task)
        return total

    @property
    def slowest_task(self) -> TaskMetrics | None:
        if not self.tasks:
            return None
        return max(self.tasks, key=lambda t: t.duration_ms)

    @property
    def attempts(self) -> int:
        """Total task attempts, including failed and speculative ones."""
        return len(self.tasks)

    @property
    def failed_attempts(self) -> int:
        return sum(1 for t in self.tasks if t.status != "success")


@dataclass
class JobMetrics:
    """Aggregate over one job's stages."""

    job_id: int
    name: str
    stages: list[StageMetrics] = field(default_factory=list)
    wall_ms: float = 0.0
    recovery: RecoveryMetrics = field(default_factory=RecoveryMetrics)

    @property
    def totals(self) -> TaskMetrics:
        total = TaskMetrics()
        for stage in self.stages:
            total.add(stage.totals)
        return total


@dataclass
class RunMetrics:
    """Everything measured across an application run.

    ``gc_pause_ms`` is the per-executor average the paper reports (Table 3
    averages "the values on all executors"); ``executor_gc_ms`` keeps the
    raw per-executor pauses.
    """

    jobs: list[JobMetrics] = field(default_factory=list)
    wall_ms: float = 0.0
    executor_gc_ms: dict[int, float] = field(default_factory=dict)
    executor_concurrent_gc_ms: dict[int, float] = field(default_factory=dict)
    minor_gc_count: int = 0
    full_gc_count: int = 0
    # Keyed by RDD *name*, not rdd_id: names are stable across runs while
    # ids come from a process-global counter (determinism requirement).
    cached_bytes: dict[str, int] = field(default_factory=dict)
    swapped_cache_bytes: int = 0
    spilled_shuffle_bytes: int = 0
    # Execution-backend traffic accounting (repro.exec.BackendStats):
    # pickled vs shared-memory bytes crossing process boundaries.
    backend: dict[str, "int | str"] = field(default_factory=dict)
    # mmap cold-tier accounting (repro.memory.tier.TierStats, summed
    # across executors); empty under cold_tier="heap".
    tier: dict[str, "int | str"] = field(default_factory=dict)
    # Runtime alias-sanitizer counters (repro.memory.provenance), summed
    # across executor ledgers at finish(); empty unless config.sanitize.
    sanitize: dict[str, int] = field(default_factory=dict)
    # Vector-clock race-sanitizer counters (repro.obs.vclock), folded in
    # at finish(); empty unless config.sanitize.
    race: dict[str, int] = field(default_factory=dict)

    @property
    def gc_pause_ms(self) -> float:
        if not self.executor_gc_ms:
            return 0.0
        return sum(self.executor_gc_ms.values()) / len(self.executor_gc_ms)

    @property
    def total_cached_bytes(self) -> int:
        return sum(self.cached_bytes.values())

    @property
    def gc_fraction(self) -> float:
        """GC pause time as a fraction of wall time (Table 3's "ratio")."""
        if self.wall_ms <= 0:
            return 0.0
        return self.gc_pause_ms / self.wall_ms

    @property
    def recovery(self) -> RecoveryMetrics:
        """Fault-recovery totals across every job of the run."""
        total = RecoveryMetrics()
        for job in self.jobs:
            total.add(job.recovery)
        return total

    def to_dict(self) -> dict:
        """A JSON-ready snapshot of the run (bench trajectory output).

        Every value derives from the simulated clocks and the seeded
        RNGs, so two runs with identical seeds serialize byte-identically
        — the property the determinism CI job asserts.
        """
        out: dict = {
            "wall_ms": round(self.wall_ms, 6),
            "gc_pause_ms": round(self.gc_pause_ms, 6),
            "minor_gc_count": self.minor_gc_count,
            "full_gc_count": self.full_gc_count,
            "cached_bytes": dict(sorted(self.cached_bytes.items())),
            "swapped_cache_bytes": self.swapped_cache_bytes,
            "spilled_shuffle_bytes": self.spilled_shuffle_bytes,
            "recovery": self.recovery.to_dict(),
            "jobs": [
                {
                    "job_id": job.job_id,
                    "name": job.name,
                    "wall_ms": round(job.wall_ms, 6),
                    "recovery": job.recovery.to_dict(),
                    "stages": [
                        {
                            "stage_id": stage.stage_id,
                            "name": stage.name,
                            "wall_ms": round(stage.wall_ms, 6),
                            "attempts": stage.attempts,
                            "failed_attempts": stage.failed_attempts,
                            "tasks": [
                                {
                                    "task_id": task.task_id,
                                    "attempt": task.attempt,
                                    "executor_id": task.executor_id,
                                    "status": task.status,
                                    "speculative": task.speculative,
                                    "records_read": task.records_read,
                                    "duration_ms": round(
                                        task.duration_ms, 6),
                                    "gc_pause_ms": round(
                                        task.gc_pause_ms, 6),
                                }
                                for task in stage.tasks
                            ],
                        }
                        for stage in job.stages
                    ],
                }
                for job in self.jobs
            ],
        }
        if self.sanitize:
            # Only present when the sanitizer ran: keeps baselines for
            # plain runs byte-identical (determinism CI).
            out["sanitize"] = dict(sorted(self.sanitize.items()))
        if self.race:
            out["race"] = dict(sorted(self.race.items()))
        return out
