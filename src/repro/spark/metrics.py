"""Task, stage and job metrics (the numbers every figure reports)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaskMetrics:
    """Cost breakdown of one task (Fig. 11's bars)."""

    task_id: int = -1
    stage_id: int = -1
    executor_id: int = -1
    records_read: int = 0
    records_written: int = 0
    compute_ms: float = 0.0
    gc_pause_ms: float = 0.0
    ser_ms: float = 0.0
    deser_ms: float = 0.0
    shuffle_read_ms: float = 0.0
    shuffle_write_ms: float = 0.0
    cache_io_ms: float = 0.0
    duration_ms: float = 0.0

    def add(self, other: "TaskMetrics") -> None:
        self.records_read += other.records_read
        self.records_written += other.records_written
        self.compute_ms += other.compute_ms
        self.gc_pause_ms += other.gc_pause_ms
        self.ser_ms += other.ser_ms
        self.deser_ms += other.deser_ms
        self.shuffle_read_ms += other.shuffle_read_ms
        self.shuffle_write_ms += other.shuffle_write_ms
        self.cache_io_ms += other.cache_io_ms
        self.duration_ms += other.duration_ms


@dataclass
class StageMetrics:
    """Aggregate over one stage's tasks."""

    stage_id: int
    name: str
    tasks: list[TaskMetrics] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def totals(self) -> TaskMetrics:
        total = TaskMetrics(stage_id=self.stage_id)
        for task in self.tasks:
            total.add(task)
        return total

    @property
    def slowest_task(self) -> TaskMetrics | None:
        if not self.tasks:
            return None
        return max(self.tasks, key=lambda t: t.duration_ms)


@dataclass
class JobMetrics:
    """Aggregate over one job's stages."""

    job_id: int
    name: str
    stages: list[StageMetrics] = field(default_factory=list)
    wall_ms: float = 0.0

    @property
    def totals(self) -> TaskMetrics:
        total = TaskMetrics()
        for stage in self.stages:
            total.add(stage.totals)
        return total


@dataclass
class RunMetrics:
    """Everything measured across an application run.

    ``gc_pause_ms`` is the per-executor average the paper reports (Table 3
    averages "the values on all executors"); ``executor_gc_ms`` keeps the
    raw per-executor pauses.
    """

    jobs: list[JobMetrics] = field(default_factory=list)
    wall_ms: float = 0.0
    executor_gc_ms: dict[int, float] = field(default_factory=dict)
    executor_concurrent_gc_ms: dict[int, float] = field(default_factory=dict)
    minor_gc_count: int = 0
    full_gc_count: int = 0
    cached_bytes: dict[int, int] = field(default_factory=dict)
    swapped_cache_bytes: int = 0
    spilled_shuffle_bytes: int = 0

    @property
    def gc_pause_ms(self) -> float:
        if not self.executor_gc_ms:
            return 0.0
        return sum(self.executor_gc_ms.values()) / len(self.executor_gc_ms)

    @property
    def total_cached_bytes(self) -> int:
        return sum(self.cached_bytes.values())

    @property
    def gc_fraction(self) -> float:
        """GC pause time as a fraction of wall time (Table 3's "ratio")."""
        if self.wall_ms <= 0:
            return 0.0
        return self.gc_pause_ms / self.wall_ms
