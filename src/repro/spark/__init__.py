"""The mini Spark engine.

A working distributed-dataflow engine in the image of Spark 1.6, sized for
simulation: RDDs with lazy lineage, a DAG scheduler that splits jobs into
stages at shuffle boundaries, hash shuffles with eager combining, an LRU
block cache with disk swap, and per-executor simulated heaps/clocks.  All
computation is real (WordCount really counts words); only time and the
garbage collector are simulated — see DESIGN.md.

Public entry point: :class:`~repro.spark.context.DecaContext`.
"""

from .context import DecaContext
from .faults import FaultInjector, TaskFaultPlan
from .rdd import RDD, UdtInfo
from .metrics import (
    JobMetrics,
    RecoveryMetrics,
    StageMetrics,
    TaskMetrics,
)

__all__ = [
    "DecaContext",
    "FaultInjector",
    "RDD",
    "TaskFaultPlan",
    "UdtInfo",
    "JobMetrics",
    "RecoveryMetrics",
    "StageMetrics",
    "TaskMetrics",
]
