"""Serializer cost model (Kryo-like).

Spark serializes records when caching with ``MEMORY_ONLY_SER``, when
spilling, and when shuffling across executors.  The paper measures Kryo at
a per-object serialization cost and a ~7x higher deserialization cost
(Table 5, bottom), while Deca's "serialization" is just writing the raw
bytes (no deserialization at all — field reads go to the bytes).

This module charges those costs to a simulated clock; the actual byte
production in SparkSer mode uses the same layout schemas as Deca (the bytes
are real either way — only the *charged time* differs).
"""

from __future__ import annotations

from ..config import SerializerCosts
from ..simtime import SimClock


class SerializerModel:
    """Charges serialization costs to an executor clock."""

    def __init__(self, costs: SerializerCosts, clock: SimClock,
                 parallelism: int = 1) -> None:
        self.costs = costs
        self.clock = clock
        self.parallelism = max(1, parallelism)
        self.ser_ms_total = 0.0
        self.deser_ms_total = 0.0
        # Bytes the *heap* cold tier round-trips through Python-heap
        # copies while swapping Deca blocks (the cost the mmap tier
        # eliminates).  A byte counter only — it never advances the
        # clock, so heap-mode timings stay identical to the seed.
        self.swap_copy_bytes_total = 0
        # Optional sink called with ("ser"|"deser", charged_ms) so the
        # executor can attribute the time to the running task (Fig. 11).
        self.on_charge = None

    def _charge(self, ms: float) -> float:
        scaled = ms / self.parallelism
        self.clock.advance(scaled)
        return scaled

    def note_swap_copy(self, nbytes: int) -> None:
        """Count *nbytes* of swap-path heap copies (no time charge)."""
        self.swap_copy_bytes_total += nbytes

    # -- Kryo ------------------------------------------------------------------
    def kryo_serialize(self, objects: int, nbytes: int) -> float:
        """Charge serializing *objects* totalling *nbytes*."""
        ms = (self.costs.kryo_ser_per_object_ms * objects
              + self.costs.per_byte_ms * nbytes)
        spent = self._charge(ms)
        self.ser_ms_total += spent
        if self.on_charge is not None:
            self.on_charge("ser", spent)
        return spent

    def kryo_deserialize(self, objects: int, nbytes: int) -> float:
        """Charge deserializing — the expensive direction for Kryo."""
        ms = (self.costs.kryo_deser_per_object_ms * objects
              + self.costs.per_byte_ms * nbytes)
        spent = self._charge(ms)
        self.deser_ms_total += spent
        if self.on_charge is not None:
            self.on_charge("deser", spent)
        return spent

    # -- Deca -------------------------------------------------------------------
    def deca_write(self, objects: int, nbytes: int) -> float:
        """Charge decomposing records into page bytes (ser-equivalent)."""
        ms = (self.costs.deca_write_per_object_ms * objects
              + self.costs.per_byte_ms * nbytes)
        spent = self._charge(ms)
        self.ser_ms_total += spent
        if self.on_charge is not None:
            self.on_charge("ser", spent)
        return spent

    def deca_read(self, objects: int, nbytes: int) -> float:
        """Charge reading decomposed records (free: direct byte access)."""
        ms = (self.costs.deca_read_per_object_ms * objects
              + self.costs.per_byte_ms * nbytes * 0.0)
        spent = self._charge(ms)
        self.deser_ms_total += spent
        if self.on_charge is not None:
            self.on_charge("deser", spent)
        return spent
