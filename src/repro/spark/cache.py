"""The block cache (Spark's ``CacheManager``/``BlockManager``, Appendix C).

Cached RDD partitions become *blocks*.  A block's storage strategy depends
on the execution mode / Deca plan:

* ``OBJECTS`` — a plain record list; every record's object graph lives on
  the (simulated) heap as pinned objects.  Spark's default.
* ``SERIALIZED`` — one packed byte blob per block (Kryo-like); two heap
  objects per block, but every read pays per-record deserialization.
  Spark's ``MEMORY_ONLY_SER`` ("SparkSer").
* ``DECA_PAGES`` — a reference-counted page group of decomposed records;
  a handful of heap objects, readable in place.

Blocks exceeding the storage budget are swapped to disk, least recently
used first (the paper's modified LRU evicts whole page groups in Deca
mode).  Swapped blocks are transparently re-read with disk + (mode-
dependent) deserialization costs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..errors import CacheError
from ..jvm.objects import AllocationGroup, Lifetime
from ..jvm.sizing import array_bytes
from ..memory.layout import Schema
from ..memory.page import PageGroup
from ..memory.unified import UnifiedMemoryManager
from .measure import RecordFootprint

BlockKey = tuple[int, int]  # (rdd_id, partition_index)


class StorageStrategy(enum.Enum):
    """How a cached block stores its records."""

    OBJECTS = "objects"
    SERIALIZED = "serialized"
    DECA_PAGES = "deca-pages"


@dataclass
class CachedBlock:
    """One cached partition on one executor."""

    key: BlockKey
    strategy: StorageStrategy
    records: list | None            # OBJECTS strategy
    blob: bytes | None              # SERIALIZED strategy
    page_group: PageGroup | None    # DECA_PAGES strategy
    schema: Schema | None
    decode: Callable[[Any], Any] | None
    record_count: int
    memory_bytes: int               # heap footprint while in memory
    disk_bytes: int                 # bytes written if swapped
    footprint: RecordFootprint      # summed record footprints
    alloc_group: AllocationGroup | None = None
    on_disk: bool = False
    # Payload parked here while the block is swapped out.
    _disk_payload: Any = None
    # What the last swap-out released; swap-in readmits exactly this so
    # the two directions stay byte-symmetric.
    _swap_released_bytes: int = 0
    # mmap cold tier (``DecaConfig.cold_tier="mmap"``): the extent that
    # holds the block's bytes, and whether the *resident* payload
    # currently aliases that extent.  A promoted block keeps its extent,
    # so re-evicting it moves zero bytes.
    _tier_key: str | None = None
    _tier_resident: bool = False


class CacheStore:
    """Per-executor block store with LRU swap-to-disk.

    The executor wires :meth:`release_for_pressure` into its heap as a
    pressure handler, so allocation pressure evicts blocks exactly the way
    a real BlockManager drops them.
    """

    def __init__(self, executor) -> None:
        self.executor = executor
        self.blocks: dict[BlockKey, CachedBlock] = {}
        self._lru: dict[BlockKey, int] = {}
        self._tick = 0
        self.swapped_bytes_total = 0
        self.storage_budget = executor.config.storage_bytes
        # In unified mode the executor arena owns eviction: blocks are
        # storage entries competing in one LRU with Deca page groups,
        # and the local budget/_make_room logic is bypassed.
        arena = getattr(executor, "arena", None)
        self._unified: UnifiedMemoryManager | None = (
            arena if isinstance(arena, UnifiedMemoryManager) else None)
        # Running sum of resident (not-on-disk) block bytes, maintained on
        # put/swap/drop so the eviction loop stays O(1) per victim instead
        # of recomputing O(blocks) on every iteration.
        self._resident_bytes = 0
        # Keys whose swap is in flight: swap-out charges its transient
        # copies to the heap, which can raise pressure re-entrantly —
        # the victim selection must never pick a block that is already
        # halfway through its own swap.
        self._inflight: set[BlockKey] = set()

    # -- queries --------------------------------------------------------------
    def contains(self, key: BlockKey) -> bool:
        return key in self.blocks

    def get(self, key: BlockKey) -> CachedBlock:
        try:
            block = self.blocks[key]
        except KeyError:
            raise CacheError(f"no cached block {key}") from None
        self._touch(key)
        return block

    @property
    def memory_bytes(self) -> int:
        return self._resident_bytes

    def recompute_memory_bytes(self) -> int:
        """O(blocks) ground truth for the resident counter (invariant
        checks only — the hot paths must not call this)."""
        return sum(b.memory_bytes for b in self.blocks.values()
                   if not b.on_disk)

    def _touch(self, key: BlockKey) -> None:
        self._tick += 1
        self._lru[key] = self._tick
        block = self.blocks.get(key)
        if block is None:
            return
        if block.page_group is not None \
                and not block.page_group.reclaimed:
            self.executor.memory_manager.touch(block.page_group)
        elif self._unified is not None:
            self._unified.storage_touch(self._entry_name(block))

    def _entry_name(self, block: CachedBlock) -> str:
        """The block's storage-entry name in the unified arena.

        Deca blocks are tracked under their page group's name (the
        manager registers it); object/serialized blocks use the same
        ``cache:<key>`` convention.
        """
        if block.page_group is not None:
            return block.page_group.name
        return f"cache:{block.key}"

    # -- insertion -----------------------------------------------------------------
    def put(self, block: CachedBlock) -> None:
        if block.key in self.blocks:
            raise CacheError(f"block {block.key} cached twice")
        if self._unified is not None:
            self._put_unified(block)
            return
        executor = self.executor
        if block.memory_bytes > self.storage_budget:
            # Fail fast: a block that can never fit must not evict every
            # resident block first only to be swapped out itself.
            executor.tracer.instant(
                "memory:reject", "memory", ts_ms=executor.clock.now_ms,
                pid=executor.trace_pid, rdd_id=block.key[0],
                partition=block.key[1], nbytes=block.memory_bytes,
                limit=self.storage_budget, reason="exceeds-storage-budget")
            self.blocks[block.key] = block
            if not block.on_disk:
                self._resident_bytes += block.memory_bytes
            self._touch(block.key)
            if not block.on_disk:
                self.swap_out(block.key)
            return
        self._make_room(block.memory_bytes)
        self.blocks[block.key] = block
        if not block.on_disk:
            self._resident_bytes += block.memory_bytes
        self._touch(block.key)

    def _put_unified(self, block: CachedBlock) -> None:
        """Insert under the unified arena: the block becomes a storage
        entry whose eviction callback is :meth:`swap_out`."""
        arena = self._unified
        assert arena is not None
        key = block.key
        fits = True
        if block.page_group is not None:
            # The page group registered (pinned) while being built;
            # adopting seals it and makes it evictable.
            arena.storage_adopt(block.page_group.name, block.memory_bytes,
                                evict=lambda: self.swap_out(key))
        else:
            fits = arena.storage_acquire(
                self._entry_name(block), block.memory_bytes,
                evict=lambda: self.swap_out(key))
        self.blocks[key] = block
        if not block.on_disk:
            self._resident_bytes += block.memory_bytes
        self._touch(key)
        if not fits and not block.on_disk:
            # The arena traced a ``memory:reject``; store straight to
            # disk instead of displacing better-sized residents.
            self.swap_out(key)

    def _make_room(self, nbytes: int) -> None:
        """Swap out LRU blocks until *nbytes* fit in the storage budget."""
        while (self.memory_bytes + nbytes > self.storage_budget
               and self._has_swappable()):
            victim = self._lru_victim()
            if victim is None:
                break
            self.swap_out(victim)

    def _has_swappable(self) -> bool:
        return any(not b.on_disk for b in self.blocks.values())

    def _lru_victim(self) -> BlockKey | None:
        # In-flight keys are excluded: a block mid-swap still carries a
        # stale LRU tick and ``on_disk=False``, so a re-entrant
        # eviction (pressure raised by that very swap, or by the insert
        # that triggered it in the same tick window) would select it
        # and double-drain its pages.
        candidates = [(tick, key) for key, tick in self._lru.items()
                      if key in self.blocks
                      and not self.blocks[key].on_disk
                      and key not in self._inflight]
        if not candidates:
            return None
        victim = min(candidates)[1]
        if self.executor.vclock is not None:
            self.executor.vclock.note_victim(str(victim))
        return victim

    # -- swapping (Appendix C) ----------------------------------------------------
    def _tier_name(self, block: CachedBlock) -> str:
        """The block's extent name in the mmap cold tier."""
        return f"cache:{block.key}"

    def swap_out(self, key: BlockKey) -> int:
        """Move a block to the cold tier and release its heap space."""
        block = self.blocks[key]
        if block.on_disk or key in self._inflight:
            # A block halfway through its own swap must not be drained
            # again by a re-entrant eviction (heap pressure raised by
            # the swap's transient copies picks victims through the
            # same LRU).
            return 0
        self._inflight.add(key)
        if self.executor.vclock is not None:
            self.executor.vclock.swap_begin(str(key))
        try:
            return self._swap_out(key, block)
        finally:
            self._inflight.discard(key)
            if self.executor.vclock is not None:
                self.executor.vclock.swap_end(str(key))

    def _swap_out(self, key: BlockKey, block: CachedBlock) -> int:
        executor = self.executor
        tier = executor.cold_tier
        released = block.memory_bytes
        # Remember what this eviction released: swap-in readmits exactly
        # these bytes, whatever the footprint model would have guessed.
        block._swap_released_bytes = released
        tier_moved = 0
        copy_group: AllocationGroup | None = None
        drained_group: str | None = None
        if block.strategy is StorageStrategy.OBJECTS:
            # Spark serializes object blocks before writing them out.
            executor.serializer.kryo_serialize(
                block.footprint.objects, block.disk_bytes)
            block._disk_payload = block.records
            block.records = None
        elif block.strategy is StorageStrategy.SERIALIZED:
            if tier is not None and block.blob is not None:
                # The blob is already wire format: move the bytes into
                # an extent (none move if a promoted blob still aliases
                # its extent — the bytes never left the tier).
                if block._tier_key is None:
                    block._tier_key = self._tier_name(block)
                    tier_moved = tier.swap_out(block._tier_key,
                                               [block.blob])
                block._tier_resident = False
                # A promoted blob is a view of the extent; it is
                # superseded now, so detach it — a straggling reader
                # must fail loudly, not see the extent's next tenant.
                if isinstance(block.blob, memoryview):
                    try:
                        block.blob.release()
                    except BufferError:
                        pass  # a sub-view reader is still mid-scan
                block.blob = None
            else:
                # Schema-less blocks keep their record list instead of a
                # packed blob; park whichever payload exists.
                block._disk_payload = (block.blob if block.blob is not None
                                       else block.records)
                block.blob = None
                block.records = None
        else:
            # Deca: raw page bytes, never serialized (Appendix C).
            group = block.page_group
            assert group is not None
            if tier is not None:
                if block._tier_key is None:
                    block._tier_key = self._tier_name(block)
                    tier_moved = tier.swap_out(block._tier_key,
                                               group.swap_chunks())
                # else: the resident pages alias the extent (the block
                # was promoted earlier) — the bytes are already cold.
                block._tier_resident = False
                group.reclaim()
            else:
                # Heap tier: the bytes round-trip the Python heap.
                # Drain page by page — charge the copy, stream it into
                # the disk image (parked payload bytes model *disk*
                # content, off-heap), release the source — so the
                # double-buffer transient is accounted and bounded at
                # one page, instead of copying the whole group
                # (unaccounted, ~2x peak) before reclaim.
                copy_group = executor.heap.new_group(
                    f"swap-copy:{key}", Lifetime.PINNED)
                if executor.ledger is not None:
                    group.ledger = executor.ledger
                    drained_group = group.name
                chunks: list[bytes] = []
                for chunk in group.drain():
                    executor.serializer.note_swap_copy(len(chunk))
                    copy_bytes = array_bytes(1, len(chunk))
                    executor.heap.allocate(copy_group, 1, copy_bytes)
                    chunks.append(chunk)
                    copy_group.shrink(copy_bytes)
                block._disk_payload = chunks
            block.page_group = None
        if tier is not None:
            # Extent-backed payloads pay for the bytes actually moved;
            # parked object/record payloads pay for their disk image
            # landing in the tier file (no seek either way).
            executor.charge_tier_write(
                tier_moved if block._tier_key is not None
                else block.disk_bytes)
        else:
            executor.charge_disk_write(block.disk_bytes)
        if copy_group is not None and not copy_group.freed:
            # The copies reached the disk with the write above.
            executor.heap.free_group(copy_group)
        if drained_group is not None and executor.ledger is not None:
            # The transient drain copies were consumed by the write.
            executor.ledger.release_drain(drained_group)
        if block.alloc_group is not None and not block.alloc_group.freed:
            executor.heap.free_group(block.alloc_group)
            block.alloc_group = None
        if self._unified is not None:
            # Deca entries are discarded by the manager when the group
            # reclaims; discard is idempotent, so cover both shapes.
            self._unified.storage_discard(self._entry_name(block))
        block.on_disk = True
        block.memory_bytes = 0
        self._resident_bytes -= released
        self.swapped_bytes_total += block.disk_bytes
        swap_args = dict(
            rdd_id=key[0], partition=key[1],
            strategy=block.strategy.value, released_bytes=released,
            disk_bytes=block.disk_bytes,
            heap_used_bytes=(executor.heap.young_used_bytes
                             + executor.heap.old_used_bytes))
        if tier is not None:
            swap_args["tier_bytes"] = tier_moved
            if executor.ledger is not None and block._tier_key is not None:
                executor.ledger.note_demote("extent", block._tier_key)
            if executor.vclock is not None and block._tier_key is not None:
                executor.vclock.note_demote("extent", block._tier_key)
            if executor.on_demote is not None:
                # Tell the execution backend: mp workers must not keep
                # resolving this block's shared-memory copy as hot.
                executor.on_demote(key)
        executor.tracer.instant(
            "cache:swap-out", "cache", ts_ms=executor.clock.now_ms,
            pid=executor.trace_pid, **swap_args)
        return released

    def swap_in(self, key: BlockKey) -> CachedBlock:
        """Read a swapped block back (charging tier/disk + deser costs)."""
        block = self.blocks[key]
        if not block.on_disk or key in self._inflight:
            return block
        self._inflight.add(key)
        try:
            return self._swap_in(key, block)
        finally:
            self._inflight.discard(key)

    def _swap_in(self, key: BlockKey, block: CachedBlock) -> CachedBlock:
        executor = self.executor
        tier = executor.cold_tier
        if tier is not None:
            executor.charge_tier_read(block.disk_bytes)
        else:
            executor.charge_disk_read(block.disk_bytes)
        if block.strategy is StorageStrategy.OBJECTS:
            executor.serializer.kryo_deserialize(
                block.footprint.objects, block.disk_bytes)
            block.records = block._disk_payload
            # Swap symmetry: readmit what swap-out actually released.
            block.memory_bytes = (block._swap_released_bytes
                                  or block.footprint.object_bytes)
            group = executor.heap.new_group(
                f"cache:{block.key}", Lifetime.PINNED)
            executor.heap.allocate(group, block.footprint.objects,
                                   block.memory_bytes)
            block.alloc_group = group
        elif block.strategy is StorageStrategy.SERIALIZED:
            if tier is not None and block._tier_key is not None:
                # Zero-copy promotion: the blob is a view of its extent.
                views = tier.swap_in(block._tier_key)
                blob = views[0] if views else memoryview(b"")
                block.blob = blob
                block.memory_bytes = len(blob)
                block._tier_resident = True
                if executor.vclock is not None:
                    executor.vclock.note_promote("extent", block._tier_key)
                if executor.ledger is not None:
                    # The promoted view outlives this call on purpose.
                    executor.ledger.retain("extent", block._tier_key)
            else:
                payload = block._disk_payload
                if isinstance(payload, (bytes, bytearray, memoryview)):
                    block.blob = payload
                    block.memory_bytes = len(payload)
                else:
                    block.records = payload
                    # Swap symmetry: the record list was tracked at the
                    # released size, not at the footprint's estimate.
                    block.memory_bytes = (
                        block._swap_released_bytes
                        or block.footprint.serialized_bytes)
            group = executor.heap.new_group(
                f"cache:{block.key}", Lifetime.PINNED)
            executor.heap.allocate(group, 2, block.memory_bytes)
            block.alloc_group = group
        else:
            group = executor.memory_manager.new_page_group(
                f"cache:{block.key}:{self._tick}", evictable=True)
            if tier is not None and block._tier_key is not None:
                # Zero-copy promotion: mount the extent's views as
                # pages, readable through the SUDT/schema accessors.
                for view in tier.swap_in(block._tier_key):
                    group.adopt_page(view)
                block._tier_resident = True
                if executor.vclock is not None:
                    executor.vclock.note_promote("extent", block._tier_key)
                if executor.ledger is not None:
                    # Adoption hands ownership to the page group; the
                    # ledger tracks the borrows until group.reclaim().
                    executor.ledger.retain(
                        "extent", block._tier_key, group=group.name)
                    group.ledger = executor.ledger
            else:
                for chunk in block._disk_payload:
                    executor.serializer.note_swap_copy(len(chunk))
                    page, offset = group.reserve(len(chunk))
                    page.data[offset:offset + len(chunk)] = chunk
            block.page_group = group
            block.memory_bytes = group.allocated_bytes
        block._disk_payload = None
        block.on_disk = False
        self._resident_bytes += block.memory_bytes
        # Touch BEFORE making room: under its stale LRU tick the
        # just-restored block would itself be the first eviction victim,
        # swapping straight back out (swap-in thrash).
        self._touch(key)
        if self._unified is not None:
            # Re-register with the arena (evicting colder entries); the
            # bytes are already on the heap, so adoption cannot fail.
            self._unified.storage_adopt(
                self._entry_name(block), block.memory_bytes,
                evict=lambda: self.swap_out(key))
        else:
            self._make_room(0)
        executor.tracer.instant(
            "cache:swap-in", "cache", ts_ms=executor.clock.now_ms,
            pid=executor.trace_pid, rdd_id=key[0], partition=key[1],
            strategy=block.strategy.value,
            restored_bytes=block.memory_bytes,
            disk_bytes=block.disk_bytes,
            heap_used_bytes=(executor.heap.young_used_bytes
                             + executor.heap.old_used_bytes))
        return block

    # -- heap pressure -----------------------------------------------------------
    def release_for_pressure(self, bytes_needed: int) -> int:
        """Heap pressure handler: swap out LRU blocks."""
        freed = 0
        while freed < bytes_needed and self._has_swappable():
            victim = self._lru_victim()
            if victim is None:
                break
            freed += self.swap_out(victim)
        return freed

    # -- removal ---------------------------------------------------------------------
    def remove_rdd(self, rdd_id: int) -> int:
        """Drop every block of *rdd_id* (the ``unpersist`` path).

        Releasing the references is all it takes: object blocks become
        garbage for the next collection; page groups are reclaimed at once.
        """
        removed = 0
        for key in [k for k in self.blocks if k[0] == rdd_id]:
            self._drop_block(key)
            removed += 1
        return removed

    def invalidate_all(self) -> int:
        """Drop every block — the executor process that held them died.

        Unlike :meth:`remove_rdd` this is not a lifetime event the
        application chose: the partitions are simply gone, and the next
        ``iterator()`` call on their RDDs recomputes them from lineage.
        """
        removed = 0
        for key in list(self.blocks):
            self._drop_block(key)
            removed += 1
        return removed

    def _drop_block(self, key: BlockKey) -> None:
        block = self.blocks.pop(key)
        self._lru.pop(key, None)
        if not block.on_disk:
            self._resident_bytes -= block.memory_bytes
        if block.alloc_group is not None and not block.alloc_group.freed:
            self.executor.heap.free_group(block.alloc_group)
        if self._unified is not None and not block.on_disk:
            self._unified.storage_discard(self._entry_name(block))
        if block.page_group is not None \
                and not block.page_group.reclaimed:
            block.page_group.reclaim()
        # Release every payload reference: a dropped-while-swapped block
        # must not keep its parked records/bytes reachable.  A promoted
        # blob aliases its extent — detach it before the extent is
        # dropped below so stale readers fail loudly.
        if isinstance(block.blob, memoryview):
            try:
                block.blob.release()
            except BufferError:
                pass  # a sub-view reader is still mid-scan
        block.page_group = None
        block.records = None
        block.blob = None
        block._disk_payload = None
        tier = self.executor.cold_tier
        if tier is not None and block._tier_key is not None:
            tier.drop(block._tier_key)
            block._tier_key = None
            block._tier_resident = False

    def read_records(self, key: BlockKey) -> Iterator[Any]:
        """Iterate a block's records, charging mode-appropriate costs.

        Swapped blocks are *streamed* from disk (MEMORY_AND_DISK
        semantics): they pay disk + deserialization on every access but do
        not displace resident blocks — re-promoting them would thrash the
        LRU under exactly the memory pressure that evicted them.
        """
        block = self.get(key)
        if block.on_disk:
            yield from self._read_from_disk(block)
            return
        executor = self.executor
        if block.strategy is StorageStrategy.OBJECTS:
            yield from block.records
            return
        if block.strategy is StorageStrategy.SERIALIZED:
            if block.blob is None or block.schema is None:
                # Non-decomposable records cannot be blob-packed: the
                # block keeps its record list and only models the
                # serialized footprint.  Reads still pay deserialization.
                assert block.records is not None
                executor.serializer.kryo_deserialize(
                    block.footprint.objects, block.disk_bytes)
                yield from block.records
                return
            executor.serializer.kryo_deserialize(
                block.footprint.objects, len(block.blob))
            offset = 0
            decode = block.decode or (lambda v: v)
            for _ in range(block.record_count):
                value, offset = block.schema.unpack_from(block.blob, offset)
                yield decode(value)
            return
        # DECA_PAGES: read decomposed records in place.
        assert block.page_group is not None and block.schema is not None
        executor.serializer.deca_read(block.record_count,
                                      block.page_group.used_bytes)
        executor.charge_compute(
            executor.config.cpu.page_access_ms * block.record_count)
        decode = block.decode or (lambda v: v)
        for value in block.page_group.records(block.schema):
            yield decode(value)

    def _read_from_disk(self, block: CachedBlock) -> Iterator[Any]:
        """Stream a swapped block's records without re-promoting it."""
        executor = self.executor
        tier = executor.cold_tier
        tier_key = block._tier_key if tier is not None else None
        if tier is not None:
            executor.charge_tier_read(block.disk_bytes)
        else:
            executor.charge_disk_read(block.disk_bytes)
        if block.strategy is StorageStrategy.OBJECTS:
            executor.serializer.kryo_deserialize(block.footprint.objects,
                                                 block.disk_bytes)
            # Deserialized records are short-lived task-local objects.
            executor.alloc_temp(block.footprint.objects,
                                block.footprint.object_bytes)
            yield from block._disk_payload
            return
        if block.strategy is StorageStrategy.SERIALIZED:
            executor.serializer.kryo_deserialize(block.footprint.objects,
                                                 block.disk_bytes)
            if tier_key is not None:
                views = tier.views(tier_key)
                payload = views[0] if views else memoryview(b"")
            else:
                payload = block._disk_payload
            decode = block.decode or (lambda v: v)
            if isinstance(payload, (bytes, bytearray, memoryview)) \
                    and block.schema is not None:
                offset = 0
                for _ in range(block.record_count):
                    value, offset = block.schema.unpack_from(payload,
                                                             offset)
                    yield decode(value)
            else:
                yield from payload
            return
        # DECA_PAGES: the cold bytes are already the record format — in
        # the mmap tier they stream straight out of the extent's views.
        executor.serializer.deca_read(block.record_count, block.disk_bytes)
        assert block.schema is not None
        decode = block.decode or (lambda v: v)
        chunks = (tier.views(tier_key) if tier_key is not None
                  else block._disk_payload)
        for chunk in chunks:
            offset = 0
            while offset < len(chunk):
                value, offset = block.schema.unpack_from(chunk, offset)
                yield decode(value)
