"""Shuffles: hash-based eager combining, sort buffers, spill (§4.2–§4.3).

The write path mirrors Spark 1.6:

* ``reduceByKey``-style operators use a **hash-based buffer with eager
  combining**: one combined entry per key; every merge kills the old Value
  object and creates a new one — the temporary churn of Fig. 8(a).  Deca's
  plan may mark the Value an SFST, in which case the merge *reuses the
  page segment in place* and the churn disappears (§4.3.2).
* ``groupByKey``/``join``/``sortByKey`` write through per-partition append
  buffers (sort-based shuffle, no map-side combine).

The read path fetches map outputs (network cost for remote blocks),
deserializes them (free for decomposed bytes), and feeds the reduce-side
aggregation.  Buffers exceeding the shuffle memory budget spill to disk.

The data plane is real — records actually move — while every cost lands on
the owning executor's simulated clock.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from ..errors import FetchFailedError, ShuffleError
from ..jvm.objects import Lifetime
from ..memory.layout import Schema
from ..memory.unified import UnifiedMemoryManager
from .measure import RecordFootprint, measure_generic


class ShuffleKind(enum.Enum):
    """Reduce-side semantics of a shuffle."""

    COMBINE = "combine"        # reduceByKey: merge combiners
    GROUP = "group"            # groupByKey: build value lists
    SORT = "sort"              # sortByKey: merge-sort by key
    COGROUP = "cogroup"        # join: group both sides by key


@dataclass(frozen=True)
class ShufflePlan:
    """How one shuffle stores its buffers (produced by the Deca optimizer).

    *decomposed* — keys/values live as raw bytes in the buffer: no
    per-record serialization at the boundary and near-zero GC footprint.
    *value_segment_reuse* — the combined Value is an SFST, so eager merges
    overwrite the segment in place instead of allocating (§4.3.2).
    *pointer_array* — sorting/hashing runs over an array of pointers into
    the pages (Fig. 6(b)); elidable when Key and Value are primitives or
    SFSTs, because segment offsets are then statically known.
    """

    decomposed: bool = False
    value_segment_reuse: bool = False
    pointer_array: bool = False
    schema: Schema | None = None
    encode: Callable[[Any], Any] | None = None
    measure: Callable[[Any], RecordFootprint] | None = None


SPARK_SHUFFLE_PLAN = ShufflePlan()


@dataclass
class MapOutputBlock:
    """One (map partition, reduce partition) shuffle block.

    Under the sim backend ``records`` holds the block's record objects.
    Under the mp backend a decomposed block lives in a shared-memory
    segment instead: ``records`` is ``None`` and ``shm_ref`` (plus the
    schema/decode/tag needed to read it) points at the packed pages —
    reducers attach the segment and decode in place.
    """

    records: list | None
    nbytes: int
    objects: int
    executor_id: int
    decomposed: bool
    # Bytes this block's writer spilled mid-task: the reader must merge
    # the sorted spill files with the final output (Appendix C: Deca
    # merges through a single-page buffer; Spark re-reads the runs).
    merge_penalty_bytes: int = 0
    # Shared-segment form (mp backend): see repro.exec.shm.
    shm_ref: object | None = None
    shm_schema: object | None = None
    shm_decode: object | None = None
    shm_tag: int | None = None

    def resolve_records(self) -> list:
        """The block's records, materializing from shared pages if needed.

        Driver-side readers (a sim-path reduce over blocks an mp stage
        produced) call this instead of touching ``records`` directly.
        """
        if self.records is None and self.shm_ref is not None:
            from ..exec.shm import read_segment_records
            pairs = read_segment_records(
                self.shm_ref, self.shm_schema, self.shm_decode)
            if self.shm_tag is None:
                self.records = list(pairs)
            else:
                self.records = [(key, (self.shm_tag, value))
                                for key, value in pairs]
        return self.records if self.records is not None else []


class ShuffleBlockStore:
    """Cluster-wide registry of map outputs (the "shuffle service")."""

    def __init__(self) -> None:
        self._blocks: dict[tuple[int, int, int], MapOutputBlock] = {}
        self._num_map_parts: dict[int, int] = {}

    def register(self, shuffle_id: int, map_part: int, reduce_part: int,
                 block: MapOutputBlock) -> None:
        self._blocks[(shuffle_id, map_part, reduce_part)] = block

    def set_map_parts(self, shuffle_id: int, count: int) -> None:
        self._num_map_parts[shuffle_id] = count

    def map_parts(self, shuffle_id: int) -> int:
        try:
            return self._num_map_parts[shuffle_id]
        except KeyError:
            raise ShuffleError(
                f"unknown shuffle {shuffle_id}") from None

    def fetch(self, shuffle_id: int, map_part: int,
              reduce_part: int) -> MapOutputBlock | None:
        return self._blocks.get((shuffle_id, map_part, reduce_part))

    def remove_shuffle(self, shuffle_id: int) -> None:
        for key in [k for k in self._blocks if k[0] == shuffle_id]:
            del self._blocks[key]
        self._num_map_parts.pop(shuffle_id, None)

    def remove_map_output(self, shuffle_id: int, map_part: int) -> None:
        """Forget one map task's blocks (e.g. after a corrupt fetch)."""
        for key in [k for k in self._blocks
                    if k[0] == shuffle_id and k[1] == map_part]:
            del self._blocks[key]

    def remove_executor_outputs(self, executor_id: int
                                ) -> list[tuple[int, int]]:
        """Drop every block a lost executor wrote.

        Returns the sorted, de-duplicated ``(shuffle_id, map_part)`` pairs
        that are now missing — the lineage the scheduler must re-execute.
        Sorted order matters twice: recomputing lower shuffle ids first
        regenerates parent stages before the children that read them, and
        a deterministic order keeps seeded fault runs reproducible.
        """
        lost: set[tuple[int, int]] = set()
        for key in [k for k in self._blocks
                    if self._blocks[k].executor_id == executor_id]:
            lost.add((key[0], key[1]))
            del self._blocks[key]
        return sorted(lost)


def _default_measure(value) -> RecordFootprint:
    return measure_generic(value)


class MapSideWriter:
    """Writes one map task's output into per-reduce-partition buffers."""

    def __init__(self, executor, shuffle_id: int, map_part: int,
                 num_reduce: int,
                 partitioner: Callable[[Any], int],
                 kind: ShuffleKind,
                 merge_value: Callable[[Any, Any], Any] | None = None,
                 plan: ShufflePlan = SPARK_SHUFFLE_PLAN) -> None:
        if kind is ShuffleKind.COMBINE and merge_value is None:
            raise ShuffleError("combine shuffles need a merge function")
        self.executor = executor
        self.shuffle_id = shuffle_id
        self.map_part = map_part
        self.num_reduce = num_reduce
        self.partitioner = partitioner
        self.kind = kind
        self.merge_value = merge_value
        self.plan = plan
        self.measure = plan.measure or _default_measure
        # Data plane: combined entries or append lists per reduce part.
        self._combine: list[dict[Any, Any]] = [dict()
                                               for _ in range(num_reduce)]
        self._append: list[list] = [[] for _ in range(num_reduce)]
        self._buffer_group = executor.heap.new_group(
            f"shuffle-buf:{shuffle_id}:{map_part}", Lifetime.PINNED)
        self._buffer_bytes = 0
        self.spilled_bytes = 0
        self.records_written = 0
        # Records written into the current buffer epoch (reset by each
        # spill): the sort at spill time only touches these, not the
        # records already sorted out to disk by earlier spills.
        self._buffer_records = 0
        self.spill_count = 0
        self._page_bytes = executor.config.page_bytes
        # The executor arena governs when this writer spills.  Static
        # mode: every writer charges its buffer into one shared shuffle
        # pool (concurrent writers spill at the combined threshold, not
        # each at a private one).  Unified mode: the writer is a
        # MemoryConsumer holding per-task execution grants and spills
        # when the arena cannot extend them.
        self._arena = executor.arena
        self._unified = (self._arena
                         if isinstance(self._arena, UnifiedMemoryManager)
                         else None)
        # Bytes currently charged into the arena (static pool charge or
        # unified execution grant).  Zeroed by spill/flush/abort, which
        # makes the releases idempotent across flush-then-abort paths.
        self._charged = 0

    # -- write path -----------------------------------------------------------
    def write_all(self, records: Iterable[tuple[Any, Any]]) -> None:
        cpu = self.executor.config.cpu
        if self.kind is ShuffleKind.COMBINE:
            for key, value in records:
                self._write_combine(key, value, cpu)
        else:
            for key, value in records:
                self._write_append(key, value, cpu)

    def _write_combine(self, key, value, cpu) -> None:
        part = self.partitioner(key) % self.num_reduce
        bucket = self._combine[part]
        self.executor.charge_compute(cpu.hash_probe_ms)
        old = bucket.get(key)
        if old is None:
            bucket[key] = value
            footprint = self.measure((key, value))
            if self.plan.decomposed:
                # Decompose the fresh entry straight into buffer bytes.
                self.executor.serializer.deca_write(1, footprint.data_bytes)
                self._account_decomposed(footprint.data_bytes)
            else:
                self.executor.charge_compute(
                    cpu.object_alloc_ms * footprint.objects
                    + cpu.boxing_ms)
                self._account_buffer(footprint.objects,
                                     footprint.object_bytes)
        else:
            merged = self.merge_value(old, value)
            bucket[key] = merged
            if self.plan.decomposed and self.plan.value_segment_reuse:
                # SFST value: overwrite the old segment in place — no
                # allocation, no dead object (§4.3.2).
                self.executor.charge_compute(cpu.page_access_ms)
            else:
                # A new Value object replaces the old one: allocation plus
                # a short-lived temporary for the collector to chase.
                footprint = self.measure((key, merged))
                self.executor.charge_compute(
                    cpu.object_alloc_ms + cpu.boxing_ms)
                self.executor.alloc_temp(max(1, footprint.objects - 1),
                                         footprint.object_bytes // 2)
        self.records_written += 1
        self._buffer_records += 1
        self._maybe_spill()

    def _write_append(self, key, value, cpu) -> None:
        part = self.partitioner(key) % self.num_reduce
        self._append[part].append((key, value))
        footprint = self.measure((key, value))
        if self.plan.decomposed:
            self.executor.serializer.deca_write(1, footprint.data_bytes)
            self._account_decomposed(footprint.data_bytes)
        else:
            self.executor.charge_compute(
                cpu.object_alloc_ms * footprint.objects)
            self._account_buffer(footprint.objects, footprint.object_bytes)
        self.records_written += 1
        self._buffer_records += 1
        self._maybe_spill()

    def _account_decomposed(self, nbytes: int) -> None:
        """Account decomposed buffer bytes at page granularity.

        The records live inside a few byte-array pages; the heap only sees
        a new object when the bytes cross into a fresh page (§4.3.1).
        """
        pages_before = self._buffer_bytes // self._page_bytes
        pages_after = (self._buffer_bytes + nbytes) // self._page_bytes
        new_pages = pages_after - pages_before
        if self._buffer_bytes == 0 and nbytes > 0:
            new_pages += 1  # the first page
        self.executor.heap.allocate(self._buffer_group, new_pages, nbytes)
        self._buffer_bytes += nbytes
        self._charge_arena(nbytes)

    def _account_buffer(self, objects: int, nbytes: int) -> None:
        self.executor.heap.allocate(self._buffer_group, objects, nbytes)
        self._buffer_bytes += nbytes
        self._charge_arena(nbytes)

    def _charge_arena(self, nbytes: int) -> None:
        if self._unified is None:
            self._arena.shuffle_acquire(nbytes)
            self._charged += nbytes
        # Unified grants are extended lazily in :meth:`_maybe_spill`,
        # rounded up to page quanta, so every record doesn't pay an
        # arena round-trip.

    # -- MemoryConsumer protocol (unified mode) -------------------------------
    @property
    def consumer_name(self) -> str:
        return f"shuffle:{self.shuffle_id}:{self.map_part}"

    def memory_used(self) -> int:
        return self._charged

    def spill(self) -> int:
        """Sort and spill the buffered records, releasing arena bytes.

        Invoked by :meth:`_maybe_spill` when over budget and — in
        unified mode — cooperatively by the arena when a sibling
        consumer is starved.  Returns the arena bytes given back.
        """
        if self._buffer_bytes <= 0 and self._charged <= 0:
            return 0
        # Sort and spill the buffered bytes, then release the heap space
        # (the data plane keeps the records; only costs are charged).
        # The sort covers this epoch's records only — records spilled by
        # earlier epochs already left the buffer and are merged at read
        # time, not re-sorted here.
        cpu = self.executor.config.cpu
        executor = self.executor
        spill_start_ms = executor.clock.now_ms
        executor.charge_compute(
            cpu.sort_per_record_ms * self._buffer_records)
        tier = executor.cold_tier
        if tier is not None:
            # Spills land in the mmap tier file: sequential byte moves
            # at memory-bus speed instead of disk writes.
            executor.charge_tier_write(self._buffer_bytes)
            tier.note_spill(self._buffer_bytes)
        else:
            executor.charge_disk_write(self._buffer_bytes)
        self.spilled_bytes += self._buffer_bytes
        self.spill_count += 1
        executor.heap.free_group(self._buffer_group)
        self._buffer_group = executor.heap.new_group(
            f"shuffle-buf:{self.shuffle_id}:{self.map_part}:spill",
            Lifetime.PINNED)
        executor.tracer.complete(
            "shuffle:spill", "shuffle", ts_ms=spill_start_ms,
            dur_ms=executor.clock.now_ms - spill_start_ms,
            pid=executor.trace_pid, shuffle_id=self.shuffle_id,
            map_part=self.map_part, spilled_bytes=self._buffer_bytes,
            records=self._buffer_records, spill_count=self.spill_count,
            heap_used_bytes=(executor.heap.young_used_bytes
                             + executor.heap.old_used_bytes))
        self._buffer_bytes = 0
        self._buffer_records = 0
        return self._release_arena()

    def _release_arena(self) -> int:
        """Give every charged arena byte back (idempotent)."""
        charged, self._charged = self._charged, 0
        if charged <= 0:
            return 0
        if self._unified is not None:
            return self._unified.execution_release(charged, consumer=self)
        self._arena.shuffle_release(charged)
        return charged

    def _maybe_spill(self) -> None:
        if self._unified is None:
            if not self._arena.shuffle_over_budget():
                return
            self.spill()
            return
        # Unified: extend this task's grant to cover the buffer; spill
        # only when the arena (after evicting borrowed storage and
        # cooperatively spilling siblings) cannot.
        if self._buffer_bytes <= self._charged:
            return
        need = self._buffer_bytes - self._charged
        granted = self._unified.execution_acquire(
            max(need, self._page_bytes), consumer=self)
        self._charged += granted
        if self._buffer_bytes > self._charged:
            self.spill()

    # -- flush -----------------------------------------------------------------
    def flush(self, store: ShuffleBlockStore) -> None:
        """Sort, serialize and register the per-partition outputs."""
        cpu = self.executor.config.cpu
        # Spread the spill-merge penalty across the reduce partitions
        # without losing the division remainder: the first
        # ``spilled_bytes % num_reduce`` partitions carry one extra byte,
        # so the penalties sum exactly to the bytes actually spilled.
        penalty_base, penalty_rem = divmod(self.spilled_bytes,
                                           self.num_reduce)
        for part in range(self.num_reduce):
            if self.kind is ShuffleKind.COMBINE:
                records = list(self._combine[part].items())
            else:
                records = self._append[part]
                if self.kind is ShuffleKind.SORT:
                    self.executor.charge_compute(
                        cpu.sort_per_record_ms * len(records))
                    records = sorted(records, key=lambda kv: kv[0])
            objects = 0
            nbytes = 0
            for record in records:
                footprint = self.measure(record)
                objects += footprint.objects
                nbytes += footprint.serialized_bytes
            if self.plan.decomposed:
                # The pages already are the wire format.
                self.executor.charge_disk_write(nbytes)
            else:
                self.executor.serializer.kryo_serialize(objects, nbytes)
                self.executor.charge_disk_write(nbytes)
            penalty = penalty_base + (1 if part < penalty_rem else 0)
            store.register(
                self.shuffle_id, self.map_part, part,
                MapOutputBlock(records=records, nbytes=nbytes,
                               objects=objects,
                               executor_id=self.executor.executor_id,
                               decomposed=self.plan.decomposed,
                               merge_penalty_bytes=penalty))
        # The buffer's lifetime ends with the task (§4.2).
        if not self._buffer_group.freed:
            self.executor.heap.free_group(self._buffer_group)
        self._release_arena()

    def abort(self) -> None:
        """Tear down after a failed attempt: the buffer dies unregistered.

        The data plane is discarded with the writer object; only the heap
        group needs explicit release so the failed attempt's buffer shows
        up as garbage instead of leaking as live objects.
        """
        if not self._buffer_group.freed:
            self.executor.heap.free_group(self._buffer_group)
        self._release_arena()


class ReduceMergeConsumer:
    """The reduce-side merge as an execution :class:`MemoryConsumer`.

    In unified mode every fetched block's bytes are admitted against a
    per-task execution grant; when the arena cannot extend it the merge
    spills its buffered runs to disk (an extra sequential write, merged
    back by charge-free streaming) and releases the grant.
    """

    def __init__(self, executor, arena: UnifiedMemoryManager,
                 shuffle_id: int, reduce_part: int) -> None:
        self.executor = executor
        self.arena = arena
        self.shuffle_id = shuffle_id
        self.reduce_part = reduce_part
        self._charged = 0
        self._data_bytes = 0
        self.spilled_bytes = 0
        self.spill_count = 0

    @property
    def consumer_name(self) -> str:
        return f"reduce-merge:{self.shuffle_id}:{self.reduce_part}"

    def memory_used(self) -> int:
        return self._charged

    def admit(self, nbytes: int) -> None:
        """Account one fetched block into the merge buffer."""
        granted = self.arena.execution_acquire(nbytes, consumer=self)
        if granted < nbytes and self._data_bytes > 0:
            self.spill()
            granted += self.arena.execution_acquire(nbytes - granted,
                                                    consumer=self)
        self._charged += granted
        self._data_bytes += nbytes

    def spill(self) -> int:
        """Write the buffered merge runs out; return arena bytes freed."""
        if self._data_bytes <= 0 and self._charged <= 0:
            return 0
        executor = self.executor
        spill_start_ms = executor.clock.now_ms
        tier = executor.cold_tier
        if tier is not None:
            executor.charge_tier_write(self._data_bytes)
            tier.note_spill(self._data_bytes)
        else:
            executor.charge_disk_write(self._data_bytes)
        self.spilled_bytes += self._data_bytes
        self.spill_count += 1
        executor.tracer.complete(
            "shuffle:merge-spill", "shuffle", ts_ms=spill_start_ms,
            dur_ms=executor.clock.now_ms - spill_start_ms,
            pid=executor.trace_pid, shuffle_id=self.shuffle_id,
            reduce_part=self.reduce_part,
            spilled_bytes=self._data_bytes,
            spill_count=self.spill_count)
        self._data_bytes = 0
        charged, self._charged = self._charged, 0
        if charged <= 0:
            return 0
        return self.arena.execution_release(charged, consumer=self)

    def close(self) -> None:
        """Release the grant when the merge's records are consumed."""
        self._data_bytes = 0
        charged, self._charged = self._charged, 0
        if charged > 0:
            self.arena.execution_release(charged, consumer=self)


def read_reduce_partition(executor, store: ShuffleBlockStore,
                          shuffle_id: int, reduce_part: int,
                          ) -> Iterator[tuple[Any, Any]]:
    """Fetch and yield one reduce partition's records.

    Remote blocks pay network cost; all blocks pay disk read (map outputs
    are files); object-form blocks pay per-record deserialization while
    decomposed blocks are read in place.  Under ``memory_mode="unified"``
    the merge buffer holds an execution grant via
    :class:`ReduceMergeConsumer` and spills when the arena denies it.
    """
    arena = getattr(executor, "arena", None)
    merge = (ReduceMergeConsumer(executor, arena, shuffle_id, reduce_part)
             if isinstance(arena, UnifiedMemoryManager) else None)
    num_maps = store.map_parts(shuffle_id)
    injector = executor.fault_injector
    tracer = executor.tracer
    try:
        yield from _fetch_blocks(executor, store, shuffle_id, reduce_part,
                                 num_maps, injector, tracer, merge)
    finally:
        if merge is not None:
            merge.close()


def _fetch_blocks(executor, store: ShuffleBlockStore, shuffle_id: int,
                  reduce_part: int, num_maps: int, injector, tracer,
                  merge: ReduceMergeConsumer | None,
                  ) -> Iterator[tuple[Any, Any]]:
    for map_part in range(num_maps):
        fetch_start_ms = executor.clock.now_ms
        block = store.fetch(shuffle_id, map_part, reduce_part)
        if block is None:
            # The map output is gone (e.g. its executor was lost after the
            # stage ran): surface a FetchFailed so the scheduler re-runs
            # the lineage that produced it, exactly like Spark.
            tracer.instant(
                "shuffle:fetch-failed", "shuffle",
                ts_ms=executor.clock.now_ms, pid=executor.trace_pid,
                shuffle_id=shuffle_id, map_part=map_part,
                reduce_part=reduce_part, reason="missing map output")
            raise FetchFailedError(shuffle_id, map_part, reduce_part,
                                   reason="missing map output")
        if injector is not None and injector.enabled \
                and injector.corrupt_fetch(shuffle_id, map_part,
                                           reduce_part):
            # The fetched bytes fail checksum verification; the reader
            # still paid for the transfer it has performed so far.
            executor.charge_disk_read(block.nbytes)
            tracer.instant(
                "shuffle:fetch-failed", "shuffle",
                ts_ms=executor.clock.now_ms, pid=executor.trace_pid,
                shuffle_id=shuffle_id, map_part=map_part,
                reduce_part=reduce_part, reason="corrupt block")
            raise FetchFailedError(shuffle_id, map_part, reduce_part,
                                   reason="corrupt block")
        executor.charge_disk_read(block.nbytes)
        if block.merge_penalty_bytes:
            # Merge the sorted spill runs through a one-page buffer
            # (Appendix C): an extra sequential read of the spilled data.
            executor.charge_disk_read(block.merge_penalty_bytes)
        remote = block.executor_id != executor.executor_id
        if remote:
            executor.charge_network(block.nbytes)
        records = (block.records if block.records is not None
                   else block.resolve_records())
        if block.decomposed:
            executor.serializer.deca_read(len(records), block.nbytes)
        else:
            executor.serializer.kryo_deserialize(block.objects,
                                                 block.nbytes)
        if merge is not None:
            merge.admit(block.nbytes)
        # The fetch wait: everything between asking for the block and
        # having its records decoded and ready to aggregate.
        tracer.complete(
            "shuffle:fetch", "shuffle", ts_ms=fetch_start_ms,
            dur_ms=executor.clock.now_ms - fetch_start_ms,
            pid=executor.trace_pid, shuffle_id=shuffle_id,
            map_part=map_part, reduce_part=reduce_part,
            nbytes=block.nbytes, remote=remote,
            merge_penalty_bytes=block.merge_penalty_bytes)
        yield from records
