"""Live-object / GC sampling — the JProfiler stand-in for Figs. 8(a)/9(a).

The paper periodically records, per executor, the number of alive objects
of one tracked UDT (``Tuple2`` for WC, ``LabeledPoint`` for LR) and the
cumulative GC time.  :class:`HeapProfiler` does the same on the simulated
clock: the executor calls :meth:`maybe_sample` inside its task loops, and a
sample is taken whenever the clock has crossed the next sampling point.

The profiler is a *consumer of the heap's GC event stream* (the same
stream :mod:`repro.obs` exports as trace events): it subscribes via
:meth:`~repro.jvm.heap.SimHeap.add_gc_listener` and accumulates its pause
timeline from the events it receives, rather than re-reading aggregate
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..jvm.heap import SimHeap
from ..jvm.stats import GcEvent
from ..simtime import SimClock


@dataclass(frozen=True)
class ProfileSample:
    """One sampling point of the live-object/GC-time timeline."""

    time_ms: float
    live_objects: int
    tracked_objects: int
    gc_pause_ms: float


class HeapProfiler:
    """Periodic sampler of one executor's heap.

    *tracked_counter* returns the current population of the UDT under
    observation (e.g. live ``LabeledPoint`` count — cached records plus
    in-flight temporaries).
    """

    def __init__(self, heap: SimHeap, clock: SimClock, period_ms: float,
                 tracked_counter: Callable[[], int] | None = None) -> None:
        if period_ms <= 0:
            raise ValueError("sampling period must be positive")
        self.heap = heap
        self.clock = clock
        self.period_ms = period_ms
        self.tracked_counter = tracked_counter
        self.samples: list[ProfileSample] = []
        self._next_sample_ms = 0.0
        # Pauses recorded before this profiler attached still count toward
        # the cumulative timeline; later ones arrive through the stream.
        self._gc_pause_ms = heap.stats.pause_ms
        heap.add_gc_listener(self._on_gc_event)

    def _on_gc_event(self, event: GcEvent) -> None:
        """GC event stream consumer: accumulate the pause timeline."""
        self._gc_pause_ms += event.pause_ms

    def maybe_sample(self) -> None:
        """Take samples for every period boundary the clock has crossed."""
        while self.clock.now_ms >= self._next_sample_ms:
            self._take(self._next_sample_ms)
            self._next_sample_ms += self.period_ms

    def force_sample(self) -> None:
        """Take one sample right now (used at run boundaries)."""
        self._take(self.clock.now_ms)

    def _take(self, when_ms: float) -> None:
        tracked = (self.tracked_counter()
                   if self.tracked_counter is not None else 0)
        self.samples.append(ProfileSample(
            time_ms=when_ms,
            live_objects=self.heap.live_objects,
            tracked_objects=tracked,
            gc_pause_ms=self._gc_pause_ms,
        ))

    def timeline(self) -> list[tuple[float, int, float]]:
        """``(time, tracked_objects, cumulative_gc_ms)`` rows (Fig. 8a)."""
        return [(s.time_ms, s.tracked_objects, s.gc_pause_ms)
                for s in self.samples]
