"""Deterministic failure injection for the mini-Spark engine.

Production Spark's defining property — tasks and executors die and the
lineage graph recovers them — is what makes cached, decomposed data
meaningful at all: a cache only matters if partitions can be lost and
rebuilt.  :class:`FaultInjector` supplies the failures; the DAG scheduler
(:mod:`repro.spark.scheduler`) supplies the recovery.

Two injection styles compose:

* **probabilistic** — per-attempt kill / executor-crash / fetch-corruption
  probabilities drawn from one seeded ``random.Random``, so a run's entire
  failure sequence is a pure function of the seed and the (deterministic)
  execution order;
* **scripted** — exact :class:`~repro.config.ScriptedFault` points, for
  tests that need a failure at stage 2, partition 3, attempt 0 and nowhere
  else.

The injector never sleeps, never reads wall time and never touches the
process RNG: fault runs are reproducible bit-for-bit (the determinism CI
job asserts two seeded runs emit identical metrics JSON).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import FaultConfig, ScriptedFault

#: Fault kinds a task-attempt plan can carry.
TASK_KILL = "task-kill"
EXECUTOR_CRASH = "executor-crash"
FETCH_CORRUPT = "fetch-corrupt"


@dataclass(frozen=True)
class TaskFaultPlan:
    """The injector's verdict for one task attempt.

    ``after_ops`` counts compute charges before the failure strikes:
    ``0`` means the attempt dies before running any user code, ``n > 0``
    kills it mid-computation (partial heap/buffer state must be cleaned
    up by the recovery path).
    """

    kind: str  # TASK_KILL or EXECUTOR_CRASH
    after_ops: int = 0


class FaultInjector:
    """Seeded source of task, executor and shuffle-fetch failures."""

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        # Scripted faults fire exactly once.
        self._pending: list[ScriptedFault] = list(config.scripted)
        self.injected_kills = 0
        self.injected_crashes = 0
        self.injected_corruptions = 0

    @property
    def enabled(self) -> bool:
        return self.config.injection_enabled

    # -- task attempts -----------------------------------------------------
    def plan_task(self, stage_id: int, partition: int,
                  attempt: int) -> TaskFaultPlan | None:
        """Decide whether (and how) this task attempt fails.

        Called once per attempt; the RNG is only consulted while
        probabilistic injection is configured, so scripted-only runs do
        not perturb the draw sequence of other injectors.
        """
        scripted = self._take_scripted(
            (TASK_KILL, EXECUTOR_CRASH),
            lambda f: (f.stage_id in (-1, stage_id)
                       and f.partition in (-1, partition)
                       and f.attempt == attempt))
        if scripted is not None:
            return self._record(TaskFaultPlan(scripted.kind,
                                              scripted.after_ops))
        cfg = self.config
        if cfg.executor_crash_prob > 0.0 \
                and self._rng.random() < cfg.executor_crash_prob:
            return self._record(TaskFaultPlan(
                EXECUTOR_CRASH, self._rng.randrange(cfg.max_kill_ops)))
        if cfg.task_kill_prob > 0.0 \
                and self._rng.random() < cfg.task_kill_prob:
            return self._record(TaskFaultPlan(
                TASK_KILL, self._rng.randrange(cfg.max_kill_ops)))
        return None

    # -- shuffle fetches ---------------------------------------------------
    def corrupt_fetch(self, shuffle_id: int, map_part: int,
                      reduce_part: int) -> bool:
        """Whether this shuffle-block read returns corrupt bytes."""
        scripted = self._take_scripted(
            (FETCH_CORRUPT,),
            lambda f: (f.shuffle_id in (-1, shuffle_id)
                       and f.map_part in (-1, map_part)
                       and f.reduce_part in (-1, reduce_part)))
        if scripted is not None:
            self.injected_corruptions += 1
            return True
        cfg = self.config
        if cfg.fetch_corruption_prob > 0.0 \
                and self._rng.random() < cfg.fetch_corruption_prob:
            self.injected_corruptions += 1
            return True
        return False

    # -- internals ---------------------------------------------------------
    def _take_scripted(self, kinds, matches) -> ScriptedFault | None:
        for index, fault in enumerate(self._pending):
            if fault.kind in kinds and matches(fault):
                return self._pending.pop(index)
        return None

    def _record(self, plan: TaskFaultPlan) -> TaskFaultPlan:
        if plan.kind == EXECUTOR_CRASH:
            self.injected_crashes += 1
        else:
            self.injected_kills += 1
        return plan

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.config.seed}, "
                f"kills={self.injected_kills}, "
                f"crashes={self.injected_crashes}, "
                f"corruptions={self.injected_corruptions})")
