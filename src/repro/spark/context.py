"""DecaContext — the application entry point (SparkContext analogue).

A context owns the simulated cluster (executors with heaps and clocks), the
shuffle service, the DAG scheduler and — in ``DECA`` mode — the runtime
optimizer that plans cache/shuffle decomposition per job (the hybrid
optimization of Appendix A: plans are made when a dataset is first
materialized, using the UDT analysis plus runtime symbol bindings).

Typical use::

    ctx = DecaContext(DecaConfig(mode=ExecutionMode.DECA))
    points = ctx.parallelize(data, 8).map(parse).with_udt(info).cache()
    for _ in range(30):
        gradient = points.map(gradient_of).reduce(add)
    report = ctx.finish()
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Callable, Iterable, Iterator

from ..config import DecaConfig, ExecutionMode
from ..errors import ExecutionError, SanitizerError
from ..exec import create_backend
from ..jvm.objects import Lifetime
from ..memory.provenance import VIOLATION_SLUGS, ProvenanceLedger
from ..obs import Tracer
from ..obs.vclock import RACE_SLUGS, VClockChecker
from .cache import CachedBlock, StorageStrategy
from .measure import ZERO_FOOTPRINT
from .metrics import JobMetrics, RunMetrics
from .profiler import HeapProfiler
from .rdd import (
    ParallelCollectionRDD,
    RDD,
    ShuffleDependency,
    UdtInfo,
)
from .faults import FaultInjector
from .closure_guard import ClosureGuard
from .scheduler import DAGScheduler, TaskContext
from .executor import Executor
from .shuffle import ShuffleBlockStore, ShufflePlan


def stable_hash(key: Any) -> int:
    """A process-independent hash for partitioning."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key & 0x7FFFFFFF
    if isinstance(key, float):
        return hash(key) & 0x7FFFFFFF
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8"))
    if isinstance(key, bytes):
        return zlib.crc32(key)
    if isinstance(key, tuple):
        acc = 97
        for item in key:
            acc = (acc * 31 + stable_hash(item)) & 0x7FFFFFFF
        return acc
    return hash(key) & 0x7FFFFFFF


class CachePlan:
    """How one cached dataset stores its blocks (Deca optimizer output)."""

    def __init__(self, strategy: StorageStrategy,
                 schema=None,
                 encode: Callable[[Any], Any] | None = None,
                 decode: Callable[[Any], Any] | None = None) -> None:
        self.strategy = strategy
        self.schema = schema
        self.encode = encode
        self.decode = decode


class DecaContext:
    """The driver: builds RDDs, runs jobs, reports metrics."""

    def __init__(self, config: DecaConfig | None = None) -> None:
        self.config = config or DecaConfig()
        self.mode = self.config.mode
        self.shuffle_store = ShuffleBlockStore()
        self.fault_injector = FaultInjector(self.config.faults)
        # One trace buffer per run; every layer emits into it (repro.obs).
        self.tracer = Tracer()
        self.executors = [
            Executor(i, self.config, self.shuffle_store,
                     tracer=self.tracer)
            for i in range(self.config.num_executors)
        ]
        for executor in self.executors:
            executor.fault_injector = self.fault_injector
        self.scheduler = DAGScheduler(self)
        # Retry policy for nondeterministic UDFs (docs/closure_analysis.md).
        self.closure_guard = ClosureGuard(self)
        # Driver-side alias sanitizer: audits shm segment ownership (the
        # mp backend's registry); executors carry their own ledgers for
        # mmap extents.  None unless config.sanitize — zero overhead off.
        self.ledger: ProvenanceLedger | None = None
        # Vector-clock race sanitizer (docs/static_analysis.md): one
        # driver-side checker per run; mp workers carry forked replicas
        # whose notes are absorbed with each result message.
        self.vclock: VClockChecker | None = None
        if self.config.sanitize:
            self.ledger = ProvenanceLedger(tracer=self.tracer)
            self.vclock = VClockChecker(actor="driver",
                                        tracer=self.tracer)
            for executor in self.executors:
                executor.vclock = self.vclock
                executor.arena.vclock = self.vclock
        # How stages execute: the sim backend declines every stage (the
        # scheduler's in-process loop runs); the mp backend runs them on
        # forked workers with shared-memory pages (repro.exec).
        self.backend = create_backend(self)
        for executor in self.executors:
            executor.on_demote = self.backend.demote_block
        self.partitioner = stable_hash
        # Per-context id sequences: a fresh context numbers RDDs and
        # shuffles from zero, keeping same-seed runs byte-identical even
        # when several contexts live in one interpreter.
        self._rdd_ids = itertools.count()
        self._shuffle_ids = itertools.count()
        self._rdds: dict[int, RDD] = {}
        self._jobs: list[JobMetrics] = []
        self._spilled_shuffle_bytes = 0
        self._optimizer = None
        if self.mode is ExecutionMode.DECA:
            from ..core.optimizer import DecaOptimizer
            self._optimizer = DecaOptimizer(self)

    # -- dataset creation ---------------------------------------------------------
    def parallelize(self, data: Iterable[Any], num_partitions: int,
                    name: str = "parallelize",
                    udt_info: UdtInfo | None = None) -> RDD:
        """Distribute a driver-side collection."""
        return ParallelCollectionRDD(self, list(data), num_partitions,
                                     name=name, udt_info=udt_info)

    def text_file(self, lines: Iterable[str], num_partitions: int,
                  name: str = "textFile") -> RDD:
        """A text dataset, charged like reading one HDFS split per task."""
        data = list(lines)
        avg_bytes = (sum(len(line) for line in data) / len(data)
                     if data else 0.0)
        read_ms = self.config.io.disk_read_per_byte_ms * avg_bytes
        return ParallelCollectionRDD(self, data, num_partitions, name=name,
                                     read_cost_per_record_ms=read_ms)

    # -- job execution ----------------------------------------------------------------
    def run_job(self, rdd: RDD, func: Callable[[Iterator[Any]], Any],
                name: str) -> list[Any]:
        return self.scheduler.run_job(rdd, func, name)

    def executor_for(self, split: int, attempt: int = 0) -> Executor:
        """The executor hosting *split*'s next attempt.

        Retries rotate to the next executor so a task does not land on
        the same (possibly just-crashed) process it died on.
        """
        return self.executors[(split + attempt) % len(self.executors)]

    # -- planning hooks (mode dispatch) ------------------------------------------------
    def plan_cache(self, rdd: RDD) -> CachePlan:
        """Decide how *rdd*'s blocks are stored."""
        if self.mode is ExecutionMode.SPARK:
            return CachePlan(StorageStrategy.OBJECTS)
        if self.mode is ExecutionMode.SPARK_SER:
            info = rdd.udt_info
            if info is not None:
                try:
                    schema = self._serialization_schema(info)
                except Exception:
                    schema = None
            else:
                schema = None
            return CachePlan(StorageStrategy.SERIALIZED, schema=schema,
                             encode=info.to_schema_value if info else None,
                             decode=info.from_schema_value if info else None)
        assert self._optimizer is not None
        return self._optimizer.plan_cache(rdd)

    def plan_shuffle(self, dep: ShuffleDependency) -> ShufflePlan:
        """Decide how *dep*'s buffers are stored."""
        measure = dep.parent.measure_record
        if self.mode is not ExecutionMode.DECA:
            # Spark 1.6 has no in-memory serialized shuffle buffers; both
            # Spark and SparkSer shuffle object graphs (§6.5).
            return ShufflePlan(measure=measure)
        assert self._optimizer is not None
        return self._optimizer.plan_shuffle(dep)

    def _serialization_schema(self, info: UdtInfo):
        """A Kryo-equivalent layout for SparkSer blocks (RFST shape)."""
        from ..memory.layout import build_schema
        from ..analysis.size_type import SizeType
        return build_schema(info.udt, SizeType.RUNTIME_FIXED)

    # -- cache materialization ------------------------------------------------------------
    def _cached_iterator(self, rdd: RDD, split: int,
                         task: TaskContext) -> Iterator[Any]:
        executor = task.executor
        key = (rdd.rdd_id, split)
        if executor.cache.contains(key):
            yield from executor.cache.read_records(key)
            return
        records = list(rdd.compute(split, task))
        block = self._build_block(rdd, key, records, task)
        executor.cache.put(block)
        yield from records

    def _build_block(self, rdd: RDD, key: tuple[int, int], records: list,
                     task: TaskContext) -> CachedBlock:
        executor = task.executor
        plan = self.plan_cache(rdd)
        footprint = ZERO_FOOTPRINT
        for record in records:
            footprint = footprint + rdd.measure_record(record)
        if plan.strategy is StorageStrategy.OBJECTS:
            group = executor.heap.new_group(f"cache:{key}", Lifetime.PINNED)
            # Records were allocated one by one while the UDF produced
            # them; charge the block's graph as young allocations that a
            # scavenge will promote (the long-living cohort of §2.2).
            per_record = max(1, footprint.objects // max(1, len(records)))
            per_bytes = footprint.object_bytes // max(1, len(records))
            for _ in range(len(records)):
                executor.heap.allocate(group, per_record, per_bytes)
            return CachedBlock(
                key=key, strategy=plan.strategy, records=records,
                blob=None, page_group=None, schema=None, decode=None,
                record_count=len(records),
                memory_bytes=footprint.object_bytes,
                disk_bytes=footprint.serialized_bytes,
                footprint=footprint, alloc_group=group)
        if plan.strategy is StorageStrategy.SERIALIZED:
            executor.serializer.kryo_serialize(
                footprint.objects, footprint.serialized_bytes)
            blob = None
            if plan.schema is not None:
                encode = plan.encode or (lambda v: v)
                chunks = bytearray()
                for record in records:
                    chunks.extend(plan.schema.pack(encode(record)))
                blob = bytes(chunks)
                memory_bytes = len(blob)
            else:
                memory_bytes = footprint.serialized_bytes
            group = executor.heap.new_group(f"cache:{key}", Lifetime.PINNED)
            executor.heap.allocate(group, 2, memory_bytes)
            return CachedBlock(
                key=key, strategy=plan.strategy,
                records=records if blob is None else None,
                blob=blob, page_group=None, schema=plan.schema,
                decode=plan.decode, record_count=len(records),
                memory_bytes=memory_bytes,
                disk_bytes=footprint.serialized_bytes,
                footprint=footprint, alloc_group=group)
        # DECA_PAGES
        if plan.schema is None:
            raise ExecutionError(
                f"Deca page plan for {rdd.name!r} lacks a schema")
        group = executor.memory_manager.new_page_group(
            f"cache:{key}", evictable=True)
        encode = plan.encode or (lambda v: v)
        for record in records:
            group.append_record(plan.schema, encode(record))
        group.trim()  # sealed block: give the last page's tail back
        executor.serializer.deca_write(len(records), group.used_bytes)
        return CachedBlock(
            key=key, strategy=plan.strategy, records=None, blob=None,
            page_group=group, schema=plan.schema, decode=plan.decode,
            record_count=len(records),
            memory_bytes=group.allocated_bytes,
            disk_bytes=group.used_bytes,
            footprint=footprint, alloc_group=None)

    def _is_deca_transformed(self, rdd: RDD) -> bool:
        """Did the optimizer rewrite this RDD's input access (Fig. 12)?

        True when the nearest cached ancestor (through narrow
        dependencies) is stored as decomposed pages in DECA mode.
        """
        if self.mode is not ExecutionMode.DECA:
            return False
        from .rdd import NarrowDependency, ShuffleDependency
        node: RDD | None = rdd
        while node is not None:
            if node.is_cached:
                plan = self.plan_cache(node)
                return plan.strategy is StorageStrategy.DECA_PAGES
            shuffles = [d for d in node.deps
                        if isinstance(d, ShuffleDependency)]
            if shuffles:
                # A stage whose input shuffle is decomposed is rewritten
                # to read the buffer bytes directly.
                return any(self.plan_shuffle(d).decomposed
                           for d in shuffles)
            narrow = [d for d in node.deps
                      if isinstance(d, NarrowDependency)]
            node = narrow[0].parent if len(narrow) == 1 else None
        return False

    # -- lifecycle bookkeeping ----------------------------------------------------------
    def _register_rdd(self, rdd: RDD) -> None:
        self._rdds[rdd.rdd_id] = rdd

    def _note_cached(self, rdd: RDD) -> None:
        pass  # reserved for plan invalidation

    def _unpersist(self, rdd: RDD) -> None:
        for executor in self.executors:
            executor.cache.remove_rdd(rdd.rdd_id)
        self.backend.unpersist_rdd(rdd.rdd_id)

    def _note_spill(self, nbytes: int) -> None:
        self._spilled_shuffle_bytes += nbytes

    def _record_job(self, metrics: JobMetrics) -> None:
        self._jobs.append(metrics)

    # -- profiling ----------------------------------------------------------------------
    def enable_profiling(self, tracked_prefix: str | None = None
                         ) -> list[HeapProfiler]:
        """Attach samplers to every executor (Figs. 8a/9a)."""
        return [executor.enable_profiler(self.config.profiler_period_ms,
                                         tracked_prefix)
                for executor in self.executors]

    # -- results ---------------------------------------------------------------------------
    @property
    def wall_ms(self) -> float:
        return max(e.clock.now_ms for e in self.executors)

    def cached_bytes_of(self, rdd: RDD) -> int:
        """In-memory footprint of *rdd*'s cached blocks (cache-size bars)."""
        total = 0
        for executor in self.executors:
            for key, block in executor.cache.blocks.items():
                if key[0] == rdd.rdd_id and not block.on_disk:
                    total += block.memory_bytes
        return total

    def swapped_bytes_of(self, rdd: RDD) -> int:
        total = 0
        for executor in self.executors:
            for key, block in executor.cache.blocks.items():
                if key[0] == rdd.rdd_id and block.on_disk:
                    total += block.disk_bytes
        return total

    def finish(self) -> RunMetrics:
        """Collect the run's metrics (the numbers the figures report)."""
        for executor in self.executors:
            if executor.profiler is not None:
                executor.profiler.force_sample()
        run = RunMetrics(jobs=list(self._jobs), wall_ms=self.wall_ms)
        for executor in self.executors:
            stats = executor.heap.stats
            run.executor_gc_ms[executor.executor_id] = stats.pause_ms
            run.executor_concurrent_gc_ms[executor.executor_id] = \
                stats.concurrent_ms
            run.minor_gc_count += stats.minor_count
            run.full_gc_count += stats.full_count
            run.swapped_cache_bytes += executor.cache.swapped_bytes_total
        run.spilled_shuffle_bytes = self._spilled_shuffle_bytes
        # Teardown: the mp backend unlinks every shared segment it still
        # owns (the CI leak guard checks /dev/shm is clean afterwards).
        # The stats snapshot is taken after teardown so ``segments_live``
        # reports what the run actually leaked — zero, or a bug.
        self.backend.shutdown()
        run.backend = dict(self.backend.stats.to_dict())
        # Cold-tier teardown: sum each executor's tier stats, then close
        # (fd + unlink) — iterate the private slot so executors that
        # never swapped don't get a tier created as a side effect.
        for executor in self.executors:
            tier = executor._cold_tier
            if tier is None:
                continue
            for field_name, value in tier.stats.to_dict().items():
                run.tier[field_name] = run.tier.get(field_name, 0) + value
            run.tier["tier_ms"] = (run.tier.get("tier_ms", 0)
                                   + round(executor.tier_ms_total, 3))
            tier.close()
        for rdd in self._rdds.values():
            if rdd.is_cached:
                nbytes = self.cached_bytes_of(rdd)
                if nbytes:
                    run.cached_bytes[rdd.name] = \
                        run.cached_bytes.get(rdd.name, 0) + nbytes
        if self.config.sanitize:
            # Fold every ledger's end-of-run audit into one summary; any
            # violation anywhere fails the run loudly — a silently wrong
            # result is the failure mode the sanitizer exists to prevent.
            ledgers = [e.ledger for e in self.executors
                       if e.ledger is not None]
            if self.ledger is not None:
                ledgers.append(self.ledger)
            for ledger in ledgers:
                for name, count in ledger.check_finish().items():
                    run.sanitize[name] = run.sanitize.get(name, 0) + count
            if self.vclock is not None:
                # The vclock audit runs after backend/tier teardown so
                # shutdown-path races (orphan sweeps, late unlinks) are
                # checked too.
                for name, count in self.vclock.check_finish().items():
                    run.race[name] = run.race.get(name, 0) + count
            if run.sanitize.get("violations", 0):
                raise SanitizerError({
                    slug: run.sanitize.get(slug, 0)
                    for slug in VIOLATION_SLUGS})
            if run.race.get("violations", 0):
                raise SanitizerError({
                    slug: run.race.get(slug, 0)
                    for slug in RACE_SLUGS})
        return run
