"""ClosureGuard — the scheduler-side consumer of the closure analyzer.

Speculation and lineage re-execution both rest on an assumption the
engine never checks: that re-running a task reproduces the original
attempt's output.  A UDF that calls ``random``, reads ``os.environ`` or
mutates captured state breaks that assumption — a speculative duplicate
or a recomputed map output can silently commit *different* records than
the attempt it replaces.

This module walks the UDF sites of an RDD lineage (record functions,
shuffle ``merge_value`` combiners, custom partitioners), runs
:func:`repro.analysis.closures.analyze_closure` on each, and lets the
scheduler ask two questions before a retry-like action:

* :meth:`ClosureGuard.allow_speculation` — may this stage's tasks be
  duplicated?
* :meth:`ClosureGuard.check_reexecution` — may this stage's lineage be
  re-run to regenerate a lost map output?

Three modes (``config.closure_guard``):

* ``"off"``   — no analysis, no events; everything is allowed.
* ``"warn"``  — nondeterministic UDFs refuse speculation and emit a
  ``closure:unsafe_retry`` trace event on re-execution, but recovery
  proceeds (data loss beats an unrecoverable job).
* ``"strict"`` — both actions raise
  :class:`repro.errors.NondeterministicUdfError`.

Verdicts are cached per RDD id; the first analysis of each site emits a
``closure:verdict`` instant into the tracer so runs are auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..analysis.closures import ClosureReport, analyze_value
from ..errors import NondeterministicUdfError

if TYPE_CHECKING:  # pragma: no cover - import cycle (context -> guard)
    from .context import DecaContext
    from .rdd import RDD, ShuffleDependency

#: Trace category for every guard event.
TRACE_CATEGORY = "closure"

#: Rule whose presence makes a UDF unsafe to re-run (DECA202).
_NONDET_RULE = "DECA202"


@dataclass(frozen=True)
class UdfSite:
    """One user function attached to the lineage graph."""

    rdd_id: int
    rdd_name: str
    kind: str               # "map" | "filter" | ... | "merge" | "partitioner"
    fn: Callable[..., Any]

    @property
    def label(self) -> str:
        return f"{self.rdd_name}#{self.kind}"


def sites_of(rdd: "RDD",
             shuffle_dep: "ShuffleDependency | None" = None
             ) -> Iterator[UdfSite]:
    """Yield the UDF sites of *rdd*'s stage (narrow lineage only).

    The walk stops at shuffle boundaries: upstream stages' outputs are
    materialized in the shuffle store, so re-running *this* stage never
    re-invokes their UDFs.  A shuffle-map stage's own ``merge_value`` /
    ``partitioner`` live on the *dependency* (owned by the downstream
    ShuffledRDD), so callers pass it explicitly via *shuffle_dep*.
    """
    from .rdd import ShuffleDependency as _ShuffleDep

    if shuffle_dep is not None:
        if shuffle_dep.merge_value is not None:
            yield UdfSite(rdd.rdd_id, rdd.name, "merge",
                          shuffle_dep.merge_value)
        if shuffle_dep.partitioner is not None:
            yield UdfSite(rdd.rdd_id, rdd.name, "partitioner",
                          shuffle_dep.partitioner)
    seen: set[int] = set()
    stack: list[RDD] = [rdd]
    while stack:
        node = stack.pop()
        if node.rdd_id in seen:
            continue
        seen.add(node.rdd_id)
        fn = getattr(node, "_record_fn", None)
        if fn is not None:
            kind = getattr(node, "_record_kind", None) or "udf"
            yield UdfSite(node.rdd_id, node.name, kind, fn)
        dep_obj = getattr(node, "shuffle_dep", None)
        if dep_obj is not None:
            # The reduce side of a shuffle re-applies the combiner when
            # merging fetched blocks; it belongs to this stage.
            if dep_obj.merge_value is not None:
                yield UdfSite(node.rdd_id, node.name, "merge",
                              dep_obj.merge_value)
        for dep in node.deps:
            if isinstance(dep, _ShuffleDep):
                continue    # stage boundary: parent output is materialized
            stack.append(dep.parent)


class ClosureGuard:
    """Per-context cache of closure verdicts plus the retry policy."""

    def __init__(self, ctx: "DecaContext") -> None:
        self.ctx = ctx
        self.mode = ctx.config.closure_guard
        self._reports: dict[tuple[int, str], ClosureReport | None] = {}

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    # -- analysis ------------------------------------------------------------
    def report_for(self, site: UdfSite) -> ClosureReport | None:
        """Analyze (once) and return the report for one UDF site."""
        key = (site.rdd_id, site.kind)
        if key in self._reports:
            return self._reports[key]
        try:
            report = analyze_value(site.fn)
        except TypeError:
            report = None
        self._reports[key] = report
        if report is not None:
            self._emit_verdict(site, report)
        return report

    def unsafe_sites(self, rdd: "RDD",
                     shuffle_dep: "ShuffleDependency | None" = None
                     ) -> list[tuple[UdfSite, ClosureReport]]:
        """The stage's sites whose verdict is ``nondeterministic``."""
        unsafe: list[tuple[UdfSite, ClosureReport]] = []
        for site in sites_of(rdd, shuffle_dep):
            report = self.report_for(site)
            if report is None:
                continue
            if report.determinism == "nondeterministic":
                unsafe.append((site, report))
        return unsafe

    # -- policy --------------------------------------------------------------
    def allow_speculation(self, rdd: "RDD", stage_id: int,
                          shuffle_dep: "ShuffleDependency | None" = None
                          ) -> bool:
        """May the scheduler launch duplicate attempts for this stage?

        ``warn`` refuses (returns False, emits ``closure:unsafe_retry``);
        ``strict`` raises.  Speculation is an optimisation, so refusing
        it is always safe.
        """
        if not self.enabled:
            return True
        unsafe = self.unsafe_sites(rdd, shuffle_dep)
        if not unsafe:
            return True
        site, report = unsafe[0]
        if self.mode == "strict":
            raise NondeterministicUdfError(site.rdd_name, site.label,
                                           "speculation")
        self._emit_unsafe(site, report, "speculation", stage_id)
        return False

    def check_reexecution(self, rdd: "RDD", stage_id: int,
                          shuffle_dep: "ShuffleDependency | None" = None
                          ) -> None:
        """Gate a lineage re-execution (lost/corrupt map output).

        ``warn`` emits ``closure:unsafe_retry`` and lets recovery proceed
        — the alternative is an unrecoverable job.  ``strict`` raises:
        the user asked for divergent recomputation to be an error.
        """
        if not self.enabled:
            return
        for site, report in self.unsafe_sites(rdd, shuffle_dep):
            if self.mode == "strict":
                raise NondeterministicUdfError(site.rdd_name, site.label,
                                               "lineage re-execution")
            self._emit_unsafe(site, report, "lineage-reexecution", stage_id)

    # -- trace events --------------------------------------------------------
    def _now_ms(self) -> float:
        return max(e.clock.now_ms for e in self.ctx.executors)

    def _emit_verdict(self, site: UdfSite, report: ClosureReport) -> None:
        self.ctx.tracer.instant(
            "closure:verdict", TRACE_CATEGORY, self._now_ms(),
            udf=site.label, rdd_id=site.rdd_id,
            determinism=report.determinism, purity=report.purity,
            escape=report.escape,
            rules=sorted({h.rule_id for h in report.active_hazards}))

    def _emit_unsafe(self, site: UdfSite, report: ClosureReport,
                     action: str, stage_id: int) -> None:
        hazards = [h for h in report.active_hazards
                   if h.rule_id == _NONDET_RULE]
        reason = hazards[0].reason if hazards else "nondeterministic"
        self.ctx.tracer.instant(
            "closure:unsafe_retry", TRACE_CATEGORY, self._now_ms(),
            udf=site.label, rdd_id=site.rdd_id, stage_id=stage_id,
            action=action, mode=self.mode, reason=reason)
