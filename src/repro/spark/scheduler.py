"""The DAG scheduler: jobs → stages → tasks — with fault recovery.

Walking a job's lineage graph backwards, every :class:`ShuffleDependency`
cuts a stage boundary, exactly as in Spark: parent *shuffle-map stages*
write partitioned map outputs, the final *result stage* runs the action.
Stages execute in topological order; each stage's partitions become tasks
assigned round-robin to the executors, and the stage ends when its slowest
executor finishes (a barrier that synchronizes the simulated clocks).

Tasks may fail (see :mod:`repro.spark.faults`); the scheduler recovers:

* a **killed task attempt** is retried on the next executor after a capped
  exponential backoff on the simulated clock, up to
  ``faults.max_task_failures`` attempts — then the stage aborts with a
  clean :class:`~repro.errors.StageAbortError`;
* a **lost executor** has its cache blocks and shuffle map outputs
  invalidated; the lineage that produced those outputs is re-executed on
  the surviving topology before the failed task retries;
* a **failed shuffle fetch** (missing or corrupt block) regenerates just
  the map output it names, then retries the reduce task;
* **straggler tasks** may be speculatively re-launched on the least-loaded
  executor; the first (original) result wins, the duplicate's work is
  counted in the metrics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from ..errors import (
    ExecutorLostError,
    FetchFailedError,
    StageAbortError,
    TaskKilledError,
)
from .metrics import JobMetrics, StageMetrics, TaskMetrics
from .rdd import RDD, ShuffleDependency
from .shuffle import MapSideWriter, ShuffleBlockStore

if TYPE_CHECKING:
    from .context import DecaContext
    from .executor import Executor

# A task body: runs the attempt on *task* for partition *split* and
# returns the attempt's result (None for shuffle-map tasks).
TaskBody = Callable[["TaskContext", int], Any]


@dataclass
class TaskContext:
    """Per-task state handed through the compute pipeline."""

    executor: "Executor"
    metrics: TaskMetrics
    _start_ms: float = 0.0
    _gc_start_ms: float = 0.0
    # Unified-mode arena task slot (fair-share accounting key).
    _arena_key: int | None = None


@dataclass
class Stage:
    """A pipelined set of tasks ending at a shuffle or the action."""

    stage_id: int
    rdd: RDD
    shuffle_dep: ShuffleDependency | None  # None for the result stage
    parents: list["Stage"] = field(default_factory=list)

    @property
    def is_result_stage(self) -> bool:
        return self.shuffle_dep is None

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions


class DAGScheduler:
    """Builds and runs the stage graph of each job."""

    def __init__(self, ctx: "DecaContext") -> None:
        self.ctx = ctx
        self._stage_ids = itertools.count()
        self._job_ids = itertools.count()
        # Shuffles whose map outputs were already produced by an earlier
        # job (Spark reuses shuffle files across jobs of one application).
        self._shuffles_done: set[int] = set()
        # shuffle_id -> the map stage that produces it, kept across jobs
        # so lost outputs can be regenerated from lineage at any time.
        self._shuffle_stages: dict[int, Stage] = {}

    # -- stage graph construction -----------------------------------------------
    def _build_stages(self, rdd: RDD) -> Stage:
        """Return the result stage for *rdd*, with parents linked."""
        shuffle_to_stage: dict[int, Stage] = {}

        def stage_for_shuffle(dep: ShuffleDependency) -> Stage:
            existing = shuffle_to_stage.get(dep.shuffle_id)
            if existing is not None:
                return existing
            # Number parents before children (ids assigned after the
            # recursive walk), matching Spark's stage numbering.
            parents = parent_stages(dep.parent)
            stage = Stage(next(self._stage_ids), dep.parent, dep,
                          parents=parents)
            shuffle_to_stage[dep.shuffle_id] = stage
            return stage

        def parent_stages(r: RDD) -> list[Stage]:
            parents: list[Stage] = []
            visited: set[int] = set()
            pending = [r]
            while pending:
                node = pending.pop()
                if node.rdd_id in visited:
                    continue
                visited.add(node.rdd_id)
                for dep in node.deps:
                    if isinstance(dep, ShuffleDependency):
                        parents.append(stage_for_shuffle(dep))
                    else:
                        pending.append(dep.parent)
            return parents

        parents = parent_stages(rdd)
        return Stage(next(self._stage_ids), rdd, None, parents=parents)

    # -- execution ----------------------------------------------------------------
    def run_job(self, rdd: RDD, func: Callable[[Any], Any],
                name: str) -> list[Any]:
        """Execute the action *func* over every partition of *rdd*."""
        job_id = next(self._job_ids)
        metrics = JobMetrics(job_id=job_id, name=name)
        start_ms = self._sync_clocks()

        result_stage = self._build_stages(rdd)
        for stage in self._topological(result_stage):
            if stage.is_result_stage:
                continue
            assert stage.shuffle_dep is not None
            self._shuffle_stages[stage.shuffle_dep.shuffle_id] = stage
            if stage.shuffle_dep.shuffle_id in self._shuffles_done:
                continue
            self._run_shuffle_map_stage(stage, metrics)
            self._shuffles_done.add(stage.shuffle_dep.shuffle_id)

        results = self._run_result_stage(result_stage, func, metrics)
        metrics.wall_ms = self._sync_clocks() - start_ms
        self.ctx.tracer.complete(
            f"job:{name}", "job", ts_ms=start_ms,
            dur_ms=metrics.wall_ms, job_id=job_id)
        self.ctx._record_job(metrics)
        return results

    def _topological(self, result_stage: Stage) -> list[Stage]:
        order: list[Stage] = []
        seen: set[int] = set()

        def visit(stage: Stage) -> None:
            if stage.stage_id in seen:
                return
            seen.add(stage.stage_id)
            for parent in stage.parents:
                visit(parent)
            order.append(stage)

        visit(result_stage)
        return order

    # -- task bodies ---------------------------------------------------------------
    def _map_task_body(self, stage: Stage,
                       store: ShuffleBlockStore) -> TaskBody:
        """The work of one shuffle-map task: write partitioned outputs."""
        dep = stage.shuffle_dep
        assert dep is not None
        ctx = self.ctx
        plan = ctx.plan_shuffle(dep)

        def body(task: TaskContext, split: int) -> None:
            writer = MapSideWriter(
                task.executor, dep.shuffle_id, split, dep.num_reduce,
                partitioner=dep.partitioner or ctx.partitioner,
                kind=dep.kind,
                merge_value=dep.merge_value, plan=plan)
            try:
                records = stage.rdd.iterator(split, task)
                writer.write_all(self._tagged(records, dep))
                writer.flush(store)
            except Exception:
                # The attempt dies: its buffer becomes garbage, nothing
                # (more) is registered; the retry starts from scratch.
                writer.abort()
                raise
            ctx._note_spill(writer.spilled_bytes)

        return body

    @staticmethod
    def _tagged(records, dep: ShuffleDependency):
        """Cogroup sides tag their values so the reader can split them."""
        if dep.tag is None:
            return records
        return ((key, (dep.tag, value)) for key, value in records)

    # -- stage runners ---------------------------------------------------------------
    def _run_shuffle_map_stage(self, stage: Stage,
                               job_metrics: JobMetrics) -> None:
        dep = stage.shuffle_dep
        assert dep is not None
        ctx = self.ctx
        stage_metrics = StageMetrics(stage.stage_id,
                                     f"shuffle-map:{stage.rdd.name}")
        stage_start = self._sync_clocks()
        ctx.shuffle_store.set_map_parts(dep.shuffle_id, stage.num_tasks)
        if not ctx.backend.run_map_stage(self, stage, stage_metrics,
                                         job_metrics, stage_start):
            # The sim path: the sequential simulated attempt loop
            # (speculation included) runs exactly as it always has.
            body = self._map_task_body(stage, ctx.shuffle_store)
            for split in range(stage.num_tasks):
                self._run_task_attempts(stage, split, body, stage_metrics,
                                        job_metrics)
            self._maybe_speculate(stage, stage_metrics, job_metrics)
        stage_metrics.wall_ms = self._sync_clocks() - stage_start
        self._emit_stage_span(stage_metrics, stage_start)
        job_metrics.stages.append(stage_metrics)

    def _run_result_stage(self, stage: Stage,
                          func: Callable[[Any], Any],
                          job_metrics: JobMetrics) -> list[Any]:
        stage_metrics = StageMetrics(stage.stage_id,
                                     f"result:{stage.rdd.name}")
        stage_start = self._sync_clocks()

        backend_results = self.ctx.backend.run_result_stage(
            self, stage, func, stage_metrics, job_metrics, stage_start)
        if backend_results is not None:
            results = backend_results
        else:
            def body(task: TaskContext, split: int) -> Any:
                return func(stage.rdd.iterator(split, task))

            results = []
            for split in range(stage.num_tasks):
                results.append(self._run_task_attempts(
                    stage, split, body, stage_metrics, job_metrics))
            self._maybe_speculate(stage, stage_metrics, job_metrics,
                                  body=body)
        stage_metrics.wall_ms = self._sync_clocks() - stage_start
        self._emit_stage_span(stage_metrics, stage_start)
        job_metrics.stages.append(stage_metrics)
        return results

    def _emit_stage_span(self, stage_metrics: StageMetrics,
                         start_ms: float) -> None:
        self.ctx.tracer.complete(
            f"stage:{stage_metrics.name}", "stage", ts_ms=start_ms,
            dur_ms=stage_metrics.wall_ms,
            stage_id=stage_metrics.stage_id,
            attempts=stage_metrics.attempts,
            failed_attempts=stage_metrics.failed_attempts)

    # -- the retry loop ----------------------------------------------------------------
    def _run_task_attempts(self, stage: Stage, split: int, body: TaskBody,
                           stage_metrics: StageMetrics,
                           job_metrics: JobMetrics) -> Any:
        """Run one task to success, retrying failed attempts.

        Every attempt — failed or successful — lands in *stage_metrics*;
        recovery actions (backoff, executor restart, lineage re-execution)
        are charged to the simulated clocks and counted in the job's
        :class:`~repro.spark.metrics.RecoveryMetrics`.
        """
        ctx = self.ctx
        injector = ctx.fault_injector
        recovery = job_metrics.recovery
        failures = 0
        attempt = 0
        not_before_ms = 0.0
        while True:
            executor = ctx.executor_for(split, attempt)
            if not_before_ms > 0.0:
                # The retry cannot start before the backoff wait ends.
                executor.clock.advance_to(not_before_ms)
            task = TaskContext(
                executor=executor,
                metrics=TaskMetrics(task_id=split,
                                    stage_id=stage.stage_id,
                                    attempt=attempt))
            plan = (injector.plan_task(stage.stage_id, split, attempt)
                    if injector.enabled else None)
            executor.begin_task(task)
            if plan is not None:
                executor.arm_fault(plan)
            try:
                result = body(task, split)
            except TaskKilledError as exc:
                executor.abort_task(task, "killed")
                stage_metrics.tasks.append(task.metrics)
                recovery.task_failures += 1
                failures += 1
                self._check_abort(stage, split, failures, exc)
                not_before_ms = self._backoff_deadline(
                    executor, failures, recovery)
            except FetchFailedError as exc:
                executor.abort_task(task, "fetch-failed")
                stage_metrics.tasks.append(task.metrics)
                recovery.fetch_failures += 1
                failures += 1
                self._check_abort(stage, split, failures, exc)
                self._recover_map_output(exc.shuffle_id, exc.map_part,
                                         job_metrics)
                not_before_ms = 0.0
            except ExecutorLostError as exc:
                executor.abort_task(task, "executor-lost")
                stage_metrics.tasks.append(task.metrics)
                recovery.task_failures += 1
                failures += 1
                self._check_abort(stage, split, failures, exc)
                exclude = (None if stage.shuffle_dep is None
                           else (stage.shuffle_dep.shuffle_id, split))
                self._handle_executor_loss(executor, job_metrics,
                                           exclude=exclude)
                not_before_ms = 0.0
            else:
                executor.end_task(task)
                stage_metrics.tasks.append(task.metrics)
                if attempt > 0:
                    recovery.task_retries += attempt
                return result
            attempt += 1

    def _check_abort(self, stage: Stage, split: int, failures: int,
                     exc: Exception) -> None:
        max_failures = self.ctx.config.faults.max_task_failures
        if failures >= max_failures:
            raise StageAbortError(stage.stage_id, split, failures,
                                  exc) from exc

    def _backoff_deadline(self, executor: "Executor", failures: int,
                          recovery) -> float:
        """Capped exponential backoff, paid on the simulated clock."""
        cfg = self.ctx.config.faults
        wait = min(
            cfg.retry_backoff_ms * cfg.retry_backoff_factor
            ** (failures - 1),
            cfg.retry_backoff_max_ms)
        recovery.recovery_ms += wait
        return executor.clock.now_ms + wait

    # -- recovery actions --------------------------------------------------------------
    def _handle_executor_loss(self, executor: "Executor",
                              job_metrics: JobMetrics,
                              exclude: tuple[int, int] | None = None
                              ) -> None:
        """Invalidate a lost executor's state and re-run lineage.

        The executor's cache blocks and shuffle outputs are gone; a fresh
        process replaces it after ``executor_restart_ms``.  Every map
        output it held is regenerated from lineage right away (parents
        first — the lost pairs are sorted by shuffle id, and parent
        shuffles have lower ids than the children that read them).
        *exclude* names the (shuffle, partition) of the task whose crash
        we are handling: its retry loop will regenerate that one itself.
        """
        ctx = self.ctx
        recovery = job_metrics.recovery
        recovery.executors_lost += 1
        lost = ctx.shuffle_store.remove_executor_outputs(
            executor.executor_id)
        executor.restart(ctx.config.faults.executor_restart_ms)
        recovery.recovery_ms += ctx.config.faults.executor_restart_ms
        for shuffle_id, map_part in lost:
            if (shuffle_id, map_part) == exclude:
                continue
            self._recover_map_output(shuffle_id, map_part, job_metrics)

    def _recover_map_output(self, shuffle_id: int, map_part: int,
                            job_metrics: JobMetrics) -> None:
        """Re-execute the lineage producing one lost/corrupt map output."""
        stage = self._shuffle_stages.get(shuffle_id)
        if stage is None:
            # The shuffle never ran (output lost before production) —
            # nothing to regenerate; the stage loop will produce it.
            return
        # Re-running the lineage of a nondeterministic UDF can regenerate
        # *different* records than the lost output; warn mode logs it
        # (recovery still beats an unrecoverable job), strict raises.
        self.ctx.closure_guard.check_reexecution(
            stage.rdd, stage.stage_id, stage.shuffle_dep)
        recovery = job_metrics.recovery
        recovery.recomputed_partitions += 1
        stage_metrics = StageMetrics(
            stage.stage_id, f"recompute:shuffle-map:{stage.rdd.name}")
        body = self._map_task_body(stage, self.ctx.shuffle_store)
        start_ms = max(e.clock.now_ms for e in self.ctx.executors)
        self._run_task_attempts(stage, map_part, body, stage_metrics,
                                job_metrics)
        stage_metrics.wall_ms = (
            max(e.clock.now_ms for e in self.ctx.executors) - start_ms)
        recovery.recovery_ms += stage_metrics.wall_ms
        self._emit_stage_span(stage_metrics, start_ms)
        job_metrics.stages.append(stage_metrics)

    # -- speculation -------------------------------------------------------------------
    def _maybe_speculate(self, stage: Stage, stage_metrics: StageMetrics,
                         job_metrics: JobMetrics,
                         body: TaskBody | None = None) -> None:
        """Re-launch straggler tasks on the least-loaded executor.

        The original result always wins (it finished first — this is the
        dedup rule); the duplicate's attempt is recorded in the metrics,
        and a *win* is counted when the copy beat the original's duration.
        Shuffle-map duplicates write into a throwaway block store so the
        committed map outputs stay those of the winning attempt.
        """
        cfg = self.ctx.config.faults
        if not cfg.speculation:
            return
        # Speculation is only an optimisation: a stage whose UDFs are
        # nondeterministic simply is not duplicated (strict mode raises).
        if not self.ctx.closure_guard.allow_speculation(
                stage.rdd, stage.stage_id, stage.shuffle_dep):
            return
        winners: dict[int, TaskMetrics] = {}
        for metrics in stage_metrics.tasks:
            if metrics.status == "success" and not metrics.speculative:
                winners[metrics.task_id] = metrics
        if len(winners) < 2:
            return
        durations = sorted(m.duration_ms for m in winners.values())
        median = durations[len(durations) // 2]
        threshold = median * cfg.speculation_multiplier
        if threshold <= 0.0:
            return
        if body is None:
            body = self._map_task_body(stage, ShuffleBlockStore())
        recovery = job_metrics.recovery
        for split in sorted(winners):
            original = winners[split]
            if original.duration_ms <= threshold:
                continue
            executor = min(
                self.ctx.executors,
                key=lambda e: (e.clock.now_ms, e.executor_id))
            attempt = sum(1 for m in stage_metrics.tasks
                          if m.task_id == split)
            task = TaskContext(
                executor=executor,
                metrics=TaskMetrics(task_id=split,
                                    stage_id=stage.stage_id,
                                    attempt=attempt, speculative=True))
            executor.begin_task(task)
            try:
                body(task, split)
            except ExecutorLostError:
                # The duplicate is dropped, but the crash is real: the
                # executor's state must still be invalidated and rebuilt.
                executor.abort_task(task, "executor-lost")
                self._handle_executor_loss(executor, job_metrics)
            except (TaskKilledError, FetchFailedError):
                # A failed duplicate is simply dropped — the original
                # result already won.
                executor.abort_task(task, "killed")
            else:
                executor.end_task(task)
                if task.metrics.duration_ms < original.duration_ms:
                    recovery.speculative_wins += 1
            recovery.speculative_tasks += 1
            stage_metrics.tasks.append(task.metrics)

    def _sync_clocks(self) -> float:
        """Barrier: advance every executor to the slowest one's time."""
        executors = self.ctx.executors
        latest = max(e.clock.now_ms for e in executors)
        for executor in executors:
            executor.clock.advance_to(latest)
        return latest
