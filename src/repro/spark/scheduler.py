"""The DAG scheduler: jobs → stages → tasks.

Walking a job's lineage graph backwards, every :class:`ShuffleDependency`
cuts a stage boundary, exactly as in Spark: parent *shuffle-map stages*
write partitioned map outputs, the final *result stage* runs the action.
Stages execute in topological order; each stage's partitions become tasks
assigned round-robin to the executors, and the stage ends when its slowest
executor finishes (a barrier that synchronizes the simulated clocks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from .metrics import JobMetrics, StageMetrics, TaskMetrics
from .rdd import RDD, ShuffleDependency
from .shuffle import MapSideWriter

if TYPE_CHECKING:
    from .context import DecaContext
    from .executor import Executor


@dataclass
class TaskContext:
    """Per-task state handed through the compute pipeline."""

    executor: "Executor"
    metrics: TaskMetrics
    _start_ms: float = 0.0
    _gc_start_ms: float = 0.0


@dataclass
class Stage:
    """A pipelined set of tasks ending at a shuffle or the action."""

    stage_id: int
    rdd: RDD
    shuffle_dep: ShuffleDependency | None  # None for the result stage
    parents: list["Stage"] = field(default_factory=list)

    @property
    def is_result_stage(self) -> bool:
        return self.shuffle_dep is None

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions


class DAGScheduler:
    """Builds and runs the stage graph of each job."""

    def __init__(self, ctx: "DecaContext") -> None:
        self.ctx = ctx
        self._stage_ids = itertools.count()
        self._job_ids = itertools.count()
        # Shuffles whose map outputs were already produced by an earlier
        # job (Spark reuses shuffle files across jobs of one application).
        self._shuffles_done: set[int] = set()

    # -- stage graph construction -----------------------------------------------
    def _build_stages(self, rdd: RDD) -> Stage:
        """Return the result stage for *rdd*, with parents linked."""
        shuffle_to_stage: dict[int, Stage] = {}

        def stage_for_shuffle(dep: ShuffleDependency) -> Stage:
            existing = shuffle_to_stage.get(dep.shuffle_id)
            if existing is not None:
                return existing
            stage = Stage(next(self._stage_ids), dep.parent, dep,
                          parents=parent_stages(dep.parent))
            shuffle_to_stage[dep.shuffle_id] = stage
            return stage

        def parent_stages(r: RDD) -> list[Stage]:
            parents: list[Stage] = []
            visited: set[int] = set()
            pending = [r]
            while pending:
                node = pending.pop()
                if node.rdd_id in visited:
                    continue
                visited.add(node.rdd_id)
                for dep in node.deps:
                    if isinstance(dep, ShuffleDependency):
                        parents.append(stage_for_shuffle(dep))
                    else:
                        pending.append(dep.parent)
            return parents

        return Stage(next(self._stage_ids), rdd, None,
                     parents=parent_stages(rdd))

    # -- execution ----------------------------------------------------------------
    def run_job(self, rdd: RDD, func: Callable[[Any], Any],
                name: str) -> list[Any]:
        """Execute the action *func* over every partition of *rdd*."""
        job_id = next(self._job_ids)
        metrics = JobMetrics(job_id=job_id, name=name)
        start_ms = self._sync_clocks()

        result_stage = self._build_stages(rdd)
        for stage in self._topological(result_stage):
            if stage.is_result_stage:
                continue
            assert stage.shuffle_dep is not None
            if stage.shuffle_dep.shuffle_id in self._shuffles_done:
                continue
            self._run_shuffle_map_stage(stage, metrics)
            self._shuffles_done.add(stage.shuffle_dep.shuffle_id)

        results = self._run_result_stage(result_stage, func, metrics)
        metrics.wall_ms = self._sync_clocks() - start_ms
        self.ctx._record_job(metrics)
        return results

    def _topological(self, result_stage: Stage) -> list[Stage]:
        order: list[Stage] = []
        seen: set[int] = set()

        def visit(stage: Stage) -> None:
            if stage.stage_id in seen:
                return
            seen.add(stage.stage_id)
            for parent in stage.parents:
                visit(parent)
            order.append(stage)

        visit(result_stage)
        return order

    def _run_shuffle_map_stage(self, stage: Stage,
                               job_metrics: JobMetrics) -> None:
        dep = stage.shuffle_dep
        assert dep is not None
        ctx = self.ctx
        stage_metrics = StageMetrics(stage.stage_id,
                                     f"shuffle-map:{stage.rdd.name}")
        stage_start = self._sync_clocks()
        ctx.shuffle_store.set_map_parts(dep.shuffle_id, stage.num_tasks)
        plan = ctx.plan_shuffle(dep)
        for split in range(stage.num_tasks):
            executor = ctx.executor_for(split)
            task = TaskContext(
                executor=executor,
                metrics=TaskMetrics(task_id=split,
                                    stage_id=stage.stage_id))
            executor.begin_task(task)
            try:
                writer = MapSideWriter(
                    executor, dep.shuffle_id, split, dep.num_reduce,
                    partitioner=dep.partitioner or ctx.partitioner,
                    kind=dep.kind,
                    merge_value=dep.merge_value, plan=plan)
                records = stage.rdd.iterator(split, task)
                writer.write_all(self._tagged(records, dep))
                writer.flush(ctx.shuffle_store)
                ctx._note_spill(writer.spilled_bytes)
            finally:
                executor.end_task(task)
            stage_metrics.tasks.append(task.metrics)
        stage_metrics.wall_ms = self._sync_clocks() - stage_start
        job_metrics.stages.append(stage_metrics)

    @staticmethod
    def _tagged(records, dep: ShuffleDependency):
        """Cogroup sides tag their values so the reader can split them."""
        if dep.tag is None:
            return records
        return ((key, (dep.tag, value)) for key, value in records)

    def _run_result_stage(self, stage: Stage,
                          func: Callable[[Any], Any],
                          job_metrics: JobMetrics) -> list[Any]:
        ctx = self.ctx
        stage_metrics = StageMetrics(stage.stage_id,
                                     f"result:{stage.rdd.name}")
        stage_start = self._sync_clocks()
        results: list[Any] = []
        for split in range(stage.num_tasks):
            executor = ctx.executor_for(split)
            task = TaskContext(
                executor=executor,
                metrics=TaskMetrics(task_id=split,
                                    stage_id=stage.stage_id))
            executor.begin_task(task)
            try:
                results.append(func(stage.rdd.iterator(split, task)))
            finally:
                executor.end_task(task)
            stage_metrics.tasks.append(task.metrics)
        stage_metrics.wall_ms = self._sync_clocks() - stage_start
        job_metrics.stages.append(stage_metrics)
        return results

    def _sync_clocks(self) -> float:
        """Barrier: advance every executor to the slowest one's time."""
        executors = self.ctx.executors
        latest = max(e.clock.now_ms for e in executors)
        for executor in executors:
            executor.clock.advance_to(latest)
        return latest
