"""Configuration for the Deca reproduction.

A single :class:`DecaConfig` object carries every tunable of the simulated
runtime: heap geometry, garbage-collector cost model, serializer and I/O cost
constants, and the Deca page geometry.  All times are **simulated
milliseconds** and all sizes are **bytes**; nothing here measures wall-clock
time.

The default constants are calibrated so that the scaled-down benchmark
workloads reproduce the *shapes* of the paper's figures (who wins, by roughly
what factor, and where the crossovers fall) — see DESIGN.md §5.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


class ExecutionMode(enum.Enum):
    """How the engine stores intermediate and cached data.

    SPARK      -- plain object graphs (the paper's Spark 1.6 baseline).
    SPARK_SER  -- Kryo-serialized cache blocks ("SparkSer" in the paper).
    DECA       -- lifetime-based page decomposition (the contribution).
    """

    SPARK = "spark"
    SPARK_SER = "spark-ser"
    DECA = "deca"


class GcAlgorithm(enum.Enum):
    """The three Hotspot collectors modelled by :mod:`repro.jvm.collectors`."""

    PARALLEL_SCAVENGE = "ps"
    CMS = "cms"
    G1 = "g1"


@dataclass(frozen=True)
class GcCostModel:
    """Cost constants for one collector.

    The dominant term everywhere is ``trace_per_object``: tracing cost grows
    with the number of *live* objects, which is the effect the paper exploits
    (§2.1, §6.4).  Concurrent collectors (CMS/G1) convert most of the full-GC
    pause into background CPU work, modelled by ``pause_fraction`` (how much
    of the collection cost still stops the application) and
    ``concurrent_tax`` (extra application-thread slowdown per unit of
    concurrent collection work).
    """

    minor_base_ms: float = 0.3
    minor_trace_per_object_ms: float = 2.5e-4
    minor_copy_per_byte_ms: float = 4.0e-8
    full_base_ms: float = 5.0
    full_trace_per_object_ms: float = 1.2e-3
    full_sweep_per_byte_ms: float = 1.0e-8
    pause_fraction: float = 1.0
    concurrent_tax: float = 0.0
    # Young collections cost more under CMS/G1 (card tables, remembered
    # sets, refinement) — the reason concurrent collectors lose on
    # shuffle-heavy jobs in Table 4.
    minor_multiplier: float = 1.0


_GC_COST_MODELS: dict[GcAlgorithm, GcCostModel] = {
    # Stop-the-world, throughput collector: the whole cost is a pause.
    GcAlgorithm.PARALLEL_SCAVENGE: GcCostModel(),
    # Mostly-concurrent old-gen collection: short pauses, but the concurrent
    # mark/sweep threads steal CPU from application threads.
    GcAlgorithm.CMS: GcCostModel(pause_fraction=0.08, concurrent_tax=0.35,
                                 minor_multiplier=1.5),
    # Region-based incremental collection: even shorter pauses, higher
    # bookkeeping overhead (remembered sets, refinement threads).
    GcAlgorithm.G1: GcCostModel(pause_fraction=0.04, concurrent_tax=0.22,
                                minor_multiplier=2.0),
}


def gc_cost_model(algorithm: GcAlgorithm) -> GcCostModel:
    """Return the calibrated cost model for *algorithm*."""
    return _GC_COST_MODELS[algorithm]


@dataclass(frozen=True)
class SerializerCosts:
    """Per-object serialization cost model (Kryo-like, Table 5 bottom rows).

    The paper measures Kryo at roughly 3.7 units to serialize one object and
    27 units to deserialize it, while Deca "serialization" (writing raw bytes
    into a page) costs about the same as Kryo serialization and
    deserialization is free (field reads go straight to the bytes).
    """

    kryo_ser_per_object_ms: float = 3.7e-4
    kryo_deser_per_object_ms: float = 2.7e-3
    deca_write_per_object_ms: float = 3.9e-4
    deca_read_per_object_ms: float = 0.0
    per_byte_ms: float = 2.0e-9


@dataclass(frozen=True)
class IoCosts:
    """Disk and network cost model for spilling, swapping and shuffling."""

    disk_write_per_byte_ms: float = 1.0e-5   # ~100 MB/s SAS disk
    disk_read_per_byte_ms: float = 8.0e-6
    disk_seek_ms: float = 8.0
    network_per_byte_ms: float = 8.5e-6      # ~120 MB/s effective
    network_rtt_ms: float = 0.5
    # The mmap cold tier (cold_tier="mmap") moves bytes at memory-bus
    # rather than disk bandwidth, and extents need no seek.
    tier_write_per_byte_ms: float = 4.0e-7   # ~2.5 GB/s
    tier_read_per_byte_ms: float = 2.5e-7    # ~4 GB/s


@dataclass(frozen=True)
class CpuCosts:
    """Application-side compute cost constants (per record / per operation)."""

    record_op_ms: float = 1.5e-3       # one UDF application on one record
    arithmetic_per_dim_ms: float = 1.0e-4   # per vector dimension (LR/KMeans)
    hash_probe_ms: float = 3.0e-5      # hash-based shuffle insert/combine
    sort_per_record_ms: float = 8.0e-5  # amortized comparison cost
    object_alloc_ms: float = 1.2e-5    # allocating one object in the heap
    boxing_ms: float = 1.0e-5          # auto-boxing a primitive (generic code)
    page_access_ms: float = 5.0e-7     # reading/writing one decomposed field


@dataclass(frozen=True)
class ScriptedFault:
    """One deterministic failure at an exact execution point.

    *kind* selects the failure mode:

    * ``"task-kill"`` — the attempt matching ``(stage_id, partition,
      attempt)`` dies (after ``after_ops`` compute charges, so partial
      task state exists and must be cleaned up);
    * ``"executor-crash"`` — the executor running that attempt crashes,
      losing its cache blocks and shuffle outputs;
    * ``"fetch-corrupt"`` — the read of shuffle block ``(shuffle_id,
      map_part, reduce_part)`` returns corrupt bytes, forcing the map
      output to be regenerated.

    ``stage_id`` / ``partition`` of ``-1`` act as wildcards, as do the
    ``-1`` defaults of the fetch coordinates.
    """

    kind: str
    stage_id: int = -1
    partition: int = -1
    attempt: int = 0
    after_ops: int = 0
    shuffle_id: int = -1
    map_part: int = -1
    reduce_part: int = -1

    KINDS = ("task-kill", "executor-crash", "fetch-corrupt")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ConfigError(
                f"unknown scripted fault kind {self.kind!r}; "
                f"choose from {self.KINDS}")


@dataclass(frozen=True)
class FaultConfig:
    """Failure-injection and recovery policy (the mini-Spark analogue of
    ``spark.task.maxFailures`` / ``spark.speculation`` plus a test-only
    fault injector).

    All probabilities are evaluated on a dedicated seeded RNG, so two runs
    with the same seed inject byte-identical failure sequences.  Backoff
    waits advance the *simulated* clock — never wall time.
    """

    # --- injection ---------------------------------------------------------
    seed: int = 17
    task_kill_prob: float = 0.0
    executor_crash_prob: float = 0.0
    fetch_corruption_prob: float = 0.0
    scripted: tuple[ScriptedFault, ...] = ()
    # Probabilistic kills strike after 1..max_kill_ops compute charges so
    # partially-executed tasks leave state the recovery must clean up.
    max_kill_ops: int = 32

    # --- retry policy ------------------------------------------------------
    max_task_failures: int = 4
    retry_backoff_ms: float = 50.0
    retry_backoff_factor: float = 2.0
    retry_backoff_max_ms: float = 1000.0

    # --- executor recovery -------------------------------------------------
    executor_restart_ms: float = 500.0

    # --- speculation -------------------------------------------------------
    speculation: bool = False
    speculation_multiplier: float = 1.5

    def __post_init__(self) -> None:
        for name in ("task_kill_prob", "executor_crash_prob",
                     "fetch_corruption_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]: {value}")
        if self.max_task_failures < 1:
            raise ConfigError("max_task_failures must be >= 1")
        if self.max_kill_ops < 1:
            raise ConfigError("max_kill_ops must be >= 1")
        if self.retry_backoff_ms < 0 or self.retry_backoff_max_ms < 0:
            raise ConfigError("retry backoff times must be >= 0")
        if self.retry_backoff_factor < 1.0:
            raise ConfigError("retry_backoff_factor must be >= 1.0")
        if self.executor_restart_ms < 0:
            raise ConfigError("executor_restart_ms must be >= 0")
        if self.speculation_multiplier < 1.0:
            raise ConfigError("speculation_multiplier must be >= 1.0")

    @property
    def injection_enabled(self) -> bool:
        """Whether any failure can actually be injected."""
        return bool(self.scripted) or any(
            p > 0.0 for p in (self.task_kill_prob,
                              self.executor_crash_prob,
                              self.fetch_corruption_prob))


def _default_execution_backend() -> str:
    """Backend selection, overridable per-process via the environment.

    ``REPRO_EXECUTION_BACKEND=mp`` flips every context constructed with
    the default config onto the multiprocess backend — this is how the CI
    backend matrix runs the whole test suite against real workers without
    editing any test.
    """
    return os.environ.get("REPRO_EXECUTION_BACKEND", "sim")


def _default_mp_workers() -> int:
    return int(os.environ.get("REPRO_MP_WORKERS", "0"))


def _default_sanitize() -> bool:
    """Runtime alias-sanitizer switch, overridable via the environment.

    ``REPRO_SANITIZE=1`` flips every context constructed with the default
    config into sanitize mode: a :class:`repro.memory.provenance.
    ProvenanceLedger` per executor records every exported zero-copy view,
    poisons freed extents and fails the run at ``ctx.finish()`` if any
    borrow outlived its backing bytes.  This is how the CI sanitizer leg
    runs the whole test suite under the ledger without editing any test.
    """
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0", "false")


def _default_cold_tier() -> str:
    """Cold-tier selection, overridable per-process via the environment.

    ``REPRO_COLD_TIER=mmap`` flips every context constructed with the
    default config onto the mmap page-store tier — how the CI cold-tier
    leg runs the whole test suite against it without editing any test.
    """
    return os.environ.get("REPRO_COLD_TIER", "heap")


@dataclass(frozen=True)
class DecaConfig:
    """Top-level configuration of a simulated Deca/Spark deployment."""

    # --- cluster geometry -------------------------------------------------
    num_executors: int = 4
    tasks_per_executor: int = 4

    # --- execution backend (docs/execution_backends.md) -------------------
    # ``"sim"`` runs every task inline on the simulated clocks (the
    # byte-deterministic default); ``"mp"`` runs stages on a real
    # ``multiprocessing`` worker pool with decomposed shuffle/cache data
    # crossing process boundaries through shared-memory Deca pages.
    execution_backend: str = field(
        default_factory=_default_execution_backend)
    # Worker processes per stage under the mp backend; 0 means one per
    # simulated executor (so the split -> executor mapping is preserved).
    mp_workers: int = field(default_factory=_default_mp_workers)
    # Wall-clock ceiling for one mp stage wave; a hung worker pool is
    # terminated (and the stage fails) rather than deadlocking the run.
    mp_stage_timeout_s: float = 120.0

    # --- heap geometry (per executor) ------------------------------------
    heap_bytes: int = 256 * MB
    young_fraction: float = 1.0 / 3.0
    # Occupancy of the old generation that triggers a full collection.
    full_gc_threshold: float = 0.95
    gc_algorithm: GcAlgorithm = GcAlgorithm.PARALLEL_SCAVENGE

    # --- Spark memory fractions (Table 4 tuning knobs) --------------------
    # Fraction of the heap reserved for the block cache and for shuffle
    # buffers respectively.  They mirror Spark 1.x's
    # ``spark.storage.memoryFraction`` / ``spark.shuffle.memoryFraction``.
    storage_fraction: float = 0.6
    shuffle_fraction: float = 0.4

    # --- unified memory arena (SPARK-10000, docs/memory_model.md) ---------
    # ``"static"`` keeps the legacy fixed split above; ``"unified"`` pools
    # execution and storage into one per-executor arena with borrowing,
    # like the Spark 1.6 runtime the paper's baseline actually ran under.
    memory_mode: str = "static"
    # Fraction of the heap the unified arena manages (Spark 1.6's
    # ``spark.memory.fraction``); the rest is user/metadata headroom.
    memory_fraction: float = 0.75
    # Fraction of the arena that storage never gets evicted below when
    # execution borrows (``spark.memory.storageFraction``).
    storage_region_fraction: float = 0.5

    # --- cold tier (docs/memory_model.md) ---------------------------------
    # Where swapped-out cache blocks and spilled shuffle buffers go:
    # ``"heap"`` parks serialized/copied payloads on the Python heap and
    # charges simulated-disk costs (the seed behaviour, byte-identical);
    # ``"mmap"`` moves raw page bytes into a file-backed mmap extent
    # store (repro.memory.tier) with zero-copy promotion — no ``bytes``
    # copies and no serializer charge on the Deca path.
    cold_tier: str = field(default_factory=_default_cold_tier)

    # --- runtime alias sanitizer (docs/static_analysis.md) ----------------
    # When on, every executor carries a ProvenanceLedger that records each
    # exported zero-copy view with its backing (extent / shm segment /
    # adopting page group), poisons freed extents with a sentinel fill and
    # raises repro.errors.SanitizerError from ``ctx.finish()`` on any
    # violation.  Off (the default) adds zero work to the hot paths.
    sanitize: bool = field(default_factory=_default_sanitize)

    # --- Deca page geometry (§4.3.1) --------------------------------------
    page_bytes: int = 1 * MB

    # --- cost models -------------------------------------------------------
    serializer: SerializerCosts = field(default_factory=SerializerCosts)
    io: IoCosts = field(default_factory=IoCosts)
    cpu: CpuCosts = field(default_factory=CpuCosts)

    # --- fault tolerance ----------------------------------------------------
    faults: FaultConfig = field(default_factory=FaultConfig)

    # --- closure guard (docs/closure_analysis.md) --------------------------
    # What the scheduler does when a UDF's closure-analysis verdict is
    # nondeterministic and a retry-like action (speculation, lineage
    # re-execution) comes up: ``"off"`` skips the analysis entirely,
    # ``"warn"`` refuses speculation / logs a ``closure:unsafe_retry``
    # trace event but proceeds, ``"strict"`` raises
    # :class:`repro.errors.NondeterministicUdfError`.
    closure_guard: str = "off"

    # --- engine behaviour ---------------------------------------------------
    mode: ExecutionMode = ExecutionMode.SPARK
    # Objects surviving this many minor collections are promoted.
    tenuring_threshold: int = 1
    # Fraction of "temporary" young objects that happen to survive a minor
    # collection (they were still referenced by an in-flight computation).
    temp_survival_rate: float = 0.01
    # Profiler sampling period on the simulated clock (Figs. 8a / 9a).
    profiler_period_ms: float = 1000.0

    def __post_init__(self) -> None:
        if self.num_executors < 1:
            raise ConfigError("num_executors must be >= 1")
        if self.tasks_per_executor < 1:
            raise ConfigError("tasks_per_executor must be >= 1")
        if self.execution_backend not in ("sim", "mp"):
            raise ConfigError(
                f"execution_backend must be 'sim' or 'mp': "
                f"{self.execution_backend!r}")
        if self.mp_workers < 0:
            raise ConfigError("mp_workers must be >= 0")
        if self.mp_stage_timeout_s <= 0:
            raise ConfigError("mp_stage_timeout_s must be positive")
        if self.heap_bytes <= 0:
            raise ConfigError("heap_bytes must be positive")
        if not 0.0 < self.young_fraction < 1.0:
            raise ConfigError("young_fraction must be in (0, 1)")
        if not 0.0 < self.full_gc_threshold <= 1.0:
            raise ConfigError("full_gc_threshold must be in (0, 1]")
        if self.page_bytes <= 0:
            raise ConfigError("page_bytes must be positive")
        if self.page_bytes > self.heap_bytes:
            raise ConfigError("page_bytes cannot exceed heap_bytes")
        if not 0.0 <= self.storage_fraction <= 1.0:
            raise ConfigError("storage_fraction must be in [0, 1]")
        if not 0.0 <= self.shuffle_fraction <= 1.0:
            raise ConfigError("shuffle_fraction must be in [0, 1]")
        if self.storage_fraction + self.shuffle_fraction > 1.0 + 1e-9:
            raise ConfigError(
                "storage_fraction + shuffle_fraction cannot exceed 1.0"
            )
        if self.cold_tier not in ("heap", "mmap"):
            raise ConfigError(
                f"cold_tier must be 'heap' or 'mmap': {self.cold_tier!r}")
        if self.memory_mode not in ("static", "unified"):
            raise ConfigError(
                f"memory_mode must be 'static' or 'unified': "
                f"{self.memory_mode!r}")
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ConfigError("memory_fraction must be in (0, 1]")
        if not 0.0 <= self.storage_region_fraction <= 1.0:
            raise ConfigError("storage_region_fraction must be in [0, 1]")
        if self.closure_guard not in ("off", "warn", "strict"):
            raise ConfigError(
                f"closure_guard must be 'off', 'warn' or 'strict': "
                f"{self.closure_guard!r}")
        if self.tenuring_threshold < 0:
            raise ConfigError("tenuring_threshold must be >= 0")
        if not 0.0 <= self.temp_survival_rate <= 1.0:
            raise ConfigError("temp_survival_rate must be in [0, 1]")

    # Convenience views -----------------------------------------------------
    @property
    def young_bytes(self) -> int:
        """Capacity of the young generation."""
        return int(self.heap_bytes * self.young_fraction)

    @property
    def old_bytes(self) -> int:
        """Capacity of the old generation."""
        return self.heap_bytes - self.young_bytes

    @property
    def storage_bytes(self) -> int:
        """Per-executor byte budget for the block cache."""
        return int(self.heap_bytes * self.storage_fraction)

    @property
    def shuffle_bytes(self) -> int:
        """Per-executor byte budget for shuffle buffers."""
        return int(self.heap_bytes * self.shuffle_fraction)

    @property
    def arena_bytes(self) -> int:
        """Capacity of the unified memory arena (``memory_mode="unified"``)."""
        return int(self.heap_bytes * self.memory_fraction)

    @property
    def storage_region_bytes(self) -> int:
        """Storage floor of the unified arena: execution demand never
        evicts cached storage below this many bytes."""
        return int(self.arena_bytes * self.storage_region_fraction)

    @property
    def gc_costs(self) -> GcCostModel:
        """Cost model of the configured collector."""
        return gc_cost_model(self.gc_algorithm)

    def with_options(self, **changes: Any) -> "DecaConfig":
        """Return a copy with *changes* applied (validated like a fresh one)."""
        return replace(self, **changes)
