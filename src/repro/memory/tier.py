"""File-backed mmap cold tier for swapped page groups (ROADMAP item 4).

Deca pages hold raw wire-format bytes, so swapping a page group out does
not need a serialize/deserialize round trip — the TeraHeap observation
(*Garbage Collection or Serialization? Between a Rock and a Hard Place!*,
PAPERS.md) is that paying one anyway means paying twice: once in GC
pressure from the transient heap copies, once in serde time.  The
:class:`PageStoreTier` is the second tier that makes the swap a plain
byte move:

* one **extent** per page group, carved from a file-backed ``mmap``
  region with a first-fit free list (freed extents coalesce with their
  neighbours and are reused);
* **swap-out** writes each page's used bytes buffer-to-buffer into the
  extent — no intermediate Python ``bytes`` objects;
* **swap-in** hands back writable ``memoryview`` slices of the mapping,
  which :meth:`repro.memory.page.PageGroup.adopt_page` mounts as pages
  readable through the existing SUDT/schema accessors — zero copies in
  the promotion direction.

The tier grows by remapping (never ``mmap.resize``, which refuses while
promoted views are exported); shared mappings of one file are coherent,
so views handed out from an older, shorter mapping stay valid after a
grow.  A leftover tier file from a killed run is truncated on startup
(its extent directory died with the process, so the bytes are garbage),
and the file is unlinked when the creating process drops the tier — a
forked worker inheriting the object must never unlink the driver's file,
hence the creator-pid guard.
"""

from __future__ import annotations

import itertools
import mmap
import os
import tempfile
import weakref
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import PageError
from .provenance import ProvenanceLedger, poison_fill

#: Tier files are named ``repro-tier-<pid>-<seq>[-<tag>].bin`` in the
#: temp dir; scripts/check_mp_leaks.py flags files whose pid is dead.
TIER_FILE_PREFIX = "repro-tier"

#: Extents are reserved on this granularity so frees coalesce cleanly.
_GRANULE = 4096

#: First file growth; subsequent grows double, bounding remap count.
_MIN_FILE_BYTES = 1 << 20

_file_seq = itertools.count()


def default_tier_path(tag: str = "") -> str:
    """A fresh per-process tier file path under the temp dir."""
    suffix = f"-{tag}" if tag else ""
    name = f"{TIER_FILE_PREFIX}-{os.getpid()}-{next(_file_seq)}{suffix}.bin"
    return os.path.join(tempfile.gettempdir(), name)


def _dispose(fd: int, path: str, creator_pid: int) -> None:
    """Finalizer: close the fd and (creator only) unlink the file."""
    try:
        os.close(fd)
    except OSError:
        pass
    if os.getpid() == creator_pid:
        try:
            os.unlink(path)
        except OSError:
            pass


@dataclass(frozen=True)
class TierExtent:
    """One page group's reservation in the tier file."""

    offset: int             # file offset of the reservation
    length: int             # granule-aligned reserved bytes
    chunks: tuple[int, ...]  # per-page byte lengths (sum <= length)

    @property
    def used_bytes(self) -> int:
        return sum(self.chunks)


@dataclass
class TierStats:
    """Lifetime counters of one tier (integer-only, determinism-safe)."""

    swap_out_count: int = 0
    swap_in_count: int = 0
    drop_count: int = 0
    bytes_moved_out: int = 0   # bytes physically written into extents
    bytes_moved_in: int = 0    # bytes promoted back as zero-copy views
    spill_count: int = 0       # shuffle spills routed to the tier
    spill_bytes: int = 0
    extents_live: int = 0
    extent_bytes_live: int = 0  # reserved (granule-aligned) live bytes
    file_bytes: int = 0
    truncated_bytes: int = 0   # leftover bytes reclaimed on startup

    def to_dict(self) -> dict[str, int]:
        return {
            "swap_out_count": self.swap_out_count,
            "swap_in_count": self.swap_in_count,
            "drop_count": self.drop_count,
            "bytes_moved_out": self.bytes_moved_out,
            "bytes_moved_in": self.bytes_moved_in,
            "spill_count": self.spill_count,
            "spill_bytes": self.spill_bytes,
            "extents_live": self.extents_live,
            "extent_bytes_live": self.extent_bytes_live,
            "file_bytes": self.file_bytes,
            "truncated_bytes": self.truncated_bytes,
        }


class PageStoreTier:
    """A mmap extent store holding cold page groups as raw bytes.

    ``tracer``/``clock``/``pid`` mirror the executor's trace wiring;
    every operation lands on the run's trace bus as a ``tier:*`` instant
    event (see docs/memory_model.md).
    """

    def __init__(self, path: str | None = None, *, tracer: Any = None,
                 clock: Any = None, pid: int = 0, tag: str = "",
                 ledger: ProvenanceLedger | None = None,
                 vclock: Any = None) -> None:
        self.path = path if path is not None else default_tier_path(tag)
        self.tracer = tracer
        self.clock = clock
        self.pid = pid
        # Sanitize mode: every exported view is recorded as a borrow and
        # checked when its extent is freed / remapped (None = no-op).
        self.ledger = ledger
        # Race sanitizer: extent promotions are recorded as accesses the
        # eventual drop must happen-after (repro.obs.vclock; None = off).
        self.vclock = vclock
        self._creator_pid = os.getpid()
        self._closed = False
        try:
            leftover = os.path.getsize(self.path)
        except OSError:
            leftover = 0
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o600)
        if leftover:
            # Crash safety: the extent directory of whatever run wrote
            # these bytes died with its process, so the content is
            # unrecoverable garbage — reclaim it before mapping.
            os.ftruncate(self._fd, 0)
        self._size = 0
        self._mm: mmap.mmap | None = None
        # Mappings outgrown by a remap but still referenced by exported
        # promotion views; they die when the last view does.
        self._retired: list[mmap.mmap] = []
        # Sorted, coalesced [offset, length] holes covering every byte
        # of the file that no live extent reserves.
        self._free: list[list[int]] = []
        self._extents: dict[str, TierExtent] = {}
        # Names of extents dropped at least once (sanitize mode only) so
        # a re-drop after the idempotent pop can be told apart from a
        # drop of a name that never existed.
        self._dropped: set[str] = set()
        self.stats = TierStats()
        if leftover:
            self.stats.truncated_bytes = leftover
            self._emit("tier:truncate", reclaimed_bytes=leftover)
        self._finalizer = weakref.finalize(
            self, _dispose, self._fd, self.path, self._creator_pid)

    # -- bookkeeping -----------------------------------------------------------
    @property
    def file_bytes(self) -> int:
        return self._size

    @property
    def free_bytes(self) -> int:
        return sum(length for _, length in self._free)

    @property
    def live_bytes(self) -> int:
        """Reserved bytes of live extents (granule-aligned)."""
        return sum(extent.length for extent in self._extents.values())

    def has(self, name: str) -> bool:
        return name in self._extents

    def extent_of(self, name: str) -> TierExtent:
        try:
            return self._extents[name]
        except KeyError:
            raise PageError(f"no tier extent {name!r}") from None

    def _emit(self, event: str, **args: Any) -> None:
        if self.tracer is None:
            return
        ts = self.clock.now_ms if self.clock is not None else 0.0
        self.tracer.instant(event, "tier", ts_ms=ts, pid=self.pid, **args)

    def _check_open(self) -> None:
        if self._closed:
            raise PageError(f"tier {self.path!r} is closed")

    # -- extent allocation -----------------------------------------------------
    def _allocate(self, nbytes: int) -> tuple[int, int]:
        """Reserve a granule-aligned hole >= *nbytes*; returns
        ``(offset, length)``."""
        need = max(_GRANULE,
                   (nbytes + _GRANULE - 1) // _GRANULE * _GRANULE)
        for hole in self._free:
            offset, length = hole
            if length >= need:
                if length == need:
                    self._free.remove(hole)
                else:
                    hole[0] = offset + need
                    hole[1] = length - need
                return offset, need
        self._grow(need)
        return self._allocate(nbytes)

    def _grow(self, need: int) -> None:
        new_size = max(self._size * 2, self._size + need, _MIN_FILE_BYTES)
        os.ftruncate(self._fd, new_size)
        old = self._mm
        self._mm = mmap.mmap(self._fd, new_size)
        if old is not None:
            try:
                old.close()
            except BufferError:
                # Promoted views still reference the old mapping; it is
                # released when the last of them is dropped.
                self._retired.append(old)
        if self.ledger is not None:
            # The old mapping was retired, not resized in place, so every
            # exported view stays valid — the safe remap protocol.
            self.ledger.note_remap("extent", sorted(self._extents),
                                   retired=True)
        self._release(self._size, new_size - self._size)
        self._size = new_size
        self.stats.file_bytes = new_size

    def _release(self, offset: int, length: int) -> None:
        """Return ``[offset, length]`` to the free list, coalescing."""
        if length <= 0:
            return
        self._free.append([offset, length])
        self._free.sort()
        merged: list[list[int]] = []
        for hole in self._free:
            if merged and merged[-1][0] + merged[-1][1] == hole[0]:
                merged[-1][1] += hole[1]
            else:
                merged.append(hole)
        self._free = merged

    # -- the swap data plane ---------------------------------------------------
    def swap_out(self, name: str, chunks: Iterable[memoryview | bytes
                                                  | bytearray]) -> int:
        """Move *chunks* (one per page) into a fresh extent *name*.

        The write is buffer-to-buffer into the mapping — no intermediate
        Python-heap ``bytes`` copies.  Returns the bytes moved.
        """
        self._check_open()
        if name in self._extents:
            raise PageError(f"tier extent {name!r} already exists")
        chunks = list(chunks)
        sizes = tuple(len(chunk) for chunk in chunks)
        total = sum(sizes)
        offset, length = self._allocate(total)
        mm = self._mm
        assert mm is not None
        pos = offset
        for chunk in chunks:
            n = len(chunk)
            mm[pos:pos + n] = chunk
            pos += n
        self._extents[name] = TierExtent(offset, length, sizes)
        if self.ledger is not None:
            self.ledger.note_alloc("extent", name)
        if self.vclock is not None:
            self.vclock.note_create("extent", name)
        self.stats.swap_out_count += 1
        self.stats.bytes_moved_out += total
        self.stats.extents_live = len(self._extents)
        self.stats.extent_bytes_live = self.live_bytes
        self._emit("tier:swap-out", extent=name, nbytes=total,
                   extent_offset=offset, extents_live=len(self._extents),
                   file_bytes=self._size)
        return total

    def views(self, name: str) -> list[memoryview]:
        """Writable zero-copy views over extent *name*, one per page."""
        self._check_open()
        extent = self.extent_of(name)
        mm = self._mm
        assert mm is not None
        base = memoryview(mm)
        out: list[memoryview] = []
        pos = extent.offset
        for n in extent.chunks:
            out.append(base[pos:pos + n])
            pos += n
        if self.ledger is not None:
            for view in out:
                self.ledger.borrow("extent", name, view=view)
        if self.vclock is not None:
            self.vclock.note_access("extent", name)
        return out

    def swap_in(self, name: str) -> list[memoryview]:
        """Promote extent *name*: zero-copy views the caller mounts as
        pages.  The extent stays reserved — a later swap-out of the same
        group moves no bytes, and :meth:`drop` releases it."""
        views = self.views(name)
        used = self.extent_of(name).used_bytes
        self.stats.swap_in_count += 1
        self.stats.bytes_moved_in += used
        self._emit("tier:swap-in", extent=name, nbytes=used,
                   extents_live=len(self._extents))
        return views

    def drop(self, name: str) -> int:
        """Release extent *name* (idempotent); returns its used bytes."""
        extent = self._extents.pop(name, None)
        if extent is None:
            if self.ledger is not None and name in self._dropped:
                # Second drop of an extent we saw die: double-free.
                self.ledger.note_free("extent", name)
            return 0
        if self.ledger is not None:
            self._dropped.add(name)
            self.ledger.note_free("extent", name)
            if self._mm is not None:
                # Sentinel-fill the freed bytes so any alias that slipped
                # past the borrow check reads poison, not stale data.
                self.ledger.note_poison("extent", name, poison_fill(
                    self._mm, extent.offset, extent.length))
        if self.vclock is not None:
            self.vclock.note_reclaim("extent", name)
        self._release(extent.offset, extent.length)
        self.stats.drop_count += 1
        self.stats.extents_live = len(self._extents)
        self.stats.extent_bytes_live = self.live_bytes
        self._emit("tier:drop", extent=name, nbytes=extent.used_bytes,
                   extents_live=len(self._extents))
        return extent.used_bytes

    def note_spill(self, nbytes: int) -> None:
        """Account one shuffle spill routed to the tier (cost-model
        path: the spilled buffer has no materialized bytes to move)."""
        self.stats.spill_count += 1
        self.stats.spill_bytes += nbytes
        self._emit("tier:spill", nbytes=nbytes)

    def close(self) -> None:
        """Drop the mapping and (in the creating process) the file."""
        if self._closed:
            return
        self._closed = True
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass  # exported views; the mapping dies with them
            self._mm = None
        self._finalizer()

    def __repr__(self) -> str:
        return (f"PageStoreTier({self.path!r}, extents="
                f"{len(self._extents)}, file={self._size} B)")
