"""The per-executor Deca memory manager (paper §5, Appendix C).

The memory manager allocates and reclaims memory pages.  It works together
with the engine's cache manager and shuffle manager (which handle the
un-decomposed object data): containers ask it for page groups, access to
cached page groups refreshes a recently-used counter, and under heap
pressure the *least recently used* evictable page group is swapped out as
raw bytes — no serialization step, because the pages already are the wire
format (Appendix C).
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator

from ..config import DecaConfig
from ..errors import PageError
from ..jvm.heap import SimHeap
from .page import PageGroup, PageInfo
from .unified import UnifiedMemoryManager


class DecaMemoryManager:
    """Creates, tracks and reclaims the page groups of one executor."""

    def __init__(self, config: DecaConfig, heap: SimHeap | None = None,
                 arena: UnifiedMemoryManager | None = None) -> None:
        self.config = config
        self.heap = heap
        # In unified mode evictable page groups register as storage
        # entries of the executor arena, so page-group swap-out competes
        # in the same LRU as cached blocks.
        self.arena = arena
        self._groups: dict[str, PageGroup] = {}
        self._evictable: dict[str, PageGroup] = {}
        self._use_clock = itertools.count()
        self._last_used: dict[str, int] = {}

    # -- group lifecycle -------------------------------------------------------
    def new_page_group(self, name: str, *, evictable: bool = False,
                       page_bytes: int | None = None) -> PageGroup:
        """Allocate a page group for a container.

        *evictable* marks groups backing cache blocks: they participate in
        the LRU swap-out of Appendix C.  Shuffle page groups are not
        evictable (they spill through the shuffle path instead).
        """
        if name in self._groups:
            raise PageError(f"page group {name!r} already exists")
        group = PageGroup(
            name,
            page_bytes if page_bytes is not None else self.config.page_bytes,
            heap=self.heap,
            on_reclaim=self._forget,
            on_resize=self._resized if (self.arena is not None and evictable)
            else None,
        )
        self._groups[name] = group
        if evictable:
            self._evictable[name] = group
            if self.arena is not None:
                # Pinned while being built; the cache adopts the entry
                # (making it evictable) once the block is sealed.
                self.arena.storage_register_pinned(name)
            self.touch(group)
        return group

    def new_shared_group(self, name: str, segment, *,
                         page_bytes: int | None = None) -> PageGroup:
        """Allocate a page group whose page buffers live in *segment*.

        *segment* is a :class:`repro.exec.shm.SharedPageSegment` (or any
        object with an ``allocate(nbytes) -> memoryview`` bump
        allocator).  Records appended to the group are packed directly
        into shared memory, so another process can map the segment and
        read them in place — no serialization, ever.
        """
        if name in self._groups:
            raise PageError(f"page group {name!r} already exists")
        group = PageGroup(
            name,
            page_bytes if page_bytes is not None else self.config.page_bytes,
            heap=self.heap,
            on_reclaim=self._forget,
            allocator=segment.allocate,
        )
        self._groups[name] = group
        return group

    def attach_shared_group(self, ref, name: str | None = None) -> PageGroup:
        """Attach a shared segment another process packed as a group.

        The group is tracked like any other; when its last page-info
        closes, this process's mapping is detached and the manager
        forgets the group.  Unlinking the segment itself is the driver
        registry's decision (refcounted across the whole run).
        """
        from ..exec.shm import attach_page_group
        group = attach_page_group(ref, group_name=name)
        if group.name in self._groups:
            raise PageError(f"page group {group.name!r} already exists")
        detach = group._on_reclaim

        def _reclaim(g: PageGroup) -> None:
            if detach is not None:
                detach(g)
            self._forget(g)

        group._on_reclaim = _reclaim
        self._groups[group.name] = group
        return group

    def _resized(self, group: PageGroup, delta: int) -> None:
        if self.arena is not None:
            self.arena.storage_grow(group.name, delta)

    def open(self, group: PageGroup) -> PageInfo:
        """Hand out a page-info on *group* (reference-counted)."""
        return group.new_page_info()

    def _forget(self, group: PageGroup) -> None:
        was_evictable = group.name in self._evictable
        self._groups.pop(group.name, None)
        self._evictable.pop(group.name, None)
        self._last_used.pop(group.name, None)
        if self.arena is not None and was_evictable:
            self.arena.storage_discard(group.name)

    # -- LRU bookkeeping ----------------------------------------------------------
    def touch(self, group: PageGroup) -> None:
        """Refresh *group*'s recently-used counter (data access)."""
        self._last_used[group.name] = next(self._use_clock)
        if self.arena is not None:
            self.arena.storage_touch(group.name)

    def eviction_order(self) -> Iterator[PageGroup]:
        """Evictable groups, least recently used first."""
        ranked = sorted(self._evictable.values(),
                        key=lambda g: self._last_used.get(g.name, -1))
        return iter(ranked)

    def evict(self, bytes_needed: int,
              on_evict: Callable[[PageGroup], None] | None = None) -> int:
        """Swap out LRU page groups until *bytes_needed* is satisfied.

        *on_evict* is told about each victim before its pages are released
        (the cache manager writes the raw bytes to its disk store there).
        Returns the number of heap bytes released.
        """
        freed = 0
        for group in list(self.eviction_order()):
            if freed >= bytes_needed:
                break
            nbytes = group.allocated_bytes
            if on_evict is not None:
                on_evict(group)
            group.reclaim()
            freed += nbytes
        return freed

    # -- stats ---------------------------------------------------------------------
    @property
    def group_count(self) -> int:
        return len(self._groups)

    @property
    def page_count(self) -> int:
        return sum(g.page_count for g in self._groups.values())

    @property
    def used_bytes(self) -> int:
        """Record bytes stored across all live page groups."""
        return sum(g.used_bytes for g in self._groups.values())

    @property
    def allocated_bytes(self) -> int:
        """Heap bytes held by all live page groups."""
        return sum(g.allocated_bytes for g in self._groups.values())

    def groups(self) -> Iterator[PageGroup]:
        return iter(list(self._groups.values()))

    def __repr__(self) -> str:
        return (f"DecaMemoryManager(groups={self.group_count}, "
                f"pages={self.page_count}, used={self.used_bytes} B)")
