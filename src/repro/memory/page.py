"""Memory pages, page groups and page-infos (paper §4.3.1).

Deca stores decomposed objects in unified byte arrays with a common fixed
size — *pages*.  A page is logically split into consecutive byte segments,
one per top-level object.  For each data container a *page group* is
allocated; its metadata lives in a *page-info*:

* ``pages`` — the array of page references,
* ``endOffset`` — start of the unused part of the last page,
* ``curPage`` / ``curOffset`` — the progress of a sequential scan.

Space is reclaimed by **reference counting** page-infos (§4.3.3): creating
a page-info on a group increments its counter, destroying one decrements
it, and at zero the whole group — and therefore every object in it — is
released at once.  That single release is the paper's entire memory-
management story for millions of records.

Each page is registered with the simulated heap as one PINNED object, so
the GC substrate sees exactly what a real JVM would: a handful of byte
arrays instead of a million records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from ..errors import PageError, PageOverflowError, PageReclaimedError

if TYPE_CHECKING:
    from .provenance import ProvenanceLedger
from ..jvm.heap import SimHeap
from ..jvm.objects import AllocationGroup, Lifetime
from ..jvm.sizing import array_bytes
from .layout import Schema

# -- shadow-validation hooks ------------------------------------------------
# ``repro.lint``'s shadow validator registers an observer here to record
# every record appended to any page group (group name, schema label, packed
# byte size).  The list is empty in normal runs, so the hot path pays one
# truthiness check.
RecordObserver = Callable[["PageGroup", str, int], None]
_record_observers: list[RecordObserver] = []


def add_record_observer(observer: RecordObserver) -> None:
    """Register *observer* to be called on every ``append_record``."""
    _record_observers.append(observer)


def remove_record_observer(observer: RecordObserver) -> None:
    """Unregister a previously added record observer."""
    _record_observers.remove(observer)


class Page:
    """One fixed-size byte array.

    The payload is a process-private ``bytearray`` by default; a page can
    instead wrap an externally owned writable *buffer* (a ``memoryview``
    into a ``multiprocessing.shared_memory`` segment), which is how Deca
    pages cross process boundaries without a serialization step — the
    accessors below work identically on both.
    """

    __slots__ = ("index", "data", "used")

    def __init__(self, index: int, nbytes: int,
                 buffer: bytearray | memoryview | None = None) -> None:
        if buffer is not None and len(buffer) != nbytes:
            raise PageError(
                f"external page buffer is {len(buffer)} B, "
                f"expected {nbytes} B")
        self.index = index
        self.data = bytearray(nbytes) if buffer is None else buffer
        self.used = 0

    @property
    def capacity(self) -> int:
        return len(self.data)

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def __repr__(self) -> str:
        return f"Page(#{self.index}, {self.used}/{self.capacity} B)"


@dataclass(frozen=True)
class PagePointer:
    """A pointer to one record's byte segment inside a page group.

    Shuffle buffers keep arrays of these for sorting/hashing (§4.3.2,
    Fig. 6(b)).
    """

    page_index: int
    offset: int
    length: int


class PageGroup:
    """The pages owned by one data container.

    Appends are sequential; records never span pages (a record larger than
    the page size gets a dedicated oversized page).  Reclamation happens
    when the last :class:`PageInfo` on the group is closed.
    """

    def __init__(self, name: str, page_bytes: int,
                 heap: SimHeap | None = None,
                 on_reclaim: Callable[["PageGroup"], None] | None = None,
                 on_resize: Callable[["PageGroup", int], None] | None = None,
                 allocator: Callable[[int], bytearray | memoryview]
                 | None = None,
                 ) -> None:
        if page_bytes <= 0:
            raise PageError(f"page size must be positive: {page_bytes}")
        self.name = name
        self.page_bytes = page_bytes
        self.heap = heap
        # Page-buffer source: ``None`` allocates process-private
        # bytearrays; a segment-backed group passes a bump allocator over
        # a shared-memory segment (repro.exec.shm), so its record bytes
        # are readable in place from other processes.
        self.allocator = allocator
        self.pages: list[Page] = []
        self.refcount = 0
        self.reclaimed = False
        self._on_reclaim = on_reclaim
        # Called with the byte delta every time the group's heap
        # footprint changes (+page allocation, -trim); the unified
        # memory arena tracks in-build page groups through this hook.
        self.on_resize = on_resize
        self._alloc_group: AllocationGroup | None = None
        # Sanitize mode: the cache / shm layer points this at the
        # executor's ProvenanceLedger once the group adopts zero-copy
        # buffers, so reclamation and drains are checked (None = no-op).
        self.ledger: ProvenanceLedger | None = None
        if heap is not None:
            self._alloc_group = heap.new_group(
                f"pages:{name}", Lifetime.PINNED)

    # -- sizes ------------------------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self.pages)

    @property
    def used_bytes(self) -> int:
        """Bytes occupied by record segments."""
        return sum(page.used for page in self.pages)

    @property
    def allocated_bytes(self) -> int:
        """Bytes held from the heap (page payloads, headers included)."""
        return sum(array_bytes(1, page.capacity) for page in self.pages)

    @property
    def end_offset(self) -> int:
        """Start offset of the unused part of the last page (page-info's
        ``endOffset``)."""
        if not self.pages:
            return 0
        return self.pages[-1].used

    # -- appending ---------------------------------------------------------------
    def reserve(self, nbytes: int) -> tuple[Page, int]:
        """Reserve *nbytes* of contiguous segment space.

        Returns the page and start offset; the caller packs the record
        bytes directly into ``page.data`` (no intermediate copy).
        """
        self._check_alive()
        if nbytes < 0:
            raise PageError(f"negative reservation: {nbytes}")
        if self.pages and self.pages[-1].free >= nbytes:
            page = self.pages[-1]
        else:
            page = self._new_page(max(nbytes, self.page_bytes))
        offset = page.used
        page.used += nbytes
        return page, offset

    def append_bytes(self, data: bytes | bytearray | memoryview
                     ) -> PagePointer:
        """Copy *data* in as one record segment."""
        page, offset = self.reserve(len(data))
        page.data[offset:offset + len(data)] = data
        return PagePointer(page.index, offset, len(data))

    def append_run(self, data: bytes | bytearray | memoryview
                   ) -> PagePointer:
        """Copy *data* in as one dedicated, exactly-sized page.

        The column-major emission mode (§4.3.1 applied per *field*): a
        column's values form one contiguous run, so the run gets its own
        page whose capacity equals its length — typed views
        (``memoryview.cast``) over the run never have to stitch segments
        together, and the heap sees exactly one byte array per column
        run.
        """
        self._check_alive()
        page = self._new_page(max(1, len(data)))
        page.data[0:len(data)] = data
        page.used = len(data)
        return PagePointer(page.index, 0, len(data))

    def append_record(self, schema: Schema, value) -> PagePointer:
        """Pack *value* (per *schema*) directly into the page group."""
        size = schema.size_of(value)
        page, offset = self.reserve(size)
        schema.pack_into(page.data, offset, value)
        if _record_observers:
            label = getattr(schema, "name", type(schema).__name__)
            for observer in list(_record_observers):
                observer(self, label, size)
        return PagePointer(page.index, offset, size)

    def _new_page(self, nbytes: int) -> Page:
        buffer = self.allocator(nbytes) if self.allocator else None
        page = Page(len(self.pages), nbytes, buffer=buffer)
        if self.heap is not None and self._alloc_group is not None:
            # One byte array object on the simulated heap.
            self.heap.allocate(self._alloc_group, 1, array_bytes(1, nbytes))
        self.pages.append(page)
        if self.on_resize is not None:
            self.on_resize(self, array_bytes(1, nbytes))
        return page

    def adopt_page(self, buffer: bytearray | memoryview,
                   used: int | None = None) -> Page:
        """Mount an externally owned *buffer* as one fully-written page.

        The zero-copy promotion path of the mmap cold tier
        (:mod:`repro.memory.tier`): the page aliases the tier extent the
        way shared-memory pages alias their segment, so swapping a group
        back in moves no bytes.  The page is charged to the heap exactly
        like an allocated one — residency accounting is identical across
        tiers, only the data plane differs.
        """
        self._check_alive()
        page = Page(len(self.pages), len(buffer), buffer=buffer)
        page.used = len(buffer) if used is None else used
        if self.heap is not None and self._alloc_group is not None:
            self.heap.allocate(self._alloc_group, 1,
                               array_bytes(1, page.capacity))
        self.pages.append(page)
        if self.on_resize is not None:
            self.on_resize(self, array_bytes(1, page.capacity))
        return page

    def drain(self) -> Iterator[bytes]:
        """Yield each page's used bytes as one copy, releasing the source
        page's heap charge as soon as the caller has consumed it.

        The heap-tier swap-out path: copying every page *before*
        reclaiming the group doubles the block's peak footprint, so the
        drain interleaves copy and release — at most one page is
        double-buffered at a time.  The group is reclaimed when the
        iterator is exhausted.  (``on_resize`` is deliberately not
        fired per page: the swap-out discards the group's arena entry
        wholesale right after.)
        """
        self._check_alive()
        for page in list(self.pages):
            if self.ledger is not None:
                self.ledger.note_drain_copy(self.name, page.used)
            yield bytes(memoryview(page.data)[:page.used])
            # The caller holds (and has accounted) the copy; the source
            # page's heap charge can go.
            if self._alloc_group is not None and not self._alloc_group.freed:
                self._alloc_group.shrink(array_bytes(1, page.capacity))
        self.reclaim()

    def swap_chunks(self) -> list[memoryview]:
        """The group's used bytes as per-page views, ready for a cold-tier
        ``swap_out``.

        The views alias the live page buffers — no copy happens here; the
        mmap tier writes them straight into its extent file.  Callers must
        reclaim the group (or otherwise stop mutating it) once the swap
        completes.
        """
        self._check_alive()
        return [memoryview(page.data)[:page.used] for page in self.pages]

    def trim(self) -> int:
        """Shrink the last page's byte array to its used size.

        A sealed container (a fully-built cache block) never appends again,
        so the unused tail of its last page is pure waste — the "large
        unused memory spaces" the paper warns oversized pages cause (§2.3).
        Returns the heap bytes given back.
        """
        self._check_alive()
        if not self.pages:
            return 0
        page = self.pages[-1]
        if page.used == page.capacity:
            return 0
        before = array_bytes(1, page.capacity)
        page.data = page.data[:page.used]
        after = array_bytes(1, page.capacity)
        saved = before - after
        if saved and self._alloc_group is not None:
            self._alloc_group.shrink(saved)
        if saved and self.on_resize is not None:
            self.on_resize(self, -saved)
        return saved

    # -- reading -----------------------------------------------------------------
    def page(self, index: int) -> Page:
        self._check_alive()
        try:
            return self.pages[index]
        except IndexError:
            raise PageError(
                f"page group {self.name!r} has no page #{index}") from None

    def read(self, pointer: PagePointer) -> tuple[bytearray, int]:
        """Resolve *pointer* to ``(buffer, offset)``."""
        page = self.page(pointer.page_index)
        if pointer.offset + pointer.length > page.used:
            raise PageOverflowError(
                f"pointer {pointer} reads past the used bytes of {page}")
        return page.data, pointer.offset

    def scan(self, schema: Schema) -> Iterator[tuple[bytearray, int]]:
        """Sequentially yield ``(buffer, offset)`` for every record.

        Walks the pages exactly as the transformed task loop of Appendix B
        walks a decomposed cache block, advancing by each record's
        data-size.
        """
        self._check_alive()
        for page in self.pages:
            offset = 0
            while offset < page.used:
                yield page.data, offset
                if schema.fixed_size is not None:
                    next_offset = offset + schema.fixed_size
                else:
                    next_offset = schema.skip(page.data, offset)
                if next_offset <= offset:
                    raise PageError(
                        f"zero-size record at offset {offset} in "
                        f"{self.name!r}; scan cannot advance")
                offset = next_offset

    def records(self, schema: Schema) -> Iterator:
        """Sequentially decode every record (materializing values)."""
        for buf, offset in self.scan(schema):
            value, _ = schema.unpack_from(buf, offset)
            yield value

    # -- lifetime ------------------------------------------------------------------
    def new_page_info(self) -> "PageInfo":
        """Hand out a page-info, incrementing the reference counter."""
        self._check_alive()
        self.refcount += 1
        return PageInfo(self)

    def _release(self) -> None:
        if self.reclaimed:
            raise PageReclaimedError(
                f"page group {self.name!r} released after reclamation")
        self.refcount -= 1
        if self.refcount < 0:
            raise PageError(
                f"page group {self.name!r} reference counter underflow")
        if self.refcount == 0:
            self.reclaim()

    def reclaim(self) -> None:
        """Release every page at once (the container's lifetime ended)."""
        if self.reclaimed:
            return
        self.reclaimed = True
        if self.heap is not None and self._alloc_group is not None:
            self.heap.free_group(self._alloc_group)
        # The callback runs while ``pages`` is still populated so a
        # detach hook (repro.exec.shm) can release the page buffers it
        # mounted before the list is dropped.
        if self._on_reclaim is not None:
            self._on_reclaim(self)
        # Adopted zero-copy buffers (tier extents, shm segments) must not
        # outlive the group: release them so a straggling reader fails
        # loudly with ValueError instead of silently reading whatever the
        # backing bytes hold next.  A sub-view export keeps the buffer
        # alive (release raises BufferError) — that escape is what the
        # sanitizer reports at finish.
        for page in self.pages:
            if isinstance(page.data, memoryview):
                try:
                    page.data.release()
                except BufferError:
                    pass
        self.pages.clear()
        if self.ledger is not None:
            self.ledger.note_reclaim(self.name)

    def _check_alive(self) -> None:
        if self.reclaimed:
            raise PageReclaimedError(
                f"page group {self.name!r} was already reclaimed")

    def __repr__(self) -> str:
        state = "reclaimed" if self.reclaimed else f"rc={self.refcount}"
        return (f"PageGroup({self.name!r}, pages={self.page_count}, "
                f"used={self.used_bytes} B, {state})")


class PageInfo:
    """A container's handle on a page group (§4.3.1).

    Holds the scan cursor (``cur_page`` / ``cur_offset``) and, for
    secondary containers, the page-infos of the primary container(s) it
    depends on (``dep_pages``, Fig. 7(a)).  Closing a page-info decrements
    the group's reference counter — and closes its dependencies.
    """

    def __init__(self, group: PageGroup) -> None:
        self.group = group
        self.cur_page = 0
        self.cur_offset = 0
        self.dep_pages: list["PageInfo"] = []
        self._closed = False

    @property
    def pages(self) -> list[Page]:
        return self.group.pages

    @property
    def end_offset(self) -> int:
        return self.group.end_offset

    def add_dependency(self, other: "PageInfo") -> None:
        """Record that this page-info references *other*'s pages."""
        self.dep_pages.append(other)

    def share(self) -> "PageInfo":
        """Copy this page-info for a secondary container (§4.3.3).

        Both containers then share the same page group; the copy bumps the
        reference counter so the group outlives whichever container dies
        first.
        """
        self._check_open()
        return self.group.new_page_info()

    def reset_cursor(self) -> None:
        self.cur_page = 0
        self.cur_offset = 0

    def close(self) -> None:
        """Destroy this page-info; may reclaim the group."""
        if self._closed:
            raise PageReclaimedError("page-info closed twice")
        self._closed = True
        for dep in self.dep_pages:
            if not dep._closed:
                dep.close()
        self.group._release()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise PageReclaimedError("page-info is closed")

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"PageInfo({self.group.name!r}, {state})"
