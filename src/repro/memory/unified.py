"""The unified executor memory arena (SPARK-10000, docs/memory_model.md).

Spark 1.6 — the baseline the paper's experiments ran on (§5, Appendix C)
— replaced the static ``storage.memoryFraction`` / ``shuffle.memoryFraction``
split with a *unified* memory manager: execution (shuffle buffers, reduce
merges) and storage (cached blocks, Deca page groups) share one pool and
borrow from each other.  This module reproduces that accounting plane:

* :class:`UnifiedMemoryManager` — one arena per executor.  Storage may
  fill any memory execution is not using; execution may reclaim borrowed
  storage by evicting LRU entries down to a *storage region* floor, and
  execution's own memory is unevictable until released.
* :class:`MemoryConsumer` — the protocol execution-side clients (map-side
  writers, reduce merges) implement.  ``acquire`` grants are fair-shared:
  with N active tasks each task is bounded between ``pool/2N`` and
  ``pool/N`` of the execution pool, and a starved acquire may
  *cooperatively spill* the largest sibling consumer before failing.
* :class:`StaticMemoryArena` — the legacy split, kept byte-compatible
  with the pre-arena engine, but with one shared shuffle pool per
  executor instead of a per-writer budget check (concurrent writers used
  to oversubscribe the shuffle budget K-fold).

Every unified-mode transition emits a ``memory:*`` event on the run's
:class:`~repro.obs.tracer.Tracer` bus and notifies the module-level
observers below (how the deca-lint shadow validator cross-checks arena
bytes against the static size-type claims).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from ..config import DecaConfig
from ..obs.tracer import Tracer
from ..obs.vclock import VClockChecker
from ..simtime import SimClock

# -- shadow-validation hooks ------------------------------------------------
# ``repro.lint``'s shadow validator registers an observer here to record
# every arena transition (event name plus its integer/string payload).
# The list is empty in normal runs, so the hot path pays one truthiness
# check per event.
MemoryObserver = Callable[[str, dict[str, object]], None]
_memory_observers: list[MemoryObserver] = []


def add_memory_observer(observer: MemoryObserver) -> None:
    """Register *observer* to be called on every arena event."""
    _memory_observers.append(observer)


def remove_memory_observer(observer: MemoryObserver) -> None:
    """Unregister a previously added memory observer."""
    _memory_observers.remove(observer)


class MemoryConsumer(Protocol):
    """An execution-side memory client (Spark's ``MemoryConsumer``).

    Consumers hold task-scoped, unevictable memory.  When the arena
    cannot satisfy another consumer's acquire it asks the largest
    sibling to :meth:`spill`, which must release its grants (via
    :meth:`UnifiedMemoryManager.execution_release`) and return the bytes
    it gave back.
    """

    @property
    def consumer_name(self) -> str:
        """Stable label for traces and diagnostics."""
        ...

    def memory_used(self) -> int:
        """Execution bytes this consumer currently holds."""
        ...

    def spill(self) -> int:
        """Release held memory (writing state out); return bytes freed."""
        ...


@dataclass
class _StorageEntry:
    """One storage-side resident: a cached block or a Deca page group."""

    name: str
    nbytes: int
    tick: int
    # ``None`` marks a pinned entry (e.g. a page group still being
    # built): it counts against the arena but cannot be evicted yet.
    evict: Optional[Callable[[], None]] = None


@dataclass
class ArenaStats:
    """Monotonic counters over one arena's lifetime (bench/ablation)."""

    acquired_bytes: int = 0
    granted_bytes: int = 0
    released_bytes: int = 0
    storage_acquired_bytes: int = 0
    storage_released_bytes: int = 0
    borrow_events: int = 0
    borrowed_bytes: int = 0
    evict_events: int = 0
    evicted_bytes: int = 0
    spill_events: int = 0
    spilled_bytes: int = 0
    reject_events: int = 0
    denied_bytes: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "acquired_bytes": self.acquired_bytes,
            "granted_bytes": self.granted_bytes,
            "released_bytes": self.released_bytes,
            "storage_acquired_bytes": self.storage_acquired_bytes,
            "storage_released_bytes": self.storage_released_bytes,
            "borrow_events": self.borrow_events,
            "borrowed_bytes": self.borrowed_bytes,
            "evict_events": self.evict_events,
            "evicted_bytes": self.evicted_bytes,
            "spill_events": self.spill_events,
            "spilled_bytes": self.spilled_bytes,
            "reject_events": self.reject_events,
            "denied_bytes": self.denied_bytes,
        }


class StaticMemoryArena:
    """The legacy static split, as one accounting object per executor.

    Cache eviction stays inside :class:`~repro.spark.cache.CacheStore`
    (LRU against ``config.storage_bytes``) exactly as before; the one
    behavioural fix is the *shared* shuffle pool: every map-side writer
    now charges its buffer into ``shuffle_used``, so K concurrent
    writers spill once their **combined** buffers exceed the budget
    instead of each privately holding a full budget.
    """

    mode = "static"

    def __init__(self, config: DecaConfig) -> None:
        self.config = config
        self.shuffle_budget = config.shuffle_bytes
        self.shuffle_used = 0
        # Race sanitizer; set by the context when config.sanitize.
        self.vclock: Optional[VClockChecker] = None

    # -- shared shuffle pool ------------------------------------------------
    def shuffle_acquire(self, nbytes: int) -> None:
        """Charge *nbytes* of map-side buffer into the shared pool."""
        self.shuffle_used += nbytes

    def shuffle_release(self, nbytes: int) -> None:
        """Return buffer bytes to the pool (spill, flush or abort)."""
        self.shuffle_used -= nbytes
        if self.shuffle_used < 0:
            self.shuffle_used = 0

    def shuffle_over_budget(self) -> bool:
        """Whether the combined buffered bytes exceed the shuffle budget."""
        return self.shuffle_used > self.shuffle_budget


class UnifiedMemoryManager:
    """One execution+storage arena per executor (Spark 1.6 semantics).

    Sizing: the arena manages ``config.arena_bytes`` of the executor's
    heap; ``config.storage_region_bytes`` of it is the storage region
    execution can never evict into.  Two counters partition the arena —
    ``execution_used`` and ``storage_used`` — with the invariant that
    their sum never exceeds the total (pinned storage growth excepted,
    see :meth:`storage_grow`).

    Borrowing (§: docs/memory_model.md):

    * storage fills free execution memory beyond its region
      (``memory:borrow`` with ``side="storage"``);
    * execution reclaims borrowed storage by evicting LRU entries down
      to the region floor (``memory:evict``), and expands into unused
      storage-region memory (``memory:borrow`` with
      ``side="execution"``); its memory is unevictable until released.
    """

    mode = "unified"

    def __init__(self, config: DecaConfig, *,
                 clock: Optional[SimClock] = None,
                 tracer: Optional[Tracer] = None,
                 pid: int = 0) -> None:
        self.config = config
        self.total = config.arena_bytes
        self.storage_region = config.storage_region_bytes
        self.clock = clock
        self.tracer = tracer
        self.pid = pid
        self.execution_used = 0
        self.storage_used = 0
        self.stats = ArenaStats()
        self._entries: dict[str, _StorageEntry] = {}
        self._tick = 0
        # Active tasks: key -> execution bytes attributed to the task.
        self._task_used: dict[int, int] = {}
        self._task_keys = 0
        self._task_stack: list[int] = []
        # Live execution consumers:
        # id(consumer) -> (consumer, used, owning task key).
        self._consumers: dict[int, tuple[MemoryConsumer, int, int]] = {}
        # Race sanitizer; set by the context when config.sanitize.
        self.vclock: Optional[VClockChecker] = None

    # -- events ---------------------------------------------------------------
    def _emit(self, event: str, **args: object) -> None:
        ts = self.clock.now_ms if self.clock is not None else 0.0
        if self.tracer is not None:
            self.tracer.instant(f"memory:{event}", "memory", ts_ms=ts,
                                pid=self.pid, **args)
        if _memory_observers:
            payload = dict(args)
            for observer in list(_memory_observers):
                observer(event, payload)

    # -- derived views --------------------------------------------------------
    @property
    def free_bytes(self) -> int:
        return max(0, self.total - self.execution_used - self.storage_used)

    @property
    def active_tasks(self) -> int:
        return max(1, len(self._task_used))

    def execution_pool_size(self) -> int:
        """The execution pool's current maximum: everything storage has
        not claimed inside its protected region (Spark's
        ``maxMemory - min(storageUsed, storageRegionSize)``)."""
        return self.total - min(self.storage_used, self.storage_region)

    def max_per_task(self) -> int:
        """Upper fair-share bound: ``pool / N`` for N active tasks."""
        return self.execution_pool_size() // self.active_tasks

    def min_per_task(self) -> int:
        """Lower fair-share bound: ``pool / 2N`` for N active tasks."""
        return self.execution_pool_size() // (2 * self.active_tasks)

    def task_used(self, key: int) -> int:
        return self._task_used.get(key, 0)

    # -- task lifecycle -------------------------------------------------------
    def task_started(self) -> int:
        """Register a task slot; returns its arena key."""
        self._task_keys += 1
        key = self._task_keys
        self._task_used[key] = 0
        self._task_stack.append(key)
        if self.vclock is not None:
            self.vclock.note_grant(f"arena:{self.pid}:{key}")
        return key

    def task_finished(self, key: int) -> int:
        """Drop a task slot, force-releasing any leftover grants."""
        if self.vclock is not None:
            self.vclock.note_grant_release(f"arena:{self.pid}:{key}")
        leftover = self._task_used.pop(key, 0)
        if key in self._task_stack:
            self._task_stack.remove(key)
        for ident in [i for i, entry in self._consumers.items()
                      if entry[2] == key]:
            del self._consumers[ident]
        if leftover > 0:
            self.execution_used -= leftover
            self.stats.released_bytes += leftover
            self._emit("release", task=key, nbytes=leftover,
                       reason="task-end",
                       execution_used=self.execution_used,
                       storage_used=self.storage_used)
        return leftover

    def current_task_key(self) -> int:
        """The innermost active task's key (slot 0 outside any task)."""
        if self._task_stack:
            return self._task_stack[-1]
        if 0 not in self._task_used:
            self._task_used[0] = 0
        return 0

    # -- execution side -------------------------------------------------------
    def execution_acquire(self, nbytes: int,
                          consumer: Optional[MemoryConsumer] = None,
                          task_key: Optional[int] = None) -> int:
        """Grant up to *nbytes* of unevictable execution memory.

        Returns the granted bytes (possibly zero).  The grant is clamped
        so the task never exceeds ``pool/N``; to satisfy it the arena
        first reclaims storage borrowed beyond the region floor
        (evicting LRU entries), then cooperatively spills the largest
        sibling consumer.
        """
        if nbytes <= 0:
            return 0
        key = task_key if task_key is not None else self.current_task_key()
        if consumer is not None:
            # A consumer's grants all live under the task that first
            # charged it, so a later cooperative spill releases from the
            # right slot even when another task triggered it.
            entry = self._consumers.get(id(consumer))
            if entry is not None and task_key is None:
                key = entry[2]
        if key not in self._task_used:
            self._task_used[key] = 0
        self.stats.acquired_bytes += nbytes
        used = self._task_used[key]
        want = min(nbytes, max(0, self.max_per_task() - used))
        if want > 0 and self.free_bytes < want:
            # Reclaim memory storage borrowed from the execution side.
            needed = want - self.free_bytes
            reclaimable = max(0, self.storage_used - self.storage_region)
            if reclaimable > 0:
                self._evict_storage(min(needed, reclaimable),
                                    reason="execution-demand")
        if want > 0 and self.free_bytes < want:
            self._spill_siblings(want - self.free_bytes, consumer)
        granted = min(want, self.free_bytes)
        if granted <= 0:
            self.stats.denied_bytes += nbytes
            self._emit("acquire", task=key, requested=nbytes, granted=0,
                       consumer=(consumer.consumer_name
                                 if consumer is not None else ""),
                       execution_used=self.execution_used,
                       storage_used=self.storage_used)
            return 0
        borrowed_before = max(0, self.execution_used
                              - (self.total - self.storage_region))
        self.execution_used += granted
        self._task_used[key] = used + granted
        if consumer is not None:
            ident = id(consumer)
            _, held, _ = self._consumers.get(ident, (consumer, 0, key))
            self._consumers[ident] = (consumer, held + granted, key)
        self.stats.granted_bytes += granted
        if granted < nbytes:
            self.stats.denied_bytes += nbytes - granted
        self._emit("acquire", task=key, requested=nbytes, granted=granted,
                   consumer=(consumer.consumer_name
                             if consumer is not None else ""),
                   execution_used=self.execution_used,
                   storage_used=self.storage_used)
        borrowed_after = max(0, self.execution_used
                             - (self.total - self.storage_region))
        if borrowed_after > borrowed_before:
            delta = borrowed_after - borrowed_before
            self.stats.borrow_events += 1
            self.stats.borrowed_bytes += delta
            self._emit("borrow", side="execution", nbytes=delta,
                       execution_used=self.execution_used,
                       storage_used=self.storage_used)
        return granted

    def execution_release(self, nbytes: int,
                          consumer: Optional[MemoryConsumer] = None,
                          task_key: Optional[int] = None) -> int:
        """Return execution memory; releases are clamped to the held
        amount so accounting can never go negative."""
        if nbytes <= 0:
            return 0
        key = task_key if task_key is not None else self.current_task_key()
        entry = None
        if consumer is not None:
            entry = self._consumers.get(id(consumer))
            if entry is None:
                # No outstanding grants for this consumer — its task may
                # already have force-released them at task end.  Freeing
                # from the ambient slot here would return bytes granted
                # to *other* consumers.
                return 0
            if task_key is None:
                # Credit the task the consumer's grants were charged
                # under (a cooperative spill may run inside a sibling
                # task's acquire).
                key = entry[2]
        held = self._task_used.get(key, 0)
        freed = min(nbytes, held, self.execution_used)
        if entry is not None:
            # A consumer can only return what it was granted; sibling
            # grants charged to the same task stay untouched.
            freed = min(freed, entry[1])
        if freed <= 0:
            return 0
        self._task_used[key] = held - freed
        self.execution_used -= freed
        if entry is not None:
            remaining = entry[1] - freed
            ident = id(entry[0])
            if remaining > 0:
                self._consumers[ident] = (entry[0], remaining, entry[2])
            else:
                del self._consumers[ident]
        self.stats.released_bytes += freed
        self._emit("release", task=key, nbytes=freed, reason="release",
                   execution_used=self.execution_used,
                   storage_used=self.storage_used)
        return freed

    def _spill_siblings(self, needed: int,
                        requester: Optional[MemoryConsumer]) -> int:
        """Cooperative spilling: ask the largest sibling consumers to
        write their state out until *needed* bytes are free."""
        freed_total = 0
        ranked = sorted(self._consumers.values(), key=lambda item: -item[1])
        for consumer, held, _key in ranked:
            if freed_total >= needed:
                break
            if requester is not None and consumer is requester:
                continue
            if held <= 0:
                continue
            freed = consumer.spill()
            if freed <= 0:
                continue
            freed_total += freed
            self.stats.spill_events += 1
            self.stats.spilled_bytes += freed
            self._emit("spill", consumer=consumer.consumer_name,
                       nbytes=freed, reason="cooperative",
                       execution_used=self.execution_used,
                       storage_used=self.storage_used)
        return freed_total

    # -- storage side ---------------------------------------------------------
    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def storage_acquire(self, name: str, nbytes: int,
                        evict: Optional[Callable[[], None]] = None) -> bool:
        """Claim *nbytes* of storage for entry *name*.

        Storage may use every byte execution is not holding (borrowing
        free execution memory), evicting its own LRU entries to make
        room — but it cannot evict execution.  Returns ``False`` (with a
        ``memory:reject`` event) when the entry cannot fit even after
        evicting everything evictable: the caller should fail fast
        (store straight to disk) instead of thrashing.
        """
        if name in self._entries:
            raise ValueError(f"storage entry {name!r} already exists")
        if nbytes < 0:
            raise ValueError(f"negative storage claim: {nbytes}")
        limit = self.total - self.execution_used
        if nbytes > limit:
            self.stats.reject_events += 1
            self._emit("reject", entry=name, nbytes=nbytes, limit=limit,
                       reason="exceeds-storage-limit")
            return False
        self._make_storage_room(nbytes)
        if self.storage_used + nbytes > limit:
            self.stats.reject_events += 1
            self._emit("reject", entry=name, nbytes=nbytes, limit=limit,
                       reason="no-evictable-room")
            return False
        borrowed_before = max(0, self.storage_used - self.storage_region)
        self._entries[name] = _StorageEntry(name=name, nbytes=nbytes,
                                            tick=self._next_tick(),
                                            evict=evict)
        self.storage_used += nbytes
        self.stats.storage_acquired_bytes += nbytes
        self._emit("acquire", entry=name, nbytes=nbytes, side="storage",
                   execution_used=self.execution_used,
                   storage_used=self.storage_used)
        borrowed_after = max(0, self.storage_used - self.storage_region)
        if borrowed_after > borrowed_before:
            delta = borrowed_after - borrowed_before
            self.stats.borrow_events += 1
            self.stats.borrowed_bytes += delta
            self._emit("borrow", side="storage", nbytes=delta,
                       execution_used=self.execution_used,
                       storage_used=self.storage_used)
        return True

    def storage_register_pinned(self, name: str, nbytes: int = 0) -> None:
        """Register an in-build entry (a growing page group): it counts
        against the arena but cannot be evicted until adopted."""
        if name in self._entries:
            raise ValueError(f"storage entry {name!r} already exists")
        self._entries[name] = _StorageEntry(name=name, nbytes=0,
                                            tick=self._next_tick())
        if nbytes > 0:
            self.storage_grow(name, nbytes)

    def storage_adopt(self, name: str, nbytes: int,
                      evict: Callable[[], None]) -> None:
        """Seal an in-build entry: fix its size and make it evictable."""
        entry = self._entries.get(name)
        if entry is None:
            # The builder never registered (e.g. a bare page group made
            # without the arena attached): account it now.
            if not self.storage_acquire(name, nbytes, evict=evict):
                # Force-register; the bytes already exist on the heap.
                self._entries[name] = _StorageEntry(
                    name=name, nbytes=nbytes, tick=self._next_tick(),
                    evict=evict)
                self.storage_used += nbytes
                self.stats.storage_acquired_bytes += nbytes
            return
        delta = nbytes - entry.nbytes
        if delta:
            self.storage_grow(name, delta)
        entry.evict = evict
        entry.tick = self._next_tick()

    def storage_grow(self, name: str, delta: int) -> None:
        """Resize an existing entry by *delta* bytes (page-group growth
        or trim).  Growth evicts LRU entries best-effort; because the
        caller's bytes already live on the heap, an unevictable shortfall
        overdraws the arena rather than failing (heap pressure then
        routes back through :meth:`release_for_pressure`)."""
        entry = self._entries.get(name)
        if entry is None:
            return
        if delta > 0:
            room = self.total - self.execution_used - self.storage_used
            if delta > room:
                self._make_storage_room(delta)
            borrowed_before = max(0, self.storage_used
                                  - self.storage_region)
            entry.nbytes += delta
            self.storage_used += delta
            self.stats.storage_acquired_bytes += delta
            self._emit("grow", entry=name, nbytes=delta,
                       total=entry.nbytes,
                       execution_used=self.execution_used,
                       storage_used=self.storage_used)
            borrowed_after = max(0, self.storage_used
                                 - self.storage_region)
            if borrowed_after > borrowed_before:
                grown = borrowed_after - borrowed_before
                self.stats.borrow_events += 1
                self.stats.borrowed_bytes += grown
                self._emit("borrow", side="storage", nbytes=grown,
                           execution_used=self.execution_used,
                           storage_used=self.storage_used)
        elif delta < 0:
            shrink = min(-delta, entry.nbytes)
            entry.nbytes -= shrink
            self.storage_used -= shrink
            self.stats.storage_released_bytes += shrink

    def storage_touch(self, name: str) -> None:
        entry = self._entries.get(name)
        if entry is not None:
            entry.tick = self._next_tick()

    def storage_contains(self, name: str) -> bool:
        return name in self._entries

    def storage_discard(self, name: str) -> int:
        """Forget entry *name* (idempotent); returns the bytes released."""
        entry = self._entries.pop(name, None)
        if entry is None:
            return 0
        self.storage_used -= entry.nbytes
        self.stats.storage_released_bytes += entry.nbytes
        self._emit("release", entry=name, nbytes=entry.nbytes,
                   reason="storage-discard",
                   execution_used=self.execution_used,
                   storage_used=self.storage_used)
        return entry.nbytes

    def _lru_entries(self) -> list[_StorageEntry]:
        return sorted((e for e in self._entries.values()
                       if e.evict is not None), key=lambda e: e.tick)

    def _make_storage_room(self, nbytes: int) -> None:
        """Evict LRU storage so a new *nbytes* storage claim fits."""
        limit = self.total - self.execution_used
        while (self.storage_used + nbytes > limit
               and any(e.evict is not None
                       for e in self._entries.values())):
            victim = self._lru_entries()[0]
            self._evict_entry(victim, reason="storage-demand")

    def _evict_storage(self, nbytes: int, reason: str) -> int:
        """Evict LRU entries until *nbytes* are reclaimed (never below
        the storage-region floor when execution is the claimant)."""
        freed = 0
        floor = self.storage_region if reason == "execution-demand" else 0
        while freed < nbytes and self.storage_used > floor:
            candidates = self._lru_entries()
            if not candidates:
                break
            freed += self._evict_entry(candidates[0], reason=reason)
        return freed

    def _evict_entry(self, entry: _StorageEntry, reason: str) -> int:
        nbytes = entry.nbytes
        evict = entry.evict
        if evict is not None:
            # The callback swaps the block/pages to disk and is expected
            # to discard the entry; discard again defensively (no-op
            # when already gone).
            evict()
        self.storage_discard(entry.name)
        self.stats.evict_events += 1
        self.stats.evicted_bytes += nbytes
        self._emit("evict", entry=entry.name, nbytes=nbytes, reason=reason,
                   execution_used=self.execution_used,
                   storage_used=self.storage_used)
        return nbytes

    # -- heap pressure --------------------------------------------------------
    def release_for_pressure(self, bytes_needed: int) -> int:
        """Heap pressure handler: one plane for every release path.

        Storage evicts first (LRU, straight to its floor of zero — heap
        pressure outranks the region guarantee), then execution
        consumers spill, largest first.
        """
        freed = self._evict_storage(bytes_needed, reason="heap-pressure")
        if freed < bytes_needed:
            freed += self._spill_siblings(bytes_needed - freed, None)
        return freed

    # -- reporting ------------------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Point-in-time arena state plus lifetime counters."""
        state = {
            "total_bytes": self.total,
            "storage_region_bytes": self.storage_region,
            "execution_used": self.execution_used,
            "storage_used": self.storage_used,
            "storage_entries": len(self._entries),
            "active_tasks": len(self._task_used),
        }
        state.update(self.stats.to_dict())
        return state

    def __repr__(self) -> str:
        return (f"UnifiedMemoryManager(total={self.total} B, "
                f"exec={self.execution_used} B, "
                f"storage={self.storage_used} B, "
                f"entries={len(self._entries)})")


MemoryArena = StaticMemoryArena | UnifiedMemoryManager


def create_memory_arena(config: DecaConfig, *,
                        clock: Optional[SimClock] = None,
                        tracer: Optional[Tracer] = None,
                        pid: int = 0) -> MemoryArena:
    """Build the arena matching ``config.memory_mode``."""
    if config.memory_mode == "unified":
        return UnifiedMemoryManager(config, clock=clock, tracer=tracer,
                                    pid=pid)
    return StaticMemoryArena(config)
