"""Byte-layout schemas for decomposed UDTs (paper §2.3, Appendix B).

A *schema* describes how one UDT instance is flattened into a byte
sequence: all object headers and references are discarded; primitive fields
are stored in declaration order; nested SFST/RFST objects are inlined.
Arrays come in two flavours:

* **fixed-length** arrays (proved by the global analysis, e.g. the
  ``features.data`` array of LR whose length is the global constant ``D``)
  are inlined with no length slot — their element offsets are static;
* **variable-length** arrays (RFSTs: per-instance length fixed after
  construction, e.g. a String's character array) carry a 4-byte length
  prefix, and offsets after them are computed at access time — the
  "synthesized static methods to compute the data size" of Appendix B.

Schemas *pack* Python values into buffers and *unpack* them back; the
record values are plain tuples in field order, arrays are tuples of element
values.  :mod:`repro.memory.sudt` builds attribute-style accessors on top.
"""

from __future__ import annotations

import struct
from typing import Any, Sequence

from ..analysis.size_type import SizeType
from ..analysis.udt import (
    ArrayType,
    ClassType,
    DataType,
    PrimitiveType,
)
from ..errors import MemoryLayoutError

_STRUCT_CODES: dict[str, str] = {
    "boolean": "?",
    "byte": "b",
    "char": "H",   # a UTF-16 code unit, as on the JVM
    "short": "h",
    "int": "i",
    "float": "f",
    "long": "q",
    "double": "d",
}

_LENGTH_PREFIX = struct.Struct("<I")


class Schema:
    """Base class for layout nodes.

    ``fixed_size`` is the byte size of every instance, or ``None`` when the
    size is per-instance (variable-length arrays in the graph).
    """

    fixed_size: int | None

    def size_of(self, value: Any) -> int:
        """Packed size of *value* under this schema."""
        raise NotImplementedError

    def pack_into(self, buffer: bytearray | memoryview, offset: int,
                  value: Any) -> int:
        """Write *value* at *offset*; returns the offset past the data."""
        raise NotImplementedError

    def unpack_from(self, buffer: bytes | bytearray | memoryview,
                    offset: int) -> tuple[Any, int]:
        """Read one value at *offset*; returns ``(value, next_offset)``."""
        raise NotImplementedError

    def pack(self, value: Any) -> bytes:
        """Pack *value* into a fresh byte string."""
        out = bytearray(self.size_of(value))
        self.pack_into(out, 0, value)
        return bytes(out)

    def unpack(self, data: bytes | bytearray | memoryview) -> Any:
        """Unpack one value from the start of *data*."""
        value, _ = self.unpack_from(data, 0)
        return value


class PrimitiveSlot(Schema):
    """A single primitive value."""

    __slots__ = ("primitive", "_struct", "fixed_size")

    def __init__(self, primitive: PrimitiveType) -> None:
        code = _STRUCT_CODES.get(primitive.name)
        if code is None:
            raise MemoryLayoutError(
                f"no struct code for primitive {primitive.name!r}")
        self.primitive = primitive
        self._struct = struct.Struct("<" + code)
        self.fixed_size = self._struct.size

    def size_of(self, value: Any) -> int:
        return self.fixed_size

    def pack_into(self, buffer, offset: int, value: Any) -> int:
        self._struct.pack_into(buffer, offset, value)
        return offset + self.fixed_size

    def unpack_from(self, buffer, offset: int) -> tuple[Any, int]:
        (value,) = self._struct.unpack_from(buffer, offset)
        return value, offset + self.fixed_size

    def __repr__(self) -> str:
        return f"PrimitiveSlot({self.primitive.name})"


class RecordSchema(Schema):
    """A class flattened into its fields, in declaration order.

    When every field is fixed-size, per-field offsets are precomputed —
    these are the "relative offset values of all the UDT fields" the
    synthesized SUDTs use (Appendix B).
    """

    def __init__(self, name: str,
                 fields: Sequence[tuple[str, Schema]]) -> None:
        if not fields:
            raise MemoryLayoutError(
                f"record schema {name!r} needs at least one field")
        self.name = name
        self.fields = tuple(fields)
        self._index = {fname: i for i, (fname, _) in enumerate(self.fields)}
        if len(self._index) != len(self.fields):
            raise MemoryLayoutError(f"duplicate field names in {name!r}")
        sizes = [schema.fixed_size for _, schema in self.fields]
        if all(size is not None for size in sizes):
            self.fixed_size = sum(sizes)  # type: ignore[arg-type]
            if self.fixed_size == 0:
                # A zero-byte record cannot be addressed inside a page
                # (sequential scans could never advance past it).
                raise MemoryLayoutError(
                    f"record schema {name!r} has zero size")
            offsets: list[int | None] = []
            acc = 0
            for size in sizes:
                offsets.append(acc)
                acc += size  # type: ignore[operator]
            self.field_offsets: tuple[int | None, ...] = tuple(offsets)
        else:
            self.fixed_size = None
            # Offsets are static only up to the first variable field.
            offsets = []
            acc: int | None = 0
            for size in sizes:
                offsets.append(acc)
                if acc is None or size is None:
                    acc = None
                else:
                    acc += size
            self.field_offsets = tuple(offsets)

    def field_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise MemoryLayoutError(
                f"schema {self.name!r} has no field {name!r}") from None

    def field_schema(self, name: str) -> Schema:
        return self.fields[self.field_index(name)][1]

    def field_offset(self, buffer, base_offset: int, index: int) -> int:
        """Absolute offset of field *index* for the record at *base_offset*.

        Static when all preceding fields are fixed-size; otherwise computed
        by walking the preceding variable-size fields.
        """
        static = self.field_offsets[index]
        if static is not None:
            return base_offset + static
        offset = base_offset
        for _, schema in self.fields[:index]:
            if schema.fixed_size is not None:
                offset += schema.fixed_size
            else:
                offset = schema.skip(buffer, offset)
        return offset

    def size_of(self, value: Any) -> int:
        if self.fixed_size is not None:
            return self.fixed_size
        values = self._as_sequence(value)
        return sum(schema.size_of(v)
                   for (_, schema), v in zip(self.fields, values))

    def pack_into(self, buffer, offset: int, value: Any) -> int:
        values = self._as_sequence(value)
        for (_, schema), v in zip(self.fields, values):
            offset = schema.pack_into(buffer, offset, v)
        return offset

    def unpack_from(self, buffer, offset: int) -> tuple[Any, int]:
        out = []
        for _, schema in self.fields:
            value, offset = schema.unpack_from(buffer, offset)
            out.append(value)
        return tuple(out), offset

    def skip(self, buffer, offset: int) -> int:
        """Offset just past the record at *offset* without decoding it."""
        if self.fixed_size is not None:
            return offset + self.fixed_size
        for _, schema in self.fields:
            offset = schema.skip(buffer, offset)
        return offset

    def _as_sequence(self, value: Any) -> Sequence[Any]:
        if isinstance(value, (tuple, list)):
            if len(value) != len(self.fields):
                raise MemoryLayoutError(
                    f"record {self.name!r} expects {len(self.fields)} "
                    f"values, got {len(value)}")
            return value
        raise MemoryLayoutError(
            f"record {self.name!r} expects a tuple/list, got "
            f"{type(value).__name__}")

    def __repr__(self) -> str:
        return (f"RecordSchema({self.name}, "
                f"fields={[n for n, _ in self.fields]})")


class FixedArraySchema(Schema):
    """An array whose length was proved constant by the global analysis."""

    def __init__(self, element: Schema, length: int) -> None:
        if length < 0:
            raise MemoryLayoutError(f"negative array length {length}")
        if element.fixed_size is None:
            raise MemoryLayoutError(
                "fixed-length arrays need fixed-size elements")
        self.element = element
        self.length = length
        self.fixed_size = element.fixed_size * length
        self._bulk = None
        if isinstance(element, PrimitiveSlot):
            code = _STRUCT_CODES[element.primitive.name]
            self._bulk = struct.Struct(f"<{length}{code}")

    def size_of(self, value: Any) -> int:
        return self.fixed_size

    def pack_into(self, buffer, offset: int, value: Any) -> int:
        if len(value) != self.length:
            raise MemoryLayoutError(
                f"fixed array expects {self.length} elements, "
                f"got {len(value)}")
        if self._bulk is not None:
            self._bulk.pack_into(buffer, offset, *value)
            return offset + self.fixed_size
        for element in value:
            offset = self.element.pack_into(buffer, offset, element)
        return offset

    def unpack_from(self, buffer, offset: int) -> tuple[Any, int]:
        if self._bulk is not None:
            return (self._bulk.unpack_from(buffer, offset),
                    offset + self.fixed_size)
        out = []
        for _ in range(self.length):
            value, offset = self.element.unpack_from(buffer, offset)
            out.append(value)
        return tuple(out), offset

    def __repr__(self) -> str:
        return f"FixedArraySchema({self.element!r} x {self.length})"


class VarArraySchema(Schema):
    """An array sized per instance: 4-byte length prefix plus elements.

    Elements must be fixed-size (an RFST array of variable elements could
    not have been classified decomposable in the first place).
    """

    fixed_size = None

    def __init__(self, element: Schema) -> None:
        if element.fixed_size is None:
            raise MemoryLayoutError(
                "variable arrays need fixed-size elements")
        self.element = element
        self._element_code = None
        if isinstance(element, PrimitiveSlot):
            self._element_code = _STRUCT_CODES[element.primitive.name]

    def size_of(self, value: Any) -> int:
        return _LENGTH_PREFIX.size + self.element.fixed_size * len(value)

    def pack_into(self, buffer, offset: int, value: Any) -> int:
        _LENGTH_PREFIX.pack_into(buffer, offset, len(value))
        offset += _LENGTH_PREFIX.size
        if self._element_code is not None:
            packer = struct.Struct(f"<{len(value)}{self._element_code}")
            packer.pack_into(buffer, offset, *value)
            return offset + packer.size
        for element in value:
            offset = self.element.pack_into(buffer, offset, element)
        return offset

    def unpack_from(self, buffer, offset: int) -> tuple[Any, int]:
        (length,) = _LENGTH_PREFIX.unpack_from(buffer, offset)
        offset += _LENGTH_PREFIX.size
        if self._element_code is not None:
            unpacker = struct.Struct(f"<{length}{self._element_code}")
            return (unpacker.unpack_from(buffer, offset),
                    offset + unpacker.size)
        out = []
        for _ in range(length):
            value, offset = self.element.unpack_from(buffer, offset)
            out.append(value)
        return tuple(out), offset

    def skip(self, buffer, offset: int) -> int:
        (length,) = _LENGTH_PREFIX.unpack_from(buffer, offset)
        return (offset + _LENGTH_PREFIX.size
                + self.element.fixed_size * length)

    def length_at(self, buffer, offset: int) -> int:
        """The stored length of the array at *offset*."""
        (length,) = _LENGTH_PREFIX.unpack_from(buffer, offset)
        return length

    def __repr__(self) -> str:
        return f"VarArraySchema({self.element!r})"


# RecordSchema.skip needs PrimitiveSlot/FixedArraySchema to have skip too.
def _fixed_skip(self, buffer, offset: int) -> int:
    return offset + self.fixed_size


PrimitiveSlot.skip = _fixed_skip            # type: ignore[attr-defined]
FixedArraySchema.skip = _fixed_skip         # type: ignore[attr-defined]


def build_schema(udt: DataType,
                 size_type: SizeType,
                 fixed_lengths: dict[int, int] | None = None,
                 _seen: set[int] | None = None) -> Schema:
    """Build the byte-layout schema for a decomposable *udt*.

    *size_type* is the (globally refined) classification; only SFSTs and
    RFSTs may be decomposed.  *fixed_lengths* maps ``id(array_type)`` to
    the constant length proved by the analysis — arrays present there are
    inlined, all others get length prefixes.

    Fields with polymorphic type-sets cannot be flattened (the layout would
    need runtime type tags), mirroring the paper's restriction to concrete
    object graphs.
    """
    if not size_type.decomposable:
        raise MemoryLayoutError(
            f"{udt.name} is {size_type.value}; only SFSTs/RFSTs can be "
            "decomposed (§3.1)")
    return _schema_for(udt, fixed_lengths or {}, _seen or set())


def _schema_for(udt: DataType, fixed_lengths: dict[int, int],
                seen: set[int]) -> Schema:
    if isinstance(udt, PrimitiveType):
        return PrimitiveSlot(udt)
    if id(udt) in seen:
        raise MemoryLayoutError(
            f"recursively-defined type {udt.name} cannot be laid out")
    seen = seen | {id(udt)}
    if isinstance(udt, ArrayType):
        element = _element_schema(udt, fixed_lengths, seen)
        length = fixed_lengths.get(id(udt))
        if length is not None:
            return FixedArraySchema(element, length)
        return VarArraySchema(element)
    if isinstance(udt, ClassType):
        if not udt.fields:
            raise MemoryLayoutError(
                f"class {udt.name!r} has no fields to lay out")
        fields: list[tuple[str, Schema]] = []
        for field in udt.fields:
            runtime = _sole_runtime_type(udt, field)
            fields.append(
                (field.name, _schema_for(runtime, fixed_lengths, seen)))
        return RecordSchema(udt.name, fields)
    raise MemoryLayoutError(f"cannot lay out {udt!r}")


def _element_schema(udt: ArrayType, fixed_lengths: dict[int, int],
                    seen: set[int]) -> Schema:
    type_set = udt.element_field.get_type_set()
    if len(type_set) != 1:
        raise MemoryLayoutError(
            f"array {udt.name} has a polymorphic element type-set; "
            "it cannot be decomposed")
    return _schema_for(type_set[0], fixed_lengths, seen)


def _sole_runtime_type(owner: ClassType, field) -> DataType:
    type_set = field.get_type_set()
    if len(type_set) != 1:
        raise MemoryLayoutError(
            f"field {owner.name}.{field.name} has a polymorphic type-set "
            f"({[t.name for t in type_set]}); it cannot be decomposed")
    return type_set[0]


# -- column-major emission (structure-of-arrays) ----------------------------
# The decomposition layer above lays one *record* out contiguously
# (row-major).  The column-major mode emits one contiguous run per *field*
# instead — the shared columnar organization of Sparkle (PAPERS.md) fused
# with Deca's lifetime-grouped pages: each run lives in its own page of a
# page group, and reads go through typed zero-copy views
# (``memoryview.cast``) rather than per-record ``struct`` unpacking.


class FixedColumnLayout:
    """A fixed-width column: values packed as one contiguous run."""

    __slots__ = ("code", "item_size")

    def __init__(self, code: str) -> None:
        if code not in _STRUCT_CODES.values():
            raise MemoryLayoutError(
                f"no fixed-width column layout for struct code {code!r}")
        self.code = code
        self.item_size = struct.calcsize("<" + code)

    def emit(self, values: Sequence[Any]) -> bytes:
        """Pack *values* into one run of ``len(values)`` items."""
        return struct.pack(f"<{len(values)}{self.code}", *values)

    def view(self, buffer: bytearray | memoryview, offset: int,
             length: int) -> memoryview:
        """Typed zero-copy view over the run's bytes.

        Indexing the result yields Python scalars directly — no
        per-element ``struct`` round-trip, no intermediate copy.
        """
        if length % self.item_size:
            raise MemoryLayoutError(
                f"run of {length} B is not a whole number of "
                f"{self.code!r} items")
        return memoryview(buffer)[offset:offset + length].cast(self.code)

    def __repr__(self) -> str:
        return f"FixedColumnLayout({self.code!r})"


class StringColumnLayout:
    """A var-width string column: a ``uint32`` offsets run + a UTF-8 blob
    run.

    ``offsets`` has ``count + 1`` entries; string *i* occupies blob bytes
    ``[offsets[i], offsets[i+1])``.  Prefix reads (``SUBSTR(col, 1, n)``)
    slice the blob without decoding the whole string.
    """

    __slots__ = ()

    offset_code = "I"
    offset_size = _LENGTH_PREFIX.size

    def emit(self, values: Sequence[str]) -> tuple[bytes, bytes]:
        """Pack *values* into ``(offsets_run, blob_run)``."""
        blob = bytearray()
        offsets = [0]
        for value in values:
            blob.extend(value.encode("utf-8"))
            offsets.append(len(blob))
        packed = struct.pack(f"<{len(offsets)}{self.offset_code}", *offsets)
        return packed, bytes(blob)

    def view(self, offsets_buffer: bytearray | memoryview,
             offsets_offset: int, offsets_length: int,
             blob_buffer: bytearray | memoryview,
             blob_offset: int, blob_length: int) -> "StringRunView":
        """Typed zero-copy reader over the column's two runs."""
        if offsets_length % self.offset_size:
            raise MemoryLayoutError(
                f"offsets run of {offsets_length} B is not a whole "
                "number of uint32 entries")
        offsets = memoryview(offsets_buffer)[
            offsets_offset:offsets_offset + offsets_length]
        blob = memoryview(blob_buffer)[blob_offset:blob_offset + blob_length]
        return StringRunView(offsets.cast(self.offset_code), blob)

    def __repr__(self) -> str:
        return "StringColumnLayout()"


class StringRunView:
    """Zero-copy accessor over a string column's offsets + blob views."""

    __slots__ = ("offsets", "blob")

    def __init__(self, offsets: memoryview, blob: memoryview) -> None:
        self.offsets = offsets
        self.blob = blob

    @property
    def count(self) -> int:
        return len(self.offsets) - 1

    def get(self, row: int) -> str:
        start = self.offsets[row]
        end = self.offsets[row + 1]
        return bytes(self.blob[start:end]).decode("utf-8")

    def get_prefix(self, row: int, length: int) -> str:
        """``SUBSTR(col, 1, length)`` without decoding the whole string."""
        start = self.offsets[row]
        end = min(start + length, self.offsets[row + 1])
        return bytes(self.blob[start:end]).decode("utf-8", errors="ignore")

    def __iter__(self):
        for row in range(self.count):
            yield self.get(row)

    def release(self) -> None:
        """Release both backing views (before the pages are reclaimed)."""
        try:
            self.offsets.release()
        except BufferError:
            pass
        try:
            self.blob.release()
        except BufferError:
            pass


ColumnLayout = FixedColumnLayout | StringColumnLayout


def columnar_plan(schema: RecordSchema
                  ) -> tuple[tuple[str, ColumnLayout], ...]:
    """Per-field column layouts for a fixed-schema (UDT-F/RFST) record.

    Primitive fields map to :class:`FixedColumnLayout`; char/byte array
    fields (JVM strings) map to :class:`StringColumnLayout`.  Anything
    else — nested records, polymorphic fields, arrays of non-character
    elements — has no column-major form and raises
    :class:`MemoryLayoutError`, which is the optimizer's signal to fall
    back to the row-major layout above.
    """
    plan: list[tuple[str, ColumnLayout]] = []
    for name, field_schema in schema.fields:
        if isinstance(field_schema, PrimitiveSlot):
            plan.append((name, FixedColumnLayout(
                _STRUCT_CODES[field_schema.primitive.name])))
        elif (isinstance(field_schema, VarArraySchema)
              and isinstance(field_schema.element, PrimitiveSlot)
              and field_schema.element.primitive.name in ("char", "byte")):
            plan.append((name, StringColumnLayout()))
        else:
            raise MemoryLayoutError(
                f"field {schema.name}.{name} has no column-major layout; "
                "only primitives and char/byte arrays (strings) "
                "decompose per column")
    return tuple(plan)


def reorder_fields_fixed_first(schema: RecordSchema) -> RecordSchema:
    """Appendix B's optimization: put fixed-size fields first.

    With every fixed-size field leading, more field offsets become static,
    so more accessor reads avoid the offset-scan.
    """
    fixed = [(n, s) for n, s in schema.fields if s.fixed_size is not None]
    variable = [(n, s) for n, s in schema.fields if s.fixed_size is None]
    return RecordSchema(schema.name, fixed + variable)
