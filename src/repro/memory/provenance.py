"""Runtime alias sanitizer: a provenance ledger for zero-copy borrows.

Deca's zero-copy paths hand out ``memoryview`` objects whose bytes live
*outside* the Python heap — in a :class:`repro.memory.tier.PageStoreTier`
mmap extent or a :class:`repro.exec.shm.SharedPageSegment`.  Nothing in
CPython ties those views to the lifecycle of their backing: freeing an
extent while a view is live silently lets the bytes be reused under the
reader (Sparkle / TeraHeap's "stale alias" failure mode, PAPERS.md).

The :class:`ProvenanceLedger` is the dynamic half of the DECA301–308
borrow checker (``repro.lint.borrow`` is the static half).  When
``DecaConfig.sanitize`` is on, every executor carries one ledger that

* records each exported view (**borrow**) with its backing resource —
  ``("extent", name)`` or ``("segment", name)`` — and its adopting page
  group once promoted;
* intercepts ``free`` / ``unlink`` / ``remap`` / ``reclaim`` and checks
  live borrows at each transition, so a violation is reported at the
  moment the aliasing bug happens, not when the corruption surfaces;
* poisons freed extents with :data:`POISON_BYTE` so any surviving alias
  reads an obviously-wrong sentinel instead of plausible stale data;
* reports every violation as a ``sanitize:*`` trace instant and in the
  integer summary that ``DecaContext.finish()`` folds into
  ``RunMetrics.sanitize`` — and fails the run with
  :class:`repro.errors.SanitizerError` if any violation was seen.

Liveness of a borrow is judged with two signals: a released view raises
``ValueError`` on attribute access (``memoryview.release`` semantics),
and a view whose only remaining reference is the ledger's own record is
garbage, not a borrow — detected with ``sys.getrefcount``.  A sub-view
sliced from a borrow keeps the *buffer* exported (release raises
``BufferError``) without bumping the parent's refcount, which is exactly
the signal :meth:`note_reclaim` uses for escaped adoptions.

Every method is a no-op-cheap dict/set update; when sanitize mode is off
no ledger exists at all and the engine hot paths pay a single
``is None`` test.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from ..obs.tracer import Tracer

#: Sentinel byte written over every freed extent in sanitize mode.  The
#: value is arbitrary but recognizable (0xDB ~ "dead bytes"); a reader
#: holding a stale alias sees a uniform 0xDB fill instead of whatever
#: the next tenant wrote.
POISON_BYTE = 0xDB

#: Violation slugs, one per DECA30x rule (same order as DECA301..308).
VIOLATION_SLUGS = (
    "use-after-free-extent",
    "use-after-unlink-segment",
    "double-free",
    "view-escapes-adoption",
    "remap-invalidates-export",
    "leak-at-finish",
    "cross-process-cold-alias",
    "unreleased-drain-copy",
)


def poison_fill(mm: Any, offset: int, length: int) -> int:
    """Overwrite ``mm[offset:offset+length]`` with the poison sentinel."""
    if length <= 0:
        return 0
    mm[offset:offset + length] = bytes([POISON_BYTE]) * length
    return length


@dataclass
class Borrow:
    """One exported zero-copy view and the resource backing it."""

    borrow_id: int
    kind: str                    # "extent" | "segment"
    resource: str                # extent / segment name
    view: memoryview | None
    nbytes: int
    transient: bool              # read-path export, expected short-lived
    group: str | None = None     # page group that adopted the view
    orphaned: bool = False       # adopting group was reclaimed
    released: bool = False


class ProvenanceLedger:
    """Records zero-copy borrows and checks lifecycle transitions.

    One ledger per executor (plus one driver-side ledger for shm segment
    ownership).  All counters are integers and all violation records are
    appended in program order, so the summary is byte-deterministic
    under a fixed seed.
    """

    def __init__(self, *, tracer: Tracer | None = None, clock: Any = None,
                 pid: int = 0) -> None:
        self.tracer = tracer
        self.clock = clock
        self.pid = pid
        self._next_id = 0
        self._borrows: dict[int, Borrow] = {}
        self._by_resource: dict[tuple[str, str], list[int]] = {}
        self._freed: set[tuple[str, str]] = set()
        self._cold: set[tuple[str, str]] = set()
        self._poisoned: dict[tuple[str, str], int] = {}
        self._drains: dict[str, int] = {}   # group name -> live copy count
        self.violations: list[dict[str, str]] = []
        self.counters: dict[str, int] = {
            "borrows": 0, "releases": 0, "allocs": 0, "frees": 0,
            "remaps": 0, "reclaims": 0, "demotes": 0, "drain_copies": 0,
            "poisoned_bytes": 0,
        }
        for slug in VIOLATION_SLUGS:
            self.counters[slug] = 0

    # -- liveness -----------------------------------------------------------
    def _is_attached(self, borrow: Borrow) -> bool:
        """The borrow's view still holds its buffer (not released)."""
        if borrow.released:
            return False
        view = borrow.view
        if view is None:
            return True
        try:
            view.nbytes
        except ValueError:
            borrow.released = True
            return False
        return True

    def _is_live(self, borrow: Borrow) -> bool:
        """Attached *and* referenced by someone other than the ledger."""
        if not self._is_attached(borrow):
            return False
        view = borrow.view
        if view is None:
            return True
        # Three references are accounted for right here: ``borrow.view``,
        # the local ``view`` binding and getrefcount's own argument.
        # Anything beyond that is an external holder.
        return sys.getrefcount(view) > 3

    # -- violation reporting ------------------------------------------------
    def _violation(self, slug: str, kind: str, resource: str,
                   detail: str) -> None:
        self.counters[slug] += 1
        self.violations.append({
            "rule": slug, "kind": kind, "resource": resource,
            "detail": detail,
        })
        if self.tracer is not None:
            ts = self.clock.now_ms if self.clock is not None else 0.0
            self.tracer.instant(f"sanitize:{slug}", "sanitize", ts_ms=ts,
                                pid=self.pid, kind=kind, resource=resource,
                                detail=detail)

    # -- registration -------------------------------------------------------
    def note_alloc(self, kind: str, resource: str) -> None:
        """A resource came (back) into existence; stale state is reset."""
        key = (kind, resource)
        self.counters["allocs"] += 1
        self._freed.discard(key)
        self._cold.discard(key)
        self._poisoned.pop(key, None)
        for borrow_id in self._by_resource.pop(key, []):
            borrow = self._borrows.get(borrow_id)
            if borrow is not None:
                borrow.released = True

    def borrow(self, kind: str, resource: str, *,
               view: memoryview | None = None, nbytes: int = 0,
               transient: bool = True) -> int:
        """Record one exported view over ``(kind, resource)``."""
        key = (kind, resource)
        if key in self._freed:
            self._violation(
                "use-after-free-extent" if kind != "segment"
                else "use-after-unlink-segment", kind, resource,
                "view exported from a resource already freed")
        self._next_id += 1
        borrow = Borrow(self._next_id, kind, resource, view,
                        nbytes if view is None else view.nbytes, transient)
        self._borrows[borrow.borrow_id] = borrow
        self._by_resource.setdefault(key, []).append(borrow.borrow_id)
        self.counters["borrows"] += 1
        return borrow.borrow_id

    def release(self, borrow_id: int) -> None:
        borrow = self._borrows.get(borrow_id)
        if borrow is not None and not borrow.released:
            borrow.released = True
            self.counters["releases"] += 1

    def retain(self, kind: str, resource: str,
               group: str | None = None) -> None:
        """Promote the resource's borrows from transient to owned.

        Called when a cache block adopts the exported views (``group`` =
        the adopting page group) or aliases them as its payload blob.
        """
        for borrow_id in self._by_resource.get((kind, resource), []):
            borrow = self._borrows[borrow_id]
            borrow.transient = False
            if group is not None:
                borrow.group = group

    # -- lifecycle interceptions --------------------------------------------
    def note_free(self, kind: str, resource: str) -> None:
        """The backing resource is being freed / unlinked right now."""
        key = (kind, resource)
        self.counters["frees"] += 1
        if key in self._freed:
            self._violation("double-free", kind, resource,
                            "resource freed twice without reallocation")
            return
        self._freed.add(key)
        self._cold.discard(key)
        slug = ("use-after-unlink-segment" if kind == "segment"
                else "use-after-free-extent")
        for borrow_id in self._by_resource.get(key, []):
            borrow = self._borrows[borrow_id]
            if self._is_live(borrow):
                self._violation(
                    slug, kind, resource,
                    f"borrow #{borrow_id} ({borrow.nbytes} B) still live "
                    "at free")

    def note_remap(self, kind: str, resources: list[str] | tuple[str, ...],
                   *, retired: bool) -> None:
        """The backing mapping was replaced (grow-by-remap).

        ``retired=True`` means the old mapping was kept alive for its
        exported views (the safe protocol); ``retired=False`` models an
        in-place remap that invalidates every export.
        """
        self.counters["remaps"] += 1
        if retired:
            return
        for resource in resources:
            for borrow_id in self._by_resource.get((kind, resource), []):
                borrow = self._borrows[borrow_id]
                if self._is_live(borrow):
                    self._violation(
                        "remap-invalidates-export", kind, resource,
                        f"borrow #{borrow_id} exported before an "
                        "unretired remap")

    def note_reclaim(self, group: str) -> None:
        """Page group *group* was reclaimed; its adopted views must have
        been detached (released) by now — a still-attached view escaped
        the adoption and is flagged at :meth:`check_finish`."""
        self.counters["reclaims"] += 1
        for borrow in self._borrows.values():
            if borrow.group == group:
                borrow.orphaned = True

    def note_demote(self, kind: str, resource: str) -> None:
        """The resource's cache entry went cold (workers must recompute
        from lineage; reading the stale bytes is a cross-process alias)."""
        self.counters["demotes"] += 1
        self._cold.add((kind, resource))

    def note_poison(self, kind: str, resource: str, nbytes: int) -> None:
        self._poisoned[(kind, resource)] = nbytes
        self.counters["poisoned_bytes"] += nbytes

    def check_use(self, kind: str, resource: str) -> bool:
        """Check a read through ``(kind, resource)``; False on violation."""
        key = (kind, resource)
        if key in self._freed:
            self._violation(
                "use-after-unlink-segment" if kind == "segment"
                else "use-after-free-extent", kind, resource,
                "read through a freed resource")
            return False
        if key in self._cold:
            self._violation(
                "cross-process-cold-alias", kind, resource,
                "read of a demoted cold entry's stale bytes")
            return False
        return True

    # -- transient drain copies ---------------------------------------------
    def note_drain_copy(self, group: str, nbytes: int) -> None:
        """One heap-tier drain chunk was copied out of *group*."""
        self.counters["drain_copies"] += 1
        self._drains[group] = self._drains.get(group, 0) + 1

    def release_drain(self, group: str) -> None:
        """All drain copies of *group* were consumed and freed."""
        self._drains.pop(group, None)

    # -- finish-time checks -------------------------------------------------
    def check_finish(self) -> dict[str, int]:
        """Run end-of-run leak checks; returns the integer summary."""
        for borrow_id in sorted(self._borrows):
            borrow = self._borrows[borrow_id]
            if borrow.orphaned and self._is_attached(borrow):
                self._violation(
                    "view-escapes-adoption", borrow.kind, borrow.resource,
                    f"borrow #{borrow_id} still attached after its "
                    f"adopting group {borrow.group!r} was reclaimed")
            elif borrow.transient and self._is_live(borrow):
                self._violation(
                    "leak-at-finish", borrow.kind, borrow.resource,
                    f"transient borrow #{borrow_id} ({borrow.nbytes} B) "
                    "still live at finish")
        for group in sorted(self._drains):
            self._violation(
                "unreleased-drain-copy", "group", group,
                f"{self._drains[group]} drain copies never released")
        return self.summary()

    # -- introspection ------------------------------------------------------
    def live_borrows(self, kind: str | None = None,
                     resource: str | None = None) -> int:
        """Count live borrows, optionally filtered by kind / resource."""
        count = 0
        for borrow in self._borrows.values():
            if kind is not None and borrow.kind != kind:
                continue
            if resource is not None and borrow.resource != resource:
                continue
            if self._is_live(borrow):
                count += 1
        return count

    def poisoned_resources(self) -> dict[tuple[str, str], int]:
        """Resources currently carrying a poison fill (name -> bytes)."""
        return dict(self._poisoned)

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def summary(self) -> dict[str, int]:
        """Integer-only summary (determinism-safe, RunMetrics-ready)."""
        out = dict(self.counters)
        out["violations"] = len(self.violations)
        return out

    def __repr__(self) -> str:
        return (f"ProvenanceLedger({len(self._borrows)} borrows, "
                f"{len(self.violations)} violations)")
